//! Structure-of-arrays channel arenas: every input buffer of every router
//! in a shard, carved out of flat per-shard vectors allocated once.
//!
//! The per-router `VecDeque` layout this replaces cost the load-dominated
//! regime twice: 14 separately-heap-allocated deques per router scattered
//! the advance loop's working set across the heap, and every front/pop
//! touched deque bookkeeping designed for growth the fixed-capacity
//! channels never need. Here each `(router, vnet, port)` queue is a
//! fixed-capacity ring at a computed offset in one `Vec<Flit>`, with heads,
//! lengths, non-empty port masks, credit timestamps, and output ownership
//! in parallel flat arrays — so a scan over routers walks contiguous
//! memory, and "which ports hold flits" is one byte per (router, vnet).
//!
//! Indexing: queue `qi = (router * 2 + vnet) * 7 + port`. Ports 0–5 are the
//! mesh directions (capacity `flit_buffer`); port 6 is the injection FIFO
//! (capacity `inject_fifo`).

use crate::flit::Flit;

/// Number of ports per (router, vnet): six directions plus injection.
const PORTS: usize = 7;
/// The injection port index within a (router, vnet) block.
const INJECT: usize = 6;

/// All channel buffers of one shard, structure-of-arrays.
#[derive(Debug)]
pub(crate) struct ChannelArena {
    /// Ring storage for every queue, at fixed computed offsets.
    flits: Vec<Flit>,
    /// Ring head index per queue.
    head: Vec<u8>,
    /// Flits currently stored per queue.
    len: Vec<u8>,
    /// Per (router, vnet): bit `p` set iff queue `p` is non-empty. The
    /// advance loop iterates set bits instead of probing all 7 ports.
    mask: Vec<u8>,
    /// Cycle at which each queue last had a flit popped (`u64::MAX` =
    /// never). Lets [`ChannelArena::space`] report *start-of-cycle*
    /// occupancy: a slot freed earlier in the same cycle is not yet visible
    /// to upstream senders, exactly as if every router read its neighbors'
    /// credits at the cycle boundary — which makes the space check
    /// independent of router scan order, and therefore of sharding.
    popped_at: Vec<u64>,
    /// Output ownership per (router, vnet, out port): the input port a
    /// wormhole path holds the output for, or `-1` when unowned.
    owners: Vec<i8>,
    /// Capacity of the directional ports (0–5), in flits.
    flit_buffer: u8,
    /// Capacity of the injection port (6), in flits.
    inject_fifo: u8,
    /// Flits per (router, vnet) block: `6 * flit_buffer + inject_fifo`.
    block: usize,
}

/// A placeholder flit for unoccupied ring slots (never read).
fn nil_flit() -> Flit {
    Flit::nil()
}

impl ChannelArena {
    /// Allocates the arena for `routers` routers. Done once per shard; the
    /// advance loop never allocates.
    pub(crate) fn new(routers: usize, flit_buffer: usize, inject_fifo: usize) -> ChannelArena {
        assert!(
            flit_buffer > 0 && flit_buffer <= u8::MAX as usize,
            "flit buffer depth must fit the arena's u8 rings"
        );
        assert!(
            inject_fifo > 0 && inject_fifo <= u8::MAX as usize,
            "inject FIFO depth must fit the arena's u8 rings"
        );
        let block = 6 * flit_buffer + inject_fifo;
        let queues = routers * 2 * PORTS;
        ChannelArena {
            flits: vec![nil_flit(); routers * 2 * block],
            head: vec![0; queues],
            len: vec![0; queues],
            mask: vec![0; routers * 2],
            popped_at: vec![u64::MAX; queues],
            owners: vec![-1; queues],
            flit_buffer: flit_buffer as u8,
            inject_fifo: inject_fifo as u8,
            block,
        }
    }

    /// Queue index of `(router, vnet, port)`.
    #[inline]
    fn qi(l: usize, vnet: usize, port: usize) -> usize {
        (l * 2 + vnet) * PORTS + port
    }

    /// Ring capacity of `port`.
    #[inline]
    fn cap(&self, port: usize) -> usize {
        if port == INJECT {
            self.inject_fifo as usize
        } else {
            self.flit_buffer as usize
        }
    }

    /// Offset of the ring for `(router, vnet, port)` in `flits`.
    #[inline]
    fn ring_base(&self, l: usize, vnet: usize, port: usize) -> usize {
        (l * 2 + vnet) * self.block + port * self.flit_buffer as usize
    }

    /// Non-empty-port mask for `(router, vnet)`.
    #[inline]
    pub(crate) fn port_mask(&self, l: usize, vnet: usize) -> u8 {
        self.mask[l * 2 + vnet]
    }

    /// Flits queued at `(router, vnet, port)`.
    #[inline]
    pub(crate) fn len(&self, l: usize, vnet: usize, port: usize) -> usize {
        self.len[Self::qi(l, vnet, port)] as usize
    }

    /// The queue's front flit, by reference (the advance loop probes many
    /// fronts it never moves — copying the whole flit per probe would
    /// dominate the scan). Callers on the hot path check the port mask
    /// first, so an empty queue is a logic error.
    #[inline]
    pub(crate) fn front(&self, l: usize, vnet: usize, port: usize) -> &Flit {
        let qi = Self::qi(l, vnet, port);
        debug_assert!(self.len[qi] > 0, "front of empty queue");
        &self.flits[self.ring_base(l, vnet, port) + self.head[qi] as usize]
    }

    /// Appends a flit.
    ///
    /// # Panics
    ///
    /// Debug-asserts the ring has room — capacity checks (credits, FIFO
    /// depth) happen before any push.
    #[inline]
    pub(crate) fn push(&mut self, l: usize, vnet: usize, port: usize, flit: Flit) {
        let qi = Self::qi(l, vnet, port);
        let cap = self.cap(port);
        let len = self.len[qi] as usize;
        debug_assert!(len < cap, "channel ring over capacity");
        let mut slot = self.head[qi] as usize + len;
        if slot >= cap {
            slot -= cap;
        }
        let base = self.ring_base(l, vnet, port);
        self.flits[base + slot] = flit;
        self.len[qi] = (len + 1) as u8;
        self.mask[l * 2 + vnet] |= 1 << port;
    }

    /// Pops the front flit, recording `cycle` as the pop cycle (for
    /// start-of-cycle credit masking).
    #[inline]
    pub(crate) fn pop(&mut self, l: usize, vnet: usize, port: usize, cycle: u64) -> Flit {
        let qi = Self::qi(l, vnet, port);
        let len = self.len[qi] as usize;
        debug_assert!(len > 0, "pop of empty queue");
        let cap = self.cap(port);
        let head = self.head[qi] as usize;
        let flit = self.flits[self.ring_base(l, vnet, port) + head];
        let mut next = head + 1;
        if next >= cap {
            next -= cap;
        }
        self.head[qi] = next as u8;
        self.len[qi] = (len - 1) as u8;
        if len == 1 {
            self.mask[l * 2 + vnet] &= !(1 << port);
        }
        self.popped_at[qi] = cycle;
        flit
    }

    /// Free flit slots in a queue *at the start of cycle `cycle`*: a flit
    /// popped from the queue earlier in the same cycle still counts as
    /// occupying its slot (credit updates propagate at cycle boundaries).
    ///
    /// Over-capacity occupancy would mean a credit-accounting bug upstream;
    /// it fails a `debug_assert!` so tests see it loudly (release builds
    /// saturate to 0, which only ever under-reports space).
    #[inline]
    pub(crate) fn space(&self, l: usize, vnet: usize, port: usize, cycle: u64) -> usize {
        let qi = Self::qi(l, vnet, port);
        let len = self.len[qi] as usize;
        // At most one flit crosses a channel per cycle, and its sender
        // checks space *before* pushing — so when this runs, no same-cycle
        // push can already sit in the buffer.
        debug_assert!(
            len == 0 || {
                let cap = self.cap(port);
                let mut back = self.head[qi] as usize + len - 1;
                if back >= cap {
                    back -= cap;
                }
                self.flits[self.ring_base(l, vnet, port) + back].ready_cycle <= cycle
            },
            "space read after a same-cycle push"
        );
        let capacity = self.cap(port);
        let occupied = len + usize::from(self.popped_at[qi] == cycle);
        debug_assert!(
            occupied <= capacity,
            "input buffer over capacity: {occupied} > {capacity}"
        );
        capacity.saturating_sub(occupied)
    }

    /// Folds the replay-visible state of every queue of `(router, vnet)`:
    /// per port, the occupancy, the buffered flits in logical FIFO order
    /// (destination, framing flags, payload, inject and ready cycles), and
    /// the output-port owner. Physical ring head positions and the
    /// `popped_at` credit timestamps are excluded — at a cycle boundary the
    /// logical queue contents fully determine future behavior (a
    /// `popped_at` stamp can only equal a cycle already finished).
    pub(crate) fn fold_state(&self, l: usize, vnet: usize, h: &mut jm_trace::Fnv1a) {
        for port in 0..PORTS {
            let qi = Self::qi(l, vnet, port);
            let len = self.len[qi] as usize;
            h.write_u8(len as u8);
            let cap = self.cap(port);
            let base = self.ring_base(l, vnet, port);
            for k in 0..len {
                let mut slot = self.head[qi] as usize + k;
                if slot >= cap {
                    slot -= cap;
                }
                let f = &self.flits[base + slot];
                h.write_u8(f.dest.x);
                h.write_u8(f.dest.y);
                h.write_u8(f.dest.z);
                h.write_u8(u8::from(f.head()) | (u8::from(f.tail()) << 1));
                match f.payload() {
                    Some(w) => {
                        h.write_u8(1);
                        h.write_u8(w.tag().bits());
                        h.write_u32(w.bits());
                    }
                    None => h.write_u8(0),
                }
                h.write_u64(f.inject_cycle);
                h.write_u64(f.ready_cycle);
            }
            h.write_u8(self.owners[qi] as u8);
        }
    }

    /// The input port owning `(router, vnet, out port)`, or `-1`.
    #[inline]
    pub(crate) fn owner(&self, l: usize, vnet: usize, out: usize) -> i8 {
        self.owners[Self::qi(l, vnet, out)]
    }

    /// Sets (or clears, with `-1`) the owner of an output port.
    #[inline]
    pub(crate) fn set_owner(&mut self, l: usize, vnet: usize, out: usize, owner: i8) {
        self.owners[Self::qi(l, vnet, out)] = owner;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(ready: u64) -> Flit {
        let mut f = nil_flit();
        f.ready_cycle = ready;
        f
    }

    #[test]
    fn rings_wrap_and_track_mask() {
        let mut a = ChannelArena::new(2, 4, 8);
        assert_eq!(a.port_mask(1, 0), 0);
        for i in 0..4 {
            a.push(1, 0, 2, flit(i));
        }
        assert_eq!(a.len(1, 0, 2), 4);
        assert_eq!(a.port_mask(1, 0), 1 << 2);
        // Drain two, refill two: the ring wraps.
        assert_eq!(a.pop(1, 0, 2, 10).ready_cycle, 0);
        assert_eq!(a.pop(1, 0, 2, 10).ready_cycle, 1);
        a.push(1, 0, 2, flit(4));
        a.push(1, 0, 2, flit(5));
        for want in 2..6 {
            assert_eq!(a.pop(1, 0, 2, 11).ready_cycle, want);
        }
        assert_eq!(a.port_mask(1, 0), 0);
    }

    #[test]
    fn space_masks_same_cycle_pops() {
        let mut a = ChannelArena::new(1, 4, 8);
        a.push(0, 1, 3, flit(0));
        a.push(0, 1, 3, flit(0));
        assert_eq!(a.space(0, 1, 3, 5), 2);
        a.pop(0, 1, 3, 5);
        // The freed slot is invisible until the next cycle.
        assert_eq!(a.space(0, 1, 3, 5), 2);
        assert_eq!(a.space(0, 1, 3, 6), 3);
    }

    #[test]
    fn owners_default_unowned() {
        let mut a = ChannelArena::new(1, 4, 8);
        assert_eq!(a.owner(0, 0, 4), -1);
        a.set_owner(0, 0, 4, 6);
        assert_eq!(a.owner(0, 0, 4), 6);
        a.set_owner(0, 0, 4, -1);
        assert_eq!(a.owner(0, 0, 4), -1);
    }

    #[test]
    fn inject_port_uses_its_own_capacity() {
        let mut a = ChannelArena::new(1, 2, 6);
        for _ in 0..6 {
            a.push(0, 0, 6, flit(0));
        }
        assert_eq!(a.len(0, 0, 6), 6);
        for _ in 0..6 {
            a.pop(0, 0, 6, 1);
        }
        assert_eq!(a.len(0, 0, 6), 0);
    }
}
