//! The whole-mesh network engine.

use crate::bitset::BitSet;
use crate::config::NetConfig;
use crate::flit::Flit;
use crate::router::{ecube_route, Router, IN_INJECT, OUT_EJECT};
use crate::stats::NetStats;
use jm_isa::instr::MsgPriority;
use jm_isa::node::{Coord, NodeId, RouteWord};
use jm_isa::tag::Tag;
use jm_isa::word::Word;
use jm_isa::TraceId;
use jm_trace::{Event, EventKind, Tracer};

/// Result of offering one word to the injection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectResult {
    /// The word was accepted.
    Accepted,
    /// The injection FIFO is full — on the MDP this surfaces as a *send
    /// fault* in the executing thread, which retries (§4.3.2).
    Stall,
    /// Framing error: the first word of a message must be a `route` word
    /// naming an in-range destination, and a message must contain at least
    /// one payload word.
    BadRoute,
}

/// The 3-D mesh network: one router per node, stepped one cycle at a time.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetConfig,
    routers: Vec<Router>,
    cycle: u64,
    stats: NetStats,
    /// Dimension bisected for traffic accounting (0 = x, 1 = y, 2 = z).
    bisect_dim: usize,
    /// Crossing boundary: between coordinates `mid - 1` and `mid`.
    bisect_mid: u8,
    /// Flits currently inside buffers (not yet ejected).
    in_flight: u64,
    /// Routers with `occupancy > 0` — the only ones `step` must visit.
    active: BitSet,
    /// Routers holding undelivered ejected words (either vnet).
    eject_pending: BitSet,
    /// Scratch buffer for the active-set snapshot taken by `step`.
    scratch: Vec<u32>,
    /// Lifecycle-event buffer; `None` (the default) disables tracing, so
    /// the hot paths pay one pointer test.
    tracer: Option<Box<Tracer>>,
}

impl Network {
    /// Creates an idle network.
    pub fn new(config: NetConfig) -> Network {
        let dims = config.dims;
        let routers = dims
            .iter_nodes()
            .map(|id| Router::new(dims.coord(id)))
            .collect();
        let extents = [dims.x, dims.y, dims.z];
        let bisect_dim = (0..3).max_by_key(|&d| extents[d]).unwrap();
        let nodes = dims.nodes() as usize;
        Network {
            config,
            routers,
            cycle: 0,
            stats: NetStats::default(),
            bisect_dim,
            bisect_mid: extents[bisect_dim] / 2,
            in_flight: 0,
            active: BitSet::new(nodes),
            eject_pending: BitSet::new(nodes),
            scratch: Vec::new(),
            tracer: None,
        }
    }

    /// Turns lifecycle tracing on or off. While on, every accepted message
    /// is assigned a [`TraceId`] (its 1-based injection ordinal) and the
    /// network emits inject / per-hop / deliver events.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer = if on {
            Some(Box::new(Tracer::new()))
        } else {
            None
        };
    }

    /// Whether lifecycle tracing is on.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Drains the buffered lifecycle events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<Event> {
        self.tracer.as_mut().map(|t| t.take()).unwrap_or_default()
    }

    /// Routers currently holding buffered flits.
    pub fn active_routers(&self) -> u32 {
        self.active.count() as u32
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Flits currently buffered anywhere in the network (excluding ejected
    /// words awaiting the node).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Whether the network holds no flits and no undelivered words. O(1):
    /// both quantities are tracked incrementally.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0 && self.eject_pending.is_empty()
    }

    /// Nodes currently holding undelivered ejected words, in ascending id
    /// order. This is the engine's delivery notification: after a `step`,
    /// only these nodes can have words to pump (the set also retains nodes
    /// whose earlier deliveries have not been fully consumed, e.g. under
    /// queue backpressure).
    pub fn pending_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.eject_pending.iter().map(|i| NodeId(i as u32))
    }

    /// Advances the cycle counter to `cycle` without simulating the
    /// intervening cycles. Only legal while no flits are buffered
    /// (`in_flight == 0`): an empty network's step is a pure cycle-counter
    /// increment, so skipping is exactly equivalent to stepping. Undelivered
    /// ejected words may remain — they are cycle-independent state.
    ///
    /// # Panics
    ///
    /// Debug builds panic if flits are in flight.
    pub fn skip_to(&mut self, cycle: u64) {
        debug_assert_eq!(self.in_flight, 0, "skip_to with flits in flight");
        self.cycle = self.cycle.max(cycle);
    }

    /// Offers one word to a node's injection port.
    ///
    /// `end` marks the final word of the message (the `SENDE` forms).
    pub fn inject(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        word: Word,
        end: bool,
    ) -> InjectResult {
        let cycle = self.cycle;
        let inject_latency = self.config.inject_latency;
        let fifo_cap = self.config.inject_fifo;
        let dims = self.config.dims;
        let router = &mut self.routers[node.index()];
        let vnet = priority.index();
        if router.inputs[vnet][IN_INJECT].len() + 2 > fifo_cap {
            return InjectResult::Stall;
        }
        let framing = &mut router.inject[vnet];
        let (dest, is_route, head_word) = match framing.dest {
            None => {
                if word.tag() != Tag::Route || end {
                    return InjectResult::BadRoute;
                }
                let dest = RouteWord::from_word(word).dest;
                if dest.x >= dims.x || dest.y >= dims.y || dest.z >= dims.z {
                    return InjectResult::BadRoute;
                }
                framing.dest = Some(dest);
                framing.msg_start = cycle;
                self.stats.injected_msgs += 1;
                framing.trace = match &mut self.tracer {
                    Some(tracer) => {
                        let id = TraceId(self.stats.injected_msgs);
                        tracer.emit(
                            cycle,
                            EventKind::Inject {
                                id,
                                src: node,
                                dst: dims.id(dest),
                                priority,
                                words: 0,
                            },
                        );
                        id
                    }
                    None => TraceId::NONE,
                };
                (dest, true, true)
            }
            Some(dest) => {
                if end {
                    framing.dest = None;
                }
                (dest, false, false)
            }
        };
        let msg_start = router.inject[vnet].msg_start;
        let trace = router.inject[vnet].trace;
        let pair = Flit::pair_for_word(
            dest,
            word,
            is_route,
            head_word,
            end,
            priority,
            msg_start,
            cycle + inject_latency,
            trace,
        );
        for flit in pair {
            router.inputs[vnet][IN_INJECT].push_back(flit);
        }
        router.occupancy += 2;
        self.in_flight += 2;
        self.active.insert(node.index());
        InjectResult::Accepted
    }

    /// Atomically offers a whole message to a node's injection port: the
    /// route word followed by at least one payload word. Either every word
    /// is accepted or none is (the network interface composes messages in a
    /// per-thread buffer and launches them whole, so a preempting handler
    /// can never interleave words into an open message).
    pub fn commit_msg(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        words: &[Word],
    ) -> InjectResult {
        let cycle = self.cycle;
        let inject_latency = self.config.inject_latency;
        let fifo_cap = self.config.inject_fifo;
        let dims = self.config.dims;
        let vnet = priority.index();
        // Framing checks first.
        if words.len() < 2 || words[0].tag() != Tag::Route {
            return InjectResult::BadRoute;
        }
        let dest = RouteWord::from_word(words[0]).dest;
        if dest.x >= dims.x || dest.y >= dims.y || dest.z >= dims.z {
            return InjectResult::BadRoute;
        }
        let router = &mut self.routers[node.index()];
        if router.inject[vnet].dest.is_some() {
            // A word-wise injection is mid-message on this port; mixing
            // the two APIs is a programming error.
            return InjectResult::BadRoute;
        }
        let needed = 2 * words.len();
        if router.inputs[vnet][IN_INJECT].len() + needed > fifo_cap {
            return InjectResult::Stall;
        }
        self.stats.injected_msgs += 1;
        let trace = match &mut self.tracer {
            Some(tracer) => {
                let id = TraceId(self.stats.injected_msgs);
                tracer.emit(
                    cycle,
                    EventKind::Inject {
                        id,
                        src: node,
                        dst: dims.id(dest),
                        priority,
                        words: words.len() as u32 - 1,
                    },
                );
                id
            }
            None => TraceId::NONE,
        };
        for (i, &word) in words.iter().enumerate() {
            let pair = Flit::pair_for_word(
                dest,
                word,
                i == 0,
                i == 0,
                i + 1 == words.len(),
                priority,
                cycle,
                cycle + inject_latency,
                trace,
            );
            for flit in pair {
                router.inputs[vnet][IN_INJECT].push_back(flit);
            }
        }
        router.occupancy += needed as u32;
        self.in_flight += needed as u64;
        self.active.insert(node.index());
        InjectResult::Accepted
    }

    /// Next delivered payload word for a node, if any (peek).
    pub fn delivered_front(&self, node: NodeId, priority: MsgPriority) -> Option<Word> {
        self.delivered_front_traced(node, priority).map(|(w, _)| w)
    }

    /// Next delivered payload word with the trace id of the message that
    /// carried it ([`TraceId::NONE`] when tracing is off).
    pub fn delivered_front_traced(
        &self,
        node: NodeId,
        priority: MsgPriority,
    ) -> Option<(Word, TraceId)> {
        self.routers[node.index()].ejected[priority.index()]
            .front()
            .copied()
    }

    /// Pops the next delivered payload word for a node.
    pub fn pop_delivered(&mut self, node: NodeId, priority: MsgPriority) -> Option<Word> {
        let router = &mut self.routers[node.index()];
        let word = router.ejected[priority.index()].pop_front().map(|(w, _)| w);
        if word.is_some() && router.ejected[0].is_empty() && router.ejected[1].is_empty() {
            self.eject_pending.remove(node.index());
        }
        word
    }

    /// Number of delivered words waiting at a node.
    pub fn delivered_len(&self, node: NodeId, priority: MsgPriority) -> usize {
        self.routers[node.index()].ejected[priority.index()].len()
    }

    fn neighbor_id(&self, here: Coord, out: usize) -> NodeId {
        let mut c = here;
        match out {
            0 => c.x += 1,
            1 => c.x -= 1,
            2 => c.y += 1,
            3 => c.y -= 1,
            4 => c.z += 1,
            5 => c.z -= 1,
            _ => unreachable!("eject has no neighbor"),
        }
        self.config.dims.id(c)
    }

    fn crosses_bisection(&self, here: Coord, out: usize) -> bool {
        if self.bisect_mid == 0 {
            return false;
        }
        let (dim, positive) = match out {
            0 => (0, true),
            1 => (0, false),
            2 => (1, true),
            3 => (1, false),
            4 => (2, true),
            5 => (2, false),
            _ => return false,
        };
        if dim != self.bisect_dim {
            return false;
        }
        let coord = [here.x, here.y, here.z][dim];
        (positive && coord == self.bisect_mid - 1) || (!positive && coord == self.bisect_mid)
    }

    /// Advances the network by one cycle: every physical channel moves at
    /// most one flit, priority-1 traffic first, input ports arbitrated in
    /// fixed order with injection last.
    ///
    /// Only routers in the active set (buffered flits) are visited; an empty
    /// network steps in O(1). This is cycle-exact with a full ascending scan
    /// of all routers: inactive routers have nothing to move, and a router
    /// activated mid-step only holds flits with `ready_cycle == cycle + 1`,
    /// which the scan would skip anyway.
    pub fn step(&mut self) {
        if self.in_flight == 0 {
            self.cycle += 1;
            return;
        }
        let cycle = self.cycle;
        let flit_buffer = self.config.flit_buffer;
        let eject_fifo = self.config.eject_fifo;
        // Snapshot the active set: flit hand-offs during the loop may
        // activate routers (harmless to visit or not, see above), and a
        // drained router leaves the set for future cycles.
        let mut snapshot = std::mem::take(&mut self.scratch);
        snapshot.clear();
        snapshot.extend(self.active.iter().map(|i| i as u32));
        for &n in &snapshot {
            let n = n as usize;
            if self.routers[n].is_idle() {
                self.active.remove(n);
                continue;
            }
            let here = self.routers[n].coord;
            let mut in_used = [false; 7];
            let mut out_used = [false; 7];
            for &priority in [MsgPriority::P1, MsgPriority::P0].iter() {
                let vnet = priority.index();
                #[allow(clippy::needless_range_loop)]
                for in_port in 0..7 {
                    if in_used[in_port] {
                        continue;
                    }
                    let Some(&flit) = self.routers[n].inputs[vnet][in_port].front() else {
                        continue;
                    };
                    if flit.ready_cycle > cycle {
                        continue;
                    }
                    let out = ecube_route(here, flit.dest);
                    if out_used[out] {
                        continue;
                    }
                    match self.routers[n].owners[vnet][out] {
                        Some(owner) if owner == in_port => {}
                        Some(_) => continue,
                        None => {
                            if !flit.head {
                                // A body flit whose path was already torn
                                // down cannot occur under wormhole FIFO
                                // discipline.
                                debug_assert!(flit.head, "orphan body flit");
                                continue;
                            }
                        }
                    }
                    // Space check downstream.
                    if out == OUT_EJECT {
                        if flit.payload.is_some()
                            && self.routers[n].ejected[vnet].len() >= eject_fifo
                        {
                            continue;
                        }
                    } else {
                        let m = self.neighbor_id(here, out).index();
                        if self.routers[m].space(priority, out, flit_buffer) == 0 {
                            continue;
                        }
                    }
                    // Commit the move.
                    let flit = self.routers[n].inputs[vnet][in_port]
                        .pop_front()
                        .expect("front checked");
                    self.routers[n].occupancy -= 1;
                    in_used[in_port] = true;
                    out_used[out] = true;
                    self.routers[n].owners[vnet][out] =
                        if flit.tail { None } else { Some(in_port) };
                    if out == OUT_EJECT {
                        self.in_flight -= 1;
                        if let Some(word) = flit.payload {
                            self.routers[n].ejected[vnet].push_back((word, flit.trace));
                            self.eject_pending.insert(n);
                            self.stats.delivered_words += 1;
                            // The message's first payload word (its header)
                            // reaching the ejection FIFO is the deliver
                            // event: the MDP dispatches on header arrival
                            // while the tail may still be streaming in, so
                            // keying on the tail would let dispatch precede
                            // delivery.
                            if let Some(tracer) = &mut self.tracer {
                                if flit.trace.is_some()
                                    && self.routers[n].eject_cur[vnet] != flit.trace
                                {
                                    self.routers[n].eject_cur[vnet] = flit.trace;
                                    tracer.emit(
                                        cycle,
                                        EventKind::Deliver {
                                            id: flit.trace,
                                            node: NodeId(n as u32),
                                        },
                                    );
                                }
                            }
                        }
                        if flit.tail {
                            self.stats.delivered_msgs += 1;
                            let latency = (cycle + 1).saturating_sub(flit.inject_cycle);
                            self.stats.latency_sum += latency;
                            self.stats.latency_max = self.stats.latency_max.max(latency);
                        }
                    } else {
                        if flit.head {
                            if let Some(tracer) = &mut self.tracer {
                                if flit.trace.is_some() {
                                    tracer.emit(
                                        cycle,
                                        EventKind::Hop {
                                            id: flit.trace,
                                            node: NodeId(n as u32),
                                        },
                                    );
                                }
                            }
                        }
                        self.stats.flit_hops += 1;
                        if self.crosses_bisection(here, out) {
                            self.stats.bisection_flits += 1;
                        }
                        let m = self.neighbor_id(here, out).index();
                        let mut moved = flit;
                        moved.ready_cycle = cycle + 1;
                        self.routers[m].inputs[vnet][out].push_back(moved);
                        self.routers[m].occupancy += 1;
                        self.active.insert(m);
                    }
                }
            }
            if self.routers[n].is_idle() {
                self.active.remove(n);
            }
        }
        self.scratch = snapshot;
        self.cycle += 1;
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until idle or `max_cycles` is reached; returns `true` if the
    /// network drained.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return true;
            }
            self.step();
        }
        self.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::node::MeshDims;
    use jm_isa::word::MsgHeader;

    /// Injects a whole message, pumping the network on FIFO stalls the way
    /// the MDP retries after a send fault.
    fn send_msg(
        net: &mut Network,
        from: NodeId,
        to: NodeId,
        priority: MsgPriority,
        words: &[Word],
    ) {
        let dims = net.config().dims;
        let route = RouteWord::new(dims.coord(to)).to_word();
        let offer = |net: &mut Network, word: Word, end: bool| loop {
            match net.inject(from, priority, word, end) {
                InjectResult::Accepted => break,
                InjectResult::Stall => net.step(),
                InjectResult::BadRoute => panic!("bad route"),
            }
        };
        offer(net, route, false);
        for (i, &w) in words.iter().enumerate() {
            offer(net, w, i + 1 == words.len());
        }
    }

    /// Steps until no flits remain buffered (delivered words may still be
    /// waiting in ejection FIFOs). Returns whether the network settled.
    fn settle(net: &mut Network, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if net.in_flight() == 0 {
                return true;
            }
            net.step();
        }
        net.in_flight() == 0
    }

    fn drain(net: &mut Network, node: NodeId, priority: MsgPriority) -> Vec<Word> {
        let mut out = Vec::new();
        while let Some(w) = net.pop_delivered(node, priority) {
            out.push(w);
        }
        out
    }

    #[test]
    fn delivers_payload_in_order() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(4, 4, 4)));
        let words = [MsgHeader::new(10, 3).to_word(), Word::int(1), Word::int(2)];
        send_msg(&mut net, NodeId(0), NodeId(63), MsgPriority::P0, &words);
        assert!(settle(&mut net, 200));
        assert_eq!(drain(&mut net, NodeId(63), MsgPriority::P0), words);
        assert_eq!(net.stats().delivered_msgs, 1);
    }

    #[test]
    fn loopback_delivery_works() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 2, 2)));
        let words = [MsgHeader::new(5, 1).to_word()];
        send_msg(&mut net, NodeId(3), NodeId(3), MsgPriority::P0, &words);
        assert!(settle(&mut net, 50));
        assert_eq!(drain(&mut net, NodeId(3), MsgPriority::P0), words);
    }

    #[test]
    fn latency_slope_is_one_cycle_per_hop() {
        // Send the same 2-word message over increasing distances and check
        // the tail-delivery latency increases by 1 cycle per hop.
        let mut latencies = Vec::new();
        for x in 1..8u8 {
            let mut net = Network::new(NetConfig::prototype_512());
            let to = net.config().dims.id(Coord::new(x, 0, 0));
            send_msg(
                &mut net,
                NodeId(0),
                to,
                MsgPriority::P0,
                &[MsgHeader::new(9, 2).to_word(), Word::int(0)],
            );
            assert!(settle(&mut net, 300));
            latencies.push(net.stats().latency_sum);
        }
        for pair in latencies.windows(2) {
            assert_eq!(pair[1] - pair[0], 1, "latencies {latencies:?}");
        }
    }

    #[test]
    fn bandwidth_is_half_word_per_cycle() {
        // Stream many messages between adjacent nodes; steady-state word
        // delivery rate must approach 0.5 words/cycle.
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        let header = MsgHeader::new(1, 8).to_word();
        let route = RouteWord::new(net.config().dims.coord(NodeId(1))).to_word();
        // Per-message word stream: route, header, 7 payload words (last ends).
        let mut pending: Vec<(Word, bool)> = Vec::new();
        let mut cycles = 0u64;
        while cycles < 4000 {
            if pending.is_empty() {
                pending.push((route, false));
                pending.push((header, false));
                for k in 0..7 {
                    pending.push((Word::int(k), k == 6));
                }
                pending.reverse(); // pop from the back
            }
            // Offer words until the FIFO stalls.
            while let Some(&(word, end)) = pending.last() {
                match net.inject(NodeId(0), MsgPriority::P0, word, end) {
                    InjectResult::Accepted => {
                        pending.pop();
                    }
                    InjectResult::Stall => break,
                    InjectResult::BadRoute => panic!("bad framing"),
                }
            }
            net.step();
            cycles += 1;
            // Drain so ejection never backpressures.
            while net.pop_delivered(NodeId(1), MsgPriority::P0).is_some() {}
        }
        let rate = net.stats().delivered_words as f64 / cycles as f64;
        assert!(rate > 0.40 && rate <= 0.5, "rate {rate}");
    }

    #[test]
    fn injection_fifo_stalls_when_full() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        let dims = net.config().dims;
        let route = RouteWord::new(dims.coord(NodeId(1))).to_word();
        let mut accepted = 0;
        loop {
            let result = if accepted == 0 {
                net.inject(NodeId(0), MsgPriority::P0, route, false)
            } else {
                net.inject(NodeId(0), MsgPriority::P0, Word::int(1), false)
            };
            match result {
                InjectResult::Accepted => accepted += 1,
                InjectResult::Stall => break,
                InjectResult::BadRoute => panic!("bad route"),
            }
            assert!(accepted < 100, "never stalled");
        }
        assert_eq!(accepted as usize, net.config().inject_fifo / 2);
    }

    #[test]
    fn rejects_bad_framing() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        // First word must be a route word.
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, Word::int(1), false),
            InjectResult::BadRoute
        );
        // Empty messages are rejected.
        let route = RouteWord::new(Coord::new(1, 0, 0)).to_word();
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, route, true),
            InjectResult::BadRoute
        );
        // Out-of-range destinations are rejected.
        let bad = RouteWord::new(Coord::new(5, 0, 0)).to_word();
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, bad, false),
            InjectResult::BadRoute
        );
    }

    #[test]
    fn priority_one_wins_the_channel() {
        // Saturate P0 between nodes 0→1, then send one P1 message; the P1
        // message must be delivered while P0 traffic still flows.
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        let dims = net.config().dims;
        let route = RouteWord::new(dims.coord(NodeId(1))).to_word();
        // Fill P0 fifo.
        net.inject(NodeId(0), MsgPriority::P0, route, false);
        for k in 0..3 {
            net.inject(
                NodeId(0),
                MsgPriority::P0,
                MsgHeader::new(1, 3).to_word(),
                k == 2,
            );
        }
        // One P1 message.
        net.inject(NodeId(0), MsgPriority::P1, route, false);
        net.inject(
            NodeId(0),
            MsgPriority::P1,
            MsgHeader::new(2, 1).to_word(),
            true,
        );
        let mut p1_cycle = None;
        for c in 0..200 {
            net.step();
            if p1_cycle.is_none() && net.delivered_len(NodeId(1), MsgPriority::P1) > 0 {
                p1_cycle = Some(c);
            }
        }
        let p1_cycle = p1_cycle.expect("P1 delivered");
        assert!(p1_cycle < 30, "P1 starved until {p1_cycle}");
        assert!(net.delivered_len(NodeId(1), MsgPriority::P0) > 0);
    }

    #[test]
    fn ejection_backpressure_blocks_and_recovers() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        // Send more words than the eject FIFO holds and do not drain.
        send_msg(
            &mut net,
            NodeId(0),
            NodeId(1),
            MsgPriority::P0,
            &(0..12).map(Word::int).collect::<Vec<_>>(),
        );
        net.run(400);
        let cap = net.config().eject_fifo;
        assert_eq!(net.delivered_len(NodeId(1), MsgPriority::P0), cap);
        assert!(net.in_flight() > 0, "remaining flits must be blocked");
        // Drain and let the rest through.
        let mut guard = 0;
        while !net.is_idle() {
            while net.pop_delivered(NodeId(1), MsgPriority::P0).is_some() {}
            net.step();
            guard += 1;
            assert!(guard < 1000, "network failed to drain");
        }
        assert_eq!(net.stats().delivered_words, 12);
    }

    #[test]
    fn counts_bisection_crossings() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 2, 4)));
        // z = 0 → z = 3 crosses the z mid-plane exactly once; the route
        // word and payload are 2 words = 4 flits.
        let to = net.config().dims.id(Coord::new(0, 0, 3));
        send_msg(
            &mut net,
            NodeId(0),
            to,
            MsgPriority::P0,
            &[MsgHeader::new(1, 1).to_word()],
        );
        assert!(settle(&mut net, 200));
        assert_eq!(net.stats().bisection_flits, 4);
    }

    #[test]
    fn wormhole_blocking_holds_links() {
        // Two messages from different sources to the same destination input:
        // the second must wait for the first's tail (no interleaving).
        let mut net = Network::new(NetConfig::new(MeshDims::new(3, 1, 1)));
        let dest = NodeId(2);
        let long: Vec<Word> = std::iter::once(MsgHeader::new(1, 12).to_word())
            .chain((0..11).map(Word::int))
            .collect();
        send_msg(&mut net, NodeId(0), dest, MsgPriority::P0, &long);
        let short = [MsgHeader::new(2, 2).to_word(), Word::int(99)];
        send_msg(&mut net, NodeId(1), dest, MsgPriority::P0, &short);
        // Drain while stepping: the eject FIFO is smaller than the long
        // message, so delivery needs concurrent consumption.
        let mut words = Vec::new();
        for _ in 0..500 {
            net.step();
            while let Some(w) = net.pop_delivered(dest, MsgPriority::P0) {
                words.push(w);
            }
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "network failed to drain");
        assert_eq!(words.len(), 14);
        // Messages must be contiguous: find the short header and check the
        // next word is its payload.
        let pos = words
            .iter()
            .position(|w| *w == short[0])
            .expect("short header delivered");
        assert_eq!(words[pos + 1], short[1]);
    }
}
