//! The whole-mesh network engine: a facade over one or more z-slab shards.
//!
//! With one shard (the default) this is exactly the former monolithic
//! engine. With more, [`Network::step`] drives the same two-phase cycle the
//! parallel machine engine runs on worker threads — step every shard, then
//! exchange boundary flits — so the sharded data path is exercised (and must
//! stay bit-identical) even in single-threaded use. See [`crate::shard`] for
//! the phase structure and the determinism argument.

use crate::config::NetConfig;
use crate::shard::{edge_pair, Edge, InjectResult, NetShard};
use crate::stats::NetStats;
use jm_isa::instr::MsgPriority;
use jm_isa::node::NodeId;
use jm_isa::word::Word;
use jm_isa::TraceId;
use jm_trace::{Event, Tracer};

/// The 3-D mesh network: one router per node, stepped one cycle at a time.
#[derive(Debug)]
pub struct Network {
    config: NetConfig,
    shards: Vec<NetShard>,
    edges: Vec<Edge>,
}

impl Network {
    /// Creates an idle network as a single shard.
    pub fn new(config: NetConfig) -> Network {
        Network::with_shards(config, 1)
    }

    /// Creates an idle network cut into (up to) `shards` contiguous z-slabs.
    /// The count is clamped to the z extent; slab sizes differ by at most
    /// one plane. Observable behavior is independent of the cut — sharding
    /// only decides what can be stepped concurrently.
    pub fn with_shards(config: NetConfig, shards: usize) -> Network {
        let dims = config.dims;
        let extents = [dims.x, dims.y, dims.z];
        let bisect_dim = (0..3).max_by_key(|&d| extents[d]).unwrap();
        let bisect_mid = extents[bisect_dim] / 2;
        let plane = dims.x as usize * dims.y as usize;
        let z = dims.z as usize;
        let count = shards.clamp(1, z);
        let mut parts = Vec::with_capacity(count);
        let mut cuts = Vec::new();
        for k in 0..count {
            let z_lo = k * z / count;
            let z_hi = (k + 1) * z / count;
            parts.push(NetShard::new(
                config,
                z_lo * plane,
                (z_hi - z_lo) * plane,
                bisect_dim,
                bisect_mid,
            ));
            if k + 1 < count {
                cuts.push(Edge::new(plane, config.flit_buffer));
            }
        }
        Network {
            config,
            shards: parts,
            edges: cuts,
        }
    }

    /// Installs (or clears) a fault plan on every shard. Must be called
    /// before simulation starts; plan queries key on global node ids and
    /// the lockstep cycle counter, so behavior under faults is independent
    /// of the shard cut exactly like the fault-free case.
    pub fn set_fault_plan(&mut self, plan: Option<jm_fault::FaultPlan>) {
        for shard in &mut self.shards {
            shard.set_fault_plan(plan);
        }
    }

    /// Installs (or clears) a traffic plan on every shard. Must be called
    /// before simulation starts; plan queries key on global node ids and
    /// the lockstep cycle counter, so the generated workload is independent
    /// of the shard cut exactly like the fault plans.
    pub fn set_traffic_plan(&mut self, plan: Option<jm_traffic::TrafficPlan>) {
        for shard in &mut self.shards {
            shard.set_traffic_plan(plan);
        }
    }

    /// The next cycle at or after the current one with possible generated
    /// traffic, or `u64::MAX` when there is none (no plan, or its window is
    /// exhausted). Engines gate idle-skip and quiescence on this: the cycle
    /// counter must never skip past it, and a machine is not finished while
    /// it is finite.
    pub fn traffic_wake(&self) -> u64 {
        self.shards
            .iter()
            .map(NetShard::traffic_wake)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Turns lifecycle tracing on or off. While on, every accepted message
    /// is assigned a [`TraceId`] (its 1-based injection ordinal) and the
    /// network emits inject / per-hop / deliver events.
    ///
    /// # Panics
    ///
    /// Panics if enabled on a multi-shard network: trace ids are injection
    /// ordinals from a single counter, which sharded injection does not
    /// maintain (the machine falls back to a sequential engine for traced
    /// runs).
    pub fn set_tracing(&mut self, on: bool) {
        assert!(
            !on || self.shards.len() == 1,
            "lifecycle tracing requires a single-shard network"
        );
        for shard in &mut self.shards {
            shard.tracer = None;
        }
        if on {
            self.shards[0].tracer = Some(Box::new(Tracer::new()));
        }
    }

    /// Whether lifecycle tracing is on.
    pub fn tracing(&self) -> bool {
        self.shards.iter().any(|s| s.tracer.is_some())
    }

    /// Drains the buffered lifecycle events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<Event> {
        let mut events = Vec::new();
        for shard in &mut self.shards {
            events.extend(shard.take_trace_events());
        }
        events
    }

    /// Routers currently holding buffered flits.
    pub fn active_routers(&self) -> u32 {
        self.shards.iter().map(NetShard::active_count).sum()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The current cycle number.
    pub fn cycle(&self) -> u64 {
        // Shards advance in lockstep; outside the two tick phases every
        // counter agrees.
        self.shards[0].cycle()
    }

    /// Accumulated statistics, reduced over shards in fixed (ascending slab)
    /// order.
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for shard in &self.shards {
            total.merge(shard.stats());
        }
        total
    }

    /// Flits currently buffered anywhere in the network (excluding ejected
    /// words awaiting the node).
    pub fn in_flight(&self) -> u64 {
        self.shards.iter().map(NetShard::in_flight).sum()
    }

    /// Whether the network holds no flits and no undelivered words. O(shards):
    /// each shard tracks both quantities incrementally.
    pub fn is_idle(&self) -> bool {
        self.shards.iter().all(NetShard::is_idle)
    }

    /// Nodes currently holding undelivered ejected words, in ascending id
    /// order. This is the engine's delivery notification: after a `step`,
    /// only these nodes can have words to pump (the set also retains nodes
    /// whose earlier deliveries have not been fully consumed, e.g. under
    /// queue backpressure).
    pub fn pending_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Shards hold disjoint ascending id ranges, so chaining in slab
        // order preserves global ascending order.
        self.shards.iter().flat_map(NetShard::pending_nodes)
    }

    /// Advances the cycle counter to `cycle` without simulating the
    /// intervening cycles. Only legal while no flits are buffered
    /// (`in_flight == 0`): an empty network's step is a pure cycle-counter
    /// increment, so skipping is exactly equivalent to stepping. Undelivered
    /// ejected words may remain — they are cycle-independent state.
    ///
    /// # Panics
    ///
    /// Debug builds panic if flits are in flight.
    pub fn skip_to(&mut self, cycle: u64) {
        for shard in &mut self.shards {
            shard.skip_to(cycle);
        }
    }

    /// The number of z-slab shards the mesh is cut into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Index of the shard owning `node`.
    pub fn shard_of_node(&self, node: NodeId) -> usize {
        let index = node.index();
        self.shards.partition_point(|s| s.base() + s.len() <= index)
    }

    /// Splits the network into its shards and edges so callers (the parallel
    /// machine engine) can hand each shard to its own worker while all
    /// workers share the edge interfaces.
    pub fn shard_parts(&mut self) -> (&mut [NetShard], &[Edge]) {
        (&mut self.shards, &self.edges)
    }

    #[inline]
    fn shard_for(&mut self, node: NodeId) -> &mut NetShard {
        let k = self.shard_of_node(node);
        &mut self.shards[k]
    }

    /// Offers one word to a node's injection port.
    ///
    /// `end` marks the final word of the message (the `SENDE` forms).
    pub fn inject(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        word: Word,
        end: bool,
    ) -> InjectResult {
        self.shard_for(node).inject(node, priority, word, end)
    }

    /// Atomically offers a whole message to a node's injection port: the
    /// route word followed by at least one payload word. Either every word
    /// is accepted or none is.
    pub fn commit_msg(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        words: &[Word],
    ) -> InjectResult {
        self.shard_for(node).commit_msg(node, priority, words)
    }

    /// Next delivered payload word for a node, if any (peek).
    pub fn delivered_front(&self, node: NodeId, priority: MsgPriority) -> Option<Word> {
        self.delivered_front_traced(node, priority).map(|(w, _)| w)
    }

    /// Next delivered payload word with the trace id of the message that
    /// carried it ([`TraceId::NONE`] when tracing is off).
    pub fn delivered_front_traced(
        &self,
        node: NodeId,
        priority: MsgPriority,
    ) -> Option<(Word, TraceId)> {
        self.shards[self.shard_of_node(node)].delivered_front_traced(node, priority)
    }

    /// Pops the next delivered payload word for a node.
    pub fn pop_delivered(&mut self, node: NodeId, priority: MsgPriority) -> Option<Word> {
        self.shard_for(node).pop_delivered(node, priority)
    }

    /// Number of delivered words waiting at a node.
    pub fn delivered_len(&self, node: NodeId, priority: MsgPriority) -> usize {
        self.shards[self.shard_of_node(node)].delivered_len(node, priority)
    }

    /// Advances the network by one cycle: phase 1 steps every shard, phase 2
    /// exchanges boundary flits and republishes boundary space. Sequential
    /// shard order is immaterial — that is the whole point of the two-phase
    /// scheme (see [`crate::shard`]).
    pub fn step(&mut self) {
        let count = self.shards.len();
        for k in 0..count {
            let (below, above) = edge_pair(&self.edges, k);
            self.shards[k].step_cycle(below, above);
        }
        if count > 1 {
            for k in 0..count {
                let (below, above) = edge_pair(&self.edges, k);
                self.shards[k].exchange(below, above);
            }
        }
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Calls `f` with a replay occupancy digest for every `(node, vnet)`
    /// pair, in ascending (node id, vnet) order — the network's component
    /// hashes for the replay log's divergence reports. Takes `&mut self`
    /// because a wormhole bulk-advance message must be materialized into
    /// its exact buffered equivalent before hashing (semantically
    /// invisible; see [`crate::shard`]).
    pub fn fold_components(&mut self, mut f: impl FnMut(NodeId, usize, u64)) {
        for shard in &mut self.shards {
            shard.fold_components(&mut f);
        }
    }

    /// Runs until idle or `max_cycles` is reached; returns `true` if the
    /// network drained.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return true;
            }
            self.step();
        }
        self.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::node::{Coord, MeshDims, RouteWord};
    use jm_isa::word::MsgHeader;

    /// Injects a whole message, pumping the network on FIFO stalls the way
    /// the MDP retries after a send fault.
    fn send_msg(
        net: &mut Network,
        from: NodeId,
        to: NodeId,
        priority: MsgPriority,
        words: &[Word],
    ) {
        let dims = net.config().dims;
        let route = RouteWord::new(dims.coord(to)).to_word();
        let offer = |net: &mut Network, word: Word, end: bool| loop {
            match net.inject(from, priority, word, end) {
                InjectResult::Accepted => break,
                InjectResult::Stall => net.step(),
                InjectResult::BadRoute => panic!("bad route"),
            }
        };
        offer(net, route, false);
        for (i, &w) in words.iter().enumerate() {
            offer(net, w, i + 1 == words.len());
        }
    }

    /// Steps until no flits remain buffered (delivered words may still be
    /// waiting in ejection FIFOs). Returns whether the network settled.
    fn settle(net: &mut Network, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if net.in_flight() == 0 {
                return true;
            }
            net.step();
        }
        net.in_flight() == 0
    }

    fn drain(net: &mut Network, node: NodeId, priority: MsgPriority) -> Vec<Word> {
        let mut out = Vec::new();
        while let Some(w) = net.pop_delivered(node, priority) {
            out.push(w);
        }
        out
    }

    #[test]
    fn delivers_payload_in_order() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(4, 4, 4)));
        let words = [MsgHeader::new(10, 3).to_word(), Word::int(1), Word::int(2)];
        send_msg(&mut net, NodeId(0), NodeId(63), MsgPriority::P0, &words);
        assert!(settle(&mut net, 200));
        assert_eq!(drain(&mut net, NodeId(63), MsgPriority::P0), words);
        assert_eq!(net.stats().delivered_msgs, 1);
    }

    #[test]
    fn loopback_delivery_works() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 2, 2)));
        let words = [MsgHeader::new(5, 1).to_word()];
        send_msg(&mut net, NodeId(3), NodeId(3), MsgPriority::P0, &words);
        assert!(settle(&mut net, 50));
        assert_eq!(drain(&mut net, NodeId(3), MsgPriority::P0), words);
    }

    #[test]
    fn latency_slope_is_one_cycle_per_hop() {
        // Send the same 2-word message over increasing distances and check
        // the tail-delivery latency increases by 1 cycle per hop.
        let mut latencies = Vec::new();
        for x in 1..8u8 {
            let mut net = Network::new(NetConfig::prototype_512());
            let to = net.config().dims.id(Coord::new(x, 0, 0));
            send_msg(
                &mut net,
                NodeId(0),
                to,
                MsgPriority::P0,
                &[MsgHeader::new(9, 2).to_word(), Word::int(0)],
            );
            assert!(settle(&mut net, 300));
            latencies.push(net.stats().latency_sum);
        }
        for pair in latencies.windows(2) {
            assert_eq!(pair[1] - pair[0], 1, "latencies {latencies:?}");
        }
    }

    #[test]
    fn bandwidth_is_half_word_per_cycle() {
        // Stream many messages between adjacent nodes; steady-state word
        // delivery rate must approach 0.5 words/cycle.
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        let header = MsgHeader::new(1, 8).to_word();
        let route = RouteWord::new(net.config().dims.coord(NodeId(1))).to_word();
        // Per-message word stream: route, header, 7 payload words (last ends).
        let mut pending: Vec<(Word, bool)> = Vec::new();
        let mut cycles = 0u64;
        while cycles < 4000 {
            if pending.is_empty() {
                pending.push((route, false));
                pending.push((header, false));
                for k in 0..7 {
                    pending.push((Word::int(k), k == 6));
                }
                pending.reverse(); // pop from the back
            }
            // Offer words until the FIFO stalls.
            while let Some(&(word, end)) = pending.last() {
                match net.inject(NodeId(0), MsgPriority::P0, word, end) {
                    InjectResult::Accepted => {
                        pending.pop();
                    }
                    InjectResult::Stall => break,
                    InjectResult::BadRoute => panic!("bad framing"),
                }
            }
            net.step();
            cycles += 1;
            // Drain so ejection never backpressures.
            while net.pop_delivered(NodeId(1), MsgPriority::P0).is_some() {}
        }
        let rate = net.stats().delivered_words as f64 / cycles as f64;
        assert!(rate > 0.40 && rate <= 0.5, "rate {rate}");
    }

    #[test]
    fn injection_fifo_stalls_when_full() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        let dims = net.config().dims;
        let route = RouteWord::new(dims.coord(NodeId(1))).to_word();
        let mut accepted = 0;
        loop {
            let result = if accepted == 0 {
                net.inject(NodeId(0), MsgPriority::P0, route, false)
            } else {
                net.inject(NodeId(0), MsgPriority::P0, Word::int(1), false)
            };
            match result {
                InjectResult::Accepted => accepted += 1,
                InjectResult::Stall => break,
                InjectResult::BadRoute => panic!("bad route"),
            }
            assert!(accepted < 100, "never stalled");
        }
        assert_eq!(accepted as usize, net.config().inject_fifo / 2);
    }

    #[test]
    fn rejects_bad_framing() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        // First word must be a route word.
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, Word::int(1), false),
            InjectResult::BadRoute
        );
        // Empty messages are rejected.
        let route = RouteWord::new(Coord::new(1, 0, 0)).to_word();
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, route, true),
            InjectResult::BadRoute
        );
        // Out-of-range destinations are rejected.
        let bad = RouteWord::new(Coord::new(5, 0, 0)).to_word();
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, bad, false),
            InjectResult::BadRoute
        );
    }

    #[test]
    fn priority_one_wins_the_channel() {
        // Saturate P0 between nodes 0→1, then send one P1 message; the P1
        // message must be delivered while P0 traffic still flows.
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        let dims = net.config().dims;
        let route = RouteWord::new(dims.coord(NodeId(1))).to_word();
        // Fill P0 fifo.
        net.inject(NodeId(0), MsgPriority::P0, route, false);
        for k in 0..3 {
            net.inject(
                NodeId(0),
                MsgPriority::P0,
                MsgHeader::new(1, 3).to_word(),
                k == 2,
            );
        }
        // One P1 message.
        net.inject(NodeId(0), MsgPriority::P1, route, false);
        net.inject(
            NodeId(0),
            MsgPriority::P1,
            MsgHeader::new(2, 1).to_word(),
            true,
        );
        let mut p1_cycle = None;
        for c in 0..200 {
            net.step();
            if p1_cycle.is_none() && net.delivered_len(NodeId(1), MsgPriority::P1) > 0 {
                p1_cycle = Some(c);
            }
        }
        let p1_cycle = p1_cycle.expect("P1 delivered");
        assert!(p1_cycle < 30, "P1 starved until {p1_cycle}");
        assert!(net.delivered_len(NodeId(1), MsgPriority::P0) > 0);
    }

    #[test]
    fn ejection_backpressure_blocks_and_recovers() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        // Send more words than the eject FIFO holds and do not drain.
        send_msg(
            &mut net,
            NodeId(0),
            NodeId(1),
            MsgPriority::P0,
            &(0..12).map(Word::int).collect::<Vec<_>>(),
        );
        net.run(400);
        let cap = net.config().eject_fifo;
        assert_eq!(net.delivered_len(NodeId(1), MsgPriority::P0), cap);
        assert!(net.in_flight() > 0, "remaining flits must be blocked");
        // Drain and let the rest through.
        let mut guard = 0;
        while !net.is_idle() {
            while net.pop_delivered(NodeId(1), MsgPriority::P0).is_some() {}
            net.step();
            guard += 1;
            assert!(guard < 1000, "network failed to drain");
        }
        assert_eq!(net.stats().delivered_words, 12);
    }

    #[test]
    fn counts_bisection_crossings() {
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 2, 4)));
        // z = 0 → z = 3 crosses the z mid-plane exactly once; the route
        // word and payload are 2 words = 4 flits.
        let to = net.config().dims.id(Coord::new(0, 0, 3));
        send_msg(
            &mut net,
            NodeId(0),
            to,
            MsgPriority::P0,
            &[MsgHeader::new(1, 1).to_word()],
        );
        assert!(settle(&mut net, 200));
        assert_eq!(net.stats().bisection_flits, 4);
    }

    #[test]
    fn wormhole_blocking_holds_links() {
        // Two messages from different sources to the same destination input:
        // the second must wait for the first's tail (no interleaving).
        let mut net = Network::new(NetConfig::new(MeshDims::new(3, 1, 1)));
        let dest = NodeId(2);
        let long: Vec<Word> = std::iter::once(MsgHeader::new(1, 12).to_word())
            .chain((0..11).map(Word::int))
            .collect();
        send_msg(&mut net, NodeId(0), dest, MsgPriority::P0, &long);
        let short = [MsgHeader::new(2, 2).to_word(), Word::int(99)];
        send_msg(&mut net, NodeId(1), dest, MsgPriority::P0, &short);
        // Drain while stepping: the eject FIFO is smaller than the long
        // message, so delivery needs concurrent consumption.
        let mut words = Vec::new();
        for _ in 0..500 {
            net.step();
            while let Some(w) = net.pop_delivered(dest, MsgPriority::P0) {
                words.push(w);
            }
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "network failed to drain");
        assert_eq!(words.len(), 14);
        // Messages must be contiguous: find the short header and check the
        // next word is its payload.
        let pos = words
            .iter()
            .position(|w| *w == short[0])
            .expect("short header delivered");
        assert_eq!(words[pos + 1], short[1]);
    }

    /// Runs dense all-to-all-ish traffic on a given shard count and returns
    /// the full observable record: per-cycle per-node delivered words plus
    /// the final statistics.
    fn crossing_traffic(
        shards: usize,
        plan: Option<jm_fault::FaultPlan>,
    ) -> (Vec<(u64, u32, Word)>, NetStats) {
        let dims = MeshDims::new(2, 2, 8);
        let mut net = Network::with_shards(NetConfig::new(dims), shards);
        net.set_fault_plan(plan);
        let nodes = dims.nodes();
        // Every node sends a 3-word message to its id mirrored in z (all
        // messages cross every slab boundary near the middle).
        for src in 0..nodes {
            let here = dims.coord(NodeId(src));
            let to = dims.id(Coord::new(here.x, here.y, dims.z - 1 - here.z));
            let words = [
                MsgHeader::new(7, 3).to_word(),
                Word::int(src as i32),
                Word::int(-(src as i32)),
            ];
            send_msg(&mut net, NodeId(src), to, MsgPriority::P0, &words);
        }
        let mut record = Vec::new();
        for _ in 0..2000 {
            net.step();
            for n in 0..nodes {
                while let Some(w) = net.pop_delivered(NodeId(n), MsgPriority::P0) {
                    record.push((net.cycle(), n, w));
                }
            }
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "traffic failed to drain");
        (record, net.stats())
    }

    #[test]
    fn sharding_is_unobservable() {
        // The slab cut must not change delivery cycles, order, or any
        // statistic — the two-phase exchange is bit-identical to the
        // monolithic step.
        let (record1, stats1) = crossing_traffic(1, None);
        assert_eq!(stats1.delivered_msgs, 32);
        for shards in [2, 3, 4, 8] {
            let (record, stats) = crossing_traffic(shards, None);
            assert_eq!(record, record1, "{shards}-shard record diverged");
            assert_eq!(stats, stats1, "{shards}-shard stats diverged");
        }
    }

    #[test]
    fn delay_faults_are_lossless_and_shard_independent() {
        use jm_fault::{FaultPlan, FaultSpec};
        // 5% flaky links: every message must still arrive intact (delay
        // faults only ever hold flits in place), later than fault-free,
        // and the whole observable record must not depend on the shard cut.
        let plan = FaultPlan::from_spec(FaultSpec::new(77).flaky(50_000));
        assert!(plan.is_some());
        let (clean_record, clean_stats) = crossing_traffic(1, None);
        let (record1, stats1) = crossing_traffic(1, plan);
        assert_eq!(stats1.delivered_msgs, clean_stats.delivered_msgs);
        assert_eq!(stats1.delivered_words, clean_stats.delivered_words);
        assert!(stats1.faults.blocked_moves > 0, "no fault ever fired");
        assert!(
            stats1.latency_sum > clean_stats.latency_sum,
            "faults did not delay anything"
        );
        // Same payload words per node, possibly at different cycles (the
        // global interleaving may reorder under delay, but each node's own
        // word stream must be intact).
        let group = |r: &[(u64, u32, Word)]| {
            let mut per_node: Vec<Vec<Word>> = vec![Vec::new(); 32];
            for &(_, n, w) in r {
                per_node[n as usize].push(w);
            }
            per_node
        };
        assert_eq!(group(&record1), group(&clean_record));
        for shards in [2, 4, 8] {
            let (record, stats) = crossing_traffic(shards, plan);
            assert_eq!(record, record1, "{shards}-shard faulted record diverged");
            assert_eq!(stats, stats1, "{shards}-shard faulted stats diverged");
        }
    }

    #[test]
    fn link_down_window_holds_traffic_until_it_clears() {
        use jm_fault::{FaultPlan, FaultSpec, FaultWindow};
        // Node 0's +x channel (port 0) is down for cycles 0..100; a 0→1
        // message cannot start crossing before cycle 100.
        let run = |plan| {
            let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
            net.set_fault_plan(plan);
            send_msg(
                &mut net,
                NodeId(0),
                NodeId(1),
                MsgPriority::P0,
                &[MsgHeader::new(1, 1).to_word()],
            );
            assert!(settle(&mut net, 400));
            (net.cycle(), net.stats())
        };
        let (clean_done, _) = run(None);
        let plan =
            FaultPlan::from_spec(FaultSpec::new(1).window(FaultWindow::link_down(0, 0, 0, 100)));
        let (done, stats) = run(plan);
        assert!(clean_done < 100, "baseline unexpectedly slow");
        assert!(done > 100, "window did not delay delivery: done at {done}");
        assert_eq!(stats.delivered_msgs, 1);
        assert!(stats.faults.blocked_moves > 0);
    }

    #[test]
    fn node_down_window_stalls_injection() {
        use jm_fault::{FaultPlan, FaultSpec, FaultWindow};
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        net.set_fault_plan(FaultPlan::from_spec(
            FaultSpec::new(1).window(FaultWindow::node_down(0, 0, 50)),
        ));
        let route = RouteWord::new(Coord::new(1, 0, 0)).to_word();
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, route, false),
            InjectResult::Stall
        );
        // The other node is unaffected, and the window clears.
        let loop_route = RouteWord::new(Coord::new(1, 0, 0)).to_word();
        assert_eq!(
            net.inject(NodeId(1), MsgPriority::P0, loop_route, false),
            InjectResult::Accepted
        );
        net.run(50);
        assert_eq!(
            net.inject(NodeId(0), MsgPriority::P0, route, false),
            InjectResult::Accepted
        );
        assert_eq!(net.stats().faults.inject_stalls, 1);
    }

    #[test]
    fn corruption_spares_headers_and_checksums_detect_it() {
        use jm_fault::{checksum_words, FaultPlan, FaultSpec};
        // Very high corruption rate; stream messages via the whole-message
        // API so checksum trailers are appended.
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        net.set_fault_plan(FaultPlan::from_spec(
            FaultSpec::new(3).corrupt(400_000).checksums(true),
        ));
        let dims = net.config().dims;
        let route = RouteWord::new(dims.coord(NodeId(1))).to_word();
        let payload = [MsgHeader::new(1, 3).to_word(), Word::int(7), Word::int(8)];
        let mut words = vec![route];
        words.extend_from_slice(&payload);
        let mut sent = 0;
        let mut delivered: Vec<Vec<Word>> = Vec::new();
        let mut cur = Vec::new();
        for _ in 0..600 {
            if sent < 20
                && net.commit_msg(NodeId(0), MsgPriority::P0, &words) == InjectResult::Accepted
            {
                sent += 1;
            }
            net.step();
            while let Some(w) = net.pop_delivered(NodeId(1), MsgPriority::P0) {
                cur.push(w);
                // Wire length = header len + checksum trailer.
                if cur.len() == payload.len() + 1 {
                    delivered.push(std::mem::take(&mut cur));
                }
            }
        }
        assert_eq!(delivered.len(), 20, "not all messages arrived");
        assert!(net.stats().faults.corrupted_words > 0, "nothing corrupted");
        let mut bad = 0;
        for msg in &delivered {
            // Headers are never corrupted: framing stays parseable.
            assert_eq!(msg[0], payload[0], "header was corrupted");
            let expect = checksum_words(&msg[..payload.len()]);
            if msg[payload.len()] != expect {
                bad += 1;
            } else {
                assert_eq!(msg[1..payload.len()], payload[1..], "undetected corruption");
            }
        }
        assert!(bad > 0, "corruption never hit a validated word");
    }

    #[test]
    fn generated_traffic_is_shard_independent() {
        use jm_traffic::{TrafficPattern, TrafficPlan, TrafficSpec};
        // A bit-reversal workload over a bounded window: every shard cut
        // must offer, accept, drop, and deliver the identical messages at
        // the identical cycles.
        let run = |shards| {
            let dims = MeshDims::new(2, 2, 8);
            let mut net = Network::with_shards(NetConfig::new(dims), shards);
            net.set_traffic_plan(TrafficPlan::from_spec(
                TrafficSpec::new(7)
                    .pattern(TrafficPattern::BitReversal)
                    .load(300_000)
                    .msg_words(2)
                    .window(0, 300)
                    .handler(5),
            ));
            let mut record = Vec::new();
            let drain = |net: &mut Network, record: &mut Vec<(u64, u32, Word)>| {
                for n in 0..dims.nodes() {
                    while let Some(w) = net.pop_delivered(NodeId(n), MsgPriority::P0) {
                        record.push((net.cycle(), n, w));
                    }
                }
            };
            for _ in 0..600 {
                net.step();
                drain(&mut net, &mut record);
                if net.cycle() >= 300 && net.is_idle() {
                    break;
                }
            }
            assert!(net.is_idle(), "traffic failed to drain");
            assert_eq!(net.traffic_wake(), u64::MAX);
            (record, net.stats())
        };
        let (record1, stats1) = run(1);
        assert!(stats1.traffic.offered_msgs > 0, "generator never fired");
        assert_eq!(
            stats1.traffic.offered_msgs,
            stats1.traffic.accepted_msgs + stats1.traffic.dropped_msgs
        );
        assert_eq!(stats1.delivered_msgs, stats1.traffic.accepted_msgs);
        for shards in [2, 4, 8] {
            let (record, stats) = run(shards);
            assert_eq!(record, record1, "{shards}-shard traffic record diverged");
            assert_eq!(stats, stats1, "{shards}-shard traffic stats diverged");
        }
    }

    #[test]
    fn traffic_wake_tracks_the_window() {
        use jm_traffic::{TrafficPlan, TrafficSpec};
        let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
        net.set_traffic_plan(TrafficPlan::from_spec(
            TrafficSpec::new(1)
                .load(500_000)
                .window(100, 120)
                .handler(3),
        ));
        assert_eq!(net.traffic_wake(), 100);
        net.skip_to(100);
        assert_eq!(net.traffic_wake(), 100);
        let mut delivered = 0;
        for _ in 0..200 {
            net.step();
            while net.pop_delivered(NodeId(0), MsgPriority::P0).is_some() {
                delivered += 1;
            }
            while net.pop_delivered(NodeId(1), MsgPriority::P0).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(net.traffic_wake(), u64::MAX);
        assert!(delivered > 0, "windowed traffic never delivered");
        assert!(net.stats().traffic.accepted_msgs > 0);
    }

    #[test]
    fn shard_count_is_clamped_to_z_extent() {
        let net = Network::with_shards(NetConfig::new(MeshDims::new(4, 4, 2)), 16);
        assert_eq!(net.shard_count(), 2);
        let net = Network::with_shards(NetConfig::new(MeshDims::new(4, 4, 2)), 0);
        assert_eq!(net.shard_count(), 1);
    }

    #[test]
    fn shard_of_node_matches_slab_ranges() {
        let mut net = Network::with_shards(NetConfig::new(MeshDims::new(2, 2, 8)), 3);
        let (shards, edges) = net.shard_parts();
        assert_eq!(edges.len(), 2);
        let ranges: Vec<(usize, usize)> = shards.iter().map(|s| (s.base(), s.len())).collect();
        assert_eq!(ranges.iter().map(|r| r.1).sum::<usize>(), 32);
        for (k, &(base, len)) in ranges.iter().enumerate() {
            for id in base..base + len {
                assert_eq!(net.shard_of_node(NodeId(id as u32)), k);
            }
        }
    }
}
