//! Slab-sharded network state.
//!
//! The mesh is split into contiguous z-slabs (node ids are z-major, so each
//! slab owns a contiguous id range). A [`NetShard`] owns its slab's routers,
//! ejection FIFOs, and statistics, and can advance one cycle touching only
//! its own state plus the [`Edge`] interfaces shared with the slabs directly
//! below and above it. That makes shards safe to step on parallel worker
//! threads; [`crate::Network`] also drives the same shards sequentially, so
//! both modes execute literally the same per-cycle code.
//!
//! Each simulated cycle is two phases:
//!
//! 1. **Step** ([`NetShard::step_cycle`]): every shard moves its own flits.
//!    A flit bound for a router in another shard is appended to the edge's
//!    mailbox instead of being pushed into the remote input buffer; space in
//!    remote boundary buffers is read from the edge's published snapshot.
//! 2. **Exchange** ([`NetShard::exchange`]): every shard drains the
//!    mailboxes addressed to it into its boundary input buffers and
//!    publishes those buffers' free space for its neighbors' next step.
//!
//! Determinism: within a cycle, the only cross-router data a step reads is
//! *downstream input-buffer space*. [`ChannelArena::space`] reports
//! start-of-cycle occupancy (same-cycle pops are masked via `popped_at`), and
//! the edge snapshots are by construction start-of-cycle values — so the
//! space a sender observes is independent of the order routers are visited,
//! and therefore of how the mesh is cut into shards or which thread runs
//! which shard. Deferred mailbox delivery is equally invisible: a flit
//! handed to a neighbor carries `ready_cycle = cycle + 1`, so no same-cycle
//! consumer exists. A single barrier between the two phases (provided by the
//! caller) is the only synchronization the scheme needs; the snapshot is
//! single-buffered because phase 1 only reads it and phase 2 only writes it.

use crate::arena::ChannelArena;
use crate::bitset::BitSet;
use crate::config::{NetConfig, ScanPolicy};
use crate::flit::Flit;
use crate::router::{ecube_route, Router, IN_INJECT, OUT_EJECT};
use crate::stats::NetStats;
use jm_fault::{checksum_words, FaultPlan};
use jm_isa::instr::MsgPriority;
use jm_isa::node::{NodeId, RouteWord};
use jm_isa::tag::Tag;
use jm_isa::word::{MsgHeader, Word};
use jm_isa::TraceId;
use jm_trace::{Event, EventKind, FaultEvent, Tracer};
use jm_traffic::TrafficPlan;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;

/// Result of offering one word to the injection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectResult {
    /// The word was accepted.
    Accepted,
    /// The injection FIFO is full — on the MDP this surfaces as a *send
    /// fault* in the executing thread, which retries (§4.3.2).
    Stall,
    /// Framing error: the first word of a message must be a `route` word
    /// naming an in-range destination, and a message must contain at least
    /// one payload word.
    BadRoute,
}

/// Output-port index of the +z channel (the only up-crossing direction).
const OUT_ZPOS: usize = 4;
/// Output-port index of the −z channel (the only down-crossing direction).
const OUT_ZNEG: usize = 5;

/// A shard needs at least this many routers before a dense occupancy scan
/// can beat iterating the active bitset.
const DENSE_MIN_ROUTERS: usize = 16;

/// A message streaming through an otherwise-empty mesh on the wormhole
/// bulk-advance fast path.
///
/// When [`NetShard::commit_msg`] accepts a message into a single-shard mesh
/// holding no other flits (and no fault plan), the flit-by-flit outcome is
/// fully determined: the flits drain from the injection FIFO one per cycle
/// and pipeline along the e-cube route one hop per cycle with nothing to
/// contend with. Instead of buffering them, the shard records the message
/// here and [`NetShard::step_bulk`] replays the closed-form timing — flit
/// `f` (0-based) makes its move out of hop position `m` at cycle
/// `q + f + m`, and ejects at `q + f + H` — emitting the same statistics,
/// deliveries, and trace events at the same cycles the buffered path would.
///
/// The flits stay *virtual* only while nothing can observe them: any new
/// injection while a bulk message is in flight first calls
/// [`NetShard::materialize_bulk`], which reconstructs the exact buffered
/// state (positions, ready cycles, port ownership) and continues on the
/// ordinary path. Runs with a fault plan installed never engage the bulk
/// path at all, so fault accounting stays on the one flit-by-flit code
/// path.
#[derive(Debug)]
struct BulkMsg {
    /// The message's flits, exactly as the injection FIFO would hold them.
    flits: Vec<Flit>,
    /// Local router index at each hop position; `path[0]` is the source,
    /// the last entry the destination.
    path: Vec<u32>,
    /// Out port taken from `path[m]` (one per hop; ejection is implicit).
    outs: Vec<u8>,
    /// Hop positions whose channel crosses the bisection mid-plane.
    bisect: Vec<u32>,
    /// Cycle of the first flit's first move (commit cycle + inject
    /// latency).
    q: u64,
    /// Virtual network carrying the message.
    vnet: usize,
}

/// Neighbor-table flag: the channel crosses a slab boundary.
const NEIGH_BOUNDARY: u32 = 1 << 31;
/// Neighbor-table flag: a boundary crossing in the −z direction.
const NEIGH_DOWN: u32 = 1 << 30;
/// Neighbor-table mask for the global node id of a boundary neighbor.
const NEIGH_ID: u32 = (1 << 30) - 1;

/// The interface between two vertically adjacent shards: mailboxes carrying
/// boundary-crossing flits, and published space snapshots for the boundary
/// input buffers on each side.
///
/// Mailbox entries keep the sender's deterministic scan order, and each
/// mailbox has exactly one writing shard per cycle, so the `Mutex` is
/// uncontended bookkeeping, not an ordering mechanism.
#[derive(Debug)]
pub struct Edge {
    /// Flits crossing upward (+z out of the shard below), as
    /// `(global dest id, vnet, flit)`.
    up: Mutex<Vec<(u32, usize, Flit)>>,
    /// Flits crossing downward (−z out of the shard above).
    down: Mutex<Vec<(u32, usize, Flit)>>,
    /// Whether `up`/`down` holds anything — lets the draining shard skip
    /// the mutex on the (common) cycle with no boundary traffic. `Relaxed`
    /// is enough: the poster's phase 1 and the drainer's exchange are
    /// ordered by the engine's progress counters (or barriers), never by
    /// this flag.
    up_any: AtomicBool,
    down_any: AtomicBool,
    /// Free slots, at the start of the coming cycle, in the shard-above's
    /// lowest-plane `+z` input buffers: `[plane index][vnet]`. Written only
    /// by the shard above (during its exchange), read only by the shard
    /// below (during its step) — phases separated by the caller's barrier.
    up_space: Vec<[AtomicU8; 2]>,
    /// Free slots in the shard-below's top-plane `−z` input buffers.
    down_space: Vec<[AtomicU8; 2]>,
}

impl Edge {
    /// Creates the edge for a boundary of `plane` node columns, with every
    /// boundary buffer empty (`capacity` free slots).
    pub(crate) fn new(plane: usize, capacity: usize) -> Edge {
        assert!(u8::try_from(capacity).is_ok(), "flit buffer too deep");
        let fresh = |_| [AtomicU8::new(capacity as u8), AtomicU8::new(capacity as u8)];
        Edge {
            up: Mutex::new(Vec::new()),
            down: Mutex::new(Vec::new()),
            up_any: AtomicBool::new(false),
            down_any: AtomicBool::new(false),
            up_space: (0..plane).map(fresh).collect(),
            down_space: (0..plane).map(fresh).collect(),
        }
    }
}

/// One contiguous z-slab of the mesh: routers for node ids
/// `base .. base + len`, plus everything needed to advance them one cycle.
///
/// All node-addressed methods take **global** [`NodeId`]s and expect them to
/// fall inside the slab (debug-asserted).
#[derive(Debug)]
pub struct NetShard {
    config: NetConfig,
    /// First global node id owned by this shard.
    base: usize,
    routers: Vec<Router>,
    /// Every channel buffer of every router, structure-of-arrays (flat
    /// rings allocated once; the advance loop never allocates).
    arena: ChannelArena,
    /// Buffered flits per local router (the advance loop's activity check,
    /// kept flat so the dense scan walks one contiguous array).
    occ: Vec<u32>,
    /// Whether the advance loop currently scans densely (see
    /// [`ScanPolicy`]); retuned each cycle from the active-router count.
    scan_dense: bool,
    /// Precomputed neighbor of every (local router, directional out port):
    /// the neighbor's *local* index, or `NEIGH_BOUNDARY` (+`NEIGH_DOWN`)
    /// with the neighbor's global id for slab-crossing z channels —
    /// replacing per-move coordinate arithmetic with one table load.
    /// Off-mesh directions hold `u32::MAX` (e-cube never routes off-mesh).
    neigh: Vec<[u32; 6]>,
    /// Per-router bitmask of out ports whose channel crosses the bisection
    /// mid-plane (for the traffic counters).
    bisect_out: Vec<u8>,
    cycle: u64,
    stats: NetStats,
    /// Flits currently buffered in *this shard* (a flit handed to an edge
    /// mailbox leaves the sender's count and joins the receiver's at drain).
    in_flight: u64,
    /// Local router indices with `occupancy > 0` — the only ones
    /// `step_cycle` must visit.
    active: BitSet,
    /// Local router indices holding undelivered ejected words (either vnet).
    eject_pending: BitSet,
    /// Scratch buffer for the active-set snapshot taken by `step_cycle`.
    scratch: Vec<u32>,
    /// Boundary-crossing flits accumulated during the router scan, flushed
    /// into the edge mailboxes once per cycle — one mutex acquisition per
    /// edge instead of one per flit. FIFO order preserves the scan order
    /// the mailbox contract promises.
    cross_up: Vec<(u32, usize, Flit)>,
    cross_down: Vec<(u32, usize, Flit)>,
    /// The message currently streaming on the bulk fast path, if any.
    /// Invariant: while set, the shard holds no buffered flits — every
    /// in-flight flit belongs to this message and is virtual.
    bulk: Option<BulkMsg>,
    /// Lifecycle-event buffer; `None` (the default) disables tracing, so
    /// the hot paths pay one pointer test.
    pub(crate) tracer: Option<Box<Tracer>>,
    /// Fault plan, if this run injects faults. Queries key on *global* node
    /// ids and the lockstep cycle counter, so every shard layout answers
    /// identically; `None` (the default) keeps the fault-free fast paths.
    fault: Option<FaultPlan>,
    /// Synthetic-traffic plan, if this run generates background traffic.
    /// Like the fault plan, queries are pure functions of global node id
    /// and the lockstep cycle, so the generated workload is identical under
    /// every shard layout; `None` keeps the traffic-free fast paths.
    traffic: Option<TrafficPlan>,
    /// Reusable message-composition buffer for the traffic generator (no
    /// per-message allocation on the injection path).
    traffic_words: Vec<Word>,
}

impl NetShard {
    pub(crate) fn new(
        config: NetConfig,
        base: usize,
        len: usize,
        bisect_dim: usize,
        bisect_mid: u8,
    ) -> NetShard {
        let dims = config.dims;
        let routers: Vec<Router> = (base..base + len)
            .map(|id| Router::new(dims.coord(NodeId(id as u32))))
            .collect();
        let mut neigh = vec![[u32::MAX; 6]; len];
        let mut bisect_out = vec![0u8; len];
        for (l, router) in routers.iter().enumerate() {
            let here = router.coord;
            for (out, (dim, step)) in [(0i8, 1i8), (0, -1), (1, 1), (1, -1), (2, 1), (2, -1)]
                .into_iter()
                .enumerate()
            {
                let coord = [here.x, here.y, here.z][dim as usize];
                let extent = [dims.x, dims.y, dims.z][dim as usize];
                if (step > 0 && coord + 1 >= extent) || (step < 0 && coord == 0) {
                    continue; // off-mesh: e-cube never routes there
                }
                let mut c = here;
                match out {
                    0 => c.x += 1,
                    1 => c.x -= 1,
                    2 => c.y += 1,
                    3 => c.y -= 1,
                    4 => c.z += 1,
                    _ => c.z -= 1,
                }
                let m = dims.id(c).index();
                let ml = m.wrapping_sub(base);
                neigh[l][out] = if ml < len {
                    ml as u32
                } else if out == OUT_ZPOS {
                    NEIGH_BOUNDARY | m as u32
                } else {
                    NEIGH_BOUNDARY | NEIGH_DOWN | m as u32
                };
                if bisect_mid != 0 && dim as usize == bisect_dim {
                    let crosses =
                        (step > 0 && coord == bisect_mid - 1) || (step < 0 && coord == bisect_mid);
                    bisect_out[l] |= u8::from(crosses) << out;
                }
            }
        }
        NetShard {
            arena: ChannelArena::new(len, config.flit_buffer, config.inject_fifo),
            occ: vec![0; len],
            scan_dense: config.scan == ScanPolicy::ForcedDense,
            neigh,
            bisect_out,
            config,
            base,
            routers,
            cycle: 0,
            stats: NetStats::default(),
            in_flight: 0,
            active: BitSet::new(len),
            eject_pending: BitSet::new(len),
            scratch: Vec::new(),
            cross_up: Vec::new(),
            cross_down: Vec::new(),
            bulk: None,
            tracer: None,
            fault: None,
            traffic: None,
            traffic_words: Vec::new(),
        }
    }

    /// Installs (or clears) the fault plan. Must be set identically on
    /// every shard before simulation starts.
    pub(crate) fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Installs (or clears) the traffic plan. Must be set identically on
    /// every shard before simulation starts.
    pub(crate) fn set_traffic_plan(&mut self, plan: Option<TrafficPlan>) {
        self.traffic = plan;
    }

    /// The next cycle at or after the shard's current cycle with possible
    /// generated traffic, or `u64::MAX` when there is none. Engines must
    /// not skip the cycle counter past this point, and must not treat the
    /// shard as finished while it is finite: an idle mesh whose generation
    /// window lies ahead still has work coming.
    pub fn traffic_wake(&self) -> u64 {
        self.traffic.map_or(u64::MAX, |p| p.next_active(self.cycle))
    }

    /// First global node id owned by this shard.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of nodes (routers) owned by this shard.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Whether the shard owns no routers (never true for shards built by
    /// [`crate::Network`]).
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// The shard's cycle counter (in lockstep with its siblings outside the
    /// two tick phases).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// This shard's share of the network statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Flits currently buffered in this shard.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Local router indices currently holding buffered flits.
    ///
    /// During a bulk flight the flits are virtual, so the count is derived
    /// from the timing law instead of the (empty) active set: flit `f` sits
    /// at hop position `done = clamp(cycle − q − f, 0, hops)` (position 0 is
    /// the source's inject FIFO), and because `done` falls by one per flit
    /// index the occupied positions form one contiguous range. Occupancy
    /// samples taken mid-flight must match the slow path bit for bit.
    pub(crate) fn active_count(&self) -> u32 {
        let buffered = self.active.count() as u32;
        let Some(b) = &self.bulk else { return buffered };
        let hops = b.path.len() as i64 - 1;
        let rel = self.cycle as i64 - b.q as i64;
        let hi = rel.clamp(0, hops);
        let lo = (rel - (b.flits.len() as i64 - 1)).clamp(0, hops);
        buffered + (hi - lo + 1) as u32
    }

    /// Whether this shard holds no flits and no undelivered words.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0 && self.eject_pending.is_empty()
    }

    /// Advances the cycle counter without simulating. Only legal while the
    /// shard holds no flits (and, in parallel mode, only when every shard
    /// agrees — the coordinator checks that before issuing a skip).
    pub fn skip_to(&mut self, cycle: u64) {
        debug_assert_eq!(self.in_flight, 0, "skip_to with flits in flight");
        debug_assert!(
            self.traffic
                .is_none_or(|p| cycle <= p.next_active(self.cycle)),
            "skip_to past the traffic window"
        );
        self.cycle = self.cycle.max(cycle);
    }

    /// Moves the cycle counter *backwards* to `cycle`, undoing counter-only
    /// idle steps. Only legal while the shard holds no flits and no
    /// undelivered words: an idle [`NetShard::step_cycle`] does nothing but
    /// increment the counter, so unwinding the increments reconstructs the
    /// pre-step state exactly. The parallel engine's quantum coordinator
    /// uses this when deferred quiescence detection finds the mesh went
    /// quiet mid-quantum (see `DESIGN.md` §4.10).
    pub fn rewind_idle_to(&mut self, cycle: u64) {
        debug_assert_eq!(self.in_flight, 0, "rewind_idle_to with flits in flight");
        debug_assert!(
            self.eject_pending.is_empty(),
            "rewind_idle_to with undelivered words"
        );
        debug_assert!(cycle <= self.cycle, "rewind_idle_to must not advance");
        debug_assert!(
            self.traffic
                .is_none_or(|p| p.next_active(cycle) == u64::MAX),
            "rewind_idle_to into the traffic window"
        );
        self.cycle = cycle;
    }

    #[inline]
    fn local(&self, node: NodeId) -> usize {
        let l = node.index().wrapping_sub(self.base);
        debug_assert!(l < self.routers.len(), "{node} outside shard");
        l
    }

    /// Nodes currently holding undelivered ejected words, in ascending id
    /// order (global ids).
    pub fn pending_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let base = self.base;
        self.eject_pending
            .iter()
            .map(move |i| NodeId((base + i) as u32))
    }

    /// Next delivered payload word with the trace id of the message that
    /// carried it ([`TraceId::NONE`] when tracing is off).
    pub fn delivered_front_traced(
        &self,
        node: NodeId,
        priority: MsgPriority,
    ) -> Option<(Word, TraceId)> {
        self.routers[self.local(node)].ejected[priority.index()]
            .front()
            .copied()
    }

    /// Pops the next delivered payload word for a node.
    pub fn pop_delivered(&mut self, node: NodeId, priority: MsgPriority) -> Option<Word> {
        let l = self.local(node);
        let router = &mut self.routers[l];
        let word = router.ejected[priority.index()].pop_front().map(|(w, _)| w);
        if word.is_some() && router.ejected[0].is_empty() && router.ejected[1].is_empty() {
            self.eject_pending.remove(l);
        }
        word
    }

    /// Number of delivered words waiting at a node.
    pub fn delivered_len(&self, node: NodeId, priority: MsgPriority) -> usize {
        self.routers[self.local(node)].ejected[priority.index()].len()
    }

    /// Offers one word to a node's injection port.
    ///
    /// `end` marks the final word of the message (the `SENDE` forms).
    pub fn inject(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        word: Word,
        end: bool,
    ) -> InjectResult {
        // A new injection can observe (and contend with) in-flight traffic,
        // so a virtual bulk message must become real buffered flits first.
        if self.bulk.is_some() {
            self.materialize_bulk();
        }
        let cycle = self.cycle;
        let inject_latency = self.config.inject_latency;
        let fifo_cap = self.config.inject_fifo;
        let dims = self.config.dims;
        let l = self.local(node);
        if self.node_down_stall(node, cycle) {
            return InjectResult::Stall;
        }
        let vnet = priority.index();
        if self.arena.len(l, vnet, IN_INJECT) + 2 > fifo_cap {
            return InjectResult::Stall;
        }
        let router = &mut self.routers[l];
        let framing = &mut router.inject[vnet];
        let (dest, is_route, head_word) = match framing.dest {
            None => {
                if word.tag() != Tag::Route || end {
                    return InjectResult::BadRoute;
                }
                let dest = RouteWord::from_word(word).dest;
                if dest.x >= dims.x || dest.y >= dims.y || dest.z >= dims.z {
                    return InjectResult::BadRoute;
                }
                framing.dest = Some(dest);
                framing.msg_start = cycle;
                self.stats.injected_msgs += 1;
                framing.trace = match &mut self.tracer {
                    Some(tracer) => {
                        let id = TraceId(self.stats.injected_msgs);
                        tracer.emit(
                            cycle,
                            EventKind::Inject {
                                id,
                                src: node,
                                dst: dims.id(dest),
                                priority,
                                words: 0,
                            },
                        );
                        id
                    }
                    None => TraceId::NONE,
                };
                (dest, true, true)
            }
            Some(dest) => {
                if end {
                    framing.dest = None;
                }
                (dest, false, false)
            }
        };
        let msg_start = router.inject[vnet].msg_start;
        let trace = router.inject[vnet].trace;
        let pair = Flit::pair_for_word(
            dest,
            word,
            is_route,
            head_word,
            end,
            msg_start,
            cycle + inject_latency,
            trace,
        );
        for flit in pair {
            self.arena.push(l, vnet, IN_INJECT, flit);
        }
        self.occ[l] += 2;
        self.in_flight += 2;
        self.active.insert(l);
        InjectResult::Accepted
    }

    /// Atomically offers a whole message to a node's injection port: the
    /// route word followed by at least one payload word. Either every word
    /// is accepted or none is (the network interface composes messages in a
    /// per-thread buffer and launches them whole, so a preempting handler
    /// can never interleave words into an open message).
    pub fn commit_msg(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        words: &[Word],
    ) -> InjectResult {
        // See `inject`: new traffic ends the current bulk message's
        // virtual flight before any capacity check reads the arena.
        if self.bulk.is_some() {
            self.materialize_bulk();
        }
        let cycle = self.cycle;
        let inject_latency = self.config.inject_latency;
        let fifo_cap = self.config.inject_fifo;
        let dims = self.config.dims;
        let vnet = priority.index();
        // Framing checks first.
        if words.len() < 2 || words[0].tag() != Tag::Route {
            return InjectResult::BadRoute;
        }
        let dest = RouteWord::from_word(words[0]).dest;
        if dest.x >= dims.x || dest.y >= dims.y || dest.z >= dims.z {
            return InjectResult::BadRoute;
        }
        let l = self.local(node);
        if self.node_down_stall(node, cycle) {
            return InjectResult::Stall;
        }
        // Fault-injection runs append a checksum trailer word so the MDP
        // can validate the payload at dispatch. The header's length field
        // is untouched; the trailer travels at a known offset (header len)
        // and is stripped by the dispatch machinery.
        let mut checked;
        let words: &[Word] = match &self.fault {
            Some(f) if f.checksums() => {
                checked = Vec::with_capacity(words.len() + 1);
                checked.extend_from_slice(words);
                checked.push(checksum_words(&words[1..]));
                &checked
            }
            _ => words,
        };
        if self.routers[l].inject[vnet].dest.is_some() {
            // A word-wise injection is mid-message on this port; mixing
            // the two APIs is a programming error.
            return InjectResult::BadRoute;
        }
        let needed = 2 * words.len();
        if self.arena.len(l, vnet, IN_INJECT) + needed > fifo_cap {
            return InjectResult::Stall;
        }
        self.stats.injected_msgs += 1;
        let trace = match &mut self.tracer {
            Some(tracer) => {
                let id = TraceId(self.stats.injected_msgs);
                tracer.emit(
                    cycle,
                    EventKind::Inject {
                        id,
                        src: node,
                        dst: dims.id(dest),
                        priority,
                        words: words.len() as u32 - 1,
                    },
                );
                id
            }
            None => TraceId::NONE,
        };
        if self.try_bulk(l, priority, dest, words, cycle, trace) {
            return InjectResult::Accepted;
        }
        for (i, &word) in words.iter().enumerate() {
            let pair = Flit::pair_for_word(
                dest,
                word,
                i == 0,
                i == 0,
                i + 1 == words.len(),
                cycle,
                cycle + inject_latency,
                trace,
            );
            for flit in pair {
                self.arena.push(l, vnet, IN_INJECT, flit);
            }
        }
        self.occ[l] += needed as u32;
        self.in_flight += needed as u64;
        self.active.insert(l);
        InjectResult::Accepted
    }

    /// Attempts to commit `words` as a virtual bulk-advance message (see
    /// [`BulkMsg`]). Returns `false` — leaving all state untouched — unless
    /// the flit-by-flit outcome is fully determined: a single shard covering
    /// the whole mesh, no other flit in flight, no fault plan, a clear
    /// (unowned) route, deep-enough channel buffers to pipeline at full
    /// rate, and an ejection FIFO that cannot stall even if the destination
    /// node drains nothing before the tail arrives.
    fn try_bulk(
        &mut self,
        l: usize,
        priority: MsgPriority,
        dest: jm_isa::node::Coord,
        words: &[Word],
        cycle: u64,
        trace: TraceId,
    ) -> bool {
        let dims = self.config.dims;
        let nodes = dims.x as usize * dims.y as usize * dims.z as usize;
        let vnet = priority.index();
        let dest_l = dims.id(dest).index();
        if !self.config.bulk
            || self.fault.is_some()
            || self.in_flight != 0
            || self.base != 0
            || self.routers.len() != nodes
            // Full-rate pipelining needs one slot of slack over the
            // same-cycle credit mask.
            || self.config.flit_buffer < 2
            || !self.routers[dest_l].ejected[vnet].is_empty()
            || words.len() - 1 > self.config.eject_fifo
        {
            return false;
        }
        debug_assert!(self.bulk.is_none(), "bulk engaged while one is in flight");
        // Walk the e-cube route, collecting hops and checking that no
        // output port along it is still held by an earlier wormhole (a
        // partially-injected message can leave ownership behind with zero
        // flits in flight).
        let mut path = vec![l as u32];
        let mut outs: Vec<u8> = Vec::new();
        let mut bisect: Vec<u32> = Vec::new();
        let mut here = self.routers[l].coord;
        loop {
            let n = *path.last().expect("path starts non-empty") as usize;
            let out = ecube_route(here, dest);
            if self.arena.owner(n, vnet, out) >= 0 {
                return false;
            }
            if out == OUT_EJECT {
                break;
            }
            if self.bisect_out[n] & (1 << out) != 0 {
                bisect.push(outs.len() as u32);
            }
            outs.push(out as u8);
            let next = self.neigh[n][out];
            debug_assert!(
                (next as usize) < self.routers.len(),
                "bulk route left the shard"
            );
            path.push(next);
            here = self.routers[next as usize].coord;
        }
        debug_assert_eq!(*path.last().expect("non-empty") as usize, dest_l);
        let mut flits = Vec::with_capacity(2 * words.len());
        for (i, &word) in words.iter().enumerate() {
            flits.extend(Flit::pair_for_word(
                dest,
                word,
                i == 0,
                i == 0,
                i + 1 == words.len(),
                cycle,
                cycle + self.config.inject_latency,
                trace,
            ));
        }
        self.in_flight += flits.len() as u64;
        self.bulk = Some(BulkMsg {
            flits,
            path,
            outs,
            bisect,
            q: cycle + self.config.inject_latency,
            vnet,
        });
        true
    }

    /// Replays one cycle of the bulk message's closed-form schedule (the
    /// timing law in [`BulkMsg`]), emitting exactly the statistics,
    /// deliveries, and trace events the buffered path would this cycle.
    fn step_bulk(&mut self, cycle: u64) {
        let b = self.bulk.take().expect("step_bulk without a bulk message");
        if cycle < b.q {
            self.bulk = Some(b);
            return;
        }
        let f_count = b.flits.len() as u64;
        let hops = b.outs.len() as u64;
        let rel = cycle - b.q;
        if hops > 0 {
            // Forward moves: flit `f` pops out of hop position `m < H` at
            // cycle `q + f + m`, so this cycle moves every flit in
            // `[rel - (H-1), rel]`, clamped to the message.
            let lo = rel.saturating_sub(hops - 1);
            let hi = rel.min(f_count - 1);
            if lo <= hi {
                self.stats.flit_hops += hi - lo + 1;
            }
            for &m in &b.bisect {
                if u64::from(m) <= rel && rel - u64::from(m) < f_count {
                    self.stats.bisection_flits += 1;
                }
            }
            // The head acquires one output port per cycle along the route —
            // that is the per-hop lifecycle event.
            if rel < hops {
                if let Some(tracer) = &mut self.tracer {
                    let id = b.flits[0].trace();
                    if id.is_some() {
                        tracer.emit(
                            cycle,
                            EventKind::Hop {
                                id,
                                node: NodeId((self.base + b.path[rel as usize] as usize) as u32),
                            },
                        );
                    }
                }
            }
        }
        // Ejection: flit `f = rel - H` leaves the mesh this cycle.
        let mut done = false;
        if rel >= hops && rel - hops < f_count {
            let flit = b.flits[(rel - hops) as usize];
            let dest = *b.path.last().expect("bulk path has a destination") as usize;
            self.in_flight -= 1;
            if let Some(word) = flit.payload() {
                self.routers[dest].ejected[b.vnet].push_back((word, flit.trace()));
                self.eject_pending.insert(dest);
                self.stats.delivered_words += 1;
                if let Some(tracer) = &mut self.tracer {
                    if flit.trace().is_some()
                        && self.routers[dest].eject_cur[b.vnet] != flit.trace()
                    {
                        self.routers[dest].eject_cur[b.vnet] = flit.trace();
                        tracer.emit(
                            cycle,
                            EventKind::Deliver {
                                id: flit.trace(),
                                node: NodeId((self.base + dest) as u32),
                            },
                        );
                    }
                }
            }
            if flit.tail() {
                self.stats.delivered_msgs += 1;
                let latency = cycle + 1 - flit.inject_cycle;
                self.stats.latency_sum += latency;
                self.stats.latency_max = self.stats.latency_max.max(latency);
                done = true;
            }
        }
        if !done {
            self.bulk = Some(b);
        }
    }

    /// Converts the in-flight bulk message back into ordinary buffered
    /// flits, reconstructing exactly the state the flit-by-flit path would
    /// hold at the start of the current cycle: every undelivered flit's
    /// buffer position and ready cycle, plus wormhole port ownership along
    /// the route. Called before any new injection, which could otherwise
    /// contend with (or fail to see) the virtual flits.
    fn materialize_bulk(&mut self) {
        let b = self
            .bulk
            .take()
            .expect("materialize without a bulk message");
        let cycle = self.cycle;
        let hops = b.outs.len() as u64;
        let f_count = b.flits.len() as u64;
        let src = b.path[0] as usize;
        for (f, flit) in b.flits.iter().enumerate() {
            // Moves completed so far: one per cycle in `[q + f, cycle)`.
            let done = cycle.saturating_sub(b.q + f as u64).min(hops + 1);
            if done > hops {
                continue; // already ejected
            }
            if done == 0 {
                // Still in the injection FIFO, at its original ready cycle;
                // ascending `f` keeps FIFO order.
                self.arena.push(src, b.vnet, IN_INJECT, *flit);
                self.occ[src] += 1;
            } else {
                let at = b.path[done as usize] as usize;
                let port = b.outs[done as usize - 1] as usize;
                let mut flit = *flit;
                flit.ready_cycle = b.q + f as u64 + done;
                self.arena.push(at, b.vnet, port, flit);
                self.occ[at] += 1;
            }
        }
        // Wormhole ownership: router `m` on the path holds its output for
        // this message from the head's pass (cycle `q + m`) until the
        // tail's (cycle `q + F - 1 + m`).
        for m in 0..=hops {
            if b.q + m < cycle && cycle <= b.q + f_count - 1 + m {
                let n = b.path[m as usize] as usize;
                let out = if m == hops {
                    OUT_EJECT
                } else {
                    b.outs[m as usize] as usize
                };
                let in_port = if m == 0 {
                    IN_INJECT
                } else {
                    b.outs[m as usize - 1] as usize
                };
                self.arena.set_owner(n, b.vnet, out, in_port as i8);
            }
        }
        for &n in &b.path {
            if self.occ[n as usize] > 0 {
                self.active.insert(n as usize);
            }
        }
        // `in_flight` already counts the still-buffered flits.
    }

    /// Offers every message the traffic plan generates this cycle to the
    /// local injection ports, in ascending node order. Refusals (FIFO
    /// backpressure or a node-down fault) are counted and *not* retried:
    /// the Bernoulli process models independent offered load, and because
    /// injection-FIFO occupancy at this point in the cycle is engine-
    /// independent, the drop pattern is too.
    fn inject_traffic(&mut self) {
        let Some(plan) = self.traffic else { return };
        let cycle = self.cycle;
        if !plan.in_window(cycle) {
            return;
        }
        let dims = self.config.dims;
        let payload_words = plan.msg_words();
        for l in 0..self.routers.len() {
            let node = (self.base + l) as u32;
            if !plan.fires(node, cycle) {
                continue;
            }
            self.stats.traffic.offered_msgs += 1;
            let dest = plan.dest(node, cycle, dims);
            let mut words = std::mem::take(&mut self.traffic_words);
            words.clear();
            words.push(RouteWord::new(dims.coord(dest)).to_word());
            words.push(MsgHeader::new(plan.handler_ip(), payload_words).to_word());
            for k in 1..payload_words {
                words.push(Word::int(k as i32));
            }
            match self.commit_msg(NodeId(node), MsgPriority::P0, &words) {
                InjectResult::Accepted => self.stats.traffic.accepted_msgs += 1,
                InjectResult::Stall => self.stats.traffic.dropped_msgs += 1,
                InjectResult::BadRoute => unreachable!("generated message misframed"),
            }
            self.traffic_words = words;
        }
    }

    /// Whether `node`'s interface is down this cycle; counts the refusal
    /// (and traces it) so degradation curves can attribute send stalls.
    fn node_down_stall(&mut self, node: NodeId, cycle: u64) -> bool {
        match &self.fault {
            Some(f) if f.node_down(node.0, cycle) => {
                self.stats.faults.inject_stalls += 1;
                if let Some(tracer) = &mut self.tracer {
                    tracer.emit(
                        cycle,
                        EventKind::Fault {
                            id: TraceId::NONE,
                            node,
                            what: FaultEvent::SendStall,
                        },
                    );
                }
                true
            }
            _ => false,
        }
    }

    /// Nodes per z-plane (boundary buffers are indexed by plane offset).
    #[inline]
    fn plane(&self) -> usize {
        self.config.dims.x as usize * self.config.dims.y as usize
    }

    /// Phase 1 of a cycle: moves at most one flit per physical channel,
    /// priority-1 traffic first, input ports arbitrated in fixed order with
    /// injection last. `below`/`above` are the edges toward the adjacent
    /// shards (`None` at the mesh faces, or when the whole mesh is one
    /// shard). Flits leaving the slab are posted to the edge mailboxes and
    /// picked up by [`NetShard::exchange`] on the receiving side.
    ///
    /// Only routers holding buffered flits do any work; an empty shard steps
    /// in O(1). Two scan strategies find them (see [`ScanPolicy`]): the
    /// sparse path iterates the active bitset, the dense path walks the flat
    /// occupancy array directly — cheaper when most routers are active,
    /// because it trades bitset bookkeeping for one predictable linear scan.
    /// Both visit routers in ascending index order and both are cycle-exact
    /// with a naive full scan: inactive routers have nothing to move, and a
    /// router activated mid-step only holds flits with
    /// `ready_cycle == cycle + 1`, which the scan would skip anyway.
    pub fn step_cycle(&mut self, below: Option<&Edge>, above: Option<&Edge>) {
        // Generated traffic enters first, before the idle early-out: the
        // generator is what *creates* work on an otherwise-empty shard. Node
        // sends for this cycle have already been committed by the caller
        // (the machine ticks nodes before stepping the network), so the
        // inject-FIFO occupancy the generator observes — and therefore every
        // accept/drop decision — is identical under every engine.
        if self.traffic.is_some() {
            self.inject_traffic();
        }
        if self.in_flight == 0 {
            self.cycle += 1;
            return;
        }
        let cycle = self.cycle;
        if self.bulk.is_some() {
            // A bulk message in flight is the only traffic (any other
            // injection would have materialized it), so the router scan
            // below would find nothing buffered to move.
            debug_assert!(
                self.active.is_empty(),
                "buffered flits during a bulk flight"
            );
            self.step_bulk(cycle);
            self.cycle += 1;
            return;
        }
        if self.scan_dense {
            // Dense scan: every router, ascending; the occupancy word is the
            // activity test. The active bitset stays exact (removal below)
            // so the retune measurement and a later sparse switch are sound.
            for n in 0..self.routers.len() {
                if self.occ[n] == 0 {
                    self.active.remove(n);
                    continue;
                }
                self.step_router(n, cycle, below, above);
                if self.occ[n] == 0 {
                    self.active.remove(n);
                }
            }
        } else {
            // Sparse scan: snapshot the active set — flit hand-offs during
            // the loop may activate routers (harmless to visit or not, see
            // above), and a drained router leaves the set for future cycles.
            let mut snapshot = std::mem::take(&mut self.scratch);
            snapshot.clear();
            snapshot.extend(self.active.iter().map(|i| i as u32));
            for &n in &snapshot {
                let n = n as usize;
                if self.occ[n] == 0 {
                    self.active.remove(n);
                    continue;
                }
                self.step_router(n, cycle, below, above);
                if self.occ[n] == 0 {
                    self.active.remove(n);
                }
            }
            self.scratch = snapshot;
        }
        // Flush boundary crossings accumulated by the scan: one mailbox
        // acquisition per edge per cycle, in scan (FIFO) order.
        if !self.cross_up.is_empty() {
            let edge = above.expect("+z crossing without an upper edge");
            edge.up
                .lock()
                .expect("mailbox poisoned")
                .extend(self.cross_up.drain(..));
            edge.up_any.store(true, Ordering::Relaxed);
        }
        if !self.cross_down.is_empty() {
            let edge = below.expect("-z crossing without a lower edge");
            edge.down
                .lock()
                .expect("mailbox poisoned")
                .extend(self.cross_down.drain(..));
            edge.down_any.store(true, Ordering::Relaxed);
        }
        self.retune();
        self.cycle += 1;
    }

    /// Congestion-aware scan-mode switch, applied between cycles: go dense
    /// when ≥ 5/8 of the shard's routers hold flits, back to sparse when
    /// ≤ 1/4 do. The hysteresis gap keeps occupancy hovering near one
    /// threshold from thrashing the mode; tiny shards stay sparse (the
    /// dense scan's win is cache-linearity, which needs routers to scan).
    #[inline]
    fn retune(&mut self) {
        if self.config.scan != ScanPolicy::Auto {
            return;
        }
        let n = self.routers.len();
        let active = self.active.count();
        if !self.scan_dense {
            if n >= DENSE_MIN_ROUTERS && active * 8 >= n * 5 {
                self.scan_dense = true;
            }
        } else if active * 4 <= n {
            self.scan_dense = false;
        }
    }

    /// Advances one router one cycle: moves at most one flit per physical
    /// channel, priority-1 traffic first, input ports arbitrated in fixed
    /// ascending order with injection last.
    fn step_router(&mut self, n: usize, cycle: u64, below: Option<&Edge>, above: Option<&Edge>) {
        let eject_fifo = self.config.eject_fifo;
        let plane = self.plane();
        let count = self.routers.len();
        let here = self.routers[n].coord;
        let mut in_used: u8 = 0;
        let mut out_used: u8 = 0;
        for &priority in [MsgPriority::P1, MsgPriority::P0].iter() {
            let vnet = priority.index();
            // Non-empty input ports in ascending (arbitration) order, minus
            // physical channels a higher-priority flit already used.
            let mut avail = self.arena.port_mask(n, vnet) & !in_used;
            while avail != 0 {
                let in_port = avail.trailing_zeros() as usize;
                avail &= avail - 1;
                let flit = self.arena.front(n, vnet, in_port);
                if flit.ready_cycle > cycle {
                    continue;
                }
                let out = ecube_route(here, flit.dest);
                if out_used & (1 << out) != 0 {
                    continue;
                }
                let owner = self.arena.owner(n, vnet, out);
                if owner != in_port as i8 {
                    if owner >= 0 {
                        continue;
                    }
                    if !flit.head() {
                        // A body flit whose path was already torn down
                        // cannot occur under wormhole FIFO discipline.
                        debug_assert!(flit.head(), "orphan body flit");
                        continue;
                    }
                }
                // Delay faults come first and act exactly like a full
                // downstream buffer: the flit stays queued and wormhole
                // backpressure holds the path, so nothing is ever lost.
                // The decision is a pure function of (global node, out
                // port, cycle) — identical for every engine and shard
                // layout.
                if let Some(f) = &self.fault {
                    if f.blocked((self.base + n) as u32, out, cycle) {
                        self.stats.faults.blocked_moves += 1;
                        continue;
                    }
                }
                // Space check downstream. Local targets report
                // start-of-cycle occupancy; boundary targets were
                // published by the owning shard at the last exchange —
                // both are scan-order-independent (module docs).
                let mut local_m = usize::MAX;
                if out == OUT_EJECT {
                    if flit.payload().is_some() && self.routers[n].ejected[vnet].len() >= eject_fifo
                    {
                        continue;
                    }
                } else {
                    let code = self.neigh[n][out];
                    if (code as usize) < count {
                        if self.arena.space(code as usize, vnet, out, cycle) == 0 {
                            continue;
                        }
                        local_m = code as usize;
                    } else {
                        debug_assert_ne!(code, u32::MAX, "routed off-mesh");
                        let m = (code & NEIGH_ID) as usize;
                        let space = if code & NEIGH_DOWN == 0 {
                            let edge = above.expect("+z exit without an upper edge");
                            edge.up_space[m % plane][vnet].load(Ordering::Acquire)
                        } else {
                            let edge = below.expect("-z exit without a lower edge");
                            edge.down_space[m % plane][vnet].load(Ordering::Acquire)
                        };
                        if space == 0 {
                            continue;
                        }
                    }
                }
                // Commit the move.
                let flit = self.arena.pop(n, vnet, in_port, cycle);
                self.occ[n] -= 1;
                in_used |= 1 << in_port;
                out_used |= 1 << out;
                self.arena
                    .set_owner(n, vnet, out, if flit.tail() { -1 } else { in_port as i8 });
                if out == OUT_EJECT {
                    self.in_flight -= 1;
                    if let Some(word) = flit.payload() {
                        let mut word = word;
                        if self.fault.is_some() {
                            word = self.eject_faulted(word, n, vnet, flit.trace());
                        }
                        self.routers[n].ejected[vnet].push_back((word, flit.trace()));
                        self.eject_pending.insert(n);
                        self.stats.delivered_words += 1;
                        // The message's first payload word (its header)
                        // reaching the ejection FIFO is the deliver
                        // event: the MDP dispatches on header arrival
                        // while the tail may still be streaming in, so
                        // keying on the tail would let dispatch precede
                        // delivery.
                        if let Some(tracer) = &mut self.tracer {
                            if flit.trace().is_some()
                                && self.routers[n].eject_cur[vnet] != flit.trace()
                            {
                                self.routers[n].eject_cur[vnet] = flit.trace();
                                tracer.emit(
                                    cycle,
                                    EventKind::Deliver {
                                        id: flit.trace(),
                                        node: NodeId((self.base + n) as u32),
                                    },
                                );
                            }
                        }
                    }
                    if flit.tail() {
                        if self.fault.is_some() {
                            self.routers[n].eject_hdr_seen[vnet] = false;
                        }
                        self.stats.delivered_msgs += 1;
                        // Ejection completes at the end of this cycle;
                        // injection can never postdate it.
                        debug_assert!(
                            cycle + 1 >= flit.inject_cycle,
                            "delivery precedes injection (cycle {cycle}, injected {})",
                            flit.inject_cycle
                        );
                        let latency = cycle + 1 - flit.inject_cycle;
                        self.stats.latency_sum += latency;
                        self.stats.latency_max = self.stats.latency_max.max(latency);
                    }
                } else {
                    if flit.head() {
                        if let Some(tracer) = &mut self.tracer {
                            if flit.trace().is_some() {
                                tracer.emit(
                                    cycle,
                                    EventKind::Hop {
                                        id: flit.trace(),
                                        node: NodeId((self.base + n) as u32),
                                    },
                                );
                            }
                        }
                    }
                    self.stats.flit_hops += 1;
                    if self.bisect_out[n] & (1 << out) != 0 {
                        self.stats.bisection_flits += 1;
                    }
                    let mut moved = flit;
                    moved.ready_cycle = cycle + 1;
                    if local_m != usize::MAX {
                        self.arena.push(local_m, vnet, out, moved);
                        self.occ[local_m] += 1;
                        self.active.insert(local_m);
                    } else {
                        // Crossing a slab boundary: the flit leaves this
                        // shard's books and reaches the neighbor's input
                        // buffer at exchange time. Deferral is invisible
                        // (ready_cycle = cycle + 1 already bars every
                        // same-cycle consumer).
                        self.in_flight -= 1;
                        let code = self.neigh[n][out];
                        let scratch = if code & NEIGH_DOWN == 0 {
                            debug_assert!(above.is_some(), "checked above");
                            &mut self.cross_up
                        } else {
                            debug_assert!(below.is_some(), "checked above");
                            &mut self.cross_down
                        };
                        scratch.push((code & NEIGH_ID, vnet, moved));
                    }
                }
            }
        }
    }

    /// Phase 2 of a cycle: drains the edge mailboxes addressed to this shard
    /// into its boundary input buffers, then publishes those buffers' free
    /// space for the neighbors' next step. Must run after *every* shard
    /// touching `below`/`above` has finished phase 1 (callers put a barrier
    /// between the phases); a second barrier before the next phase 1 keeps
    /// the published snapshots stable while neighbors read them.
    pub fn exchange(&mut self, below: Option<&Edge>, above: Option<&Edge>) {
        let plane = self.plane();
        let flit_buffer = self.config.flit_buffer;
        if let Some(edge) = below {
            // The mutex is skipped on no-traffic cycles (the flag is set by
            // the poster's phase 1, already ordered before this exchange),
            // and a space snapshot is re-stored only when its value moved —
            // unchanged slots stay clean in the neighbor's cache instead of
            // bouncing the line every cycle.
            if edge.up_any.swap(false, Ordering::Relaxed) {
                let mut inbox = edge.up.lock().expect("mailbox poisoned");
                for (dest, vnet, flit) in inbox.drain(..) {
                    let l = self.local(NodeId(dest));
                    debug_assert!(l < plane, "up-crossing flit beyond the bottom plane");
                    self.arena.push(l, vnet, OUT_ZPOS, flit);
                    self.occ[l] += 1;
                    self.in_flight += 1;
                    self.active.insert(l);
                }
            }
            for p in 0..plane {
                for vnet in 0..2 {
                    let len = self.arena.len(p, vnet, OUT_ZPOS);
                    debug_assert!(len <= flit_buffer, "boundary buffer over capacity");
                    let space = (flit_buffer - len) as u8;
                    let slot = &edge.up_space[p][vnet];
                    if slot.load(Ordering::Relaxed) != space {
                        slot.store(space, Ordering::Release);
                    }
                }
            }
        }
        if let Some(edge) = above {
            let top = self.routers.len() - plane;
            if edge.down_any.swap(false, Ordering::Relaxed) {
                let mut inbox = edge.down.lock().expect("mailbox poisoned");
                for (dest, vnet, flit) in inbox.drain(..) {
                    let l = self.local(NodeId(dest));
                    debug_assert!(l >= top, "down-crossing flit above the top plane");
                    self.arena.push(l, vnet, OUT_ZNEG, flit);
                    self.occ[l] += 1;
                    self.in_flight += 1;
                    self.active.insert(l);
                }
            }
            for p in 0..plane {
                for vnet in 0..2 {
                    let len = self.arena.len(top + p, vnet, OUT_ZNEG);
                    debug_assert!(len <= flit_buffer, "boundary buffer over capacity");
                    let space = (flit_buffer - len) as u8;
                    let slot = &edge.down_space[p][vnet];
                    if slot.load(Ordering::Relaxed) != space {
                        slot.store(space, Ordering::Release);
                    }
                }
            }
        }
    }

    /// Fault-injection path for one payload word reaching the ejection
    /// port: the first payload word of each message (its header) passes
    /// untouched — corrupting the length field would desynchronize the
    /// queue rather than model payload damage — and every later word may
    /// get one seeded bit flip. The cycle advanced inside `step_cycle`
    /// hasn't been incremented yet, so `self.cycle` is the decision cycle.
    fn eject_faulted(&mut self, word: Word, n: usize, vnet: usize, trace: TraceId) -> Word {
        let router = &mut self.routers[n];
        if !router.eject_hdr_seen[vnet] {
            router.eject_hdr_seen[vnet] = true;
            return word;
        }
        let plan = self.fault.as_ref().expect("checked by caller");
        let Some(bit) = plan.corrupt_bit((self.base + n) as u32, self.cycle) else {
            return word;
        };
        self.stats.faults.corrupted_words += 1;
        if let Some(tracer) = &mut self.tracer {
            tracer.emit(
                self.cycle,
                EventKind::Fault {
                    id: trace,
                    node: NodeId((self.base + n) as u32),
                    what: FaultEvent::CorruptWord,
                },
            );
        }
        Word::new(word.tag(), word.bits() ^ (1 << bit))
    }

    /// Drains the buffered lifecycle events (empty when tracing is off).
    pub(crate) fn take_trace_events(&mut self) -> Vec<Event> {
        self.tracer.as_mut().map(|t| t.take()).unwrap_or_default()
    }

    /// Calls `f` with a per-`(global node, vnet)` occupancy digest for every
    /// router in the shard, in ascending (node, vnet) order.
    ///
    /// Takes `&mut self` because a message on the wormhole bulk fast path
    /// must first be [materialized](Self::materialize_bulk) into the exact
    /// buffered state it stands for — the digest canonicalizes on the
    /// buffered representation, and materialization is semantically
    /// invisible by construction.
    ///
    /// The digest covers the channel-arena queues plus the router's
    /// interface state: the ejected-word FIFO and the injection framing.
    /// Trace ids, the `eject_cur` trace cursor, and statistics are excluded
    /// (observability state); `eject_hdr_seen` is included (it steers fault
    /// corruption). The stale `msg_start` of a closed injection stream is
    /// masked by folding it only while a message is open.
    pub(crate) fn fold_components(&mut self, f: &mut dyn FnMut(NodeId, usize, u64)) {
        if self.bulk.is_some() {
            self.materialize_bulk();
        }
        for l in 0..self.routers.len() {
            for vnet in 0..2 {
                let mut h = jm_trace::Fnv1a::new();
                self.arena.fold_state(l, vnet, &mut h);
                let router = &self.routers[l];
                h.write_u32(router.ejected[vnet].len() as u32);
                for &(w, _) in &router.ejected[vnet] {
                    h.write_u8(w.tag().bits());
                    h.write_u32(w.bits());
                }
                match router.inject[vnet].dest {
                    Some(dest) => {
                        h.write_u8(1);
                        h.write_u8(dest.x);
                        h.write_u8(dest.y);
                        h.write_u8(dest.z);
                        h.write_u64(router.inject[vnet].msg_start);
                    }
                    None => h.write_u8(0),
                }
                h.write_u8(u8::from(router.eject_hdr_seen[vnet]));
                f(NodeId((self.base + l) as u32), vnet, h.finish());
            }
        }
    }
}

/// The `(below, above)` edges of shard `k`, given the edge list in which
/// `edges[i]` sits between shards `i` and `i + 1`.
pub fn edge_pair(edges: &[Edge], k: usize) -> (Option<&Edge>, Option<&Edge>) {
    (k.checked_sub(1).and_then(|i| edges.get(i)), edges.get(k))
}
