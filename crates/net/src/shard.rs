//! Slab-sharded network state.
//!
//! The mesh is split into contiguous z-slabs (node ids are z-major, so each
//! slab owns a contiguous id range). A [`NetShard`] owns its slab's routers,
//! ejection FIFOs, and statistics, and can advance one cycle touching only
//! its own state plus the [`Edge`] interfaces shared with the slabs directly
//! below and above it. That makes shards safe to step on parallel worker
//! threads; [`crate::Network`] also drives the same shards sequentially, so
//! both modes execute literally the same per-cycle code.
//!
//! Each simulated cycle is two phases:
//!
//! 1. **Step** ([`NetShard::step_cycle`]): every shard moves its own flits.
//!    A flit bound for a router in another shard is appended to the edge's
//!    mailbox instead of being pushed into the remote input buffer; space in
//!    remote boundary buffers is read from the edge's published snapshot.
//! 2. **Exchange** ([`NetShard::exchange`]): every shard drains the
//!    mailboxes addressed to it into its boundary input buffers and
//!    publishes those buffers' free space for its neighbors' next step.
//!
//! Determinism: within a cycle, the only cross-router data a step reads is
//! *downstream input-buffer space*. [`crate::router::Router::space`] reports
//! start-of-cycle occupancy (same-cycle pops are masked via `popped_at`), and
//! the edge snapshots are by construction start-of-cycle values — so the
//! space a sender observes is independent of the order routers are visited,
//! and therefore of how the mesh is cut into shards or which thread runs
//! which shard. Deferred mailbox delivery is equally invisible: a flit
//! handed to a neighbor carries `ready_cycle = cycle + 1`, so no same-cycle
//! consumer exists. A single barrier between the two phases (provided by the
//! caller) is the only synchronization the scheme needs; the snapshot is
//! single-buffered because phase 1 only reads it and phase 2 only writes it.

use crate::bitset::BitSet;
use crate::config::NetConfig;
use crate::flit::Flit;
use crate::router::{ecube_route, Router, IN_INJECT, OUT_EJECT};
use crate::stats::NetStats;
use jm_fault::{checksum_words, FaultPlan};
use jm_isa::instr::MsgPriority;
use jm_isa::node::{Coord, NodeId, RouteWord};
use jm_isa::tag::Tag;
use jm_isa::word::Word;
use jm_isa::TraceId;
use jm_trace::{Event, EventKind, FaultEvent, Tracer};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Result of offering one word to the injection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectResult {
    /// The word was accepted.
    Accepted,
    /// The injection FIFO is full — on the MDP this surfaces as a *send
    /// fault* in the executing thread, which retries (§4.3.2).
    Stall,
    /// Framing error: the first word of a message must be a `route` word
    /// naming an in-range destination, and a message must contain at least
    /// one payload word.
    BadRoute,
}

/// Output-port index of the +z channel (the only up-crossing direction).
const OUT_ZPOS: usize = 4;
/// Output-port index of the −z channel (the only down-crossing direction).
const OUT_ZNEG: usize = 5;

/// The interface between two vertically adjacent shards: mailboxes carrying
/// boundary-crossing flits, and published space snapshots for the boundary
/// input buffers on each side.
///
/// Mailbox entries keep the sender's deterministic scan order, and each
/// mailbox has exactly one writing shard per cycle, so the `Mutex` is
/// uncontended bookkeeping, not an ordering mechanism.
#[derive(Debug)]
pub struct Edge {
    /// Flits crossing upward (+z out of the shard below), as
    /// `(global dest id, vnet, flit)`.
    up: Mutex<Vec<(u32, usize, Flit)>>,
    /// Flits crossing downward (−z out of the shard above).
    down: Mutex<Vec<(u32, usize, Flit)>>,
    /// Free slots, at the start of the coming cycle, in the shard-above's
    /// lowest-plane `+z` input buffers: `[plane index][vnet]`. Written only
    /// by the shard above (during its exchange), read only by the shard
    /// below (during its step) — phases separated by the caller's barrier.
    up_space: Vec<[AtomicU8; 2]>,
    /// Free slots in the shard-below's top-plane `−z` input buffers.
    down_space: Vec<[AtomicU8; 2]>,
}

impl Edge {
    /// Creates the edge for a boundary of `plane` node columns, with every
    /// boundary buffer empty (`capacity` free slots).
    pub(crate) fn new(plane: usize, capacity: usize) -> Edge {
        assert!(u8::try_from(capacity).is_ok(), "flit buffer too deep");
        let fresh = |_| [AtomicU8::new(capacity as u8), AtomicU8::new(capacity as u8)];
        Edge {
            up: Mutex::new(Vec::new()),
            down: Mutex::new(Vec::new()),
            up_space: (0..plane).map(fresh).collect(),
            down_space: (0..plane).map(fresh).collect(),
        }
    }
}

/// One contiguous z-slab of the mesh: routers for node ids
/// `base .. base + len`, plus everything needed to advance them one cycle.
///
/// All node-addressed methods take **global** [`NodeId`]s and expect them to
/// fall inside the slab (debug-asserted).
#[derive(Debug)]
pub struct NetShard {
    config: NetConfig,
    /// First global node id owned by this shard.
    base: usize,
    routers: Vec<Router>,
    cycle: u64,
    stats: NetStats,
    /// Dimension bisected for traffic accounting (0 = x, 1 = y, 2 = z).
    bisect_dim: usize,
    /// Crossing boundary: between coordinates `mid - 1` and `mid`.
    bisect_mid: u8,
    /// Flits currently buffered in *this shard* (a flit handed to an edge
    /// mailbox leaves the sender's count and joins the receiver's at drain).
    in_flight: u64,
    /// Local router indices with `occupancy > 0` — the only ones
    /// `step_cycle` must visit.
    active: BitSet,
    /// Local router indices holding undelivered ejected words (either vnet).
    eject_pending: BitSet,
    /// Scratch buffer for the active-set snapshot taken by `step_cycle`.
    scratch: Vec<u32>,
    /// Lifecycle-event buffer; `None` (the default) disables tracing, so
    /// the hot paths pay one pointer test.
    pub(crate) tracer: Option<Box<Tracer>>,
    /// Fault plan, if this run injects faults. Queries key on *global* node
    /// ids and the lockstep cycle counter, so every shard layout answers
    /// identically; `None` (the default) keeps the fault-free fast paths.
    fault: Option<FaultPlan>,
}

impl NetShard {
    pub(crate) fn new(
        config: NetConfig,
        base: usize,
        len: usize,
        bisect_dim: usize,
        bisect_mid: u8,
    ) -> NetShard {
        let dims = config.dims;
        let routers = (base..base + len)
            .map(|id| Router::new(dims.coord(NodeId(id as u32))))
            .collect();
        NetShard {
            config,
            base,
            routers,
            cycle: 0,
            stats: NetStats::default(),
            bisect_dim,
            bisect_mid,
            in_flight: 0,
            active: BitSet::new(len),
            eject_pending: BitSet::new(len),
            scratch: Vec::new(),
            tracer: None,
            fault: None,
        }
    }

    /// Installs (or clears) the fault plan. Must be set identically on
    /// every shard before simulation starts.
    pub(crate) fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// First global node id owned by this shard.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of nodes (routers) owned by this shard.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Whether the shard owns no routers (never true for shards built by
    /// [`crate::Network`]).
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// The shard's cycle counter (in lockstep with its siblings outside the
    /// two tick phases).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// This shard's share of the network statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Flits currently buffered in this shard.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Local router indices currently holding buffered flits.
    pub(crate) fn active_count(&self) -> u32 {
        self.active.count() as u32
    }

    /// Whether this shard holds no flits and no undelivered words.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0 && self.eject_pending.is_empty()
    }

    /// Advances the cycle counter without simulating. Only legal while the
    /// shard holds no flits (and, in parallel mode, only when every shard
    /// agrees — the coordinator checks that before issuing a skip).
    pub fn skip_to(&mut self, cycle: u64) {
        debug_assert_eq!(self.in_flight, 0, "skip_to with flits in flight");
        self.cycle = self.cycle.max(cycle);
    }

    #[inline]
    fn local(&self, node: NodeId) -> usize {
        let l = node.index().wrapping_sub(self.base);
        debug_assert!(l < self.routers.len(), "{node} outside shard");
        l
    }

    /// Nodes currently holding undelivered ejected words, in ascending id
    /// order (global ids).
    pub fn pending_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let base = self.base;
        self.eject_pending
            .iter()
            .map(move |i| NodeId((base + i) as u32))
    }

    /// Next delivered payload word with the trace id of the message that
    /// carried it ([`TraceId::NONE`] when tracing is off).
    pub fn delivered_front_traced(
        &self,
        node: NodeId,
        priority: MsgPriority,
    ) -> Option<(Word, TraceId)> {
        self.routers[self.local(node)].ejected[priority.index()]
            .front()
            .copied()
    }

    /// Pops the next delivered payload word for a node.
    pub fn pop_delivered(&mut self, node: NodeId, priority: MsgPriority) -> Option<Word> {
        let l = self.local(node);
        let router = &mut self.routers[l];
        let word = router.ejected[priority.index()].pop_front().map(|(w, _)| w);
        if word.is_some() && router.ejected[0].is_empty() && router.ejected[1].is_empty() {
            self.eject_pending.remove(l);
        }
        word
    }

    /// Number of delivered words waiting at a node.
    pub fn delivered_len(&self, node: NodeId, priority: MsgPriority) -> usize {
        self.routers[self.local(node)].ejected[priority.index()].len()
    }

    /// Offers one word to a node's injection port.
    ///
    /// `end` marks the final word of the message (the `SENDE` forms).
    pub fn inject(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        word: Word,
        end: bool,
    ) -> InjectResult {
        let cycle = self.cycle;
        let inject_latency = self.config.inject_latency;
        let fifo_cap = self.config.inject_fifo;
        let dims = self.config.dims;
        let l = self.local(node);
        if self.node_down_stall(node, cycle) {
            return InjectResult::Stall;
        }
        let router = &mut self.routers[l];
        let vnet = priority.index();
        if router.inputs[vnet][IN_INJECT].len() + 2 > fifo_cap {
            return InjectResult::Stall;
        }
        let framing = &mut router.inject[vnet];
        let (dest, is_route, head_word) = match framing.dest {
            None => {
                if word.tag() != Tag::Route || end {
                    return InjectResult::BadRoute;
                }
                let dest = RouteWord::from_word(word).dest;
                if dest.x >= dims.x || dest.y >= dims.y || dest.z >= dims.z {
                    return InjectResult::BadRoute;
                }
                framing.dest = Some(dest);
                framing.msg_start = cycle;
                self.stats.injected_msgs += 1;
                framing.trace = match &mut self.tracer {
                    Some(tracer) => {
                        let id = TraceId(self.stats.injected_msgs);
                        tracer.emit(
                            cycle,
                            EventKind::Inject {
                                id,
                                src: node,
                                dst: dims.id(dest),
                                priority,
                                words: 0,
                            },
                        );
                        id
                    }
                    None => TraceId::NONE,
                };
                (dest, true, true)
            }
            Some(dest) => {
                if end {
                    framing.dest = None;
                }
                (dest, false, false)
            }
        };
        let msg_start = router.inject[vnet].msg_start;
        let trace = router.inject[vnet].trace;
        let pair = Flit::pair_for_word(
            dest,
            word,
            is_route,
            head_word,
            end,
            priority,
            msg_start,
            cycle + inject_latency,
            trace,
        );
        for flit in pair {
            router.inputs[vnet][IN_INJECT].push_back(flit);
        }
        router.occupancy += 2;
        self.in_flight += 2;
        self.active.insert(l);
        InjectResult::Accepted
    }

    /// Atomically offers a whole message to a node's injection port: the
    /// route word followed by at least one payload word. Either every word
    /// is accepted or none is (the network interface composes messages in a
    /// per-thread buffer and launches them whole, so a preempting handler
    /// can never interleave words into an open message).
    pub fn commit_msg(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        words: &[Word],
    ) -> InjectResult {
        let cycle = self.cycle;
        let inject_latency = self.config.inject_latency;
        let fifo_cap = self.config.inject_fifo;
        let dims = self.config.dims;
        let vnet = priority.index();
        // Framing checks first.
        if words.len() < 2 || words[0].tag() != Tag::Route {
            return InjectResult::BadRoute;
        }
        let dest = RouteWord::from_word(words[0]).dest;
        if dest.x >= dims.x || dest.y >= dims.y || dest.z >= dims.z {
            return InjectResult::BadRoute;
        }
        let l = self.local(node);
        if self.node_down_stall(node, cycle) {
            return InjectResult::Stall;
        }
        // Fault-injection runs append a checksum trailer word so the MDP
        // can validate the payload at dispatch. The header's length field
        // is untouched; the trailer travels at a known offset (header len)
        // and is stripped by the dispatch machinery.
        let mut checked;
        let words: &[Word] = match &self.fault {
            Some(f) if f.checksums() => {
                checked = Vec::with_capacity(words.len() + 1);
                checked.extend_from_slice(words);
                checked.push(checksum_words(&words[1..]));
                &checked
            }
            _ => words,
        };
        let router = &mut self.routers[l];
        if router.inject[vnet].dest.is_some() {
            // A word-wise injection is mid-message on this port; mixing
            // the two APIs is a programming error.
            return InjectResult::BadRoute;
        }
        let needed = 2 * words.len();
        if router.inputs[vnet][IN_INJECT].len() + needed > fifo_cap {
            return InjectResult::Stall;
        }
        self.stats.injected_msgs += 1;
        let trace = match &mut self.tracer {
            Some(tracer) => {
                let id = TraceId(self.stats.injected_msgs);
                tracer.emit(
                    cycle,
                    EventKind::Inject {
                        id,
                        src: node,
                        dst: dims.id(dest),
                        priority,
                        words: words.len() as u32 - 1,
                    },
                );
                id
            }
            None => TraceId::NONE,
        };
        for (i, &word) in words.iter().enumerate() {
            let pair = Flit::pair_for_word(
                dest,
                word,
                i == 0,
                i == 0,
                i + 1 == words.len(),
                priority,
                cycle,
                cycle + inject_latency,
                trace,
            );
            for flit in pair {
                router.inputs[vnet][IN_INJECT].push_back(flit);
            }
        }
        router.occupancy += needed as u32;
        self.in_flight += needed as u64;
        self.active.insert(l);
        InjectResult::Accepted
    }

    /// Whether `node`'s interface is down this cycle; counts the refusal
    /// (and traces it) so degradation curves can attribute send stalls.
    fn node_down_stall(&mut self, node: NodeId, cycle: u64) -> bool {
        match &self.fault {
            Some(f) if f.node_down(node.0, cycle) => {
                self.stats.faults.inject_stalls += 1;
                if let Some(tracer) = &mut self.tracer {
                    tracer.emit(
                        cycle,
                        EventKind::Fault {
                            id: TraceId::NONE,
                            node,
                            what: FaultEvent::SendStall,
                        },
                    );
                }
                true
            }
            _ => false,
        }
    }

    fn neighbor_id(&self, here: Coord, out: usize) -> NodeId {
        let mut c = here;
        match out {
            0 => c.x += 1,
            1 => c.x -= 1,
            2 => c.y += 1,
            3 => c.y -= 1,
            4 => c.z += 1,
            5 => c.z -= 1,
            _ => unreachable!("eject has no neighbor"),
        }
        self.config.dims.id(c)
    }

    fn crosses_bisection(&self, here: Coord, out: usize) -> bool {
        if self.bisect_mid == 0 {
            return false;
        }
        let (dim, positive) = match out {
            0 => (0, true),
            1 => (0, false),
            2 => (1, true),
            3 => (1, false),
            4 => (2, true),
            5 => (2, false),
            _ => return false,
        };
        if dim != self.bisect_dim {
            return false;
        }
        let coord = [here.x, here.y, here.z][dim];
        (positive && coord == self.bisect_mid - 1) || (!positive && coord == self.bisect_mid)
    }

    /// Nodes per z-plane (boundary buffers are indexed by plane offset).
    #[inline]
    fn plane(&self) -> usize {
        self.config.dims.x as usize * self.config.dims.y as usize
    }

    /// Phase 1 of a cycle: moves at most one flit per physical channel,
    /// priority-1 traffic first, input ports arbitrated in fixed order with
    /// injection last. `below`/`above` are the edges toward the adjacent
    /// shards (`None` at the mesh faces, or when the whole mesh is one
    /// shard). Flits leaving the slab are posted to the edge mailboxes and
    /// picked up by [`NetShard::exchange`] on the receiving side.
    ///
    /// Only routers in the active set (buffered flits) are visited; an empty
    /// shard steps in O(1). This is cycle-exact with a full ascending scan:
    /// inactive routers have nothing to move, and a router activated
    /// mid-step only holds flits with `ready_cycle == cycle + 1`, which the
    /// scan would skip anyway.
    pub fn step_cycle(&mut self, below: Option<&Edge>, above: Option<&Edge>) {
        if self.in_flight == 0 {
            self.cycle += 1;
            return;
        }
        let cycle = self.cycle;
        let flit_buffer = self.config.flit_buffer;
        let eject_fifo = self.config.eject_fifo;
        let plane = self.plane();
        let count = self.routers.len();
        // Snapshot the active set: flit hand-offs during the loop may
        // activate routers (harmless to visit or not, see above), and a
        // drained router leaves the set for future cycles.
        let mut snapshot = std::mem::take(&mut self.scratch);
        snapshot.clear();
        snapshot.extend(self.active.iter().map(|i| i as u32));
        for &n in &snapshot {
            let n = n as usize;
            if self.routers[n].is_idle() {
                self.active.remove(n);
                continue;
            }
            let here = self.routers[n].coord;
            let mut in_used = [false; 7];
            let mut out_used = [false; 7];
            for &priority in [MsgPriority::P1, MsgPriority::P0].iter() {
                let vnet = priority.index();
                #[allow(clippy::needless_range_loop)]
                for in_port in 0..7 {
                    if in_used[in_port] {
                        continue;
                    }
                    let Some(&flit) = self.routers[n].inputs[vnet][in_port].front() else {
                        continue;
                    };
                    if flit.ready_cycle > cycle {
                        continue;
                    }
                    let out = ecube_route(here, flit.dest);
                    if out_used[out] {
                        continue;
                    }
                    match self.routers[n].owners[vnet][out] {
                        Some(owner) if owner == in_port => {}
                        Some(_) => continue,
                        None => {
                            if !flit.head {
                                // A body flit whose path was already torn
                                // down cannot occur under wormhole FIFO
                                // discipline.
                                debug_assert!(flit.head, "orphan body flit");
                                continue;
                            }
                        }
                    }
                    // Delay faults come first and act exactly like a full
                    // downstream buffer: the flit stays queued and wormhole
                    // backpressure holds the path, so nothing is ever lost.
                    // The decision is a pure function of (global node, out
                    // port, cycle) — identical for every engine and shard
                    // layout.
                    if let Some(f) = &self.fault {
                        if f.blocked((self.base + n) as u32, out, cycle) {
                            self.stats.faults.blocked_moves += 1;
                            continue;
                        }
                    }
                    // Space check downstream. Local targets report
                    // start-of-cycle occupancy; boundary targets were
                    // published by the owning shard at the last exchange —
                    // both are scan-order-independent (module docs).
                    let mut local_m = usize::MAX;
                    if out == OUT_EJECT {
                        if flit.payload.is_some()
                            && self.routers[n].ejected[vnet].len() >= eject_fifo
                        {
                            continue;
                        }
                    } else {
                        let m = self.neighbor_id(here, out).index();
                        let l = m.wrapping_sub(self.base);
                        if l < count {
                            if self.routers[l].space(priority, out, flit_buffer, cycle) == 0 {
                                continue;
                            }
                            local_m = l;
                        } else {
                            let space = match out {
                                OUT_ZPOS => {
                                    let edge = above.expect("+z exit without an upper edge");
                                    edge.up_space[m % plane][vnet].load(Ordering::Acquire)
                                }
                                OUT_ZNEG => {
                                    let edge = below.expect("-z exit without a lower edge");
                                    edge.down_space[m % plane][vnet].load(Ordering::Acquire)
                                }
                                _ => unreachable!("only z channels cross slab boundaries"),
                            };
                            if space == 0 {
                                continue;
                            }
                        }
                    }
                    // Commit the move.
                    let flit = self.routers[n].inputs[vnet][in_port]
                        .pop_front()
                        .expect("front checked");
                    self.routers[n].popped_at[vnet][in_port] = cycle;
                    self.routers[n].occupancy -= 1;
                    in_used[in_port] = true;
                    out_used[out] = true;
                    self.routers[n].owners[vnet][out] =
                        if flit.tail { None } else { Some(in_port) };
                    if out == OUT_EJECT {
                        self.in_flight -= 1;
                        if let Some(word) = flit.payload {
                            let mut word = word;
                            if self.fault.is_some() {
                                word = self.eject_faulted(word, n, vnet, flit.trace);
                            }
                            self.routers[n].ejected[vnet].push_back((word, flit.trace));
                            self.eject_pending.insert(n);
                            self.stats.delivered_words += 1;
                            // The message's first payload word (its header)
                            // reaching the ejection FIFO is the deliver
                            // event: the MDP dispatches on header arrival
                            // while the tail may still be streaming in, so
                            // keying on the tail would let dispatch precede
                            // delivery.
                            if let Some(tracer) = &mut self.tracer {
                                if flit.trace.is_some()
                                    && self.routers[n].eject_cur[vnet] != flit.trace
                                {
                                    self.routers[n].eject_cur[vnet] = flit.trace;
                                    tracer.emit(
                                        cycle,
                                        EventKind::Deliver {
                                            id: flit.trace,
                                            node: NodeId((self.base + n) as u32),
                                        },
                                    );
                                }
                            }
                        }
                        if flit.tail {
                            if self.fault.is_some() {
                                self.routers[n].eject_hdr_seen[vnet] = false;
                            }
                            self.stats.delivered_msgs += 1;
                            // Ejection completes at the end of this cycle;
                            // injection can never postdate it.
                            debug_assert!(
                                cycle + 1 >= flit.inject_cycle,
                                "delivery precedes injection (cycle {cycle}, injected {})",
                                flit.inject_cycle
                            );
                            let latency = cycle + 1 - flit.inject_cycle;
                            self.stats.latency_sum += latency;
                            self.stats.latency_max = self.stats.latency_max.max(latency);
                        }
                    } else {
                        if flit.head {
                            if let Some(tracer) = &mut self.tracer {
                                if flit.trace.is_some() {
                                    tracer.emit(
                                        cycle,
                                        EventKind::Hop {
                                            id: flit.trace,
                                            node: NodeId((self.base + n) as u32),
                                        },
                                    );
                                }
                            }
                        }
                        self.stats.flit_hops += 1;
                        if self.crosses_bisection(here, out) {
                            self.stats.bisection_flits += 1;
                        }
                        let m = self.neighbor_id(here, out).index();
                        let mut moved = flit;
                        moved.ready_cycle = cycle + 1;
                        if local_m != usize::MAX {
                            let l = local_m;
                            debug_assert_eq!(l, m.wrapping_sub(self.base));
                            self.routers[l].inputs[vnet][out].push_back(moved);
                            self.routers[l].occupancy += 1;
                            self.active.insert(l);
                        } else {
                            // Crossing a slab boundary: the flit leaves this
                            // shard's books and reaches the neighbor's input
                            // buffer at exchange time. Deferral is invisible
                            // (ready_cycle = cycle + 1 already bars every
                            // same-cycle consumer).
                            self.in_flight -= 1;
                            let mailbox = match out {
                                OUT_ZPOS => &above.expect("checked above").up,
                                OUT_ZNEG => &below.expect("checked above").down,
                                _ => unreachable!("only z channels cross slab boundaries"),
                            };
                            mailbox
                                .lock()
                                .expect("mailbox poisoned")
                                .push((m as u32, vnet, moved));
                        }
                    }
                }
            }
            if self.routers[n].is_idle() {
                self.active.remove(n);
            }
        }
        self.scratch = snapshot;
        self.cycle += 1;
    }

    /// Phase 2 of a cycle: drains the edge mailboxes addressed to this shard
    /// into its boundary input buffers, then publishes those buffers' free
    /// space for the neighbors' next step. Must run after *every* shard
    /// touching `below`/`above` has finished phase 1 (callers put a barrier
    /// between the phases); a second barrier before the next phase 1 keeps
    /// the published snapshots stable while neighbors read them.
    pub fn exchange(&mut self, below: Option<&Edge>, above: Option<&Edge>) {
        let plane = self.plane();
        let flit_buffer = self.config.flit_buffer;
        if let Some(edge) = below {
            let mut inbox = edge.up.lock().expect("mailbox poisoned");
            for (dest, vnet, flit) in inbox.drain(..) {
                let l = self.local(NodeId(dest));
                debug_assert!(l < plane, "up-crossing flit beyond the bottom plane");
                self.routers[l].inputs[vnet][OUT_ZPOS].push_back(flit);
                self.routers[l].occupancy += 1;
                self.in_flight += 1;
                self.active.insert(l);
            }
            drop(inbox);
            for p in 0..plane {
                for vnet in 0..2 {
                    let len = self.routers[p].inputs[vnet][OUT_ZPOS].len();
                    debug_assert!(len <= flit_buffer, "boundary buffer over capacity");
                    edge.up_space[p][vnet].store((flit_buffer - len) as u8, Ordering::Release);
                }
            }
        }
        if let Some(edge) = above {
            let top = self.routers.len() - plane;
            let mut inbox = edge.down.lock().expect("mailbox poisoned");
            for (dest, vnet, flit) in inbox.drain(..) {
                let l = self.local(NodeId(dest));
                debug_assert!(l >= top, "down-crossing flit above the top plane");
                self.routers[l].inputs[vnet][OUT_ZNEG].push_back(flit);
                self.routers[l].occupancy += 1;
                self.in_flight += 1;
                self.active.insert(l);
            }
            drop(inbox);
            for p in 0..plane {
                for vnet in 0..2 {
                    let len = self.routers[top + p].inputs[vnet][OUT_ZNEG].len();
                    debug_assert!(len <= flit_buffer, "boundary buffer over capacity");
                    edge.down_space[p][vnet].store((flit_buffer - len) as u8, Ordering::Release);
                }
            }
        }
    }

    /// Fault-injection path for one payload word reaching the ejection
    /// port: the first payload word of each message (its header) passes
    /// untouched — corrupting the length field would desynchronize the
    /// queue rather than model payload damage — and every later word may
    /// get one seeded bit flip. The cycle advanced inside `step_cycle`
    /// hasn't been incremented yet, so `self.cycle` is the decision cycle.
    fn eject_faulted(&mut self, word: Word, n: usize, vnet: usize, trace: TraceId) -> Word {
        let router = &mut self.routers[n];
        if !router.eject_hdr_seen[vnet] {
            router.eject_hdr_seen[vnet] = true;
            return word;
        }
        let plan = self.fault.as_ref().expect("checked by caller");
        let Some(bit) = plan.corrupt_bit((self.base + n) as u32, self.cycle) else {
            return word;
        };
        self.stats.faults.corrupted_words += 1;
        if let Some(tracer) = &mut self.tracer {
            tracer.emit(
                self.cycle,
                EventKind::Fault {
                    id: trace,
                    node: NodeId((self.base + n) as u32),
                    what: FaultEvent::CorruptWord,
                },
            );
        }
        Word::new(word.tag(), word.bits() ^ (1 << bit))
    }

    /// Drains the buffered lifecycle events (empty when tracing is off).
    pub(crate) fn take_trace_events(&mut self) -> Vec<Event> {
        self.tracer.as_mut().map(|t| t.take()).unwrap_or_default()
    }
}

/// The `(below, above)` edges of shard `k`, given the edge list in which
/// `edges[i]` sits between shards `i` and `i + 1`.
pub fn edge_pair(edges: &[Edge], k: usize) -> (Option<&Edge>, Option<&Edge>) {
    (k.checked_sub(1).and_then(|i| edges.get(i)), edges.get(k))
}
