//! A fixed-capacity bitset used for the simulator's active-work tracking
//! (active routers, nodes with pending deliveries). Insertion and removal
//! are O(1); iteration is in ascending index order, which the engines rely
//! on for cycle-exact equivalence with naive full scans.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    count: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            count: 0,
        }
    }

    /// Number of indices currently in the set.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `index` is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    // insert/remove use an early-return branch rather than the branchless
    // `count += fresh as usize` formulation: the branchless version is
    // miscompiled by the current toolchain at opt-level >= 2 when overflow
    // checks are off (const-propagated call sequences fold `count` to 0),
    // which is exactly the release profile. The branch also costs nothing:
    // callers almost always insert fresh / remove present indices.

    /// Inserts `index`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        let bit = 1u64 << (index % 64);
        let word = self.words[index / 64];
        if word & bit != 0 {
            return false;
        }
        self.words[index / 64] = word | bit;
        self.count += 1;
        true
    }

    /// Removes `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        let bit = 1u64 << (index % 64);
        let word = self.words[index / 64];
        if word & bit == 0 {
            return false;
        }
        self.words[index / 64] = word & !bit;
        self.count -= 1;
        true
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Iterates the set in ascending index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending-order iterator over a [`BitSet`].
#[derive(Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert_eq!(s.count(), 4);
        assert!(s.contains(63));
        assert!(!s.contains(62));
        assert!(s.remove(63));
        assert!(!s.remove(63), "double remove reports absent");
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iterates_in_ascending_order() {
        let mut s = BitSet::new(300);
        for i in [257, 3, 64, 65, 0, 128] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 128, 257]);
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = BitSet::new(100);
        s.insert(5);
        s.insert(99);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn empty_capacity_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
