//! Flits: the 18-bit (half-word) units moved by channels each cycle.

use jm_isa::instr::MsgPriority;
use jm_isa::node::Coord;
use jm_isa::word::Word;
use jm_isa::TraceId;

/// A flit in flight.
///
/// Physically a flit is half a word (channels carry 0.5 words/cycle). For
/// simulation convenience every flit carries the full routing destination;
/// the *second* flit of each payload word carries the word itself, so the
/// ejection port reassembles words by accepting `payload: Some(_)` flits.
/// Route-word flits carry no payload — the route word is consumed by the
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Destination coordinates (from the message's route word).
    pub dest: Coord,
    /// The word completed by this flit, if it is a word's second half
    /// (and the word is payload rather than routing).
    pub payload: Option<Word>,
    /// Whether this is the first flit of its message (triggers output-port
    /// allocation in routers).
    pub head: bool,
    /// Whether this is the last flit of its message (releases the path).
    pub tail: bool,
    /// Message priority (selects the virtual network).
    pub priority: MsgPriority,
    /// Cycle at which the message's first flit was injected, for latency
    /// accounting.
    pub inject_cycle: u64,
    /// Earliest cycle at which this flit may leave the buffer it sits in
    /// (prevents multi-hop moves within one cycle).
    pub ready_cycle: u64,
    /// Lifecycle-trace id of the message this flit belongs to
    /// ([`TraceId::NONE`] when tracing is disabled).
    pub trace: TraceId,
}

impl Flit {
    /// Expands one message word into its two flits.
    ///
    /// `is_route` marks the route word (stripped at ejection); `tail_word`
    /// marks the message's final word.
    #[allow(clippy::too_many_arguments)]
    pub fn pair_for_word(
        dest: Coord,
        word: Word,
        is_route: bool,
        head_word: bool,
        tail_word: bool,
        priority: MsgPriority,
        inject_cycle: u64,
        ready_cycle: u64,
        trace: TraceId,
    ) -> [Flit; 2] {
        let first = Flit {
            dest,
            payload: None,
            head: head_word,
            tail: false,
            priority,
            inject_cycle,
            ready_cycle,
            trace,
        };
        let second = Flit {
            dest,
            payload: if is_route { None } else { Some(word) },
            head: false,
            tail: tail_word,
            priority,
            inject_cycle,
            ready_cycle,
            trace,
        };
        [first, second]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_words_carry_no_payload() {
        let dest = Coord::new(1, 2, 3);
        let [a, b] = Flit::pair_for_word(
            dest,
            Word::int(5),
            true,
            true,
            false,
            MsgPriority::P0,
            0,
            0,
            TraceId::NONE,
        );
        assert!(a.head && !b.head);
        assert_eq!(a.payload, None);
        assert_eq!(b.payload, None);
    }

    #[test]
    fn payload_words_complete_on_second_flit() {
        let dest = Coord::new(0, 0, 0);
        let [a, b] = Flit::pair_for_word(
            dest,
            Word::int(9),
            false,
            false,
            true,
            MsgPriority::P1,
            7,
            9,
            TraceId(3),
        );
        assert_eq!(a.payload, None);
        assert_eq!(b.payload, Some(Word::int(9)));
        assert!(!a.tail && b.tail);
        assert_eq!(b.inject_cycle, 7);
        assert_eq!(b.ready_cycle, 9);
        assert_eq!(a.trace, TraceId(3));
        assert_eq!(b.trace, TraceId(3));
    }
}
