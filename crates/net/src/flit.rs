//! Flits: the 18-bit (half-word) units moved by channels each cycle.

use jm_isa::node::Coord;
use jm_isa::word::Word;
use jm_isa::TraceId;

/// A flit in flight.
///
/// Physically a flit is half a word (channels carry 0.5 words/cycle). For
/// simulation convenience every flit carries the full routing destination;
/// the *second* flit of each payload word carries the word itself, so the
/// ejection port reassembles words by accepting `payload().is_some()`
/// flits. Route-word flits carry no payload — the route word is consumed
/// by the network.
///
/// The struct is deliberately packed to 32 bytes: channel arenas hold
/// `routers × 14 buffers × depth` of these (a 16×16×16 mesh has 4096
/// routers), and every boundary crossing copies one through an edge
/// mailbox, so flit size is arena footprint *and* parallel-engine
/// bandwidth. Head/tail/payload-presence share one flag byte, the trace
/// id is stored in 32 bits (dense per-run message ordinals; checked on
/// construction), and the virtual network is *not* stored — every path
/// that handles a flit already knows its vnet from the buffer it sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Destination coordinates (from the message's route word).
    pub dest: Coord,
    /// Bit-packed `FLAG_*` bits.
    flags: u8,
    /// Lifecycle-trace ordinal (`0` = untraced), widened to [`TraceId`]
    /// on read.
    trace: u32,
    /// The word completed by this flit ([`Word::NIL`] unless
    /// `FLAG_PAYLOAD` is set).
    word: Word,
    /// Cycle at which the message's first flit was injected, for latency
    /// accounting.
    pub inject_cycle: u64,
    /// Earliest cycle at which this flit may leave the buffer it sits in
    /// (prevents multi-hop moves within one cycle).
    pub ready_cycle: u64,
}

/// First flit of its message (triggers output-port allocation in routers).
const FLAG_HEAD: u8 = 1 << 0;
/// Last flit of its message (releases the path).
const FLAG_TAIL: u8 = 1 << 1;
/// The flit completes a payload word (`word` is meaningful).
const FLAG_PAYLOAD: u8 = 1 << 2;

impl Flit {
    /// The all-zero filler flit arenas use for untouched slots.
    pub(crate) fn nil() -> Flit {
        Flit {
            dest: Coord::default(),
            flags: 0,
            trace: 0,
            word: Word::NIL,
            inject_cycle: 0,
            ready_cycle: 0,
        }
    }

    /// Whether this is the first flit of its message.
    #[inline]
    pub fn head(&self) -> bool {
        self.flags & FLAG_HEAD != 0
    }

    /// Whether this is the last flit of its message.
    #[inline]
    pub fn tail(&self) -> bool {
        self.flags & FLAG_TAIL != 0
    }

    /// The word completed by this flit, if it is a word's second half
    /// (and the word is payload rather than routing).
    #[inline]
    pub fn payload(&self) -> Option<Word> {
        (self.flags & FLAG_PAYLOAD != 0).then_some(self.word)
    }

    /// Lifecycle-trace id of the message this flit belongs to
    /// ([`TraceId::NONE`] when tracing is disabled).
    #[inline]
    pub fn trace(&self) -> TraceId {
        TraceId(u64::from(self.trace))
    }

    /// Expands one message word into its two flits.
    ///
    /// `is_route` marks the route word (stripped at ejection); `tail_word`
    /// marks the message's final word.
    #[allow(clippy::too_many_arguments)]
    pub fn pair_for_word(
        dest: Coord,
        word: Word,
        is_route: bool,
        head_word: bool,
        tail_word: bool,
        inject_cycle: u64,
        ready_cycle: u64,
        trace: TraceId,
    ) -> [Flit; 2] {
        debug_assert!(
            u32::try_from(trace.0).is_ok(),
            "trace ordinal exceeds the flit's 32-bit field"
        );
        let trace = trace.0 as u32;
        let first = Flit {
            dest,
            flags: if head_word { FLAG_HEAD } else { 0 },
            trace,
            word: Word::NIL,
            inject_cycle,
            ready_cycle,
        };
        let mut flags = if tail_word { FLAG_TAIL } else { 0 };
        let word = if is_route {
            Word::NIL
        } else {
            flags |= FLAG_PAYLOAD;
            word
        };
        let second = Flit {
            dest,
            flags,
            trace,
            word,
            inject_cycle,
            ready_cycle,
        };
        [first, second]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_stays_packed() {
        assert!(
            std::mem::size_of::<Flit>() <= 32,
            "Flit grew past 32 bytes: {}",
            std::mem::size_of::<Flit>()
        );
    }

    #[test]
    fn route_words_carry_no_payload() {
        let dest = Coord::new(1, 2, 3);
        let [a, b] =
            Flit::pair_for_word(dest, Word::int(5), true, true, false, 0, 0, TraceId::NONE);
        assert!(a.head() && !b.head());
        assert_eq!(a.payload(), None);
        assert_eq!(b.payload(), None);
    }

    #[test]
    fn payload_words_complete_on_second_flit() {
        let dest = Coord::new(0, 0, 0);
        let [a, b] = Flit::pair_for_word(dest, Word::int(9), false, false, true, 7, 9, TraceId(3));
        assert_eq!(a.payload(), None);
        assert_eq!(b.payload(), Some(Word::int(9)));
        assert!(!a.tail() && b.tail());
        assert_eq!(b.inject_cycle, 7);
        assert_eq!(b.ready_cycle, 9);
        assert_eq!(a.trace(), TraceId(3));
        assert_eq!(b.trace(), TraceId(3));
    }
}
