//! Per-node router state: input buffers, output ownership, ejection staging,
//! and injection framing.

use crate::flit::Flit;
use jm_isa::instr::MsgPriority;
use jm_isa::node::Coord;
use jm_isa::word::Word;
use jm_isa::TraceId;
use std::collections::VecDeque;

/// Router ports: six mesh directions plus ejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutPort {
    /// Toward larger X.
    XPos,
    /// Toward smaller X.
    XNeg,
    /// Toward larger Y.
    YPos,
    /// Toward smaller Y.
    YNeg,
    /// Toward larger Z.
    ZPos,
    /// Toward smaller Z.
    ZNeg,
    /// Delivery to the local node.
    Eject,
}

impl OutPort {
    /// All ports in arbitration order.
    pub const ALL: [OutPort; 7] = [
        OutPort::XPos,
        OutPort::XNeg,
        OutPort::YPos,
        OutPort::YNeg,
        OutPort::ZPos,
        OutPort::ZNeg,
        OutPort::Eject,
    ];

    /// Port index (0–6).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes a port index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 6`.
    #[inline]
    pub fn from_index(index: usize) -> OutPort {
        Self::ALL[index]
    }
}

/// Number of input ports: six directional channels plus injection.
pub(crate) const IN_PORTS: usize = 7;
/// Index of the injection input port.
pub(crate) const IN_INJECT: usize = 6;
/// Number of output ports: six directional channels plus ejection.
pub(crate) const OUT_PORTS: usize = 7;
/// Index of the ejection output port.
pub(crate) const OUT_EJECT: usize = 6;

/// Computes the e-cube (dimension-order) output port at `here` for a flit
/// destined for `dest`: resolve X first, then Y, then Z, then eject.
#[inline]
pub(crate) fn ecube_route(here: Coord, dest: Coord) -> usize {
    if dest.x != here.x {
        if dest.x > here.x {
            0
        } else {
            1
        }
    } else if dest.y != here.y {
        if dest.y > here.y {
            2
        } else {
            3
        }
    } else if dest.z != here.z {
        if dest.z > here.z {
            4
        } else {
            5
        }
    } else {
        OUT_EJECT
    }
}

/// Network-interface framing state for one priority's injection stream.
#[derive(Debug, Clone, Default)]
pub(crate) struct InjectState {
    /// Destination of the message currently being composed, if any.
    pub dest: Option<Coord>,
    /// Inject cycle of the current message's route word (for latency stats).
    pub msg_start: u64,
    /// Trace id of the current message ([`TraceId::NONE`] when untraced).
    pub trace: TraceId,
}

/// One node's router.
#[derive(Debug, Clone)]
pub(crate) struct Router {
    pub coord: Coord,
    /// Input buffers: `[vnet][in_port]`. Port 6 is the injection FIFO.
    pub inputs: [[VecDeque<Flit>; IN_PORTS]; 2],
    /// Output ownership: `[vnet][out_port]` → owning input port.
    pub owners: [[Option<usize>; OUT_PORTS]; 2],
    /// Ejected payload words awaiting the node (paired with the delivering
    /// message's trace id), per vnet.
    pub ejected: [VecDeque<(Word, TraceId)>; 2],
    /// Injection framing per vnet.
    pub inject: [InjectState; 2],
    /// Tracing only: trace id of the message currently streaming out of the
    /// ejection port, per vnet (wormhole routing ejects messages whole, so
    /// a changed id marks a new message's first payload word).
    pub eject_cur: [TraceId; 2],
    /// Fault-injection only: whether the message currently streaming out of
    /// the ejection port has already delivered its first payload word (the
    /// header), per vnet. Corruption skips the header — flipping a length
    /// bit would desynchronize the queue instead of modelling payload
    /// damage — and this flag is pure physical framing (set on the first
    /// payload word, cleared by the tail flit), so it needs no knowledge of
    /// message contents.
    pub eject_hdr_seen: [bool; 2],
    /// Total flits across all input buffers (cheap activity check).
    pub occupancy: u32,
    /// Cycle at which each input buffer last had a flit popped
    /// (`[vnet][in_port]`, `u64::MAX` = never). Lets [`Router::space`]
    /// report *start-of-cycle* occupancy: a slot freed earlier in the same
    /// cycle is not yet visible to upstream senders, exactly as if every
    /// router read its neighbors' credits at the cycle boundary. This makes
    /// the space check independent of router scan order — and therefore of
    /// how the mesh is sharded across worker threads.
    pub popped_at: [[u64; IN_PORTS]; 2],
}

impl Router {
    pub(crate) fn new(coord: Coord) -> Router {
        Router {
            coord,
            inputs: Default::default(),
            owners: Default::default(),
            ejected: Default::default(),
            inject: Default::default(),
            eject_cur: [TraceId::NONE; 2],
            eject_hdr_seen: [false; 2],
            occupancy: 0,
            popped_at: [[u64::MAX; IN_PORTS]; 2],
        }
    }

    /// Whether any work could possibly happen at this router.
    #[inline]
    pub(crate) fn is_idle(&self) -> bool {
        self.occupancy == 0
    }

    /// Free flit slots in an input buffer *at the start of cycle `cycle`*:
    /// a flit popped from the buffer earlier in the same cycle still counts
    /// as occupying its slot (credit updates propagate at cycle boundaries).
    ///
    /// Over-capacity occupancy would mean a credit-accounting bug upstream;
    /// it fails a `debug_assert!` so tests see it loudly (release builds
    /// saturate to 0, which only ever under-reports space).
    #[inline]
    pub(crate) fn space(
        &self,
        vnet: MsgPriority,
        in_port: usize,
        capacity: usize,
        cycle: u64,
    ) -> usize {
        let buf = &self.inputs[vnet.index()][in_port];
        // At most one flit crosses a channel per cycle, and its sender
        // checks space *before* pushing — so when this runs, no same-cycle
        // push can already sit in the buffer.
        debug_assert!(
            buf.back().is_none_or(|f| f.ready_cycle <= cycle),
            "space read after a same-cycle push"
        );
        let occupied = buf.len() + usize::from(self.popped_at[vnet.index()][in_port] == cycle);
        debug_assert!(
            occupied <= capacity,
            "input buffer over capacity: {occupied} > {capacity}"
        );
        capacity.saturating_sub(occupied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecube_orders_dimensions() {
        let here = Coord::new(3, 3, 3);
        assert_eq!(ecube_route(here, Coord::new(5, 0, 0)), 0); // X first
        assert_eq!(ecube_route(here, Coord::new(0, 0, 0)), 1);
        assert_eq!(ecube_route(here, Coord::new(3, 5, 0)), 2); // then Y
        assert_eq!(ecube_route(here, Coord::new(3, 1, 9)), 3);
        assert_eq!(ecube_route(here, Coord::new(3, 3, 9)), 4); // then Z
        assert_eq!(ecube_route(here, Coord::new(3, 3, 1)), 5);
        assert_eq!(ecube_route(here, here), OUT_EJECT);
    }

    #[test]
    fn port_index_round_trip() {
        for p in OutPort::ALL {
            assert_eq!(OutPort::from_index(p.index()), p);
        }
    }
}
