//! Per-node router state that stays per-router: ejection staging and
//! injection framing. The channel buffers, output ownership, and credit
//! timestamps live in the shard's flat [`crate::arena::ChannelArena`]
//! instead, so the advance loop scans contiguous memory.

use jm_isa::node::Coord;
use jm_isa::word::Word;
use jm_isa::TraceId;
use std::collections::VecDeque;

/// Router ports: six mesh directions plus ejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutPort {
    /// Toward larger X.
    XPos,
    /// Toward smaller X.
    XNeg,
    /// Toward larger Y.
    YPos,
    /// Toward smaller Y.
    YNeg,
    /// Toward larger Z.
    ZPos,
    /// Toward smaller Z.
    ZNeg,
    /// Delivery to the local node.
    Eject,
}

impl OutPort {
    /// All ports in arbitration order.
    pub const ALL: [OutPort; 7] = [
        OutPort::XPos,
        OutPort::XNeg,
        OutPort::YPos,
        OutPort::YNeg,
        OutPort::ZPos,
        OutPort::ZNeg,
        OutPort::Eject,
    ];

    /// Port index (0–6).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes a port index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 6`.
    #[inline]
    pub fn from_index(index: usize) -> OutPort {
        Self::ALL[index]
    }
}

/// Index of the injection input port.
pub(crate) const IN_INJECT: usize = 6;
/// Index of the ejection output port.
pub(crate) const OUT_EJECT: usize = 6;

/// Computes the e-cube (dimension-order) output port at `here` for a flit
/// destined for `dest`: resolve X first, then Y, then Z, then eject.
#[inline]
pub(crate) fn ecube_route(here: Coord, dest: Coord) -> usize {
    if dest.x != here.x {
        if dest.x > here.x {
            0
        } else {
            1
        }
    } else if dest.y != here.y {
        if dest.y > here.y {
            2
        } else {
            3
        }
    } else if dest.z != here.z {
        if dest.z > here.z {
            4
        } else {
            5
        }
    } else {
        OUT_EJECT
    }
}

/// Network-interface framing state for one priority's injection stream.
#[derive(Debug, Clone, Default)]
pub(crate) struct InjectState {
    /// Destination of the message currently being composed, if any.
    pub dest: Option<Coord>,
    /// Inject cycle of the current message's route word (for latency stats).
    pub msg_start: u64,
    /// Trace id of the current message ([`TraceId::NONE`] when untraced).
    pub trace: TraceId,
}

/// One node's router: the state that is *not* channel buffering. The input
/// rings, output ownership, occupancy, and credit timestamps live in the
/// shard's [`crate::arena::ChannelArena`] (structure-of-arrays), leaving
/// the router struct for the colder ejection/injection interface state.
#[derive(Debug, Clone)]
pub(crate) struct Router {
    pub coord: Coord,
    /// Ejected payload words awaiting the node (paired with the delivering
    /// message's trace id), per vnet.
    pub ejected: [VecDeque<(Word, TraceId)>; 2],
    /// Injection framing per vnet.
    pub inject: [InjectState; 2],
    /// Tracing only: trace id of the message currently streaming out of the
    /// ejection port, per vnet (wormhole routing ejects messages whole, so
    /// a changed id marks a new message's first payload word).
    pub eject_cur: [TraceId; 2],
    /// Fault-injection only: whether the message currently streaming out of
    /// the ejection port has already delivered its first payload word (the
    /// header), per vnet. Corruption skips the header — flipping a length
    /// bit would desynchronize the queue instead of modelling payload
    /// damage — and this flag is pure physical framing (set on the first
    /// payload word, cleared by the tail flit), so it needs no knowledge of
    /// message contents.
    pub eject_hdr_seen: [bool; 2],
}

impl Router {
    pub(crate) fn new(coord: Coord) -> Router {
        Router {
            coord,
            ejected: Default::default(),
            inject: Default::default(),
            eject_cur: [TraceId::NONE; 2],
            eject_hdr_seen: [false; 2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecube_orders_dimensions() {
        let here = Coord::new(3, 3, 3);
        assert_eq!(ecube_route(here, Coord::new(5, 0, 0)), 0); // X first
        assert_eq!(ecube_route(here, Coord::new(0, 0, 0)), 1);
        assert_eq!(ecube_route(here, Coord::new(3, 5, 0)), 2); // then Y
        assert_eq!(ecube_route(here, Coord::new(3, 1, 9)), 3);
        assert_eq!(ecube_route(here, Coord::new(3, 3, 9)), 4); // then Z
        assert_eq!(ecube_route(here, Coord::new(3, 3, 1)), 5);
        assert_eq!(ecube_route(here, here), OUT_EJECT);
    }

    #[test]
    fn port_index_round_trip() {
        for p in OutPort::ALL {
            assert_eq!(OutPort::from_index(p.index()), p);
        }
    }
}
