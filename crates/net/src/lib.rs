//! # jm-net
//!
//! Flit-level simulator of the J-Machine's 3-D mesh network.
//!
//! The modelled hardware (paper §2.1–2.2):
//!
//! * deterministic, dimension-order (e-cube) wormhole routing [Dally 90];
//! * channel bandwidth of **0.5 words/cycle** — a channel moves one 18-bit
//!   flit (half-word) per cycle;
//! * minimum latency of **1 cycle/hop** for the head flit;
//! * **two message priorities** sharing each physical channel: priority-1
//!   flits win channel arbitration and use separate buffers end to end;
//! * **fixed-priority output arbitration** among input ports, with through
//!   traffic preferred over injection — reproducing the unfairness the paper
//!   observed during radix sort (§4.3.2: some nodes "may be unable to inject
//!   a message into the network for an arbitrarily long period");
//! * **backpressure**: full downstream buffers block upstream channels, and a
//!   full injection FIFO surfaces to the processor as send faults.
//!
//! A message on the wire is the `route`-tagged destination word followed by
//! the payload words (whose first word must be a `msg` header). Each word is
//! two flits; the route word is stripped at the ejection port.
//!
//! # Example
//!
//! ```
//! use jm_net::{Network, NetConfig, InjectResult};
//! use jm_isa::{MeshDims, MsgPriority, NodeId, RouteWord, Word, MsgHeader};
//!
//! let mut net = Network::new(NetConfig::new(MeshDims::new(2, 1, 1)));
//! let src = NodeId(0);
//! let dims = net.config().dims;
//! let route = RouteWord::new(dims.coord(NodeId(1))).to_word();
//! let header = MsgHeader::new(100, 2).to_word();
//!
//! assert_eq!(net.inject(src, MsgPriority::P0, route, false), InjectResult::Accepted);
//! assert_eq!(net.inject(src, MsgPriority::P0, header, false), InjectResult::Accepted);
//! assert_eq!(net.inject(src, MsgPriority::P0, Word::int(7), true), InjectResult::Accepted);
//!
//! for _ in 0..40 { net.step(); }
//! assert_eq!(net.pop_delivered(NodeId(1), MsgPriority::P0), Some(header));
//! assert_eq!(net.pop_delivered(NodeId(1), MsgPriority::P0), Some(Word::int(7)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
mod bitset;
mod config;
mod flit;
mod network;
mod router;
mod shard;
mod stats;

pub use bitset::BitSet;
pub use config::{NetConfig, ScanPolicy};
pub use flit::Flit;
pub use network::Network;
pub use router::OutPort;
pub use shard::{edge_pair, Edge, InjectResult, NetShard};
pub use stats::NetStats;
