//! Network configuration.

use jm_isa::node::MeshDims;

/// How a shard's advance loop finds routers holding flits.
///
/// `Auto` (the default) flips between iterating the active-router bitset
/// (sparse traffic) and a dense linear scan of the occupancy array
/// (saturated traffic), keyed on the measured active-router count with
/// hysteresis — up-switch at 5/8 of the shard's routers, down-switch at
/// 1/4, so traffic hovering near one threshold cannot thrash the mode.
/// The strategies visit the same routers in the same ascending order, so
/// the choice is unobservable in simulated state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Congestion-aware switching with hysteresis.
    #[default]
    Auto,
    /// Always iterate the active-router bitset.
    ForcedSparse,
    /// Always scan every router's occupancy linearly.
    ForcedDense,
}

/// Configuration of the mesh network.
///
/// Defaults model the prototype's parameters; buffer depths are the small
/// values typical of wormhole routers of the era.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Mesh dimensions.
    pub dims: MeshDims,
    /// Per-input-port, per-priority buffer depth in flits.
    pub flit_buffer: usize,
    /// Injection FIFO depth in flits, per priority. Sized to hold at least
    /// one maximum-length composed message (the interface commits whole
    /// messages atomically).
    pub inject_fifo: usize,
    /// Pipeline latency from a `SEND` retiring to the word being visible to
    /// the local router, in cycles.
    pub inject_latency: u64,
    /// Ejection FIFO depth in words, per priority (the network-interface
    /// staging between the router and the message queue).
    pub eject_fifo: usize,
    /// Advance-loop scan strategy (auto-switching by default).
    pub scan: ScanPolicy,
    /// Whether a message committed into an otherwise-empty single-shard
    /// mesh may take the wormhole bulk-advance fast path (cycle-exact; see
    /// `shard::BulkMsg`). Off is only useful for differential testing.
    pub bulk: bool,
}

impl NetConfig {
    /// Creates the default configuration for a mesh of the given dimensions.
    pub fn new(dims: MeshDims) -> NetConfig {
        NetConfig {
            dims,
            flit_buffer: 4,
            inject_fifo: 64,
            inject_latency: 2,
            eject_fifo: 8,
            scan: ScanPolicy::default(),
            bulk: true,
        }
    }

    /// Configuration for the 512-node prototype (8×8×8).
    pub fn prototype_512() -> NetConfig {
        NetConfig::new(MeshDims::prototype_512())
    }

    /// Peak bisection bandwidth in bits per second, using the paper's
    /// convention: the mid-plane of the largest dimension, one 36-bit
    /// channel pair per node pair at 0.5 words/cycle. For the 8×8×8
    /// machine this is 14.4 Gbit/s (§2.2).
    pub fn bisection_capacity_bits(&self) -> f64 {
        let pairs = self.bisection_pairs() as f64;
        pairs * 0.5 * 36.0 * jm_isa::consts::CLOCK_HZ as f64
    }

    /// Number of node pairs straddling the bisection mid-plane.
    pub fn bisection_pairs(&self) -> u32 {
        // Bisect the largest dimension (z by construction of `for_nodes`;
        // in general, pick the max extent).
        let d = &self.dims;
        let (a, b, c) = (u32::from(d.x), u32::from(d.y), u32::from(d.z));
        let max = a.max(b).max(c);
        if max <= 1 {
            return 0;
        }
        a * b * c / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_bisection_is_14_4_gbits() {
        let cfg = NetConfig::prototype_512();
        assert_eq!(cfg.bisection_pairs(), 64);
        assert!((cfg.bisection_capacity_bits() - 14.4e9).abs() < 1e6);
    }

    #[test]
    fn single_node_has_no_bisection() {
        let cfg = NetConfig::new(MeshDims::new(1, 1, 1));
        assert_eq!(cfg.bisection_pairs(), 0);
    }
}
