//! Network statistics.

use jm_fault::FaultStats;
use jm_isa::consts::CLOCK_HZ;
use jm_traffic::TrafficStats;

/// Counters accumulated by the network across a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Total flit-hops moved over directional channels.
    pub flit_hops: u64,
    /// Flits that crossed the machine's bisection mid-plane (either
    /// direction).
    pub bisection_flits: u64,
    /// Payload words delivered to ejection FIFOs.
    pub delivered_words: u64,
    /// Messages fully delivered (tail flit ejected).
    pub delivered_msgs: u64,
    /// Sum over delivered messages of (tail-ejection cycle − inject cycle).
    pub latency_sum: u64,
    /// Maximum single-message latency observed.
    pub latency_max: u64,
    /// Messages injected (route words accepted).
    pub injected_msgs: u64,
    /// Fault-injection counters (all zero on fault-free runs).
    pub faults: FaultStats,
    /// Synthetic-traffic counters (all zero without a traffic plan).
    pub traffic: TrafficStats,
}

impl NetStats {
    /// Mean end-to-end (inject to tail-ejection) message latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_msgs == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_msgs as f64
        }
    }

    /// Observed bisection traffic in bits per second over `cycles` of
    /// simulated time, counting 18 bits per flit (paper convention; see
    /// `NetConfig::bisection_capacity_bits`).
    pub fn bisection_bits_per_sec(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.bisection_flits as f64 * 18.0 * CLOCK_HZ as f64 / cycles as f64
    }

    /// Sentinel `latency_max` in a [`NetStats::since`] window: the window
    /// delivered messages, but none of them set a new all-time maximum, so
    /// the true per-window maximum cannot be recovered from two cumulative
    /// snapshots. Callers that report a windowed max must treat this value
    /// as "unknown", not as a latency.
    pub const LATENCY_MAX_UNKNOWN: u64 = u64::MAX;

    /// Accumulates another counter set into this one (shard reduction):
    /// counters add, `latency_max` maxes.
    pub fn merge(&mut self, other: &NetStats) {
        self.flit_hops += other.flit_hops;
        self.bisection_flits += other.bisection_flits;
        self.delivered_words += other.delivered_words;
        self.delivered_msgs += other.delivered_msgs;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
        self.injected_msgs += other.injected_msgs;
        self.faults.merge(&other.faults);
        self.traffic.merge(&other.traffic);
    }

    /// Difference of two snapshots (`self` later minus `earlier`), for
    /// windowed measurement.
    ///
    /// All counters are exact diffs. `latency_max` is a running maximum, not
    /// a counter, so it cannot always be diffed:
    ///
    /// * no message delivered in the window → `0`;
    /// * the window raised the all-time maximum → that new maximum (exact:
    ///   it was observed inside the window);
    /// * otherwise → [`NetStats::LATENCY_MAX_UNKNOWN`] — the all-time
    ///   maximum predates the window, and returning it (as this method once
    ///   did) would silently attribute an old outlier to the window.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        let latency_max = if self.delivered_msgs == earlier.delivered_msgs {
            0
        } else if self.latency_max > earlier.latency_max {
            self.latency_max
        } else {
            NetStats::LATENCY_MAX_UNKNOWN
        };
        NetStats {
            flit_hops: self.flit_hops - earlier.flit_hops,
            bisection_flits: self.bisection_flits - earlier.bisection_flits,
            delivered_words: self.delivered_words - earlier.delivered_words,
            delivered_msgs: self.delivered_msgs - earlier.delivered_msgs,
            latency_sum: self.latency_sum - earlier.latency_sum,
            latency_max,
            injected_msgs: self.injected_msgs - earlier.injected_msgs,
            faults: self.faults.since(&earlier.faults),
            traffic: self.traffic.since(&earlier.traffic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_handles_empty() {
        assert_eq!(NetStats::default().mean_latency(), 0.0);
    }

    #[test]
    fn windowed_difference() {
        let early = NetStats {
            delivered_msgs: 5,
            latency_sum: 100,
            latency_max: 50,
            ..NetStats::default()
        };
        let late = NetStats {
            delivered_msgs: 9,
            latency_sum: 220,
            latency_max: 50,
            ..NetStats::default()
        };
        let diff = late.since(&early);
        assert_eq!(diff.delivered_msgs, 4);
        assert_eq!(diff.mean_latency(), 30.0);
        // The all-time max (50) was set *before* the window: reporting it as
        // the window max would be wrong, and the sentinel says so.
        assert_eq!(diff.latency_max, NetStats::LATENCY_MAX_UNKNOWN);
    }

    #[test]
    fn window_max_is_exact_when_the_window_sets_it() {
        let early = NetStats {
            delivered_msgs: 5,
            latency_max: 50,
            ..NetStats::default()
        };
        let late = NetStats {
            delivered_msgs: 7,
            latency_max: 80,
            ..NetStats::default()
        };
        // A latency of 80 was observed inside the window.
        assert_eq!(late.since(&early).latency_max, 80);
        // First-ever window: the running max grew from 0, also exact.
        let diff = late.since(&NetStats::default());
        assert_eq!(diff.latency_max, 80);
    }

    #[test]
    fn window_max_is_zero_for_empty_window() {
        let snap = NetStats {
            delivered_msgs: 5,
            latency_max: 50,
            ..NetStats::default()
        };
        let diff = snap.since(&snap.clone());
        assert_eq!(diff.delivered_msgs, 0);
        assert_eq!(diff.latency_max, 0);
    }

    #[test]
    fn bisection_rate_scales_with_clock() {
        let stats = NetStats {
            bisection_flits: 1000,
            ..NetStats::default()
        };
        // 1000 flits × 18 bits over 1000 cycles = 18 bits/cycle = 225 Mb/s.
        let rate = stats.bisection_bits_per_sec(1000);
        assert!((rate - 18.0 * CLOCK_HZ as f64).abs() < 1.0);
    }
}
