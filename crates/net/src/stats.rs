//! Network statistics.

use jm_isa::consts::CLOCK_HZ;

/// Counters accumulated by the network across a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Total flit-hops moved over directional channels.
    pub flit_hops: u64,
    /// Flits that crossed the machine's bisection mid-plane (either
    /// direction).
    pub bisection_flits: u64,
    /// Payload words delivered to ejection FIFOs.
    pub delivered_words: u64,
    /// Messages fully delivered (tail flit ejected).
    pub delivered_msgs: u64,
    /// Sum over delivered messages of (tail-ejection cycle − inject cycle).
    pub latency_sum: u64,
    /// Maximum single-message latency observed.
    pub latency_max: u64,
    /// Messages injected (route words accepted).
    pub injected_msgs: u64,
}

impl NetStats {
    /// Mean end-to-end (inject to tail-ejection) message latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_msgs == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_msgs as f64
        }
    }

    /// Observed bisection traffic in bits per second over `cycles` of
    /// simulated time, counting 18 bits per flit (paper convention; see
    /// `NetConfig::bisection_capacity_bits`).
    pub fn bisection_bits_per_sec(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.bisection_flits as f64 * 18.0 * CLOCK_HZ as f64 / cycles as f64
    }

    /// Difference of two snapshots (`self` later minus `earlier`), for
    /// windowed measurement.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            flit_hops: self.flit_hops - earlier.flit_hops,
            bisection_flits: self.bisection_flits - earlier.bisection_flits,
            delivered_words: self.delivered_words - earlier.delivered_words,
            delivered_msgs: self.delivered_msgs - earlier.delivered_msgs,
            latency_sum: self.latency_sum - earlier.latency_sum,
            latency_max: self.latency_max,
            injected_msgs: self.injected_msgs - earlier.injected_msgs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_handles_empty() {
        assert_eq!(NetStats::default().mean_latency(), 0.0);
    }

    #[test]
    fn windowed_difference() {
        let early = NetStats {
            delivered_msgs: 5,
            latency_sum: 100,
            ..NetStats::default()
        };
        let late = NetStats {
            delivered_msgs: 9,
            latency_sum: 220,
            ..NetStats::default()
        };
        let diff = late.since(&early);
        assert_eq!(diff.delivered_msgs, 4);
        assert_eq!(diff.mean_latency(), 30.0);
    }

    #[test]
    fn bisection_rate_scales_with_clock() {
        let stats = NetStats {
            bisection_flits: 1000,
            ..NetStats::default()
        };
        // 1000 flits × 18 bits over 1000 cycles = 18 bits/cycle = 225 Mb/s.
        let rate = stats.bisection_bits_per_sec(1000);
        assert!((rate - 18.0 * CLOCK_HZ as f64).abs() < 1.0);
    }
}
