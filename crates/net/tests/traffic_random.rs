//! Randomized tests: under arbitrary random traffic the network never loses,
//! duplicates, corrupts, or interleaves message payloads.
//!
//! Formerly proptest-based; now driven by the in-tree seeded PRNG so the
//! workspace tests run hermetically.

use jm_isa::instr::MsgPriority;
use jm_isa::node::{MeshDims, NodeId, RouteWord};
use jm_isa::word::{MsgHeader, Word};
use jm_net::{InjectResult, NetConfig, Network};
use jm_prng::Prng;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Msg {
    src: u32,
    dst: u32,
    priority: MsgPriority,
    /// Payload values; the message is sent as header + these ints, where the
    /// header encodes (src, seq) so the receiver can reassociate.
    body: Vec<i32>,
    seq: u32,
}

fn run_traffic(dims: MeshDims, msgs: Vec<Msg>) {
    let mut net = Network::new(NetConfig::new(dims));
    // Word streams awaiting injection, merged per (src, priority): a node
    // injects one message at a time per priority (the NI has one framing
    // state machine per priority).
    let mut merged: HashMap<(u32, MsgPriority), Vec<(Word, bool)>> = HashMap::new();
    let mut expected: HashMap<(u32, u32), Vec<i32>> = HashMap::new();
    for m in &msgs {
        let route = RouteWord::new(dims.coord(NodeId(m.dst))).to_word();
        // Encode (src, seq) into the header ip field (20 bits available).
        let ip = (m.src << 10) | m.seq;
        let header = MsgHeader::new(ip, m.body.len() as u32 + 1).to_word();
        let mut words = vec![(route, false), (header, m.body.is_empty())];
        for (i, &v) in m.body.iter().enumerate() {
            words.push((Word::int(v), i + 1 == m.body.len()));
        }
        merged.entry((m.src, m.priority)).or_default().extend(words);
        expected.insert((m.src, m.seq), m.body.clone());
    }
    type Stream = (NodeId, MsgPriority, Vec<(Word, bool)>);
    let mut streams: Vec<Stream> = merged
        .into_iter()
        .map(|((src, pri), mut words)| {
            words.reverse();
            (NodeId(src), pri, words)
        })
        .collect();
    streams.sort_by_key(|(src, pri, _)| (src.0, pri.index()));

    let mut received: HashMap<(NodeId, MsgPriority), Vec<Word>> = HashMap::new();
    let mut cycles = 0u64;
    loop {
        let mut all_empty = true;
        for (src, pri, words) in streams.iter_mut() {
            // Offer at most one word per stream per cycle; a node's two
            // priority FIFOs are independent NI state machines.
            if let Some(&(word, end)) = words.last() {
                all_empty = false;
                match net.inject(*src, *pri, word, end) {
                    InjectResult::Accepted => {
                        words.pop();
                    }
                    InjectResult::Stall => {}
                    InjectResult::BadRoute => panic!("bad framing in generator"),
                }
            }
        }
        net.step();
        for node in dims.iter_nodes() {
            for pri in MsgPriority::ALL {
                while let Some(w) = net.pop_delivered(node, pri) {
                    received.entry((node, pri)).or_default().push(w);
                }
            }
        }
        cycles += 1;
        if all_empty && net.in_flight() == 0 {
            break;
        }
        assert!(cycles < 200_000, "network failed to drain");
    }

    // Parse the received streams: wormhole routing guarantees messages are
    // contiguous per (destination, priority) stream.
    let mut seen = 0usize;
    for ((_node, _pri), words) in received {
        let mut i = 0;
        while i < words.len() {
            let header = MsgHeader::from_word(words[i]);
            assert_eq!(words[i].tag(), jm_isa::Tag::Msg, "stream out of sync");
            let src = header.ip >> 10;
            let seq = header.ip & 0x3ff;
            let body = expected
                .remove(&(src, seq))
                .unwrap_or_else(|| panic!("unexpected or duplicated message {src}/{seq}"));
            assert_eq!(header.len as usize, body.len() + 1);
            for (k, &v) in body.iter().enumerate() {
                assert_eq!(words[i + 1 + k].as_i32(), v, "payload corrupted");
            }
            i += header.len as usize;
            seen += 1;
        }
    }
    assert_eq!(seen, msgs.len());
    assert!(expected.is_empty(), "lost messages: {expected:?}");
}

#[test]
fn random_traffic_is_conserved() {
    let dims = MeshDims::new(3, 3, 2);
    let nodes = dims.nodes();
    for case in 0..24u64 {
        let mut rng = Prng::from_label("random_traffic", case);
        let n_msgs = rng.range_usize(1, 60);
        let mut msgs = Vec::new();
        for seq in 0..n_msgs {
            let src = rng.range_u32(0, nodes);
            let dst = rng.range_u32(0, nodes);
            let len = rng.range_usize(1, 10);
            let priority = if rng.chance(0.25) {
                MsgPriority::P1
            } else {
                MsgPriority::P0
            };
            msgs.push(Msg {
                src,
                dst,
                priority,
                body: (0..len).map(|_| rng.range_i32(-1000, 1000)).collect(),
                seq: seq as u32,
            });
        }
        run_traffic(dims, msgs);
    }
}

#[test]
fn conservation_holds_on_a_line() {
    // Deterministic stress on a 4×1×1 line with overlapping paths.
    let dims = MeshDims::new(4, 1, 1);
    let mut msgs = Vec::new();
    for seq in 0..20 {
        msgs.push(Msg {
            src: seq % 4,
            dst: 3 - (seq % 4),
            priority: MsgPriority::P0,
            body: vec![seq as i32; ((seq % 5) + 1) as usize],
            seq,
        });
    }
    run_traffic(dims, msgs);
}
