//! # jm-runtime
//!
//! J-Machine system software, written in MDP assembly through the
//! [`jm_asm::Builder`] API — the level at which the paper's own benchmark
//! programs were written ("we perform modest hand-tuning of a few of the
//! critical code sequences", §4.1).
//!
//! Each module contributes handlers, routines, and state blocks to a
//! program under construction:
//!
//! * [`nnr`] — the software node-id → router-address conversion whose cost
//!   shows up as the "NNR Calc" slice of Figure 6;
//! * [`rpc`] — remote-read and ping handlers used by the latency and
//!   overhead micro-benchmarks (Figure 2, Table 1);
//! * [`barrier`] — the scan-style dissemination barrier of Table 3
//!   (`O(N log N)` messages in `log N` waves, a butterfly mapped onto the
//!   3-D mesh);
//! * [`futures`] — `cfut` fault handling: context save/restore through the
//!   hardware staging buffer, suspension, and producer-side restart
//!   (Table 2's save/restore costs);
//! * [`tree`] — a binary combining tree (used by Radix Sort's
//!   count-combining phase and as a barrier ablation);
//! * [`rand`] — a small LCG for synthetic traffic generation;
//! * [`reliable`] — sequence-numbered idempotent RPC with watchdog resend
//!   and exponential backoff, the guest-level recovery protocol for
//!   fault-injection runs (checksum-dropped messages are retried until
//!   acked, applying each operation exactly once).
//!
//! # Calling convention
//!
//! Routines are called with `JAL R3, label` and return with `JMP R3`.
//! Arguments and results use `R0`–`R2`; `A0`/`A1` are caller-saved scratch.
//! There is no stack: routines are leaves unless documented otherwise.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod barrier;
pub mod futures;
pub mod nnr;
pub mod rand;
pub mod reliable;
pub mod rpc;
pub mod tree;
