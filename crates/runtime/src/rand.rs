//! A linear congruential generator for synthetic traffic (Figure 3's
//! random-destination loop).

use jm_asm::Builder;
use jm_isa::instr::AluOp;
use jm_isa::reg::DReg::*;

/// Label of the LCG step routine.
pub const LCG_NEXT: &str = "lcg_next";

/// Installs [`LCG_NEXT`]: `R0 = (R0 * 1664525 + 1013904223) & 0x7fffffff`.
///
/// Input/output in `R0`; no other registers touched. Link in `R3`.
pub fn install(b: &mut Builder) {
    b.label(LCG_NEXT);
    b.alu(AluOp::Mul, R0, R0, 1664525);
    b.alu(AluOp::Add, R0, R0, 1013904223);
    b.alu(AluOp::And, R0, R0, 0x7fffffff);
    b.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_asm::Region;
    use jm_isa::node::NodeId;
    use jm_isa::operand::MemRef;
    use jm_isa::reg::AReg::*;
    use jm_machine::{JMachine, MachineConfig};

    #[test]
    fn matches_host_reference() {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 4);
        b.label("main");
        b.load_seg(A0, "out");
        b.movi(R0, 12345);
        for i in 0..4u32 {
            b.call(LCG_NEXT);
            b.mov(MemRef::disp(A0, i), R0);
        }
        b.halt();
        b.entry("main");
        install(&mut b);
        let p = b.assemble().unwrap();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(1));
        m.run_until_quiescent(10_000).unwrap();
        let mut seed: i64 = 12345;
        for i in 0..4 {
            seed = (seed * 1664525 + 1013904223) & 0x7fffffff;
            assert_eq!(
                m.read_word(NodeId(0), out.base + i).as_i32() as i64,
                seed,
                "step {i}"
            );
        }
    }
}
