//! Node-id → router-address conversion ("NNR calculation").
//!
//! The MDP has no automatic translation from linear node indices to router
//! addresses; applications convert in software, and the paper's Figure 6
//! shows the cost as a distinct slice of application time. §5 proposes a
//! TLB for exactly this.

use jm_asm::Builder;
use jm_isa::instr::{AluOp, StatClass};
use jm_isa::operand::Special;
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::tag::Tag;

/// Label of the conversion routine.
pub const NID_TO_ROUTE: &str = "nid_to_route";

/// Installs [`NID_TO_ROUTE`].
///
/// * Input: `R0` = linear node id (`int`).
/// * Output: `R0` = `route`-tagged router address.
/// * Clobbers `R1`, `R2`, `A1`. Link in `R3`.
/// * Attribution: marks [`StatClass::NnrCalc`]; the **caller** re-marks its
///   own class after the call.
pub fn install(b: &mut Builder) {
    b.label(NID_TO_ROUTE);
    b.mark(StatClass::NnrCalc);
    // Unpack mesh extents from the DIMS special register.
    b.mov(R1, Special::Dims);
    b.wtag(R1, R1, Tag::Int.bits() as i32);
    b.alu(AluOp::And, R2, R1, 31); // dx
    b.mov(A1, R1); // stash packed dims
    b.alu(AluOp::Rem, R1, R0, R2); // x
    b.alu(AluOp::Div, R0, R0, R2); // rest
    b.alu(AluOp::Lsh, R2, A1, -5);
    b.alu(AluOp::And, R2, R2, 31); // dy
    b.mov(A1, R1); // stash x
    b.alu(AluOp::Rem, R1, R0, R2); // y
    b.alu(AluOp::Div, R0, R0, R2); // z
    b.alu(AluOp::Lsh, R1, R1, 5);
    b.alu(AluOp::Lsh, R0, R0, 10);
    b.alu(AluOp::Or, R0, R0, R1);
    b.alu(AluOp::Or, R0, R0, A1);
    b.wtag(R0, R0, Tag::Route.bits() as i32);
    b.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_asm::Region;
    use jm_isa::node::{MeshDims, NodeId, RouteWord};
    use jm_isa::operand::MemRef;
    use jm_machine::{JMachine, MachineConfig, StartPolicy};

    #[test]
    fn converts_every_id_in_a_4x2x2_mesh() {
        // Each node converts its own NID and stores the result; the host
        // compares against the reference conversion.
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 1);
        b.label("main");
        b.mov(R0, Special::Nid);
        b.call(NID_TO_ROUTE);
        b.mark(StatClass::Compute);
        b.load_seg(A0, "out");
        b.mov(MemRef::disp(A0, 0), R0);
        b.halt();
        b.entry("main");
        install(&mut b);
        let p = b.assemble().unwrap();
        let out = p.segment("out");
        let cfg = MachineConfig::with_dims(MeshDims::new(4, 2, 2)).start(StartPolicy::AllNodes);
        let mut m = JMachine::new(p, cfg);
        m.run_until_quiescent(100_000).unwrap();
        for id in 0..16 {
            let got = m.read_word(NodeId(id), out.base);
            let want = RouteWord::new(MeshDims::new(4, 2, 2).coord(NodeId(id))).to_word();
            assert_eq!(got, want, "node {id}");
        }
        // The conversion time must land in the NnrCalc class.
        assert!(m.stats().nodes.class_cycles(StatClass::NnrCalc) > 0);
    }
}
