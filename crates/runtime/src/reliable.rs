//! Reliable (at-least-once send, exactly-once apply) RPC over a lossy
//! network — the guest-level recovery protocol for fault-injection runs.
//!
//! The network layer never loses messages on its own, but checksum-mode
//! fault plans (see `jm-fault`) drop corrupted messages whole at dispatch.
//! This module layers end-to-end reliability on top, the way a real
//! J-Machine application would have had to:
//!
//! * every request carries a **sequence number** drawn from a per-client
//!   monotone counter;
//! * the responder applies the operation only when the sequence number is
//!   **greater** than the last one applied (so duplicate and stale copies
//!   re-ack but never re-apply — the RPC is idempotent end to end);
//! * the responder **always acks**, echoing the sequence number (the
//!   first ack itself may have been lost);
//! * the client polls for the ack under a **watchdog budget** (counted in
//!   poll iterations, each a fixed handful of cycles); on exhaustion it
//!   resends the *same* sequence number with a **doubled budget**
//!   (exponential backoff, so a string of losses cannot livelock the
//!   retry traffic against itself).
//!
//! The protocol models one client/one responder pair (sequence numbers
//! are compared against a single `rel_last` word); that is exactly the
//! shape the fault-injection tests and benchmarks need.
//!
//! Handlers and message formats (wire messages additionally carry the
//! checksum trailer appended by the network when checksum mode is on):
//!
//! | label | message | meaning |
//! |-------|---------|---------|
//! | `rel_incr` | `[hdr, reply_route, seq]` | increment `rel_count` if `seq > rel_last`, always ack |
//! | `rel_ack`  | `[hdr, seq]` | record `seq` in `rel_acked` |
//!
//! Call [`CALL`] with `R0` = target route word from a **background**
//! thread (the poll loop would starve P0 dispatch if run at P0);
//! clobbers `R0`–`R2`, `A0`, `A1`. Returns once the ack for this call's
//! sequence number has arrived.

use jm_asm::{hdr, Builder, Region};
use jm_isa::instr::{AluOp, MsgPriority, StatClass};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};

/// Responder: the replicated counter the RPC increments (1 word).
pub const COUNT: &str = "rel_count";
/// Responder: highest sequence number applied (1 word).
pub const LAST: &str = "rel_last";
/// Client: current sequence number (1 word, pre-incremented per call).
pub const SEQ: &str = "rel_seq";
/// Client: highest acked sequence number (1 word).
pub const ACKED: &str = "rel_acked";
/// Client: per-attempt initial watchdog budget (doubles on each retry).
pub const BUDGET: &str = "rel_budget0";
/// Client: remaining poll iterations of the current attempt.
pub const COUNTDOWN: &str = "rel_budget";
/// Client: number of watchdog-triggered resends (observability).
pub const RETRIES: &str = "rel_retries";
/// The client routine: reliable increment of the target's [`COUNT`].
pub const CALL: &str = "rel_call";

/// Watchdog budget of the first attempt, in poll iterations. Each
/// iteration costs a fixed handful of cycles, so this is a cycle budget
/// up to a constant factor; it comfortably exceeds a fault-free
/// round-trip, making spurious resends rare without faults.
pub const INITIAL_BUDGET: i32 = 64;

/// A self-contained demo program: node 0 reliably increments node
/// `target`'s [`COUNT`] `calls` times from a background thread, then
/// suspends (never halts — late duplicate acks must still dispatch).
/// Used by the runtime tests and the `fault_sweep` degradation bench.
pub fn demo_program(calls: i32, target: u32) -> jm_asm::Program {
    use crate::nnr;
    let mut b = Builder::new();
    b.reserve("tgt", Region::Imem, 1);
    b.data("done_calls", Region::Imem, vec![jm_isa::Word::int(0)]);
    b.label("main");
    b.movi(R0, target as i32);
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "tgt");
    b.mov(MemRef::disp(A0, 0), R0);
    b.label("call_loop");
    b.load_seg(A0, "tgt");
    b.mov(R0, MemRef::disp(A0, 0));
    b.call(CALL);
    b.load_seg(A0, "done_calls");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.alu(AluOp::Lt, R2, R2, calls);
    b.bt(R2, "call_loop");
    // Suspend, not halt: late duplicate acks must still dispatch
    // (a halted node would strand them).
    b.suspend();
    b.entry("main");
    install(&mut b);
    nnr::install(&mut b);
    b.assemble().expect("reliable-RPC demo assembles")
}

/// Installs the reliable-RPC handlers, client routine, and state blocks.
pub fn install(b: &mut Builder) {
    use MsgPriority::P0;
    // All state words are arithmetic operands before they are first
    // written, so they need `int 0` images (a `reserve` block reads back
    // nil-tagged and would fault the first ALU op).
    for name in [COUNT, LAST, SEQ, ACKED, BUDGET, COUNTDOWN, RETRIES] {
        b.data(name, Region::Imem, vec![jm_isa::Word::int(0)]);
    }

    // Responder: apply-if-new, always ack.
    b.label("rel_incr");
    b.mark(StatClass::Comm);
    b.mov(R0, MemRef::disp(A3, 2)); // seq
    b.load_seg(A0, LAST);
    b.mov(R1, MemRef::disp(A0, 0));
    b.alu(AluOp::Lt, R1, R1, R0); // last < seq → first time seen
    b.bf(R1, "rel_incr_ack"); // duplicate/stale: ack without applying
    b.mov(MemRef::disp(A0, 0), R0); // last := seq
    b.load_seg(A1, COUNT);
    b.mov(R2, MemRef::disp(A1, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A1, 0), R2);
    b.label("rel_incr_ack");
    b.send(P0, MemRef::disp(A3, 1)); // reply route
    b.send2e(P0, hdr("rel_ack", 2), R0);
    b.suspend();

    // Client ack handler: record the acked sequence number. Sequence
    // numbers are monotone per client, so a plain store suffices — a
    // stale ack writes a smaller value the poll loop ignores, and is
    // immediately overwritten when the awaited ack lands.
    b.label("rel_ack");
    b.mark(StatClass::Comm);
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, ACKED);
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();

    // Client routine. R0 = target route word.
    b.label(CALL);
    b.load_seg(A0, SEQ);
    b.mov(R1, MemRef::disp(A0, 0));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 0), R1); // R1 = this call's seq
    b.load_seg(A0, BUDGET);
    b.movi(R2, INITIAL_BUDGET);
    b.mov(MemRef::disp(A0, 0), R2);

    b.label("rel_send");
    b.load_seg(A0, BUDGET);
    b.mov(R2, MemRef::disp(A0, 0));
    b.load_seg(A0, COUNTDOWN);
    b.mov(MemRef::disp(A0, 0), R2); // countdown := budget
    b.send(P0, R0);
    b.send2(P0, hdr("rel_incr", 3), Special::Nnr);
    b.sende(P0, R1);
    b.load_seg(A1, ACKED);

    b.label("rel_poll");
    b.mov(R2, MemRef::disp(A1, 0));
    b.alu(AluOp::Eq, R2, R2, R1);
    b.bt(R2, "rel_done");
    b.load_seg(A0, COUNTDOWN);
    b.mov(R2, MemRef::disp(A0, 0));
    b.subi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.bnz(R2, "rel_poll");
    // Watchdog fired: count the retry, double the budget, resend the
    // same sequence number (idempotent, so a raced original is harmless).
    b.load_seg(A0, RETRIES);
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.load_seg(A0, BUDGET);
    b.mov(R2, MemRef::disp(A0, 0));
    b.alu(AluOp::Add, R2, R2, R2);
    b.mov(MemRef::disp(A0, 0), R2);
    b.br("rel_send");

    b.label("rel_done");
    b.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::consts::FaultKind;
    use jm_isa::node::NodeId;
    use jm_machine::{FaultSpec, JMachine, MachineConfig};

    #[test]
    fn survives_without_faults() {
        let p = demo_program(5, 7);
        let count = p.segment(COUNT);
        let retries = p.segment(RETRIES);
        let mut m = JMachine::new(p, MachineConfig::new(8));
        m.run_until_quiescent(1_000_000).unwrap();
        assert_eq!(m.read_word(NodeId(7), count.base).as_i32(), 5);
        // Fault-free: the first attempt's budget covers the round trip.
        assert_eq!(m.read_word(NodeId(0), retries.base).as_i32(), 0);
    }

    #[test]
    fn exactly_once_under_message_corruption() {
        // Heavy payload corruption with checksum validation: requests and
        // acks are dropped at dispatch, the watchdog resends, duplicates
        // race their originals — and the counter must still end exact.
        let p = demo_program(5, 7);
        let count = p.segment(COUNT);
        let retries = p.segment(RETRIES);
        let spec = FaultSpec::new(1234).corrupt(60_000).checksums(true);
        let mut m = JMachine::new(p, MachineConfig::new(8).fault(spec));
        m.run_until_quiescent(5_000_000).unwrap();
        assert_eq!(
            m.read_word(NodeId(7), count.base).as_i32(),
            5,
            "lost or double-applied increments"
        );
        let stats = m.stats();
        let dropped = stats.nodes.faults[FaultKind::CorruptMessage.vector() as usize];
        assert!(dropped > 0, "plan corrupted nothing — weaken the test seed");
        assert!(
            m.read_word(NodeId(0), retries.base).as_i32() > 0,
            "no watchdog retry despite {dropped} dropped message(s)"
        );
        assert!(stats.net.faults.corrupted_words > 0);
    }
}
