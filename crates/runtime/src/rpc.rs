//! Remote-procedure-call handlers for the latency and overhead
//! micro-benchmarks (Figure 2, Table 1, Figure 4).
//!
//! All request messages carry the reply route word so the remote node never
//! pays NNR-calculation costs inside the measured window, matching the
//! paper's methodology (the measured quantity is mechanism cost, not
//! address arithmetic).
//!
//! Handlers and message formats:
//!
//! | label | request | reply |
//! |-------|---------|-------|
//! | `rpc_ping` | `[hdr, reply_route]` (2 words) | `[rpc_ack0]` (1 word) |
//! | `rpc_read1` | `[hdr, seg, reply_route]` (3 words) | `[rpc_ack1, w]` (2 words) |
//! | `rpc_read6` | `[hdr, seg, reply_route]` (3 words) | `[rpc_ack6, w0..w5]` (7 words) |
//!
//! The ack handlers store the payload into `rpc_data` and finally write 1
//! into `rpc_flag[0]`, which the requester polls.

use jm_asm::{hdr, Builder, Region};
use jm_isa::instr::{MsgPriority, StatClass};
use jm_isa::operand::MemRef;
use jm_isa::reg::{AReg::*, DReg::*};

/// Completion flag block (1 word, internal memory).
pub const FLAG: &str = "rpc_flag";
/// Reply payload block (8 words, internal memory).
pub const DATA: &str = "rpc_data";
/// Source blocks remote reads target: internal and external.
pub const SRC_IMEM: &str = "rpc_src_imem";
/// External-memory source block.
pub const SRC_EMEM: &str = "rpc_src_emem";

/// Installs the RPC handlers and their state blocks.
pub fn install(b: &mut Builder) {
    use MsgPriority::P0;
    b.reserve(FLAG, Region::Imem, 1);
    b.reserve(DATA, Region::Imem, 8);
    b.data(
        SRC_IMEM,
        Region::Imem,
        (0..8).map(|i| jm_isa::Word::int(100 + i)).collect(),
    );
    b.data(
        SRC_EMEM,
        Region::Emem,
        (0..8).map(|i| jm_isa::Word::int(200 + i)).collect(),
    );

    // Ping: bounce a 1-word ack back.
    b.label("rpc_ping");
    b.mark(StatClass::Comm);
    b.send(P0, MemRef::disp(A3, 1));
    b.sende(P0, hdr("rpc_ack0", 1));
    b.suspend();

    // Remote read of 1 word through the segment descriptor in the message.
    b.label("rpc_read1");
    b.mark(StatClass::Comm);
    b.mov(A0, MemRef::disp(A3, 1));
    b.mov(R0, MemRef::disp(A0, 0));
    b.send(P0, MemRef::disp(A3, 2));
    b.send2e(P0, hdr("rpc_ack1", 2), R0);
    b.suspend();

    // Remote read of 6 words.
    b.label("rpc_read6");
    b.mark(StatClass::Comm);
    b.mov(A0, MemRef::disp(A3, 1));
    b.send(P0, MemRef::disp(A3, 2));
    b.send(P0, hdr("rpc_ack6", 7));
    b.mov(R0, MemRef::disp(A0, 0));
    b.mov(R1, MemRef::disp(A0, 1));
    b.send2(P0, R0, R1);
    b.mov(R0, MemRef::disp(A0, 2));
    b.mov(R1, MemRef::disp(A0, 3));
    b.send2(P0, R0, R1);
    b.mov(R0, MemRef::disp(A0, 4));
    b.mov(R1, MemRef::disp(A0, 5));
    b.send2e(P0, R0, R1);
    b.suspend();

    // Acks: store payload, then raise the completion flag.
    b.label("rpc_ack0");
    b.mark(StatClass::Comm);
    b.load_seg(A0, FLAG);
    b.mov(MemRef::disp(A0, 0), 1);
    b.suspend();

    b.label("rpc_ack1");
    b.mark(StatClass::Comm);
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, DATA);
    b.mov(MemRef::disp(A0, 0), R0);
    b.load_seg(A0, FLAG);
    b.mov(MemRef::disp(A0, 0), 1);
    b.suspend();

    b.label("rpc_ack6");
    b.mark(StatClass::Comm);
    b.load_seg(A0, DATA);
    for i in 0..6u32 {
        b.mov(R0, MemRef::disp(A3, 1 + i));
        b.mov(MemRef::disp(A0, i), R0);
    }
    b.load_seg(A0, FLAG);
    b.mov(MemRef::disp(A0, 0), 1);
    b.suspend();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnr;
    use jm_isa::instr::AluOp;
    use jm_isa::node::NodeId;
    use jm_isa::operand::Special;
    use jm_machine::{JMachine, MachineConfig};

    /// Node 0 pings node 7 and then remote-reads 6 words from its external
    /// memory, recording completion.
    #[test]
    fn ping_and_read_round_trips() {
        let mut b = Builder::new();
        b.reserve("done", Region::Imem, 1);
        b.label("main");
        // Route word for node 7 of a 2x2x2 machine = (1,1,1).
        b.movi(R2, 7);
        b.mov(R0, R2);
        b.call(nnr::NID_TO_ROUTE);
        b.mark(StatClass::Compute);
        b.mov(R2, R0); // target route
                       // --- ping ---
        b.load_seg(A1, FLAG);
        b.mov(MemRef::disp(A1, 0), 0);
        b.send(MsgPriority::P0, R2);
        b.send2e(MsgPriority::P0, hdr("rpc_ping", 2), Special::Nnr);
        b.label("wait1");
        b.mov(R1, MemRef::disp(A1, 0));
        b.bz(R1, "wait1");
        // --- read 6 from remote Emem ---
        b.mov(MemRef::disp(A1, 0), 0);
        b.send(MsgPriority::P0, R2);
        b.send2(MsgPriority::P0, hdr("rpc_read6", 3), jm_asm::seg(SRC_EMEM));
        b.sende(MsgPriority::P0, Special::Nnr);
        b.label("wait2");
        b.mov(R1, MemRef::disp(A1, 0));
        b.bz(R1, "wait2");
        // Sum the six words into "done".
        b.load_seg(A0, DATA);
        b.movi(R0, 0);
        for i in 0..6u32 {
            b.alu(AluOp::Add, R0, R0, MemRef::disp(A0, i));
        }
        b.load_seg(A0, "done");
        b.mov(MemRef::disp(A0, 0), R0);
        b.halt();
        b.entry("main");
        install(&mut b);
        nnr::install(&mut b);
        let p = b.assemble().unwrap();
        let done = p.segment("done");
        let mut m = JMachine::new(p, MachineConfig::new(8));
        m.run_until_quiescent(100_000).unwrap();
        // 200+201+...+205 = 1215.
        assert_eq!(m.read_word(NodeId(0), done.base).as_i32(), 1215);
        let stats = m.stats();
        assert_eq!(stats.net.delivered_msgs, 4);
        assert!(stats.nodes.class_cycles(StatClass::Comm) > 0);
    }
}
