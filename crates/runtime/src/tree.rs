//! A binary combining tree over node ids (parent of `i` is `(i-1)/2`).
//!
//! Every node contributes one value per round with `JAL R3, tree_add`
//! (value in `R0`); internal nodes accumulate their subtree sum and forward
//! it upward; when the root's count completes it posts the configured
//! continuation to itself with the machine-wide total as the argument.
//!
//! Radix Sort uses the same pattern (vectorized) for its count-combining
//! phase (§4.3.2: "the counts computed by each node are combined … using a
//! binary combining/distributing tree"), and the tree doubles as a barrier
//! ablation.
//!
//! **Rounds must not overlap**: a node may contribute to round `k+1` only
//! after the round-`k` result has been observed (true for phase-structured
//! uses like Radix Sort).

use crate::nnr;
use jm_asm::{hdr, lab, Builder, Region};
use jm_isa::instr::{AluOp, MsgPriority::P0, StatClass};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::tag::Tag;
use jm_isa::word::Word;

/// Per-node contribution routine label.
pub const TREE_ADD: &str = "tree_add";
/// Per-node initialization routine label (call once before first use).
pub const TREE_INIT: &str = "tree_init";
/// Upward-combining message handler label.
pub const TREE_UP: &str = "tree_up";
/// State block name.
pub const STATE: &str = "tree_state";

// State layout: [0] acc, [1] arrived, [2] expected, [3] stash, [4] exit.

/// Installs the combining tree. On completion the root node posts
/// `[hdr(cont_label, 2), total]` to itself; `cont_label` must be defined by
/// the caller's program. Requires [`nnr::install`].
pub fn install(b: &mut Builder, cont_label: &str) {
    b.data(STATE, Region::Imem, vec![Word::int(0); 8]);

    // --- tree_init: expected = 1 + #children; clobbers R0-R2, A0. ---
    b.label(TREE_INIT);
    b.load_seg(A0, STATE);
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(MemRef::disp(A0, 1), 0);
    b.mov(R0, Special::Nid);
    b.alu(AluOp::Lsh, R1, R0, 1);
    b.addi(R1, R1, 1); // 2i+1
    b.movi(R2, 1);
    b.alu(AluOp::Lt, R0, R1, Special::NNodes);
    b.wtag(R0, R0, Tag::Int.bits() as i32);
    b.alu(AluOp::Add, R2, R2, R0);
    b.addi(R1, R1, 1); // 2i+2
    b.alu(AluOp::Lt, R0, R1, Special::NNodes);
    b.wtag(R0, R0, Tag::Int.bits() as i32);
    b.alu(AluOp::Add, R2, R2, R0);
    b.mov(MemRef::disp(A0, 2), R2);
    b.ret();

    // --- tree_add: R0 = contribution; clobbers R0-R2, A0, A1. ---
    b.label(TREE_ADD);
    b.mark(StatClass::Sync);
    b.load_seg(A0, STATE);
    b.mov(MemRef::disp(A0, 4), R3);
    b.br("tree_accum");

    // --- upward handler: [hdr, value] ---
    b.label(TREE_UP);
    b.mark(StatClass::Sync);
    b.load_seg(A0, STATE);
    b.mov(R0, lab("tree_exit"));
    b.mov(MemRef::disp(A0, 4), R0);
    b.mov(R0, MemRef::disp(A3, 1));

    b.label("tree_accum");
    b.mov(R1, MemRef::disp(A0, 0));
    b.alu(AluOp::Add, R1, R1, R0);
    b.mov(MemRef::disp(A0, 0), R1);
    b.mov(R1, MemRef::disp(A0, 1));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 1), R1);
    b.alu(AluOp::Eq, R2, R1, MemRef::disp(A0, 2));
    b.bf(R2, "tree_done");
    // Subtree complete: reset and forward.
    b.mov(R1, MemRef::disp(A0, 0));
    b.mov(MemRef::disp(A0, 0), 0);
    b.mov(MemRef::disp(A0, 1), 0);
    b.mov(MemRef::disp(A0, 3), R1);
    b.mov(R0, Special::Nid);
    b.bz(R0, "tree_root");
    b.subi(R0, R0, 1);
    b.alu(AluOp::Ash, R0, R0, -1); // parent
    b.jal(R3, nnr::NID_TO_ROUTE);
    b.mark(StatClass::Sync);
    b.send(P0, R0);
    b.send2e(P0, hdr(TREE_UP, 2), MemRef::disp(A0, 3));
    b.br("tree_done");
    b.label("tree_root");
    b.send(P0, Special::Nnr);
    b.send2e(P0, hdr(cont_label, 2), MemRef::disp(A0, 3));
    b.label("tree_done");
    b.jmp(MemRef::disp(A0, 4));
    b.label("tree_exit");
    b.suspend();
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::node::NodeId;
    use jm_machine::{JMachine, MachineConfig, StartPolicy};

    /// Every node contributes `nid + 1`; the root's continuation stores the
    /// grand total.
    fn sum_program() -> jm_asm::Program {
        let mut b = Builder::new();
        b.reserve("total", Region::Imem, 1);
        b.label("main");
        b.call(TREE_INIT);
        b.mov(R0, Special::Nid);
        b.addi(R0, R0, 1);
        b.call(TREE_ADD);
        b.suspend();
        b.label("sum_done");
        b.mark(StatClass::Compute);
        b.mov(R0, MemRef::disp(A3, 1));
        b.load_seg(A0, "total");
        b.mov(MemRef::disp(A0, 0), R0);
        b.suspend();
        b.entry("main");
        install(&mut b, "sum_done");
        nnr::install(&mut b);
        b.assemble().unwrap()
    }

    #[test]
    fn combines_across_machine_sizes() {
        for nodes in [1u32, 2, 4, 8, 16, 64] {
            let p = sum_program();
            let total = p.segment("total");
            let mut m = JMachine::new(p, MachineConfig::new(nodes).start(StartPolicy::AllNodes));
            m.run_until_quiescent(2_000_000)
                .unwrap_or_else(|e| panic!("{nodes} nodes: {e}"));
            let expected = (nodes * (nodes + 1) / 2) as i32;
            assert_eq!(
                m.read_word(NodeId(0), total.base).as_i32(),
                expected,
                "{nodes} nodes"
            );
        }
    }

    #[test]
    fn internal_nodes_send_exactly_one_upward_message() {
        let p = sum_program();
        let mut m = JMachine::new(p, MachineConfig::new(8).start(StartPolicy::AllNodes));
        m.run_until_quiescent(2_000_000).unwrap();
        // 7 upward messages (every non-root) + 1 root continuation.
        assert_eq!(m.stats().nodes.msgs_sent, 8);
    }
}
