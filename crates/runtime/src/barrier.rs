//! The scan-style barrier of Table 3.
//!
//! A dissemination barrier in `log2(N)` waves: in wave `w`, node `i` sends
//! one 3-word message to node `i XOR 2^w` — the butterfly pattern mapped
//! onto the 3-D grid that the paper describes, with "incoming messages
//! invok[ing] a different handler for each wave … through the use of the
//! fast hardware dispatch mechanism" (we key waves by a message field
//! rather than by distinct entry points; the dispatch cost is identical).
//!
//! Rounds are stamped so that back-to-back barriers do not confuse early
//! arrivals from a fast neighbour.
//!
//! ## Protocol
//!
//! The calling thread executes `JAL R3, bar_enter` with `R0` holding the
//! *continuation*: a `msg` header word (length 1) to be dispatched on this
//! node when the barrier completes. `bar_enter` returns quickly; the caller
//! must then suspend. Completion is signalled by the continuation handler
//! running.
//!
//! Works for any power-of-two machine size (including 1, which completes
//! immediately).

use crate::nnr;
use jm_asm::{hdr, Builder, Region};
use jm_isa::instr::{AluOp, MsgPriority::P0, StatClass};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;

/// Barrier entry routine label.
pub const BAR_ENTER: &str = "bar_enter";
/// Wave-message handler label.
pub const BAR_WAVE: &str = "bar_wave";
/// State block name.
pub const STATE: &str = "bar_state";

// State layout: [0] round, [1] wave, [2] continuation, [3] nwaves,
// [4] route-cache valid, [5] scratch, [6..16] per-wave flags holding the
// latest round received, [16..26] cached partner route words (a tuned
// implementation converts node ids to router addresses once, not per
// barrier — NNR calculation is expensive, §5).
//
// Every state transition happens in a priority-0 handler (`bar_start` or
// `bar_wave`), so transitions are serialized by the dispatch hardware. The
// enter routine only records the continuation and posts `bar_start` to its
// own node — entering from background or handler context is equally safe.

/// Installs the barrier library. Requires [`nnr::install`] in the same
/// program.
pub fn install(b: &mut Builder) {
    b.data(STATE, Region::Imem, vec![Word::int(0); 32]);

    // --- bar_enter: R0 = continuation header; clobbers R0-R2, A0. ---
    b.label(BAR_ENTER);
    b.mark(StatClass::Sync);
    b.load_seg(A0, STATE);
    b.mov(MemRef::disp(A0, 2), R0);
    b.send(P0, Special::Nnr);
    b.sende(P0, hdr("bar_start", 1));
    b.ret();

    // --- bar_start (P0): begin a round. ---
    b.label("bar_start");
    b.mark(StatClass::Sync);
    b.load_seg(A0, STATE);
    b.mov(R1, MemRef::disp(A0, 0));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 0), R1); // round++
    b.mov(MemRef::disp(A0, 1), 0); // wave = 0
                                   // nwaves = log2(NNODES)
    b.mov(R1, Special::NNodes);
    b.movi(R2, 0);
    b.label("bar_log");
    b.alu(AluOp::Ash, R1, R1, -1);
    b.bz(R1, "bar_logdone");
    b.addi(R2, R2, 1);
    b.br("bar_log");
    b.label("bar_logdone");
    b.mov(MemRef::disp(A0, 3), R2);
    b.bz(R2, "bar_complete");
    // Fill the partner-route cache once per run.
    b.mov(R1, MemRef::disp(A0, 4));
    b.bnz(R1, "bar_send");
    b.mov(MemRef::disp(A0, 5), 0);
    b.label("bar_cache");
    b.mov(R1, MemRef::disp(A0, 5));
    b.alu(AluOp::Eq, R2, R1, MemRef::disp(A0, 3));
    b.bt(R2, "bar_cached");
    b.movi(R0, 1);
    b.alu(AluOp::Lsh, R0, R0, R1);
    b.mov(R2, Special::Nid);
    b.alu(AluOp::Xor, R0, R0, R2);
    b.jal(R3, nnr::NID_TO_ROUTE);
    b.mark(StatClass::Sync);
    b.mov(R1, MemRef::disp(A0, 5));
    b.alu(AluOp::Add, R2, R1, 16);
    b.mov(MemRef::reg(A0, R2), R0);
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 5), R1);
    b.br("bar_cache");
    b.label("bar_cached");
    b.mov(MemRef::disp(A0, 4), 1);

    // --- send current wave's message, then try to advance ---
    b.label("bar_send");
    b.mov(R2, MemRef::disp(A0, 1));
    b.addi(R2, R2, 16);
    b.send(P0, MemRef::reg(A0, R2)); // cached partner route
    b.send2(P0, hdr(BAR_WAVE, 3), MemRef::disp(A0, 1));
    b.sende(P0, MemRef::disp(A0, 0));

    // --- advance while the current wave's partner has arrived ---
    b.label("bar_advance");
    b.mov(R2, MemRef::disp(A0, 1));
    b.addi(R2, R2, 6);
    b.mov(R1, MemRef::reg(A0, R2)); // flags[wave]
    b.alu(AluOp::Ge, R1, R1, MemRef::disp(A0, 0));
    b.bf(R1, "bar_wait");
    b.mov(R1, MemRef::disp(A0, 1));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 1), R1);
    b.alu(AluOp::Eq, R1, R1, MemRef::disp(A0, 3));
    b.bf(R1, "bar_send");

    // --- complete: dispatch the continuation locally ---
    b.label("bar_complete");
    b.send(P0, Special::Nnr);
    b.sende(P0, MemRef::disp(A0, 2));
    b.label("bar_wait");
    b.suspend();

    // --- wave handler: [hdr, wave, round] ---
    b.label(BAR_WAVE);
    b.mark(StatClass::Sync);
    b.load_seg(A0, STATE);
    b.mov(R2, MemRef::disp(A3, 1));
    b.addi(R2, R2, 6);
    b.mov(R1, MemRef::disp(A3, 2));
    b.mov(MemRef::reg(A0, R2), R1); // flags[wave] = round
    b.br("bar_advance");
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::node::NodeId;
    use jm_machine::{JMachine, MachineConfig, StartPolicy};

    /// Every node enters the barrier `ROUNDS` times back to back, bumping a
    /// local counter after each completion; staggered start times stress
    /// early arrivals.
    fn barrier_program(rounds: i32) -> jm_asm::Program {
        let mut b = Builder::new();
        b.reserve("count", Region::Imem, 1);
        b.reserve("t_done", Region::Imem, 1);

        b.label("main");
        // Stagger: node i busy-waits i*7 cycles before the first barrier.
        b.mov(R0, Special::Nid);
        b.alu(AluOp::Mul, R0, R0, 7);
        b.label("stagger");
        b.subi(R0, R0, 1);
        b.alu(AluOp::Ge, R1, R0, 0);
        b.bt(R1, "stagger");
        b.mov(R0, hdr("bar_cont", 1));
        b.call(BAR_ENTER);
        b.suspend();

        b.label("bar_cont");
        b.mark(StatClass::Compute);
        b.load_seg(A0, "count");
        b.mov(R0, MemRef::disp(A0, 0));
        b.check(R1, R0, jm_isa::Tag::Nil);
        b.bf(R1, "have_count");
        b.movi(R0, 0);
        b.label("have_count");
        b.addi(R0, R0, 1);
        b.mov(MemRef::disp(A0, 0), R0);
        b.alu(AluOp::Lt, R1, R0, rounds);
        b.bf(R1, "done");
        b.mov(R0, hdr("bar_cont", 1));
        b.call(BAR_ENTER);
        b.suspend();
        b.label("done");
        b.load_seg(A1, "t_done");
        b.mov(MemRef::disp(A1, 0), Special::Cycle);
        b.suspend();

        b.entry("main");
        install(&mut b);
        nnr::install(&mut b);
        b.assemble().unwrap()
    }

    #[test]
    fn repeated_barriers_synchronize_all_nodes() {
        for nodes in [1u32, 2, 8, 16] {
            let rounds = 3;
            let p = barrier_program(rounds);
            let count = p.segment("count");
            let mut m = JMachine::new(p, MachineConfig::new(nodes).start(StartPolicy::AllNodes));
            m.run_until_quiescent(2_000_000)
                .unwrap_or_else(|e| panic!("{nodes} nodes: {e}"));
            for id in 0..nodes {
                assert_eq!(
                    m.read_word(NodeId(id), count.base).as_i32(),
                    rounds,
                    "node {id} of {nodes}"
                );
            }
        }
    }

    #[test]
    fn no_node_finishes_round_two_before_all_reach_round_one() {
        // With a big stagger, the last node enters the barrier late; nobody
        // may complete before it has entered. We check message counts:
        // every node sends exactly rounds*log2(N) wave messages.
        let p = barrier_program(2);
        let nodes = 8u32;
        let mut m = JMachine::new(p, MachineConfig::new(nodes).start(StartPolicy::AllNodes));
        m.run_until_quiescent(2_000_000).unwrap();
        let stats = m.stats();
        // wave msgs + bar_start + continuation: rounds * (log2(N) + 2)
        // per node.
        let expected = u64::from(nodes) * 2 * (3 + 2);
        assert_eq!(stats.nodes.msgs_sent, expected);
    }
}
