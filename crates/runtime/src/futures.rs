//! Presence-tag synchronization: `cfut` fault handling, thread suspension,
//! and producer-side restart (paper §3.2, Table 2).
//!
//! When a consumer reads a `cfut` slot before the value is produced, the
//! hardware vectors to [`CFUT_HANDLER`], which:
//!
//! 1. allocates a context block from a per-node pool,
//! 2. copies the faulted thread's registers out of the hardware staging
//!    buffer (the Table 2 "save" cost, 30–50 cycles),
//! 3. replaces the `cfut` slot with a `ctx`-tagged pointer to the waiter,
//! 4. suspends.
//!
//! A producer writes through [`SYNC_WRITE`], which either stores the value
//! (no waiter) or stores it *and* posts a [`RESUME_P0`] message carrying the
//! context id. The resume handler frees the context, reloads the staging
//! buffer, and `RESUME`s — re-executing the faulting read, which now
//! succeeds (the Table 2 "restart" cost, 20–50 cycles).
//!
//! Restriction: synchronizing threads must run at priority 0 and the
//! synchronized slot must be a memory location (register `cfut`s have no
//! address for the waiter pointer).

use jm_asm::{hdr, Builder, Region};
use jm_isa::instr::StatClass;
use jm_isa::operand::MemRef;
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::tag::Tag;
use jm_isa::word::{SegDesc, Word};
use jm_mdp::{STAGING_FRAME, STAGING_VBASE};

/// cfut fault handler label (install as the [`jm_isa::FaultKind::CFutRead`]
/// vector).
pub const CFUT_HANDLER: &str = "cfut_handler";
/// Resume-message handler label.
pub const RESUME_P0: &str = "resume_p0";
/// Producer-side synchronizing-store routine label.
pub const SYNC_WRITE: &str = "sync_write";
/// Context pool block name.
pub const CTX_POOL: &str = "ctx_pool";
/// Free-list head block name.
pub const CTX_FREE: &str = "ctx_free";

/// Words per context block (free-link + saved registers, padded).
pub const CTX_WORDS: u32 = 8;

/// Staging-frame slots saved and restored across a suspension: `R0`–`R3`,
/// `A2`, and the IP. By runtime convention `A0`, `A1`, and `A3` are **not**
/// preserved across a presence-tag suspension — the same kind of
/// compiler-known live-set policy that gives the paper its 30–50 cycle
/// save-cost *range*.
pub const SAVED_SLOTS: [u32; 6] = [0, 1, 2, 3, 6, 8];

fn staging_p0_desc() -> Word {
    SegDesc::new(STAGING_VBASE + STAGING_FRAME, 9).to_word()
}

/// Installs the futures library with a pool of `nctx` context blocks.
///
/// # Panics
///
/// Panics if `nctx` is zero.
pub fn install(b: &mut Builder, nctx: u32) {
    assert!(nctx > 0, "need at least one context block");
    // Pre-linked free list: block i's word 0 holds i+1; the last holds -1.
    let mut pool = vec![Word::int(0); (nctx * CTX_WORDS) as usize];
    for i in 0..nctx {
        let next = if i + 1 == nctx { -1 } else { i as i32 + 1 };
        pool[(i * CTX_WORDS) as usize] = Word::int(next);
    }
    // Contexts live on-chip: suspension cost is the point of Table 2.
    b.data(CTX_POOL, Region::Imem, pool);
    b.data(CTX_FREE, Region::Imem, vec![Word::int(0)]);

    // --- cfut fault handler (runs in the faulted P0 bank) ---
    b.label(CFUT_HANDLER);
    b.mark(StatClass::Sync);
    b.load_seg(A0, CTX_FREE);
    b.mov(R0, MemRef::disp(A0, 0)); // idx
    b.load_seg(A1, CTX_POOL);
    b.alu(jm_isa::AluOp::Mul, R1, R0, CTX_WORDS as i32);
    b.mov(R2, MemRef::reg(A1, R1)); // next free
    b.mov(MemRef::disp(A0, 0), R2);
    // Waiter pointer into the faulted slot (FADDR is its absolute address).
    b.mov(R2, jm_isa::operand::Special::FAddr);
    b.alu(jm_isa::AluOp::Lsh, R2, R2, 12);
    b.wtag(R2, R2, Tag::Addr.bits() as i32); // unbounded descriptor
    b.mov(A0, R2);
    b.wtag(R0, R0, Tag::Ctx.bits() as i32);
    b.mov(MemRef::disp(A0, 0), R0);
    // Save the live staging slots. The hardware masks presence-tag faults
    // inside fault handlers, so plain MOVEs copy any word.
    b.mov(A0, staging_p0_desc());
    for k in SAVED_SLOTS {
        b.addi(R1, R1, 1);
        b.mov(R2, MemRef::disp(A0, k));
        b.mov(MemRef::reg(A1, R1), R2);
    }
    b.suspend();

    // --- resume handler: [hdr, ctx_idx] ---
    b.label(RESUME_P0);
    b.mark(StatClass::Sync);
    b.mov(R0, MemRef::disp(A3, 1)); // idx
    b.load_seg(A1, CTX_POOL);
    b.alu(jm_isa::AluOp::Mul, R1, R0, CTX_WORDS as i32);
    // Free the block.
    b.load_seg(A0, CTX_FREE);
    b.mov(R2, MemRef::disp(A0, 0));
    b.mov(MemRef::reg(A1, R1), R2);
    b.mov(MemRef::disp(A0, 0), R0);
    // Restore the saved slots (tag-preserving: a parked register may hold
    // any tag, and the resume handler is not in fault context).
    b.mov(A0, staging_p0_desc());
    for k in SAVED_SLOTS {
        b.addi(R1, R1, 1);
        b.rtag(R2, MemRef::reg(A1, R1));
        b.wtag(R0, MemRef::reg(A1, R1), R2);
        b.wtag(MemRef::disp(A0, k), R0, R2);
    }
    b.resume();

    // --- producer store: A1 = 1-word descriptor of the slot, R0 = value;
    //     clobbers R1, R2. ---
    b.label(SYNC_WRITE);
    b.check(R1, MemRef::disp(A1, 0), Tag::Ctx);
    b.bt(R1, "sw_waiter");
    b.mov(MemRef::disp(A1, 0), R0);
    b.ret();
    b.label("sw_waiter");
    b.wtag(R2, MemRef::disp(A1, 0), Tag::Int.bits() as i32);
    b.mov(MemRef::disp(A1, 0), R0);
    b.send(jm_isa::MsgPriority::P0, jm_isa::operand::Special::Nnr);
    b.send2e(jm_isa::MsgPriority::P0, hdr(RESUME_P0, 2), R2);
    b.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::consts::FaultKind;
    use jm_isa::instr::MsgPriority;
    use jm_isa::node::NodeId;
    use jm_machine::{JMachine, MachineConfig, StartPolicy};

    /// A consumer thread reads a cfut slot (suspending), then a producer
    /// message fills it; the consumer must resume, finish the computation,
    /// and store the doubled value.
    #[test]
    fn consumer_suspends_and_resumes_on_produce() {
        let mut b = Builder::new();
        b.data("slot", Region::Imem, vec![Word::cfut()]);
        b.reserve("out", Region::Imem, 1);

        // Consumer runs as a P0 handler so the P0 staging path applies.
        b.label("consumer");
        b.load_seg(A2, "slot");
        b.mov(R1, MemRef::disp(A2, 0)); // faults & suspends, later resumes
        b.alu(jm_isa::AluOp::Add, R1, R1, R1);
        b.load_seg(A2, "out");
        b.mov(MemRef::disp(A2, 0), R1);
        b.suspend();

        // Producer: fills the slot with 21 via sync_write.
        b.label("producer");
        b.load_seg(A1, "slot");
        b.movi(R0, 21);
        b.call(SYNC_WRITE);
        b.suspend();

        install(&mut b, 4);
        let p = b.assemble().unwrap();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(1).start(StartPolicy::None));
        m.install_vector_all(FaultKind::CFutRead, CFUT_HANDLER);
        m.deliver_message(NodeId(0), MsgPriority::P0, "consumer", &[]);
        m.run(200); // let the consumer fault and park
        m.deliver_message(NodeId(0), MsgPriority::P0, "producer", &[]);
        m.run_until_quiescent(100_000).unwrap();
        assert_eq!(m.read_word(NodeId(0), out.base).as_i32(), 42);
        let stats = m.stats();
        assert_eq!(stats.nodes.fault_count(FaultKind::CFutRead), 1);
        assert!(stats.nodes.class_cycles(jm_isa::StatClass::Sync) > 30);
    }

    /// If the producer arrives first there is no fault at all; the consumer
    /// reads the value directly (Table 2's "Success" row).
    #[test]
    fn no_fault_when_value_already_present() {
        let mut b = Builder::new();
        b.data("slot", Region::Imem, vec![Word::cfut()]);
        b.reserve("out", Region::Imem, 1);
        b.label("producer");
        b.load_seg(A1, "slot");
        b.movi(R0, 5);
        b.call(SYNC_WRITE);
        b.suspend();
        b.label("consumer");
        b.load_seg(A2, "slot");
        b.mov(R1, MemRef::disp(A2, 0));
        b.load_seg(A2, "out");
        b.mov(MemRef::disp(A2, 0), R1);
        b.suspend();
        install(&mut b, 2);
        let p = b.assemble().unwrap();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(1).start(StartPolicy::None));
        m.install_vector_all(FaultKind::CFutRead, CFUT_HANDLER);
        m.deliver_message(NodeId(0), MsgPriority::P0, "producer", &[]);
        m.run(100);
        m.deliver_message(NodeId(0), MsgPriority::P0, "consumer", &[]);
        m.run_until_quiescent(100_000).unwrap();
        assert_eq!(m.read_word(NodeId(0), out.base).as_i32(), 5);
        assert_eq!(m.stats().nodes.fault_count(FaultKind::CFutRead), 0);
    }

    /// Contexts are recycled: more suspensions than pool slots succeed as
    /// long as they do not overlap.
    #[test]
    fn context_pool_recycles() {
        let mut b = Builder::new();
        b.data("slot", Region::Imem, vec![Word::cfut()]);
        b.reserve("out", Region::Imem, 1);
        b.label("consumer");
        b.load_seg(A2, "slot");
        b.mov(R1, MemRef::disp(A2, 0));
        b.load_seg(A2, "out");
        b.mov(R2, MemRef::disp(A2, 0));
        b.check(R0, R2, Tag::Nil);
        b.bf(R0, "acc");
        b.movi(R2, 0);
        b.label("acc");
        b.alu(jm_isa::AluOp::Add, R2, R2, R1);
        b.mov(MemRef::disp(A2, 0), R2);
        // Reset the slot for the next round.
        b.load_seg(A2, "slot");
        b.mov(MemRef::disp(A2, 0), Word::cfut());
        b.suspend();
        b.label("producer");
        b.mov(R0, MemRef::disp(A3, 1));
        b.load_seg(A1, "slot");
        b.call(SYNC_WRITE);
        b.suspend();
        install(&mut b, 1); // a single context block
        let p = b.assemble().unwrap();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(1).start(StartPolicy::None));
        m.install_vector_all(FaultKind::CFutRead, CFUT_HANDLER);
        for round in 0..3 {
            m.deliver_message(NodeId(0), MsgPriority::P0, "consumer", &[]);
            m.run(300);
            m.deliver_message(
                NodeId(0),
                MsgPriority::P0,
                "producer",
                &[Word::int(round + 1)],
            );
            m.run_until_quiescent(100_000).unwrap();
        }
        assert_eq!(m.read_word(NodeId(0), out.base).as_i32(), 6); // 1+2+3
        assert_eq!(m.stats().nodes.fault_count(FaultKind::CFutRead), 3);
    }
}
