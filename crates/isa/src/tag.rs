//! The 4-bit type tags carried by every MDP word.

use std::fmt;

/// The 4-bit type tag attached to every 36-bit MDP word.
///
/// Tags serve three architectural roles on the MDP:
///
/// 1. **Dynamic typing** — arithmetic traps if an operand is not [`Tag::Int`],
///    which is how Concurrent Smalltalk implements generic dispatch cheaply.
/// 2. **Synchronization** — [`Tag::CFut`] and [`Tag::Fut`] mark slots whose
///    value has not been produced yet. Reading a `cfut` operand faults the
///    processor into a runtime handler that suspends the thread (§3.2 of the
///    paper); `fut` words may be *copied* without faulting and only fault when
///    an instruction tries to consume the value.
/// 3. **Structure** — instruction pointers, segment descriptors, message
///    headers, and network routing words are all distinguished by tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Tag {
    /// 32-bit two's-complement integer.
    Int = 0,
    /// Boolean; payload is 0 or 1.
    Bool = 1,
    /// Symbol / opaque identifier (used by CST for selectors and global IDs).
    Sym = 2,
    /// Instruction pointer: an instruction index into the code space.
    Ip = 3,
    /// Segment descriptor: base and length of a memory object (see
    /// [`crate::word::SegDesc`]).
    Addr = 4,
    /// Message header: handler IP plus message length (see
    /// [`crate::word::MsgHeader`]). Must be the first word delivered to the
    /// destination queue.
    Msg = 5,
    /// Network routing word: absolute destination coordinates. Consumed by
    /// the network, never delivered.
    Route = 6,
    /// C-future: presence tag for single-slot synchronization, like a
    /// full/empty bit. Faults on any operand read.
    CFut = 7,
    /// Future: first-class placeholder; may be moved/copied freely, faults
    /// only when consumed by a computing instruction.
    Fut = 8,
    /// Context identifier: a suspended-thread context (runtime convention;
    /// stored into a `cfut` slot so the producer can find the waiter).
    Ctx = 9,
    /// User tag 0 (application defined).
    User0 = 10,
    /// User tag 1 (application defined).
    User1 = 11,
    /// User tag 2 (application defined).
    User2 = 12,
    /// User tag 3 (application defined).
    User3 = 13,
    /// Nil / absent value.
    Nil = 14,
    /// Reserved for words holding encoded instructions in the code stream.
    Inst = 15,
}

impl Tag {
    /// All sixteen tags, in discriminant order.
    pub const ALL: [Tag; 16] = [
        Tag::Int,
        Tag::Bool,
        Tag::Sym,
        Tag::Ip,
        Tag::Addr,
        Tag::Msg,
        Tag::Route,
        Tag::CFut,
        Tag::Fut,
        Tag::Ctx,
        Tag::User0,
        Tag::User1,
        Tag::User2,
        Tag::User3,
        Tag::Nil,
        Tag::Inst,
    ];

    /// Decodes a tag from its 4-bit representation.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 15`.
    #[inline]
    pub fn from_bits(bits: u8) -> Tag {
        assert!(bits < 16, "tag bits out of range: {bits}");
        Tag::ALL[bits as usize]
    }

    /// The 4-bit representation of this tag.
    #[inline]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Whether this tag marks an unproduced value (`cfut` or `fut`).
    #[inline]
    pub fn is_future(self) -> bool {
        matches!(self, Tag::CFut | Tag::Fut)
    }

    /// Whether a word with this tag may be used as an arithmetic operand.
    #[inline]
    pub fn is_arith(self) -> bool {
        matches!(self, Tag::Int | Tag::Bool)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Tag::Int => "int",
            Tag::Bool => "bool",
            Tag::Sym => "sym",
            Tag::Ip => "ip",
            Tag::Addr => "addr",
            Tag::Msg => "msg",
            Tag::Route => "route",
            Tag::CFut => "cfut",
            Tag::Fut => "fut",
            Tag::Ctx => "ctx",
            Tag::User0 => "user0",
            Tag::User1 => "user1",
            Tag::User2 => "user2",
            Tag::User3 => "user3",
            Tag::Nil => "nil",
            Tag::Inst => "inst",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_tags() {
        for tag in Tag::ALL {
            assert_eq!(Tag::from_bits(tag.bits()), tag);
        }
    }

    #[test]
    fn discriminants_are_dense() {
        for (i, tag) in Tag::ALL.iter().enumerate() {
            assert_eq!(tag.bits() as usize, i);
        }
    }

    #[test]
    #[should_panic(expected = "tag bits out of range")]
    fn rejects_out_of_range_bits() {
        let _ = Tag::from_bits(16);
    }

    #[test]
    fn future_classification() {
        assert!(Tag::CFut.is_future());
        assert!(Tag::Fut.is_future());
        assert!(!Tag::Int.is_future());
        assert!(Tag::Int.is_arith());
        assert!(Tag::Bool.is_arith());
        assert!(!Tag::Msg.is_arith());
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = Tag::ALL.iter().map(|t| t.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
