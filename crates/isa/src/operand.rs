//! Instruction operands: sources, destinations, memory references, and the
//! special-register file.

use crate::reg::{AReg, DReg};
use crate::word::Word;
use std::fmt;

/// A memory reference: base address register plus an index.
///
/// Every MDP memory access is relative to a segment descriptor held in an
/// address register; the hardware checks the index against the segment
/// length (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Address register holding the segment descriptor.
    pub base: AReg,
    /// Index within the segment.
    pub index: Index,
}

impl MemRef {
    /// `[base + disp]` with a constant displacement.
    pub fn disp(base: AReg, disp: u32) -> MemRef {
        MemRef {
            base,
            index: Index::Disp(disp),
        }
    }

    /// `[base + reg]` with a register index.
    pub fn reg(base: AReg, reg: DReg) -> MemRef {
        MemRef {
            base,
            index: Index::Reg(reg),
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Index::Disp(d) => write!(f, "[{}+{}]", self.base, d),
            Index::Reg(r) => write!(f, "[{}+{}]", self.base, r),
        }
    }
}

/// The index part of a [`MemRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Index {
    /// Constant displacement from the segment base.
    Disp(u32),
    /// Index taken from a data register (must hold an `int`).
    Reg(DReg),
}

/// Read-only special registers.
///
/// `Nnr`/`Nid`/`NNodes`/`Dims` describe the node's place in the machine.
/// `Fip`/`FVal`/`FAddr` expose fault state to runtime handlers. `Cycle` is a
/// free-running cycle counter — a simulator affordance the paper explicitly
/// wished the real hardware had ("The inclusion of a cycle counter, for
/// example, would have enabled the time-stamping of events", §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// This node's router address as a `route`-tagged word.
    Nnr,
    /// This node's linear index as an `int`.
    Nid,
    /// Total number of nodes in the machine.
    NNodes,
    /// Mesh dimensions packed like a routing word (x, y, z extents).
    Dims,
    /// Free-running cycle counter (low 32 bits).
    Cycle,
    /// IP of the most recent fault.
    Fip,
    /// Value word associated with the most recent fault.
    FVal,
    /// Address/index information for the most recent fault.
    FAddr,
}

impl Special {
    /// All special registers in encoding order.
    pub const ALL: [Special; 8] = [
        Special::Nnr,
        Special::Nid,
        Special::NNodes,
        Special::Dims,
        Special::Cycle,
        Special::Fip,
        Special::FVal,
        Special::FAddr,
    ];

    /// Encoding index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes an encoding index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    #[inline]
    pub fn from_index(index: usize) -> Special {
        Self::ALL[index]
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Special::Nnr => "NNR",
            Special::Nid => "NID",
            Special::NNodes => "NNODES",
            Special::Dims => "DIMS",
            Special::Cycle => "CYCLE",
            Special::Fip => "FIP",
            Special::FVal => "FVAL",
            Special::FAddr => "FADDR",
        };
        f.write_str(name)
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A data register.
    D(DReg),
    /// An address register (reads the descriptor word itself).
    A(AReg),
    /// A tagged immediate. The assembler materializes labels, message
    /// headers, routing words, and `cfut` markers as tagged immediates.
    Imm(Word),
    /// A memory operand. At most one operand of an instruction may be a
    /// memory reference (§2.1: "most operators [may] read one of the
    /// operands from memory").
    Mem(MemRef),
    /// A special register.
    Sp(Special),
}

impl Src {
    /// Integer immediate shorthand.
    pub fn imm(value: i32) -> Src {
        Src::Imm(Word::int(value))
    }

    /// Whether this operand references memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Src::Mem(_))
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::D(r) => write!(f, "{r}"),
            Src::A(a) => write!(f, "{a}"),
            Src::Imm(w) => write!(f, "#{w:?}"),
            Src::Mem(m) => write!(f, "{m}"),
            Src::Sp(s) => write!(f, "{s}"),
        }
    }
}

impl From<DReg> for Src {
    fn from(reg: DReg) -> Src {
        Src::D(reg)
    }
}

impl From<AReg> for Src {
    fn from(reg: AReg) -> Src {
        Src::A(reg)
    }
}

impl From<Word> for Src {
    fn from(word: Word) -> Src {
        Src::Imm(word)
    }
}

impl From<i32> for Src {
    fn from(value: i32) -> Src {
        Src::imm(value)
    }
}

impl From<MemRef> for Src {
    fn from(mem: MemRef) -> Src {
        Src::Mem(mem)
    }
}

/// A destination operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dst {
    /// A data register.
    D(DReg),
    /// An address register (the written word should be `addr`-tagged; the
    /// hardware faults later uses otherwise).
    A(AReg),
    /// A memory destination.
    Mem(MemRef),
}

impl Dst {
    /// Whether this operand references memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Dst::Mem(_))
    }
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dst::D(r) => write!(f, "{r}"),
            Dst::A(a) => write!(f, "{a}"),
            Dst::Mem(m) => write!(f, "{m}"),
        }
    }
}

impl From<DReg> for Dst {
    fn from(reg: DReg) -> Dst {
        Dst::D(reg)
    }
}

impl From<AReg> for Dst {
    fn from(reg: AReg) -> Dst {
        Dst::A(reg)
    }
}

impl From<MemRef> for Dst {
    fn from(mem: MemRef) -> Dst {
        Dst::Mem(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(Src::Mem(MemRef::disp(AReg::A0, 3)).is_mem());
        assert!(!Src::D(DReg::R0).is_mem());
        assert!(Dst::Mem(MemRef::reg(AReg::A1, DReg::R2)).is_mem());
        assert!(!Dst::D(DReg::R0).is_mem());
    }

    #[test]
    fn special_index_round_trip() {
        for s in Special::ALL {
            assert_eq!(Special::from_index(s.index()), s);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Src::D(DReg::R1).to_string(), "R1");
        assert_eq!(Src::Mem(MemRef::disp(AReg::A3, 2)).to_string(), "[A3+2]");
        assert_eq!(
            Src::Mem(MemRef::reg(AReg::A0, DReg::R3)).to_string(),
            "[A0+R3]"
        );
        assert_eq!(Src::imm(9).to_string(), "#9:int");
        assert_eq!(Src::Sp(Special::Nnr).to_string(), "NNR");
    }
}
