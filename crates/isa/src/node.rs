//! Node identity: linear node IDs, 3-D mesh coordinates, and routing words.
//!
//! The distinction between a *linear node index* (what application code
//! iterates over) and a *router address* (absolute x/y/z coordinates packed
//! into a [`RouteWord`]) is architecturally significant: the paper's Figure 6
//! shows a visible "NNR Calc" slice of application time spent converting
//! linear indices to router addresses in software, and §5 calls out the lack
//! of automatic node-name translation as a weakness.

use crate::tag::Tag;
use crate::word::Word;
use std::fmt;

/// A linear node index in `0..machine_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The linear index as a `usize` for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> NodeId {
        NodeId(value)
    }
}

/// Absolute coordinates of a node in the 3-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Coord {
    /// X coordinate (dimension routed first by e-cube).
    pub x: u8,
    /// Y coordinate (routed second).
    pub y: u8,
    /// Z coordinate (routed last).
    pub z: u8,
}

impl Coord {
    /// Creates a coordinate triple.
    pub fn new(x: u8, y: u8, z: u8) -> Coord {
        Coord { x, y, z }
    }

    /// Manhattan distance to `other` — the hop count of the e-cube route.
    pub fn hops_to(self, other: Coord) -> u32 {
        let d = |a: u8, b: u8| (i32::from(a) - i32::from(b)).unsigned_abs();
        d(self.x, other.x) + d(self.y, other.y) + d(self.z, other.z)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// The dimensions of a 3-D mesh machine.
///
/// The 512-node prototype evaluated in the paper is an 8×8×8 mesh; the
/// planned 1024-node machine is 8×8×16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshDims {
    /// Extent in X.
    pub x: u8,
    /// Extent in Y.
    pub y: u8,
    /// Extent in Z.
    pub z: u8,
}

impl MeshDims {
    /// Creates mesh dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or exceeds 31 (the routing word packs
    /// 5 bits per coordinate).
    pub fn new(x: u8, y: u8, z: u8) -> MeshDims {
        assert!(
            (1..=31).contains(&x) && (1..=31).contains(&y) && (1..=31).contains(&z),
            "mesh dimensions must be in 1..=31: {x}x{y}x{z}"
        );
        MeshDims { x, y, z }
    }

    /// The 8×8×8 mesh of the paper's 512-node prototype.
    pub fn prototype_512() -> MeshDims {
        MeshDims::new(8, 8, 8)
    }

    /// Chooses near-cubic dimensions for a machine of `nodes` nodes.
    ///
    /// Matches the sizes used in the paper's scaling studies: powers of two
    /// from 1 to 1024 map to meshes like 2×1×1, 2×2×1, …, 8×8×8, 8×8×16.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or not expressible as x·y·z with each factor
    /// ≤ 31 (all powers of two up to 16384 are accepted).
    pub fn for_nodes(nodes: u32) -> MeshDims {
        assert!(nodes > 0, "machine must have at least one node");
        // Distribute factors of the node count across the three dimensions,
        // largest dimension last so 512 -> 8x8x8 and 2 -> 2x1x1.
        let mut dims = [1u32; 3];
        let mut remaining = nodes;
        let mut which = 0;
        let mut factor = 2;
        while remaining > 1 {
            while !remaining.is_multiple_of(factor) {
                factor += 1;
            }
            dims[which % 3] *= factor;
            remaining /= factor;
            which += 1;
        }
        dims.sort_unstable();
        assert!(
            dims.iter().all(|&d| d <= 31),
            "cannot express {nodes} nodes as a mesh with dimensions <= 31"
        );
        MeshDims::new(dims[0] as u8, dims[1] as u8, dims[2] as u8)
    }

    /// Total number of nodes.
    #[inline]
    pub fn nodes(self) -> u32 {
        u32::from(self.x) * u32::from(self.y) * u32::from(self.z)
    }

    /// Converts a linear node index to mesh coordinates (x fastest).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn coord(self, id: NodeId) -> Coord {
        assert!(id.0 < self.nodes(), "node id {id} out of range");
        let x = id.0 % u32::from(self.x);
        let y = (id.0 / u32::from(self.x)) % u32::from(self.y);
        let z = id.0 / (u32::from(self.x) * u32::from(self.y));
        Coord::new(x as u8, y as u8, z as u8)
    }

    /// Converts mesh coordinates to the linear node index.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[inline]
    pub fn id(self, c: Coord) -> NodeId {
        assert!(
            c.x < self.x && c.y < self.y && c.z < self.z,
            "coordinate {c} outside {self:?}"
        );
        NodeId(
            u32::from(c.x)
                + u32::from(c.y) * u32::from(self.x)
                + u32::from(c.z) * u32::from(self.x) * u32::from(self.y),
        )
    }

    /// Iterates over all node IDs in the machine.
    pub fn iter_nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }
}

impl fmt::Display for MeshDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.y, self.z)
    }
}

/// A network routing word: the `route`-tagged first word injected by a send
/// sequence. It carries the absolute destination coordinates and is consumed
/// by the network (stripped before delivery).
///
/// Packing: `x` in bits 0..5, `y` in bits 5..10, `z` in bits 10..15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteWord {
    /// Destination coordinates.
    pub dest: Coord,
}

impl RouteWord {
    /// Creates a routing word for a destination coordinate.
    pub fn new(dest: Coord) -> RouteWord {
        assert!(
            dest.x < 32 && dest.y < 32 && dest.z < 32,
            "coordinates must fit 5 bits: {dest}"
        );
        RouteWord { dest }
    }

    /// Packs into a `route`-tagged word.
    #[inline]
    pub fn to_word(self) -> Word {
        let bits =
            u32::from(self.dest.x) | (u32::from(self.dest.y) << 5) | (u32::from(self.dest.z) << 10);
        Word::new(Tag::Route, bits)
    }

    /// Unpacks from a word's payload.
    #[inline]
    pub fn from_word(word: Word) -> RouteWord {
        let bits = word.bits();
        RouteWord {
            dest: Coord::new(
                (bits & 0x1f) as u8,
                ((bits >> 5) & 0x1f) as u8,
                ((bits >> 10) & 0x1f) as u8,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip_512() {
        let dims = MeshDims::prototype_512();
        assert_eq!(dims.nodes(), 512);
        for id in dims.iter_nodes() {
            assert_eq!(dims.id(dims.coord(id)), id);
        }
    }

    #[test]
    fn for_nodes_produces_expected_shapes() {
        assert_eq!(MeshDims::for_nodes(1), MeshDims::new(1, 1, 1));
        assert_eq!(MeshDims::for_nodes(2), MeshDims::new(1, 1, 2));
        assert_eq!(MeshDims::for_nodes(8), MeshDims::new(2, 2, 2));
        assert_eq!(MeshDims::for_nodes(64), MeshDims::new(4, 4, 4));
        assert_eq!(MeshDims::for_nodes(128), MeshDims::new(4, 4, 8));
        assert_eq!(MeshDims::for_nodes(512), MeshDims::new(8, 8, 8));
        assert_eq!(MeshDims::for_nodes(1024), MeshDims::new(8, 8, 16));
    }

    #[test]
    fn hops_corner_to_corner_is_21() {
        // The paper: a corner node reads from the opposite corner of the
        // 8x8x8 machine across 21 hops.
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(7, 7, 7);
        assert_eq!(a.hops_to(b), 21);
        assert_eq!(b.hops_to(a), 21);
        assert_eq!(a.hops_to(a), 0);
    }

    #[test]
    fn route_word_round_trip() {
        for c in [
            Coord::new(0, 0, 0),
            Coord::new(7, 7, 7),
            Coord::new(31, 0, 31),
            Coord::new(3, 17, 9),
        ] {
            let rw = RouteWord::new(c);
            let w = rw.to_word();
            assert_eq!(w.tag(), Tag::Route);
            assert_eq!(RouteWord::from_word(w), rw);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_rejects_out_of_range_id() {
        let _ = MeshDims::new(2, 2, 2).coord(NodeId(8));
    }
}
