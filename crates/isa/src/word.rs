//! The 36-bit tagged word and its structured interpretations.

use crate::tag::Tag;
use std::fmt;

/// A 36-bit MDP word: 32 bits of data plus a 4-bit [`Tag`].
///
/// `Word` is the unit of every architectural store on the machine: registers,
/// internal SRAM, external DRAM, message queues, and network payloads.
///
/// # Example
///
/// ```
/// use jm_isa::{Word, Tag};
///
/// let w = Word::int(-7);
/// assert_eq!(w.as_i32(), -7);
/// assert_eq!(w.tag(), Tag::Int);
/// assert_eq!(w.retagged(Tag::Sym).tag(), Tag::Sym);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Word {
    tag: Tag,
    bits: u32,
}

impl Word {
    /// The nil word: tag [`Tag::Nil`], zero payload.
    pub const NIL: Word = Word {
        tag: Tag::Nil,
        bits: 0,
    };

    /// Creates a word from a tag and raw payload bits.
    #[inline]
    pub fn new(tag: Tag, bits: u32) -> Word {
        Word { tag, bits }
    }

    /// Creates an integer word.
    #[inline]
    pub fn int(value: i32) -> Word {
        Word {
            tag: Tag::Int,
            bits: value as u32,
        }
    }

    /// Creates a boolean word.
    #[inline]
    pub fn bool(value: bool) -> Word {
        Word {
            tag: Tag::Bool,
            bits: value as u32,
        }
    }

    /// Creates a symbol word.
    #[inline]
    pub fn sym(id: u32) -> Word {
        Word {
            tag: Tag::Sym,
            bits: id,
        }
    }

    /// Creates an instruction-pointer word from an instruction index.
    #[inline]
    pub fn ip(index: u32) -> Word {
        Word {
            tag: Tag::Ip,
            bits: index,
        }
    }

    /// Creates an unset `cfut` synchronization slot.
    #[inline]
    pub fn cfut() -> Word {
        Word {
            tag: Tag::CFut,
            bits: 0,
        }
    }

    /// Creates an unresolved `fut` placeholder carrying an identifier.
    #[inline]
    pub fn fut(id: u32) -> Word {
        Word {
            tag: Tag::Fut,
            bits: id,
        }
    }

    /// The word's tag.
    #[inline]
    pub fn tag(self) -> Tag {
        self.tag
    }

    /// The raw 32-bit payload.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The payload interpreted as a signed integer.
    #[inline]
    pub fn as_i32(self) -> i32 {
        self.bits as i32
    }

    /// The payload interpreted as a boolean (non-zero is true).
    #[inline]
    pub fn as_bool(self) -> bool {
        self.bits != 0
    }

    /// Returns this word with its tag replaced (the MDP `WTAG` operation).
    #[inline]
    pub fn retagged(self, tag: Tag) -> Word {
        Word {
            tag,
            bits: self.bits,
        }
    }

    /// Whether reading this word as a *computing* operand must fault.
    ///
    /// Both `cfut` and `fut` fault when consumed by an instruction that
    /// inspects the value.
    #[inline]
    pub fn faults_on_use(self) -> bool {
        self.tag.is_future()
    }

    /// Whether reading this word at all (even a `MOVE`) must fault.
    ///
    /// Only `cfut` has this property; `fut` values are first-class and may be
    /// copied, stored in arrays, and returned from functions (§2.1).
    #[inline]
    pub fn faults_on_read(self) -> bool {
        self.tag == Tag::CFut
    }
}

impl Default for Word {
    fn default() -> Word {
        Word::NIL
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tag {
            Tag::Int => write!(f, "{}:int", self.as_i32()),
            Tag::Bool => write!(f, "{}:bool", self.as_bool()),
            Tag::Addr => write!(f, "{:?}", SegDesc::from_word(*self)),
            Tag::Msg => write!(f, "{:?}", MsgHeader::from_word(*self)),
            _ => write!(f, "{:#x}:{}", self.bits, self.tag),
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i32> for Word {
    fn from(value: i32) -> Word {
        Word::int(value)
    }
}

impl From<bool> for Word {
    fn from(value: bool) -> Word {
        Word::bool(value)
    }
}

/// A segment descriptor: the `addr`-tagged word used for all memory access.
///
/// The MDP references local memory exclusively through segment descriptors
/// giving the base and length of each memory object, which lets objects be
/// relocated at will (local heap compaction) as long as only global virtual
/// addresses escape the node (§2.1).
///
/// Packing: `base` in bits 12..32 (20 bits, word-addressed), `len` in bits
/// 0..12 (12 bits). A length of **zero** denotes an *unbounded* system
/// descriptor: bounds checking is suppressed. The runtime uses unbounded
/// descriptors for privileged access to whole-node memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegDesc {
    /// Base word address (20 bits).
    pub base: u32,
    /// Segment length in words (12 bits); 0 means unbounded.
    pub len: u32,
}

impl SegDesc {
    /// Maximum representable base address.
    pub const MAX_BASE: u32 = (1 << 20) - 1;
    /// Maximum representable bounded length.
    pub const MAX_LEN: u32 = (1 << 12) - 1;

    /// Creates a bounded segment descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `base` exceeds 20 bits or `len` exceeds 12 bits.
    pub fn new(base: u32, len: u32) -> SegDesc {
        assert!(base <= Self::MAX_BASE, "segment base out of range: {base}");
        assert!(len <= Self::MAX_LEN, "segment length out of range: {len}");
        SegDesc { base, len }
    }

    /// Creates an unbounded (privileged) descriptor starting at `base`.
    pub fn unbounded(base: u32) -> SegDesc {
        assert!(base <= Self::MAX_BASE, "segment base out of range: {base}");
        SegDesc { base, len: 0 }
    }

    /// Whether this descriptor suppresses bounds checking.
    #[inline]
    pub fn is_unbounded(self) -> bool {
        self.len == 0
    }

    /// Checks `index` against the segment bounds and returns the absolute
    /// word address, or `None` when out of bounds.
    #[inline]
    pub fn address(self, index: u32) -> Option<u32> {
        if self.is_unbounded() || index < self.len {
            Some(self.base.wrapping_add(index))
        } else {
            None
        }
    }

    /// Packs this descriptor into an `addr`-tagged word.
    #[inline]
    pub fn to_word(self) -> Word {
        Word::new(Tag::Addr, (self.base << 12) | self.len)
    }

    /// Unpacks a descriptor from a word's payload (any tag accepted; the tag
    /// check is the caller's responsibility).
    #[inline]
    pub fn from_word(word: Word) -> SegDesc {
        SegDesc {
            base: word.bits() >> 12,
            len: word.bits() & 0xfff,
        }
    }
}

/// A message header: the `msg`-tagged word that must lead every message.
///
/// The format of a J-Machine message is arbitrary *except* that the first
/// word must contain the address of the code to run at the destination and
/// the length of the message (§2.1). Arrival of the header is what triggers
/// the 4-cycle hardware task dispatch.
///
/// Packing: `ip` (instruction index, 20 bits) in bits 12..32, `len` (words,
/// including the header itself, 12 bits) in bits 0..12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgHeader {
    /// Handler entry point (instruction index).
    pub ip: u32,
    /// Total message length in words, including this header.
    pub len: u32,
}

impl MsgHeader {
    /// Maximum representable handler IP.
    pub const MAX_IP: u32 = (1 << 20) - 1;
    /// Maximum representable message length.
    pub const MAX_LEN: u32 = (1 << 12) - 1;

    /// Creates a message header.
    ///
    /// # Panics
    ///
    /// Panics if `ip` exceeds 20 bits, or `len` is zero or exceeds 12 bits.
    pub fn new(ip: u32, len: u32) -> MsgHeader {
        assert!(ip <= Self::MAX_IP, "handler ip out of range: {ip}");
        assert!(
            len > 0 && len <= Self::MAX_LEN,
            "message length out of range: {len}"
        );
        MsgHeader { ip, len }
    }

    /// Packs this header into a `msg`-tagged word.
    #[inline]
    pub fn to_word(self) -> Word {
        Word::new(Tag::Msg, (self.ip << 12) | self.len)
    }

    /// Unpacks a header from a word's payload.
    #[inline]
    pub fn from_word(word: Word) -> MsgHeader {
        MsgHeader {
            ip: word.bits() >> 12,
            len: word.bits() & 0xfff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 123_456_789] {
            assert_eq!(Word::int(v).as_i32(), v);
        }
    }

    #[test]
    fn retag_preserves_bits() {
        let w = Word::int(0x1234_5678u32 as i32);
        let r = w.retagged(Tag::Sym);
        assert_eq!(r.bits(), w.bits());
        assert_eq!(r.tag(), Tag::Sym);
    }

    #[test]
    fn fault_classification() {
        assert!(Word::cfut().faults_on_read());
        assert!(Word::cfut().faults_on_use());
        assert!(!Word::fut(3).faults_on_read());
        assert!(Word::fut(3).faults_on_use());
        assert!(!Word::int(1).faults_on_use());
    }

    #[test]
    fn segdesc_round_trip() {
        let d = SegDesc::new(0xabcde, 0x123);
        let w = d.to_word();
        assert_eq!(w.tag(), Tag::Addr);
        assert_eq!(SegDesc::from_word(w), d);
    }

    #[test]
    fn segdesc_bounds() {
        let d = SegDesc::new(100, 10);
        assert_eq!(d.address(0), Some(100));
        assert_eq!(d.address(9), Some(109));
        assert_eq!(d.address(10), None);
        let u = SegDesc::unbounded(0);
        assert_eq!(u.address(1_000_000), Some(1_000_000));
    }

    #[test]
    #[should_panic(expected = "segment length out of range")]
    fn segdesc_rejects_oversize_len() {
        let _ = SegDesc::new(0, 4096);
    }

    #[test]
    fn msg_header_round_trip() {
        let h = MsgHeader::new(0xfffff, 0xfff);
        assert_eq!(MsgHeader::from_word(h.to_word()), h);
        let h = MsgHeader::new(7, 2);
        let w = h.to_word();
        assert_eq!(w.tag(), Tag::Msg);
        assert_eq!(MsgHeader::from_word(w), h);
    }

    #[test]
    #[should_panic(expected = "message length out of range")]
    fn msg_header_rejects_zero_len() {
        let _ = MsgHeader::new(0, 0);
    }

    #[test]
    fn debug_formats_are_informative() {
        assert_eq!(format!("{:?}", Word::int(5)), "5:int");
        assert!(format!("{:?}", Word::cfut()).contains("cfut"));
        assert!(!format!("{:?}", Word::NIL).is_empty());
    }
}
