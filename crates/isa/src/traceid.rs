//! Message trace identifiers.
//!
//! Every message accepted by a network injection port is stamped with a
//! [`TraceId`] that rides in the metadata of each of its flits. The id lets
//! the observability layer (`jm-trace`) correlate a message's lifecycle
//! events — injection, per-hop routing, ejection, queueing, dispatch, and
//! handler completion — across the crates that each see only one leg of the
//! journey. The id is simulator metadata: it occupies no architectural bits
//! and never influences routing, timing, or program-visible state.

use std::fmt;

/// Identity of one message for lifecycle tracing.
///
/// Ids are assigned densely from 1 by the injection port, in injection
/// order; [`TraceId::NONE`] (zero) marks words with no network provenance,
/// such as host-port deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null id: not a traced message.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this id identifies a real message.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(f, "msg#{}", self.0)
        } else {
            f.write_str("msg#-")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero_and_default() {
        assert_eq!(TraceId::NONE, TraceId(0));
        assert_eq!(TraceId::default(), TraceId::NONE);
        assert!(!TraceId::NONE.is_some());
        assert!(TraceId(1).is_some());
    }

    #[test]
    fn display_formats() {
        assert_eq!(TraceId(7).to_string(), "msg#7");
        assert_eq!(TraceId::NONE.to_string(), "msg#-");
    }
}
