//! Binary instruction encoding.
//!
//! The MDP packs two 17-bit instructions into each 36-bit memory word (§2.1).
//! This module implements a variable-length bit-level encoding in that
//! spirit: each instruction serializes to a stream of bits occupying one or
//! more 17-bit *slots*; slots pack two per word. Common register-register
//! forms fit one slot; instructions with large immediates or displacements
//! spill into additional slots, mirroring the real machine's constant
//! extension words.
//!
//! The simulator executes decoded [`Instruction`] values; this encoding
//! exists to pin the ISA down precisely (round-trip property tests in this
//! module and in `jm-asm`) and to compute code footprints.

use crate::instr::{Alu1Op, AluOp, Cond, Instruction, MsgPriority, StatClass};
use crate::operand::{Dst, Index, MemRef, Special, Src};
use crate::reg::{AReg, DReg};
use crate::tag::Tag;
use crate::word::Word;
use std::fmt;

/// Bits per instruction slot (two slots per 36-bit word, minus the two
/// alignment bits, §2.1).
pub const SLOT_BITS: usize = 17;

/// An encoding or decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    fn new(message: impl Into<String>) -> CodecError {
        CodecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instruction codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Append-only bit sink, LSB-first within each `u64` limb.
#[derive(Debug, Default, Clone)]
struct BitWriter {
    limbs: Vec<u64>,
    len: usize,
}

impl BitWriter {
    fn put(&mut self, width: usize, value: u64) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || value < (1u64 << width));
        let mut remaining = width;
        let mut value = value;
        while remaining > 0 {
            let limb = self.len / 64;
            let offset = self.len % 64;
            if limb == self.limbs.len() {
                self.limbs.push(0);
            }
            let take = (64 - offset).min(remaining);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            self.limbs[limb] |= (value & mask) << offset;
            value >>= take as u32 % 64;
            self.len += take;
            remaining -= take;
        }
    }

    fn put_i32(&mut self, value: i32) {
        self.put(32, value as u32 as u64);
    }
}

/// Bit source matching [`BitWriter`].
#[derive(Debug)]
struct BitReader<'a> {
    limbs: &'a [u64],
    len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn take(&mut self, width: usize) -> Result<u64, CodecError> {
        if self.pos + width > self.len {
            return Err(CodecError::new("bitstream underrun"));
        }
        let mut out = 0u64;
        let mut got = 0usize;
        while got < width {
            let limb = (self.pos + got) / 64;
            let offset = (self.pos + got) % 64;
            let take = (64 - offset).min(width - got);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            out |= ((self.limbs[limb] >> offset) & mask) << got;
            got += take;
        }
        self.pos += width;
        Ok(out)
    }

    fn take_i32(&mut self) -> Result<i32, CodecError> {
        Ok(self.take(32)? as u32 as i32)
    }
}

/// An encoded instruction: a little-endian bit stream plus its length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    limbs: Vec<u64>,
    bits: usize,
}

impl Encoded {
    /// Length of the bit stream.
    pub fn bit_len(&self) -> usize {
        self.bits
    }

    /// Number of 17-bit slots this instruction occupies.
    pub fn slots(&self) -> usize {
        self.bits.div_ceil(SLOT_BITS).max(1)
    }

    /// The raw slot values (17 bits each, zero-padded at the tail).
    pub fn slot_values(&self) -> Vec<u32> {
        // Reading beyond `bits` would underrun; pad a copy to slot-aligned.
        let mut padded = self.limbs.clone();
        let needed_limbs = (self.slots() * SLOT_BITS).div_ceil(64);
        padded.resize(needed_limbs, 0);
        let mut reader = BitReader {
            limbs: &padded,
            len: self.slots() * SLOT_BITS,
            pos: 0,
        };
        let mut out = Vec::with_capacity(self.slots());
        for _ in 0..self.slots() {
            out.push(reader.take(SLOT_BITS).expect("padded stream") as u32);
        }
        out
    }

    /// Reassembles an encoded instruction from its raw 17-bit slot values
    /// (the inverse of [`Encoded::slot_values`]). The reconstructed bit
    /// stream is slot-aligned — possibly longer than the original encoding
    /// by up to 16 zero bits of tail padding — which [`decode`] tolerates
    /// (it reads exactly the bits the opcode demands and ignores the tail),
    /// so `decode(&Encoded::from_slots(&e.slot_values()))` round-trips.
    ///
    /// # Panics
    ///
    /// Panics if any slot value exceeds 17 bits.
    pub fn from_slots(slots: &[u32]) -> Encoded {
        let mut w = BitWriter::default();
        for &s in slots {
            assert!(s < (1 << SLOT_BITS), "slot value exceeds {SLOT_BITS} bits");
            w.put(SLOT_BITS, u64::from(s));
        }
        Encoded {
            limbs: w.limbs,
            bits: w.len,
        }
    }
}

// Opcode numbers. Stable: the assembler's image format depends on them.
const OP_MOVE: u64 = 0;
const OP_ALU: u64 = 1;
const OP_ALU1: u64 = 2;
const OP_BR: u64 = 3;
const OP_BC: u64 = 4;
const OP_JMP: u64 = 5;
const OP_JAL: u64 = 6;
const OP_SEND: u64 = 7;
const OP_SUSPEND: u64 = 8;
const OP_RESUME: u64 = 9;
const OP_RTAG: u64 = 10;
const OP_WTAG: u64 = 11;
const OP_CHECK: u64 = 12;
const OP_ENTER: u64 = 13;
const OP_XLATE: u64 = 14;
const OP_PROBE: u64 = 15;
const OP_MARK: u64 = 16;
const OP_HALT: u64 = 17;
const OP_NOP: u64 = 18;

fn put_src(w: &mut BitWriter, src: Src) {
    match src {
        Src::D(r) => {
            w.put(3, 0);
            w.put(2, r.index() as u64);
        }
        Src::A(a) => {
            w.put(3, 1);
            w.put(2, a.index() as u64);
        }
        Src::Imm(word) => {
            w.put(3, 2);
            let v = word.as_i32();
            if word.tag() == Tag::Int && (-128..128).contains(&v) {
                w.put(1, 0);
                w.put(8, (v as i16 as u16 & 0xff) as u64);
            } else {
                w.put(1, 1);
                w.put(4, word.tag().bits() as u64);
                w.put_i32(word.bits() as i32);
            }
        }
        Src::Mem(m) => {
            w.put(3, 3);
            put_mem(w, m);
        }
        Src::Sp(s) => {
            w.put(3, 4);
            w.put(3, s.index() as u64);
        }
    }
}

fn take_src(r: &mut BitReader<'_>) -> Result<Src, CodecError> {
    match r.take(3)? {
        0 => Ok(Src::D(DReg::from_index(r.take(2)? as usize))),
        1 => Ok(Src::A(AReg::from_index(r.take(2)? as usize))),
        2 => {
            if r.take(1)? == 0 {
                let raw = r.take(8)? as u8;
                Ok(Src::Imm(Word::int(i32::from(raw as i8))))
            } else {
                let tag = Tag::from_bits(r.take(4)? as u8);
                let bits = r.take_i32()? as u32;
                Ok(Src::Imm(Word::new(tag, bits)))
            }
        }
        3 => Ok(Src::Mem(take_mem(r)?)),
        4 => Ok(Src::Sp(Special::from_index(r.take(3)? as usize))),
        other => Err(CodecError::new(format!("bad src mode {other}"))),
    }
}

fn put_mem(w: &mut BitWriter, m: MemRef) {
    w.put(2, m.base.index() as u64);
    match m.index {
        Index::Disp(d) => {
            w.put(1, 0);
            if d < 64 {
                w.put(1, 0);
                w.put(6, u64::from(d));
            } else {
                w.put(1, 1);
                w.put(32, u64::from(d));
            }
        }
        Index::Reg(reg) => {
            w.put(1, 1);
            w.put(2, reg.index() as u64);
        }
    }
}

fn take_mem(r: &mut BitReader<'_>) -> Result<MemRef, CodecError> {
    let base = AReg::from_index(r.take(2)? as usize);
    let index = if r.take(1)? == 0 {
        if r.take(1)? == 0 {
            Index::Disp(r.take(6)? as u32)
        } else {
            Index::Disp(r.take(32)? as u32)
        }
    } else {
        Index::Reg(DReg::from_index(r.take(2)? as usize))
    };
    Ok(MemRef { base, index })
}

fn put_dst(w: &mut BitWriter, dst: Dst) {
    match dst {
        Dst::D(r) => {
            w.put(2, 0);
            w.put(2, r.index() as u64);
        }
        Dst::A(a) => {
            w.put(2, 1);
            w.put(2, a.index() as u64);
        }
        Dst::Mem(m) => {
            w.put(2, 2);
            put_mem(w, m);
        }
    }
}

fn take_dst(r: &mut BitReader<'_>) -> Result<Dst, CodecError> {
    match r.take(2)? {
        0 => Ok(Dst::D(DReg::from_index(r.take(2)? as usize))),
        1 => Ok(Dst::A(AReg::from_index(r.take(2)? as usize))),
        2 => Ok(Dst::Mem(take_mem(r)?)),
        other => Err(CodecError::new(format!("bad dst mode {other}"))),
    }
}

fn put_off(w: &mut BitWriter, off: i32) {
    if (-512..512).contains(&off) {
        w.put(1, 0);
        w.put(10, (off as i16 as u16 & 0x3ff) as u64);
    } else {
        w.put(1, 1);
        w.put_i32(off);
    }
}

fn take_off(r: &mut BitReader<'_>) -> Result<i32, CodecError> {
    if r.take(1)? == 0 {
        let raw = r.take(10)? as u32;
        // Sign-extend 10 bits.
        Ok(((raw << 22) as i32) >> 22)
    } else {
        r.take_i32()
    }
}

/// Encodes a single instruction into its bit stream.
pub fn encode(instr: &Instruction) -> Encoded {
    let mut w = BitWriter::default();
    match *instr {
        Instruction::Move { dst, src } => {
            w.put(5, OP_MOVE);
            put_dst(&mut w, dst);
            put_src(&mut w, src);
        }
        Instruction::Alu { op, dst, a, b } => {
            w.put(5, OP_ALU);
            let code = AluOp::ALL.iter().position(|&o| o == op).unwrap() as u64;
            w.put(5, code);
            put_dst(&mut w, dst);
            put_src(&mut w, a);
            put_src(&mut w, b);
        }
        Instruction::Alu1 { op, dst, src } => {
            w.put(5, OP_ALU1);
            let code = Alu1Op::ALL.iter().position(|&o| o == op).unwrap() as u64;
            w.put(2, code);
            put_dst(&mut w, dst);
            put_src(&mut w, src);
        }
        Instruction::Br { off } => {
            w.put(5, OP_BR);
            put_off(&mut w, off);
        }
        Instruction::Bc { cond, src, off } => {
            w.put(5, OP_BC);
            let code = Cond::ALL.iter().position(|&c| c == cond).unwrap() as u64;
            w.put(2, code);
            put_src(&mut w, src);
            put_off(&mut w, off);
        }
        Instruction::Jmp { target } => {
            w.put(5, OP_JMP);
            put_src(&mut w, target);
        }
        Instruction::Jal { link, off } => {
            w.put(5, OP_JAL);
            w.put(2, link.index() as u64);
            put_off(&mut w, off);
        }
        Instruction::Send {
            priority,
            a,
            b,
            end,
        } => {
            w.put(5, OP_SEND);
            w.put(1, priority.index() as u64);
            w.put(1, u64::from(end));
            w.put(1, u64::from(b.is_some()));
            put_src(&mut w, a);
            if let Some(b) = b {
                put_src(&mut w, b);
            }
        }
        Instruction::Suspend => w.put(5, OP_SUSPEND),
        Instruction::Resume => w.put(5, OP_RESUME),
        Instruction::Rtag { dst, src } => {
            w.put(5, OP_RTAG);
            put_dst(&mut w, dst);
            put_src(&mut w, src);
        }
        Instruction::Wtag { dst, src, tag } => {
            w.put(5, OP_WTAG);
            put_dst(&mut w, dst);
            put_src(&mut w, src);
            put_src(&mut w, tag);
        }
        Instruction::Check { dst, src, tag } => {
            w.put(5, OP_CHECK);
            put_dst(&mut w, dst);
            put_src(&mut w, src);
            w.put(4, tag.bits() as u64);
        }
        Instruction::Enter { key, value } => {
            w.put(5, OP_ENTER);
            put_src(&mut w, key);
            put_src(&mut w, value);
        }
        Instruction::Xlate { dst, key } => {
            w.put(5, OP_XLATE);
            put_dst(&mut w, dst);
            put_src(&mut w, key);
        }
        Instruction::Probe { dst, key } => {
            w.put(5, OP_PROBE);
            put_dst(&mut w, dst);
            put_src(&mut w, key);
        }
        Instruction::Mark { class } => {
            w.put(5, OP_MARK);
            w.put(3, class.index() as u64);
        }
        Instruction::Halt => w.put(5, OP_HALT),
        Instruction::Nop => w.put(5, OP_NOP),
    }
    Encoded {
        limbs: w.limbs,
        bits: w.len,
    }
}

/// Decodes a single instruction from its bit stream.
///
/// # Errors
///
/// Returns [`CodecError`] if the stream is truncated or contains an invalid
/// opcode or operand mode.
pub fn decode(encoded: &Encoded) -> Result<Instruction, CodecError> {
    let mut r = BitReader {
        limbs: &encoded.limbs,
        len: encoded.bits,
        pos: 0,
    };
    let instr = match r.take(5)? {
        OP_MOVE => Instruction::Move {
            dst: take_dst(&mut r)?,
            src: take_src(&mut r)?,
        },
        OP_ALU => {
            let code = r.take(5)? as usize;
            let op = *AluOp::ALL
                .get(code)
                .ok_or_else(|| CodecError::new(format!("bad alu op {code}")))?;
            Instruction::Alu {
                op,
                dst: take_dst(&mut r)?,
                a: take_src(&mut r)?,
                b: take_src(&mut r)?,
            }
        }
        OP_ALU1 => {
            let code = r.take(2)? as usize;
            let op = *Alu1Op::ALL
                .get(code)
                .ok_or_else(|| CodecError::new(format!("bad alu1 op {code}")))?;
            Instruction::Alu1 {
                op,
                dst: take_dst(&mut r)?,
                src: take_src(&mut r)?,
            }
        }
        OP_BR => Instruction::Br {
            off: take_off(&mut r)?,
        },
        OP_BC => {
            let code = r.take(2)? as usize;
            let cond = Cond::ALL[code];
            Instruction::Bc {
                cond,
                src: take_src(&mut r)?,
                off: take_off(&mut r)?,
            }
        }
        OP_JMP => Instruction::Jmp {
            target: take_src(&mut r)?,
        },
        OP_JAL => Instruction::Jal {
            link: DReg::from_index(r.take(2)? as usize),
            off: take_off(&mut r)?,
        },
        OP_SEND => {
            let priority = MsgPriority::ALL[r.take(1)? as usize];
            let end = r.take(1)? != 0;
            let has_b = r.take(1)? != 0;
            let a = take_src(&mut r)?;
            let b = if has_b { Some(take_src(&mut r)?) } else { None };
            Instruction::Send {
                priority,
                a,
                b,
                end,
            }
        }
        OP_SUSPEND => Instruction::Suspend,
        OP_RESUME => Instruction::Resume,
        OP_RTAG => Instruction::Rtag {
            dst: take_dst(&mut r)?,
            src: take_src(&mut r)?,
        },
        OP_WTAG => Instruction::Wtag {
            dst: take_dst(&mut r)?,
            src: take_src(&mut r)?,
            tag: take_src(&mut r)?,
        },
        OP_CHECK => Instruction::Check {
            dst: take_dst(&mut r)?,
            src: take_src(&mut r)?,
            tag: Tag::from_bits(r.take(4)? as u8),
        },
        OP_ENTER => Instruction::Enter {
            key: take_src(&mut r)?,
            value: take_src(&mut r)?,
        },
        OP_XLATE => Instruction::Xlate {
            dst: take_dst(&mut r)?,
            key: take_src(&mut r)?,
        },
        OP_PROBE => Instruction::Probe {
            dst: take_dst(&mut r)?,
            key: take_src(&mut r)?,
        },
        OP_MARK => Instruction::Mark {
            class: StatClass::ALL[r.take(3)? as usize],
        },
        OP_HALT => Instruction::Halt,
        OP_NOP => Instruction::Nop,
        other => return Err(CodecError::new(format!("bad opcode {other}"))),
    };
    Ok(instr)
}

/// Computes the code footprint of a program in 36-bit memory words
/// (two 17-bit slots per word).
pub fn footprint_words(program: &[Instruction]) -> u32 {
    let slots: usize = program.iter().map(|i| encode(i).slots()).sum();
    slots.div_ceil(2) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::MemRef;

    fn round_trip(i: Instruction) {
        let e = encode(&i);
        assert_eq!(decode(&e).unwrap(), i, "round trip failed for {i}");
        assert!(e.slots() >= 1);
        assert_eq!(e.slot_values().len(), e.slots());
        // Slot-value round trip (the replay log stores instructions this way).
        let rebuilt = Encoded::from_slots(&e.slot_values());
        assert_eq!(decode(&rebuilt).unwrap(), i, "slot round trip for {i}");
    }

    #[test]
    fn round_trips_representative_instructions() {
        use Instruction as I;
        let samples = vec![
            I::Move {
                dst: Dst::D(DReg::R0),
                src: Src::D(DReg::R1),
            },
            I::Move {
                dst: Dst::Mem(MemRef::disp(AReg::A2, 1000)),
                src: Src::Imm(Word::new(Tag::CFut, 0)),
            },
            I::Alu {
                op: AluOp::Add,
                dst: Dst::D(DReg::R0),
                a: Src::D(DReg::R0),
                b: Src::imm(1),
            },
            I::Alu {
                op: AluOp::Lsh,
                dst: Dst::D(DReg::R3),
                a: Src::Mem(MemRef::reg(AReg::A3, DReg::R2)),
                b: Src::imm(-4),
            },
            I::Alu1 {
                op: Alu1Op::Not,
                dst: Dst::D(DReg::R1),
                src: Src::D(DReg::R1),
            },
            I::Br { off: -3 },
            I::Br { off: 100_000 },
            I::Bc {
                cond: Cond::NonZero,
                src: Src::D(DReg::R2),
                off: 700,
            },
            I::Jmp {
                target: Src::D(DReg::R3),
            },
            I::Jal {
                link: DReg::R3,
                off: 42,
            },
            I::Send {
                priority: MsgPriority::P1,
                a: Src::Sp(Special::Nnr),
                b: Some(Src::Imm(Word::int(9999))),
                end: true,
            },
            I::Suspend,
            I::Resume,
            I::Rtag {
                dst: Dst::D(DReg::R0),
                src: Src::Mem(MemRef::disp(AReg::A3, 1)),
            },
            I::Wtag {
                dst: Dst::D(DReg::R0),
                src: Src::D(DReg::R1),
                tag: Src::imm(7),
            },
            I::Check {
                dst: Dst::D(DReg::R0),
                src: Src::Mem(MemRef::disp(AReg::A0, 2)),
                tag: Tag::CFut,
            },
            I::Enter {
                key: Src::D(DReg::R0),
                value: Src::A(AReg::A1),
            },
            I::Xlate {
                dst: Dst::A(AReg::A0),
                key: Src::D(DReg::R0),
            },
            I::Probe {
                dst: Dst::D(DReg::R1),
                key: Src::Sp(Special::Nid),
            },
            I::Mark {
                class: StatClass::NnrCalc,
            },
            I::Halt,
            I::Nop,
        ];
        for i in samples {
            round_trip(i);
        }
    }

    #[test]
    fn register_move_fits_one_slot() {
        let e = encode(&Instruction::Move {
            dst: Dst::D(DReg::R0),
            src: Src::D(DReg::R1),
        });
        assert_eq!(e.slots(), 1, "MOVE Rx,Ry must fit a 17-bit slot");
    }

    #[test]
    fn large_immediates_take_extension_slots() {
        let small = encode(&Instruction::Move {
            dst: Dst::D(DReg::R0),
            src: Src::imm(5),
        });
        let large = encode(&Instruction::Move {
            dst: Dst::D(DReg::R0),
            src: Src::imm(1_000_000),
        });
        assert!(large.slots() > small.slots());
    }

    #[test]
    fn footprint_counts_pairs() {
        let prog = vec![Instruction::Nop, Instruction::Nop, Instruction::Nop];
        // Three 1-slot instructions pack into two words.
        assert_eq!(footprint_words(&prog), 2);
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let e = encode(&Instruction::Alu {
            op: AluOp::Add,
            dst: Dst::D(DReg::R0),
            a: Src::D(DReg::R0),
            b: Src::imm(1),
        });
        let truncated = Encoded {
            limbs: e.limbs.clone(),
            bits: 6,
        };
        assert!(decode(&truncated).is_err());
    }
}
