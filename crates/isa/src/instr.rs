//! The decoded MDP instruction set.
//!
//! The simulator executes these decoded forms directly for speed; the
//! bit-level representation lives in [`crate::encode`]. The set covers the
//! MDP's published repertoire at the granularity the paper's evaluation
//! depends on: arithmetic/data movement/control, the `SEND` family,
//! tag manipulation (`RTAG`/`WTAG`/`CHECK`), name translation
//! (`ENTER`/`XLATE`/`PROBE`), and thread control (`SUSPEND`/`RESUME`).

use crate::operand::{Dst, Src};
use crate::tag::Tag;
use std::fmt;

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating). Faults on divide-by-zero.
    Div,
    /// Integer remainder. Faults on divide-by-zero.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift: positive counts shift left, negative shift right.
    Lsh,
    /// Arithmetic shift: positive counts shift left, negative shift right.
    Ash,
    /// Equality comparison, producing `bool`.
    Eq,
    /// Inequality comparison, producing `bool`.
    Ne,
    /// Signed less-than, producing `bool`.
    Lt,
    /// Signed less-or-equal, producing `bool`.
    Le,
    /// Signed greater-than, producing `bool`.
    Gt,
    /// Signed greater-or-equal, producing `bool`.
    Ge,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl AluOp {
    /// All binary ALU operations in encoding order.
    pub const ALL: [AluOp; 18] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Lsh,
        AluOp::Ash,
        AluOp::Eq,
        AluOp::Ne,
        AluOp::Lt,
        AluOp::Le,
        AluOp::Gt,
        AluOp::Ge,
        AluOp::Min,
        AluOp::Max,
    ];

    /// Whether the result is a `bool` (comparison) rather than an `int`.
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            AluOp::Eq | AluOp::Ne | AluOp::Lt | AluOp::Le | AluOp::Gt | AluOp::Ge
        )
    }

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "ADD",
            AluOp::Sub => "SUB",
            AluOp::Mul => "MUL",
            AluOp::Div => "DIV",
            AluOp::Rem => "REM",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
            AluOp::Lsh => "LSH",
            AluOp::Ash => "ASH",
            AluOp::Eq => "EQ",
            AluOp::Ne => "NE",
            AluOp::Lt => "LT",
            AluOp::Le => "LE",
            AluOp::Gt => "GT",
            AluOp::Ge => "GE",
            AluOp::Min => "MIN",
            AluOp::Max => "MAX",
        }
    }
}

/// Unary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alu1Op {
    /// Integer negation.
    Neg,
    /// Boolean NOT.
    Not,
    /// Bitwise complement.
    Inv,
}

impl Alu1Op {
    /// All unary ALU operations in encoding order.
    pub const ALL: [Alu1Op; 3] = [Alu1Op::Neg, Alu1Op::Not, Alu1Op::Inv];

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Alu1Op::Neg => "NEG",
            Alu1Op::Not => "NOT",
            Alu1Op::Inv => "INV",
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if the operand is `bool` true.
    True,
    /// Branch if the operand is `bool` false.
    False,
    /// Branch if the operand is integer zero.
    Zero,
    /// Branch if the operand is integer non-zero.
    NonZero,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 4] = [Cond::True, Cond::False, Cond::Zero, Cond::NonZero];

    /// Mnemonic suffix (`BT`, `BF`, `BZ`, `BNZ`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::True => "BT",
            Cond::False => "BF",
            Cond::Zero => "BZ",
            Cond::NonZero => "BNZ",
        }
    }
}

/// Message priority for the `SEND` family.
///
/// Priority-1 messages receive preference during channel arbitration, are
/// buffered in a separate queue at the destination, and are dispatched before
/// pending priority-0 messages (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum MsgPriority {
    /// Priority 0 (normal traffic).
    #[default]
    P0,
    /// Priority 1 (preferred in arbitration; preempts P0 handlers).
    P1,
}

impl MsgPriority {
    /// Both priorities, low to high.
    pub const ALL: [MsgPriority; 2] = [MsgPriority::P0, MsgPriority::P1];

    /// Index (0 or 1) for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for MsgPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index())
    }
}

/// Cycle-attribution classes used by the statistics machinery.
///
/// The paper's Figure 6 decomposes application time into computation,
/// communication, synchronization, `xlate`, NNR calculation, and idle. The
/// MDP had no statistics hardware (a lamented omission, §5); the paper
/// instrumented code with counters, which we mirror with the zero-cycle
/// [`Instruction::Mark`] pseudo-instruction that switches the attribution
/// class of subsequent cycles in the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum StatClass {
    /// Useful computation (the default attribution).
    #[default]
    Compute,
    /// Communication: send instructions, send-fault stalls, message-data
    /// copying marked by handlers.
    Comm,
    /// Synchronization: presence-tag faults, suspends, barrier waits.
    Sync,
    /// Name translation: `ENTER`/`XLATE`/`PROBE` and miss handlers.
    Xlate,
    /// Converting linear node indices to router addresses in software.
    NnrCalc,
    /// Hardware message dispatch (4 cycles per task creation).
    Dispatch,
    /// No runnable work: empty queues and a halted/suspended background.
    Idle,
}

impl StatClass {
    /// All classes, in reporting order.
    pub const ALL: [StatClass; 7] = [
        StatClass::Compute,
        StatClass::Comm,
        StatClass::Sync,
        StatClass::Xlate,
        StatClass::NnrCalc,
        StatClass::Dispatch,
        StatClass::Idle,
    ];

    /// Index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Classes a program may select with [`Instruction::Mark`].
    ///
    /// Everything except [`StatClass::Dispatch`] (which only the hardware
    /// dispatcher accrues). `Idle` is markable so that spin-wait loops can
    /// be attributed as idle time, matching the paper's accounting.
    pub fn is_markable(self) -> bool {
        self != StatClass::Dispatch
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StatClass::Compute => "comp",
            StatClass::Comm => "comm",
            StatClass::Sync => "sync",
            StatClass::Xlate => "xlate",
            StatClass::NnrCalc => "nnr",
            StatClass::Dispatch => "dispatch",
            StatClass::Idle => "idle",
        }
    }
}

impl fmt::Display for StatClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A decoded MDP instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Data movement. `MOVE` is also how tagged constants enter registers
    /// and how `fut` values may be relocated without faulting; a `cfut`
    /// source still faults (§3.2).
    Move {
        /// Destination.
        dst: Dst,
        /// Source.
        src: Src,
    },
    /// Binary ALU operation: `dst = a op b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: Dst,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// Unary ALU operation: `dst = op src`.
    Alu1 {
        /// Operation.
        op: Alu1Op,
        /// Destination.
        dst: Dst,
        /// Operand.
        src: Src,
    },
    /// Unconditional IP-relative branch.
    Br {
        /// Offset in instruction slots relative to the *next* instruction.
        off: i32,
    },
    /// Conditional IP-relative branch.
    Bc {
        /// Condition.
        cond: Cond,
        /// Tested operand.
        src: Src,
        /// Offset in instruction slots relative to the next instruction.
        off: i32,
    },
    /// Indirect jump to an `ip`-tagged word (or integer instruction index).
    Jmp {
        /// Jump target.
        target: Src,
    },
    /// Jump-and-link: store the return IP (as an `ip` word) in a data
    /// register and branch. The MDP has no hardware stack; calls are a
    /// software convention over `JAL`/`JMP`.
    Jal {
        /// Register receiving the return address.
        link: crate::reg::DReg,
        /// Offset in instruction slots relative to the next instruction.
        off: i32,
    },
    /// Message injection. Models the MDP `SEND`/`SEND2`/`SENDE`/`SEND2E`
    /// family: one or two operand words per cycle, with `end` marking
    /// message completion. The first word injected after an end (or at
    /// thread start) must be a `route` word naming the destination node.
    Send {
        /// Message priority (encoded in the opcode on the real MDP).
        priority: MsgPriority,
        /// First operand word.
        a: Src,
        /// Optional second operand word (the `SEND2` forms).
        b: Option<Src>,
        /// Whether this completes the message (the `SENDE` forms).
        end: bool,
    },
    /// Terminate the current thread. The processor dispatches the next
    /// pending message, or resumes the interrupted lower-priority thread.
    Suspend,
    /// Privileged: restore the register bank of the current priority from
    /// the architectural staging buffer and resume at the staged IP.
    /// Used by runtime handlers to restart threads suspended on a fault.
    Resume,
    /// Read a word's tag as an integer 0–15. Does **not** fault on futures
    /// (it is how handlers inspect them).
    Rtag {
        /// Destination for the tag value.
        dst: Dst,
        /// Inspected word.
        src: Src,
    },
    /// Write a word's tag: `dst = src` retagged with the low 4 bits of
    /// `tag`. Does not fault on futures.
    Wtag {
        /// Destination.
        dst: Dst,
        /// Source word providing the payload bits.
        src: Src,
        /// Operand providing the new tag number.
        tag: Src,
    },
    /// Tag check: `dst = bool(src.tag == tag)`. Does not fault on futures.
    Check {
        /// Destination for the boolean result.
        dst: Dst,
        /// Inspected word.
        src: Src,
        /// Tag compared against.
        tag: Tag,
    },
    /// Insert a key/value pair into the name-translation table (§2.1).
    Enter {
        /// Key word (full tagged comparison).
        key: Src,
        /// Value word.
        value: Src,
    },
    /// Translate a key through the name table; faults on miss. A successful
    /// `XLATE` takes three cycles (§2.1).
    Xlate {
        /// Destination for the translated value.
        dst: Dst,
        /// Key word.
        key: Src,
    },
    /// Like [`Instruction::Xlate`] but delivers `nil` instead of faulting on
    /// a miss.
    Probe {
        /// Destination for the translated value or `nil`.
        dst: Dst,
        /// Key word.
        key: Src,
    },
    /// Zero-cycle instrumentation: attribute subsequent cycles of this
    /// thread to a [`StatClass`]. Mirrors the paper's hand-placed counters.
    Mark {
        /// New attribution class.
        class: StatClass,
    },
    /// Stop this node's background thread permanently. The machine is
    /// quiescent when every node has halted or suspended and no messages
    /// remain in flight.
    Halt,
    /// No operation (one cycle).
    Nop,
}

impl Instruction {
    /// The number of memory operands this instruction references.
    ///
    /// The MDP permits at most one memory operand per instruction; the
    /// assembler enforces this, and [`validate`](Self::validate) re-checks.
    pub fn mem_operands(&self) -> usize {
        let src_mem = |s: &Src| usize::from(s.is_mem());
        let dst_mem = |d: &Dst| usize::from(d.is_mem());
        match self {
            Instruction::Move { dst, src } => dst_mem(dst) + src_mem(src),
            Instruction::Alu { dst, a, b, .. } => dst_mem(dst) + src_mem(a) + src_mem(b),
            Instruction::Alu1 { dst, src, .. } => dst_mem(dst) + src_mem(src),
            Instruction::Bc { src, .. } => src_mem(src),
            Instruction::Jmp { target } => src_mem(target),
            Instruction::Send { a, b, .. } => src_mem(a) + b.as_ref().map_or(0, src_mem),
            Instruction::Rtag { dst, src } => dst_mem(dst) + src_mem(src),
            Instruction::Wtag { dst, src, tag } => dst_mem(dst) + src_mem(src) + src_mem(tag),
            Instruction::Check { dst, src, .. } => dst_mem(dst) + src_mem(src),
            Instruction::Enter { key, value } => src_mem(key) + src_mem(value),
            Instruction::Xlate { dst, key } | Instruction::Probe { dst, key } => {
                dst_mem(dst) + src_mem(key)
            }
            _ => 0,
        }
    }

    /// Validates the static constraints the hardware imposes.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation: more than one memory operand,
    /// or a non-markable [`StatClass`] in a `MARK`.
    pub fn validate(&self) -> Result<(), String> {
        if self.mem_operands() > 1 {
            return Err(format!(
                "instruction has {} memory operands (max 1): {self}",
                self.mem_operands()
            ));
        }
        if let Instruction::Mark { class } = self {
            if !class.is_markable() {
                return Err(format!("MARK cannot select hardware class {class}"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Move { dst, src } => write!(f, "MOVE {dst}, {src}"),
            Instruction::Alu { op, dst, a, b } => {
                write!(f, "{} {dst}, {a}, {b}", op.mnemonic())
            }
            Instruction::Alu1 { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Instruction::Br { off } => write!(f, "BR {off:+}"),
            Instruction::Bc { cond, src, off } => {
                write!(f, "{} {src}, {off:+}", cond.mnemonic())
            }
            Instruction::Jmp { target } => write!(f, "JMP {target}"),
            Instruction::Jal { link, off } => write!(f, "JAL {link}, {off:+}"),
            Instruction::Send {
                priority,
                a,
                b,
                end,
            } => {
                let two = if b.is_some() { "2" } else { "" };
                let e = if *end { "E" } else { "" };
                write!(f, "SEND{two}{e}.{priority} {a}")?;
                if let Some(b) = b {
                    write!(f, ", {b}")?;
                }
                Ok(())
            }
            Instruction::Suspend => f.write_str("SUSPEND"),
            Instruction::Resume => f.write_str("RESUME"),
            Instruction::Rtag { dst, src } => write!(f, "RTAG {dst}, {src}"),
            Instruction::Wtag { dst, src, tag } => write!(f, "WTAG {dst}, {src}, {tag}"),
            Instruction::Check { dst, src, tag } => write!(f, "CHECK {dst}, {src}, {tag}"),
            Instruction::Enter { key, value } => write!(f, "ENTER {key}, {value}"),
            Instruction::Xlate { dst, key } => write!(f, "XLATE {dst}, {key}"),
            Instruction::Probe { dst, key } => write!(f, "PROBE {dst}, {key}"),
            Instruction::Mark { class } => write!(f, "MARK {class}"),
            Instruction::Halt => f.write_str("HALT"),
            Instruction::Nop => f.write_str("NOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::MemRef;
    use crate::reg::{AReg, DReg};

    #[test]
    fn mem_operand_counting() {
        let i = Instruction::Alu {
            op: AluOp::Add,
            dst: Dst::D(DReg::R0),
            a: Src::Mem(MemRef::disp(AReg::A0, 1)),
            b: Src::imm(2),
        };
        assert_eq!(i.mem_operands(), 1);
        assert!(i.validate().is_ok());

        let bad = Instruction::Move {
            dst: Dst::Mem(MemRef::disp(AReg::A0, 0)),
            src: Src::Mem(MemRef::disp(AReg::A1, 0)),
        };
        assert_eq!(bad.mem_operands(), 2);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn mark_rejects_hardware_classes() {
        assert!(Instruction::Mark {
            class: StatClass::Dispatch
        }
        .validate()
        .is_err());
        assert!(Instruction::Mark {
            class: StatClass::Idle
        }
        .validate()
        .is_ok());
        assert!(Instruction::Mark {
            class: StatClass::Comm
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn display_covers_send_variants() {
        let s = Instruction::Send {
            priority: MsgPriority::P1,
            a: Src::D(DReg::R0),
            b: Some(Src::D(DReg::R1)),
            end: true,
        };
        assert_eq!(s.to_string(), "SEND2E.1 R0, R1");
        let s = Instruction::Send {
            priority: MsgPriority::P0,
            a: Src::D(DReg::R2),
            b: None,
            end: false,
        };
        assert_eq!(s.to_string(), "SEND.0 R2");
    }

    #[test]
    fn stat_class_indices_dense() {
        for (i, c) in StatClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
