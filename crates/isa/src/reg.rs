//! Register names, priority levels, and the triple-banked register file.

use crate::word::Word;
use std::fmt;
use std::ops::{Index, IndexMut};

/// One of the four general-purpose data registers, `R0`–`R3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DReg {
    /// Data register 0.
    R0,
    /// Data register 1.
    R1,
    /// Data register 2.
    R2,
    /// Data register 3 (conventionally the link register for `JAL`).
    R3,
}

impl DReg {
    /// All data registers in index order.
    pub const ALL: [DReg; 4] = [DReg::R0, DReg::R1, DReg::R2, DReg::R3];

    /// The register number, 0–3.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes a register number.
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    #[inline]
    pub fn from_index(index: usize) -> DReg {
        Self::ALL[index]
    }
}

impl fmt::Display for DReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.index())
    }
}

/// One of the four address registers, `A0`–`A3`.
///
/// Address registers hold `addr`-tagged segment descriptors; every memory
/// reference goes through one. By convention established by the runtime:
/// `A3` is loaded by the hardware dispatch with a descriptor of the current
/// message, and `A2` points at the node's global data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AReg {
    /// Address register 0.
    A0,
    /// Address register 1.
    A1,
    /// Address register 2 (convention: node globals segment).
    A2,
    /// Address register 3 (convention: current-message segment).
    A3,
}

impl AReg {
    /// All address registers in index order.
    pub const ALL: [AReg; 4] = [AReg::A0, AReg::A1, AReg::A2, AReg::A3];

    /// The register number, 0–3.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Decodes a register number.
    ///
    /// # Panics
    ///
    /// Panics if `index > 3`.
    #[inline]
    pub fn from_index(index: usize) -> AReg {
        Self::ALL[index]
    }
}

impl fmt::Display for AReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.index())
    }
}

/// Execution priority level.
///
/// The MDP provides three distinct register sets so that priority-1 message
/// handlers can interrupt priority-0 handlers, and background code can run
/// whenever both message queues are empty, all without save/restore cost
/// (§2.1: "Fast interrupt processing is achieved through the use of three
/// distinct register sets").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background execution: runs only when both message queues are empty.
    Background,
    /// Priority 0: normal message handlers.
    P0,
    /// Priority 1: high-priority handlers; may interrupt P0 threads.
    P1,
}

impl Priority {
    /// All priority levels from lowest to highest.
    pub const ALL: [Priority; 3] = [Priority::Background, Priority::P0, Priority::P1];

    /// Bank index used by [`RegFile`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Priority::Background => "bg",
            Priority::P0 => "p0",
            Priority::P1 => "p1",
        };
        f.write_str(name)
    }
}

/// The architectural registers of one priority level: four data registers,
/// four address registers, and the instruction pointer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegBank {
    /// Data registers `R0`–`R3`.
    pub r: [Word; 4],
    /// Address registers `A0`–`A3`.
    pub a: [Word; 4],
    /// Instruction pointer (an instruction index; see `jm-asm`).
    pub ip: u32,
}

impl Index<DReg> for RegBank {
    type Output = Word;
    fn index(&self, reg: DReg) -> &Word {
        &self.r[reg.index()]
    }
}

impl IndexMut<DReg> for RegBank {
    fn index_mut(&mut self, reg: DReg) -> &mut Word {
        &mut self.r[reg.index()]
    }
}

impl Index<AReg> for RegBank {
    type Output = Word;
    fn index(&self, reg: AReg) -> &Word {
        &self.a[reg.index()]
    }
}

impl IndexMut<AReg> for RegBank {
    fn index_mut(&mut self, reg: AReg) -> &mut Word {
        &mut self.a[reg.index()]
    }
}

/// The full triple-banked register file: one [`RegBank`] per [`Priority`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegFile {
    banks: [RegBank; 3],
}

impl RegFile {
    /// Creates a register file with all registers nil and IPs zero.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// The bank for a priority level.
    #[inline]
    pub fn bank(&self, priority: Priority) -> &RegBank {
        &self.banks[priority.index()]
    }

    /// Mutable access to the bank for a priority level.
    #[inline]
    pub fn bank_mut(&mut self, priority: Priority) -> &mut RegBank {
        &mut self.banks[priority.index()]
    }
}

impl Index<Priority> for RegFile {
    type Output = RegBank;
    fn index(&self, priority: Priority) -> &RegBank {
        self.bank(priority)
    }
}

impl IndexMut<Priority> for RegFile {
    fn index_mut(&mut self, priority: Priority) -> &mut RegBank {
        self.bank_mut(priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_round_trip() {
        for r in DReg::ALL {
            assert_eq!(DReg::from_index(r.index()), r);
        }
        for a in AReg::ALL {
            assert_eq!(AReg::from_index(a.index()), a);
        }
    }

    #[test]
    fn banks_are_independent() {
        let mut rf = RegFile::new();
        rf[Priority::P0][DReg::R0] = Word::int(7);
        rf[Priority::P1][DReg::R0] = Word::int(9);
        rf[Priority::Background][DReg::R0] = Word::int(11);
        assert_eq!(rf[Priority::P0][DReg::R0].as_i32(), 7);
        assert_eq!(rf[Priority::P1][DReg::R0].as_i32(), 9);
        assert_eq!(rf[Priority::Background][DReg::R0].as_i32(), 11);
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::P1 > Priority::P0);
        assert!(Priority::P0 > Priority::Background);
    }

    #[test]
    fn address_and_data_regs_are_separate() {
        let mut bank = RegBank::default();
        bank[DReg::R1] = Word::int(1);
        bank[AReg::A1] = Word::int(2);
        assert_eq!(bank[DReg::R1].as_i32(), 1);
        assert_eq!(bank[AReg::A1].as_i32(), 2);
    }
}
