//! # jm-isa
//!
//! Instruction-set architecture of the MIT Message-Driven Processor (MDP), the
//! processing node of the J-Machine multicomputer evaluated in:
//!
//! > Noakes, Wallach, Dally. *The J-Machine Multicomputer: An Architectural
//! > Evaluation.* ISCA 1993.
//!
//! The MDP is a 36-bit tagged-word machine: every word carries 32 bits of data
//! plus a 4-bit type tag. Tags implement dynamic typing, presence-based
//! synchronization (`cfut`/`fut`), and distinguish instruction pointers,
//! segment descriptors, message headers, and network routing words.
//!
//! This crate defines the architectural state types shared by the assembler
//! ([`jm-asm`]), the node microarchitecture model (`jm-mdp`), and the network
//! (`jm-net`):
//!
//! * [`Word`] and [`Tag`] — the 36-bit tagged word;
//! * [`reg`] — register names and the triple-banked register file;
//! * [`instr`] and [`operand`] — the decoded instruction set;
//! * [`encode`] — the dual-17-bit binary instruction encoding;
//! * [`node`] — node identifiers, mesh coordinates, and routing words;
//! * [`consts`] — the memory map and machine parameters from the paper.
//!
//! # Example
//!
//! ```
//! use jm_isa::{Word, Tag};
//!
//! let w = Word::int(42);
//! assert_eq!(w.tag(), Tag::Int);
//! assert_eq!(w.as_i32(), 42);
//!
//! // A `cfut` word marks a slot whose value has not been produced yet;
//! // reading it as an operand faults the processor.
//! let slot = Word::cfut();
//! assert!(slot.tag().is_future());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod consts;
pub mod encode;
pub mod instr;
pub mod node;
pub mod operand;
pub mod reg;
pub mod tag;
pub mod traceid;
pub mod word;

pub use consts::FaultKind;
pub use instr::{Alu1Op, AluOp, Cond, Instruction, MsgPriority, StatClass};
pub use node::{Coord, MeshDims, NodeId, RouteWord};
pub use operand::{Dst, MemRef, Special, Src};
pub use reg::{AReg, DReg, Priority, RegBank, RegFile};
pub use tag::Tag;
pub use traceid::TraceId;
pub use word::{MsgHeader, SegDesc, Word};
