//! Architectural constants: the memory map and machine parameters from the
//! paper, plus the fault repertoire.

use std::fmt;

/// Processor clock, Hz. The prototype runs at 12.5 MHz (§2.2).
pub const CLOCK_HZ: u64 = 12_500_000;

/// Words of on-chip SRAM (4K × 36 bits, §1).
pub const IMEM_WORDS: u32 = 4096;

/// Words of external DRAM (1 MByte per node, §1). 3 chips of 1M×4 hold
/// 256K 32-bit data words (the extra bits hold ECC on the real machine).
pub const EMEM_WORDS: u32 = 262_144;

/// First word address of external memory; internal memory occupies
/// `0..EMEM_BASE`.
pub const EMEM_BASE: u32 = IMEM_WORDS;

/// Total addressable words per node.
pub const MEM_WORDS: u32 = IMEM_WORDS + EMEM_WORDS;

/// Number of fault vectors at the base of internal memory.
pub const VECTOR_COUNT: u32 = 16;

/// Default capacity of the priority-0 message queue, in words.
///
/// §4.3.3: the queue "can contain no more than 256 minimum-length messages
/// (four words)" = 1024 words, "and is configured for 128 of these messages
/// in Tuned-J" = 512 words. We default to the Tuned-J configuration.
pub const QUEUE0_WORDS: u32 = 512;

/// Default capacity of the priority-1 message queue, in words.
pub const QUEUE1_WORDS: u32 = 256;

/// Data bits per word that count toward transfer rates (32 of the 36).
pub const DATA_BITS_PER_WORD: u64 = 32;

/// Peak channel bandwidth in words per cycle (§2.1: 0.5 words/cycle).
pub const CHANNEL_WORDS_PER_CYCLE: f64 = 0.5;

/// Converts a cycle count to microseconds at the prototype clock.
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 * 1e6 / CLOCK_HZ as f64
}

/// Converts a word count and cycle count to megabits per second of data
/// payload at the prototype clock.
pub fn words_per_cycles_to_mbits(words: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    (words as f64 * DATA_BITS_PER_WORD as f64) * (CLOCK_HZ as f64 / cycles as f64) / 1e6
}

/// The processor fault repertoire.
///
/// Each fault vectors through a dedicated `ip`-tagged word at the base of
/// internal memory (vector address = discriminant). Runtime software installs
/// the handlers at boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultKind {
    /// Operand read of a `cfut`-tagged word (consumer arrived early).
    CFutRead = 0,
    /// Computing use of a `fut`-tagged word.
    FutUse = 1,
    /// Operand tag unsuitable for the operation (e.g. arithmetic on `sym`).
    TagMismatch = 2,
    /// Segment bounds violation or non-`addr` word in an address register.
    Bounds = 3,
    /// Integer division by zero.
    DivZero = 4,
    /// `XLATE` key not present in the name table.
    XlateMiss = 5,
    /// Message arrival found the destination queue full.
    QueueOverflow = 6,
    /// Early suspension: `SUSPEND` with the message not fully arrived is
    /// fine, but reading beyond the end of the current message faults.
    MsgBounds = 7,
    /// An illegal or privileged instruction (e.g. `RESUME` outside a
    /// handler).
    Illegal = 8,
    /// The head of a message queue is not a `msg`-tagged header word —
    /// the queue pointers have desynchronized from the word stream. Unlike
    /// the other faults this one is not recoverable by a handler: the node
    /// halts with a machine-level error, and the vector slot exists only so
    /// the statistics hardware can count occurrences uniformly.
    QueueDesync = 9,
    /// A message failed its checksum validation at dispatch (fault-injection
    /// runs only; see `jm-fault`). The damaged message is dropped — counted
    /// loss instead of a silent wrong answer — and recovery is left to the
    /// runtime's idempotent resend protocol.
    CorruptMessage = 10,
}

impl FaultKind {
    /// All faults in vector order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::CFutRead,
        FaultKind::FutUse,
        FaultKind::TagMismatch,
        FaultKind::Bounds,
        FaultKind::DivZero,
        FaultKind::XlateMiss,
        FaultKind::QueueOverflow,
        FaultKind::MsgBounds,
        FaultKind::Illegal,
        FaultKind::QueueDesync,
        FaultKind::CorruptMessage,
    ];

    /// The word address of this fault's vector.
    #[inline]
    pub fn vector(self) -> u32 {
        self as u32
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::CFutRead => "cfut-read",
            FaultKind::FutUse => "fut-use",
            FaultKind::TagMismatch => "tag-mismatch",
            FaultKind::Bounds => "bounds",
            FaultKind::DivZero => "div-zero",
            FaultKind::XlateMiss => "xlate-miss",
            FaultKind::QueueOverflow => "queue-overflow",
            FaultKind::MsgBounds => "msg-bounds",
            FaultKind::Illegal => "illegal",
            FaultKind::QueueDesync => "queue-desync",
            FaultKind::CorruptMessage => "corrupt-message",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_map_is_consistent() {
        assert_eq!(EMEM_BASE, IMEM_WORDS);
        assert_eq!(MEM_WORDS, IMEM_WORDS + EMEM_WORDS);
        assert!(VECTOR_COUNT as usize >= FaultKind::ALL.len());
        // 1 MByte of DRAM = 256K data words.
        assert_eq!(EMEM_WORDS * 4, 1 << 20);
    }

    #[test]
    fn unit_conversions() {
        // 12.5 cycles = 1 microsecond at 12.5 MHz.
        assert!((cycles_to_us(125) - 10.0).abs() < 1e-9);
        // 0.5 words/cycle of 32-bit data = 200 Mbit/s peak terminal rate,
        // matching Figure 4's asymptote.
        let mbits = words_per_cycles_to_mbits(1, 2);
        assert!((mbits - 200.0).abs() < 1e-9);
    }

    #[test]
    fn fault_vectors_are_dense_and_in_range() {
        for (i, fault) in FaultKind::ALL.iter().enumerate() {
            assert_eq!(fault.vector() as usize, i);
            assert!(fault.vector() < VECTOR_COUNT);
        }
    }

    #[test]
    fn queue_defaults_match_tuned_j() {
        assert_eq!(QUEUE0_WORDS, 512);
        assert_eq!(QUEUE0_WORDS / 4, 128); // 128 minimum-length messages
    }
}
