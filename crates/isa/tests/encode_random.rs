//! Randomized tests: every representable instruction round-trips through the
//! binary encoding, and footprints are monotone under concatenation.
//!
//! Formerly proptest-based; now driven by the in-tree seeded PRNG so the
//! workspace tests run hermetically. The generator draws uniformly from the
//! same instruction space the proptest strategies covered.

use jm_isa::encode::{decode, encode, footprint_words};
use jm_isa::instr::{Alu1Op, AluOp, Cond, Instruction, MsgPriority, StatClass};
use jm_isa::operand::{Dst, Index, MemRef, Special, Src};
use jm_isa::reg::{AReg, DReg};
use jm_isa::tag::Tag;
use jm_isa::word::Word;
use jm_prng::Prng;

fn arb_dreg(g: &mut Prng) -> DReg {
    DReg::from_index(g.range_usize(0, 4))
}

fn arb_areg(g: &mut Prng) -> AReg {
    AReg::from_index(g.range_usize(0, 4))
}

fn arb_tag(g: &mut Prng) -> Tag {
    Tag::from_bits(g.range_u32(0, 16) as u8)
}

fn arb_word(g: &mut Prng) -> Word {
    Word::new(arb_tag(g), g.next_u32())
}

fn arb_mem(g: &mut Prng) -> MemRef {
    let base = arb_areg(g);
    let index = if g.chance(0.5) {
        Index::Disp(g.range_u32(0, 1 << 20))
    } else {
        Index::Reg(arb_dreg(g))
    };
    MemRef { base, index }
}

fn arb_src(g: &mut Prng) -> Src {
    match g.range_u32(0, 6) {
        0 => Src::D(arb_dreg(g)),
        1 => Src::A(arb_areg(g)),
        2 => Src::Imm(arb_word(g)),
        3 => Src::imm(g.next_u32() as i32),
        4 => Src::Mem(arb_mem(g)),
        _ => Src::Sp(Special::from_index(g.range_usize(0, 8))),
    }
}

fn arb_dst(g: &mut Prng) -> Dst {
    match g.range_u32(0, 3) {
        0 => Dst::D(arb_dreg(g)),
        1 => Dst::A(arb_areg(g)),
        _ => Dst::Mem(arb_mem(g)),
    }
}

fn arb_instr(g: &mut Prng) -> Instruction {
    loop {
        match g.range_u32(0, 19) {
            0 => {
                return Instruction::Move {
                    dst: arb_dst(g),
                    src: arb_src(g),
                }
            }
            1 => {
                return Instruction::Alu {
                    op: AluOp::ALL[g.range_usize(0, 18)],
                    dst: arb_dst(g),
                    a: arb_src(g),
                    b: arb_src(g),
                }
            }
            2 => {
                return Instruction::Alu1 {
                    op: Alu1Op::ALL[g.range_usize(0, 3)],
                    dst: arb_dst(g),
                    src: arb_src(g),
                }
            }
            3 => {
                return Instruction::Br {
                    off: g.next_u32() as i32,
                }
            }
            4 => {
                return Instruction::Bc {
                    cond: Cond::ALL[g.range_usize(0, 4)],
                    src: arb_src(g),
                    off: g.next_u32() as i32,
                }
            }
            5 => return Instruction::Jmp { target: arb_src(g) },
            6 => {
                return Instruction::Jal {
                    link: arb_dreg(g),
                    off: g.next_u32() as i32,
                }
            }
            7 => {
                return Instruction::Send {
                    priority: if g.chance(0.5) {
                        MsgPriority::P1
                    } else {
                        MsgPriority::P0
                    },
                    a: arb_src(g),
                    b: g.chance(0.5).then(|| arb_src(g)),
                    end: g.chance(0.5),
                }
            }
            8 => return Instruction::Suspend,
            9 => return Instruction::Resume,
            10 => {
                return Instruction::Rtag {
                    dst: arb_dst(g),
                    src: arb_src(g),
                }
            }
            11 => {
                return Instruction::Wtag {
                    dst: arb_dst(g),
                    src: arb_src(g),
                    tag: arb_src(g),
                }
            }
            12 => {
                return Instruction::Check {
                    dst: arb_dst(g),
                    src: arb_src(g),
                    tag: arb_tag(g),
                }
            }
            13 => {
                return Instruction::Enter {
                    key: arb_src(g),
                    value: arb_src(g),
                }
            }
            14 => {
                return Instruction::Xlate {
                    dst: arb_dst(g),
                    key: arb_src(g),
                }
            }
            15 => {
                return Instruction::Probe {
                    dst: arb_dst(g),
                    key: arb_src(g),
                }
            }
            16 => {
                let class = StatClass::ALL[g.range_usize(0, 7)];
                if class.is_markable() {
                    return Instruction::Mark { class };
                }
                // Unmarkable class drawn: redraw the whole instruction.
            }
            17 => return Instruction::Halt,
            _ => return Instruction::Nop,
        }
    }
}

#[test]
fn encoding_round_trips() {
    let mut g = Prng::from_label("encoding_round_trips", 0);
    for i in 0..20_000 {
        let instr = arb_instr(&mut g);
        let encoded = encode(&instr);
        let decoded = decode(&encoded).expect("decode");
        assert_eq!(decoded, instr, "case {i}");
    }
}

#[test]
fn slots_are_positive_and_bounded() {
    let mut g = Prng::from_label("slots_bounded", 0);
    for _ in 0..20_000 {
        let instr = arb_instr(&mut g);
        let encoded = encode(&instr);
        assert!(encoded.slots() >= 1);
        // No instruction should need more than 8 slots (4 words).
        assert!(
            encoded.slots() <= 8,
            "{} slots for {}",
            encoded.slots(),
            instr
        );
        assert_eq!(encoded.slot_values().len(), encoded.slots());
    }
}

#[test]
fn footprint_is_additive_within_rounding() {
    let mut g = Prng::from_label("footprint_additive", 0);
    for _ in 0..500 {
        let a: Vec<Instruction> = (0..g.range_usize(0, 20))
            .map(|_| arb_instr(&mut g))
            .collect();
        let b: Vec<Instruction> = (0..g.range_usize(0, 20))
            .map(|_| arb_instr(&mut g))
            .collect();
        let mut ab = a.clone();
        ab.extend(b.iter().cloned());
        let fa = footprint_words(&a);
        let fb = footprint_words(&b);
        let fab = footprint_words(&ab);
        assert!(fab <= fa + fb);
        assert!(fab + 1 >= fa + fb);
    }
}
