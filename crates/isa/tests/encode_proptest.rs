//! Property tests: every representable instruction round-trips through the
//! binary encoding, and footprints are monotone under concatenation.

use jm_isa::encode::{decode, encode, footprint_words};
use jm_isa::instr::{Alu1Op, AluOp, Cond, Instruction, MsgPriority, StatClass};
use jm_isa::operand::{Dst, Index, MemRef, Special, Src};
use jm_isa::reg::{AReg, DReg};
use jm_isa::tag::Tag;
use jm_isa::word::Word;
use proptest::prelude::*;

fn arb_dreg() -> impl Strategy<Value = DReg> {
    (0usize..4).prop_map(DReg::from_index)
}

fn arb_areg() -> impl Strategy<Value = AReg> {
    (0usize..4).prop_map(AReg::from_index)
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    (0u8..16).prop_map(Tag::from_bits)
}

fn arb_word() -> impl Strategy<Value = Word> {
    (arb_tag(), any::<u32>()).prop_map(|(tag, bits)| Word::new(tag, bits))
}

fn arb_mem() -> impl Strategy<Value = MemRef> {
    (
        arb_areg(),
        prop_oneof![
            (0u32..1 << 20).prop_map(Index::Disp),
            arb_dreg().prop_map(Index::Reg),
        ],
    )
        .prop_map(|(base, index)| MemRef { base, index })
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        arb_dreg().prop_map(Src::D),
        arb_areg().prop_map(Src::A),
        arb_word().prop_map(Src::Imm),
        any::<i32>().prop_map(Src::imm),
        arb_mem().prop_map(Src::Mem),
        (0usize..8).prop_map(|i| Src::Sp(Special::from_index(i))),
    ]
}

fn arb_dst() -> impl Strategy<Value = Dst> {
    prop_oneof![
        arb_dreg().prop_map(Dst::D),
        arb_areg().prop_map(Dst::A),
        arb_mem().prop_map(Dst::Mem),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_dst(), arb_src()).prop_map(|(dst, src)| Instruction::Move { dst, src }),
        (0usize..18, arb_dst(), arb_src(), arb_src()).prop_map(|(op, dst, a, b)| {
            Instruction::Alu {
                op: AluOp::ALL[op],
                dst,
                a,
                b,
            }
        }),
        (0usize..3, arb_dst(), arb_src()).prop_map(|(op, dst, src)| Instruction::Alu1 {
            op: Alu1Op::ALL[op],
            dst,
            src,
        }),
        any::<i32>().prop_map(|off| Instruction::Br { off }),
        (0usize..4, arb_src(), any::<i32>()).prop_map(|(c, src, off)| Instruction::Bc {
            cond: Cond::ALL[c],
            src,
            off,
        }),
        arb_src().prop_map(|target| Instruction::Jmp { target }),
        (arb_dreg(), any::<i32>()).prop_map(|(link, off)| Instruction::Jal { link, off }),
        (
            prop::bool::ANY,
            arb_src(),
            prop::option::of(arb_src()),
            prop::bool::ANY
        )
            .prop_map(|(p1, a, b, end)| Instruction::Send {
                priority: if p1 { MsgPriority::P1 } else { MsgPriority::P0 },
                a,
                b,
                end,
            }),
        Just(Instruction::Suspend),
        Just(Instruction::Resume),
        (arb_dst(), arb_src()).prop_map(|(dst, src)| Instruction::Rtag { dst, src }),
        (arb_dst(), arb_src(), arb_src())
            .prop_map(|(dst, src, tag)| Instruction::Wtag { dst, src, tag }),
        (arb_dst(), arb_src(), arb_tag())
            .prop_map(|(dst, src, tag)| Instruction::Check { dst, src, tag }),
        (arb_src(), arb_src()).prop_map(|(key, value)| Instruction::Enter { key, value }),
        (arb_dst(), arb_src()).prop_map(|(dst, key)| Instruction::Xlate { dst, key }),
        (arb_dst(), arb_src()).prop_map(|(dst, key)| Instruction::Probe { dst, key }),
        (0usize..7)
            .prop_filter_map("markable", |i| {
                let class = StatClass::ALL[i];
                class.is_markable().then_some(Instruction::Mark { class })
            }),
        Just(Instruction::Halt),
        Just(Instruction::Nop),
    ]
}

proptest! {
    #[test]
    fn encoding_round_trips(instr in arb_instr()) {
        let encoded = encode(&instr);
        let decoded = decode(&encoded).expect("decode");
        prop_assert_eq!(decoded, instr);
    }

    #[test]
    fn slots_are_positive_and_bounded(instr in arb_instr()) {
        let encoded = encode(&instr);
        prop_assert!(encoded.slots() >= 1);
        // No instruction should need more than 8 slots (4 words).
        prop_assert!(encoded.slots() <= 8, "{} slots for {}", encoded.slots(), instr);
        prop_assert_eq!(encoded.slot_values().len(), encoded.slots());
    }

    #[test]
    fn footprint_is_additive_within_rounding(a in prop::collection::vec(arb_instr(), 0..20),
                                              b in prop::collection::vec(arb_instr(), 0..20)) {
        let mut ab = a.clone();
        ab.extend(b.iter().cloned());
        let fa = footprint_words(&a);
        let fb = footprint_words(&b);
        let fab = footprint_words(&ab);
        prop_assert!(fab <= fa + fb);
        prop_assert!(fab + 1 >= fa + fb);
    }
}
