//! Self-timed wrappers around scaled-down experiment kernels, so `cargo
//! bench` exercises each table/figure path end to end and tracks host-side
//! regression of the harness. (`harness = false`, no criterion, so the
//! workspace builds hermetically.)

use jm_bench::harness::bench;

fn micro_experiments() {
    bench("experiments/fig2_point", 1, 5, || {
        jm_bench::micro::latency::measure(8).expect("fig2");
    });
    bench("experiments/table1_overhead", 1, 5, || {
        jm_bench::micro::overhead::measure().expect("table1");
    });
    bench("experiments/fig3_point_64n", 1, 5, || {
        jm_bench::micro::load::measure_point(64, 4, 100, 1_000, 5_000).expect("fig3");
    });
    bench("experiments/fig4_point", 1, 5, || {
        jm_bench::micro::bandwidth::measure_point(
            8,
            jm_bench::micro::bandwidth::Sink::Discard,
            1_000,
            5_000,
        )
        .expect("fig4");
    });
    bench("experiments/table2_sync", 1, 5, || {
        jm_bench::micro::sync::measure().expect("table2");
    });
    bench("experiments/table3_barrier_16n", 1, 5, || {
        jm_bench::micro::barrier::measure_point(16, 2).expect("table3");
    });
}

fn macro_experiments() {
    let problems = jm_bench::macrob::Problems {
        lcs: jm_apps::lcs::LcsConfig {
            a_len: 64,
            b_len: 128,
            seed: 1,
            alphabet: 4,
        },
        radix: jm_apps::radix::RadixConfig { keys: 128, seed: 2 },
        nqueens: jm_apps::nqueens::NqConfig {
            n: 6,
            expand_depth: None,
        },
        tsp: jm_apps::tsp::TspConfig {
            cities: 6,
            seed: 3,
            task_depth: None,
            yield_every: 16,
        },
    };
    for app in jm_bench::macrob::App::ALL {
        let name = format!("apps/{}", app.name());
        bench(&name, 1, 5, || {
            jm_bench::macrob::run_app(app, 8, &problems).expect("app run");
        });
    }
}

fn main() {
    micro_experiments();
    macro_experiments();
}
