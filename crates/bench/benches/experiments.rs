//! Criterion wrappers around scaled-down experiment kernels, so `cargo
//! bench` exercises each table/figure path end to end and tracks host-side
//! regression of the harness.

use criterion::{criterion_group, criterion_main, Criterion};

fn micro_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig2_point", |b| {
        b.iter(|| jm_bench::micro::latency::measure(8).expect("fig2"));
    });
    group.bench_function("table1_overhead", |b| {
        b.iter(|| jm_bench::micro::overhead::measure().expect("table1"));
    });
    group.bench_function("fig3_point_64n", |b| {
        b.iter(|| {
            jm_bench::micro::load::measure_point(64, 4, 100, 1_000, 5_000).expect("fig3")
        });
    });
    group.bench_function("fig4_point", |b| {
        b.iter(|| {
            jm_bench::micro::bandwidth::measure_point(
                8,
                jm_bench::micro::bandwidth::Sink::Discard,
                1_000,
                5_000,
            )
            .expect("fig4")
        });
    });
    group.bench_function("table2_sync", |b| {
        b.iter(|| jm_bench::micro::sync::measure().expect("table2"));
    });
    group.bench_function("table3_barrier_16n", |b| {
        b.iter(|| jm_bench::micro::barrier::measure_point(16, 2).expect("table3"));
    });
    group.finish();
}

fn macro_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps");
    group.sample_size(10);
    let problems = jm_bench::macrob::Problems {
        lcs: jm_apps::lcs::LcsConfig {
            a_len: 64,
            b_len: 128,
            seed: 1,
            alphabet: 4,
        },
        radix: jm_apps::radix::RadixConfig { keys: 128, seed: 2 },
        nqueens: jm_apps::nqueens::NqConfig {
            n: 6,
            expand_depth: None,
        },
        tsp: jm_apps::tsp::TspConfig {
            cities: 6,
            seed: 3,
            task_depth: None,
            yield_every: 16,
        },
    };
    for app in jm_bench::macrob::App::ALL {
        group.bench_function(app.name(), |b| {
            b.iter(|| jm_bench::macrob::run_app(app, 8, &problems).expect("app run"));
        });
    }
    group.finish();
}

criterion_group!(benches, micro_experiments, macro_experiments);
criterion_main!(benches);
