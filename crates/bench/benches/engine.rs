//! Criterion benchmarks of the simulator engine itself: how fast the host
//! simulates network cycles and whole-machine cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jm_isa::instr::MsgPriority;
use jm_isa::node::{MeshDims, NodeId, RouteWord};
use jm_isa::word::{MsgHeader, Word};
use jm_machine::{JMachine, MachineConfig, StartPolicy};
use jm_net::{InjectResult, NetConfig, Network};

/// Steps an idle 512-node network (the fast path: every router skipped).
fn idle_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.throughput(Throughput::Elements(1));
    group.bench_function("idle_step_512", |b| {
        let mut net = Network::new(NetConfig::prototype_512());
        b.iter(|| net.step());
    });
    group.finish();
}

/// Steps a 64-node network under sustained random traffic.
fn loaded_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.throughput(Throughput::Elements(1));
    group.bench_function("loaded_step_64", |b| {
        let dims = MeshDims::for_nodes(64);
        let mut net = Network::new(NetConfig::new(dims));
        let mut seed = 12345u64;
        b.iter(|| {
            for n in 0..64u32 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let dst = ((seed >> 33) % 64) as u32;
                let route = RouteWord::new(dims.coord(NodeId(dst))).to_word();
                if net.inject(NodeId(n), MsgPriority::P0, route, false)
                    == InjectResult::Accepted
                {
                    net.inject(
                        NodeId(n),
                        MsgPriority::P0,
                        MsgHeader::new(1, 2).to_word(),
                        false,
                    );
                    net.inject(NodeId(n), MsgPriority::P0, Word::int(1), true);
                }
            }
            net.step();
            for n in 0..64u32 {
                while net.pop_delivered(NodeId(n), MsgPriority::P0).is_some() {}
            }
        });
    });
    group.finish();
}

/// Builds the Figure-3 exchange-loop machine and measures simulated
/// machine-cycles per host second at three machine sizes.
fn machine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    for &nodes in &[8u32, 64, 512] {
        group.throughput(Throughput::Elements(u64::from(nodes)));
        group.bench_with_input(BenchmarkId::new("exchange_cycle", nodes), &nodes, |b, &nodes| {
            let p = jm_bench::micro::load::debug_program(4, 20);
            let mut m = JMachine::new(
                p,
                MachineConfig::new(nodes).start(StartPolicy::AllNodes),
            );
            m.run(2_000); // warm
            b.iter(|| m.step());
        });
    }
    group.finish();
}

/// Assembly speed: how fast the toolchain assembles the radix-sort program.
fn assemble_program(c: &mut Criterion) {
    let cfg = jm_apps::radix::RadixConfig::scaled();
    c.bench_function("assemble_radix", |b| {
        b.iter(|| jm_apps::radix::program(&cfg, 64));
    });
}

criterion_group!(benches, idle_network, loaded_network, machine_throughput, assemble_program);
criterion_main!(benches);
