//! Benchmarks of the simulator engine itself: how fast the host simulates
//! network cycles and whole-machine cycles. Self-timed (`harness = false`,
//! no criterion) so the workspace builds hermetically.

use jm_bench::harness::bench;
use jm_isa::instr::MsgPriority;
use jm_isa::node::{MeshDims, NodeId, RouteWord};
use jm_isa::word::{MsgHeader, Word};
use jm_machine::{Engine, JMachine, MachineConfig, StartPolicy};
use jm_net::{InjectResult, NetConfig, Network};

/// Steps an idle 512-node network (the fast path: O(1) idle check).
fn idle_network() {
    let mut net = Network::new(NetConfig::prototype_512());
    bench("net/idle_step_512", 100_000, 7, || net.step());
}

/// Steps a 64-node network under sustained random traffic.
fn loaded_network() {
    let dims = MeshDims::for_nodes(64);
    let mut net = Network::new(NetConfig::new(dims));
    let mut seed = 12345u64;
    bench("net/loaded_step_64", 2_000, 7, || {
        for n in 0..64u32 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let dst = ((seed >> 33) % 64) as u32;
            let route = RouteWord::new(dims.coord(NodeId(dst))).to_word();
            if net.inject(NodeId(n), MsgPriority::P0, route, false) == InjectResult::Accepted {
                net.inject(
                    NodeId(n),
                    MsgPriority::P0,
                    MsgHeader::new(1, 2).to_word(),
                    false,
                );
                net.inject(NodeId(n), MsgPriority::P0, Word::int(1), true);
            }
        }
        net.step();
        for n in 0..64u32 {
            while net.pop_delivered(NodeId(n), MsgPriority::P0).is_some() {}
        }
    });
}

/// Builds the Figure-3 exchange-loop machine and measures stepped machine
/// cycles at three sizes, for both engines.
fn machine_throughput() {
    for engine in [Engine::Naive, Engine::Event] {
        for &nodes in &[8u32, 64, 512] {
            let p = jm_bench::micro::load::debug_program(4, 20);
            let mut m = JMachine::new(
                p,
                MachineConfig::new(nodes)
                    .start(StartPolicy::AllNodes)
                    .engine(engine),
            );
            m.run(2_000); // warm
            let name = format!("machine/exchange_cycle/{engine:?}/{nodes}");
            bench(&name, 10_000, 5, || m.step());
        }
    }
}

/// Assembly speed: how fast the toolchain assembles the radix-sort program.
fn assemble_program() {
    let cfg = jm_apps::radix::RadixConfig::scaled();
    bench("assemble_radix", 20, 5, || {
        std::hint::black_box(jm_apps::radix::program(&cfg, 64));
    });
}

fn main() {
    idle_network();
    loaded_network();
    machine_throughput();
    assemble_program();
}
