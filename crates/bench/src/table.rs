//! Plain-text table rendering for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with sensible precision for reports.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let s = t.render();
        assert!(s.contains("333"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn markdown_shape() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["1"]);
        let md = t.render_markdown();
        assert!(md.starts_with("| x |"));
        assert!(md.contains("|---|"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.6), "1235");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(0.1234), "0.123");
    }
}
