//! Table 3: software barrier synchronization time vs. machine size.
//!
//! Every node enters the runtime's dissemination barrier `rounds` times;
//! node 0 timestamps from its call until its continuation thread resumes —
//! exactly the paper's definition ("from the point at which the current
//! thread calls the barrier routine until the time this single thread is
//! resumed").

use crate::baselines;
use crate::table::{fnum, TextTable};
use jm_asm::{hdr, Builder};
use jm_isa::consts::cycles_to_us;
use jm_isa::instr::{AluOp, StatClass};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{JMachine, MachineConfig, MachineError, StartPolicy};
use jm_runtime::{barrier, nnr};

/// Measured barrier time at one machine size.
#[derive(Debug, Clone, Copy)]
pub struct BarrierPoint {
    /// Nodes.
    pub nodes: u32,
    /// Mean cycles per barrier.
    pub cycles: f64,
    /// Mean microseconds per barrier at 12.5 MHz.
    pub us: f64,
}

// t3_r layout: [0] rounds remaining, [1] t0, [2] sum, [3] count.

/// Builds the measurement program (public for debugging).
pub fn debug_program(rounds: i32) -> jm_asm::Program {
    program(rounds)
}

fn program(rounds: i32) -> jm_asm::Program {
    let mut b = Builder::new();
    b.data("t3_r", jm_asm::Region::Imem, vec![Word::int(0); 4]);
    b.label("main");
    b.load_seg(A0, "t3_r");
    b.mov(MemRef::disp(A0, 0), rounds);
    b.br("enter");

    b.label("bar_cont");
    b.mark(StatClass::Compute);
    b.load_seg(A0, "t3_r");
    // Node 0 accumulates its timing.
    b.mov(R0, Special::Nid);
    b.bnz(R0, "next");
    b.mov(R1, Special::Cycle);
    b.alu(AluOp::Sub, R1, R1, MemRef::disp(A0, 1));
    b.mov(R2, MemRef::disp(A0, 2));
    b.alu(AluOp::Add, R2, R2, R1);
    b.mov(MemRef::disp(A0, 2), R2);
    b.mov(R2, MemRef::disp(A0, 3));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 3), R2);
    b.label("next");
    b.mov(R1, MemRef::disp(A0, 0));
    b.subi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 0), R1);
    b.bz(R1, "finish");
    b.label("enter");
    b.mov(R1, Special::Cycle);
    b.mov(MemRef::disp(A0, 1), R1);
    b.mov(R0, hdr("bar_cont", 1));
    b.call(barrier::BAR_ENTER);
    b.suspend();
    b.label("finish");
    b.suspend();

    b.entry("main");
    barrier::install(&mut b);
    nnr::install(&mut b);
    b.assemble().expect("table3 assembles")
}

/// Measures the barrier at one machine size.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure_point(nodes: u32, rounds: u32) -> Result<BarrierPoint, MachineError> {
    let p = program(rounds as i32);
    let seg = p.segment("t3_r");
    let mut m = JMachine::new(p, MachineConfig::new(nodes).start(StartPolicy::AllNodes));
    m.run_until_quiescent(50_000_000)?;
    let sum = m.read_word(NodeId(0), seg.base + 2).as_i32() as u64;
    let count = m.read_word(NodeId(0), seg.base + 3).as_i32() as u64;
    assert_eq!(count, u64::from(rounds), "barrier round count mismatch");
    let cycles = sum as f64 / count as f64;
    Ok(BarrierPoint {
        nodes,
        cycles,
        us: cycles_to_us(1) * cycles,
    })
}

/// Measures across machine sizes.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure(sizes: &[u32], rounds: u32) -> Result<Vec<BarrierPoint>, MachineError> {
    sizes.iter().map(|&n| measure_point(n, rounds)).collect()
}

/// Renders Table 3 with the published comparison columns.
pub fn render(points: &[BarrierPoint]) -> String {
    let mut out = String::new();
    out.push_str("Table 3: software barrier synchronization (microseconds)\n\n");
    let models = baselines::table3_models();
    let paper = baselines::paper_jmachine_barrier();
    let mut header = vec![
        "nodes".to_string(),
        "J (measured)".to_string(),
        "J (paper)".to_string(),
    ];
    for m in &models {
        header.push(m.name.to_string());
    }
    let mut t = TextTable::new(header);
    for p in points {
        let mut row = vec![p.nodes.to_string(), format!("{:.1}", p.us)];
        row.push(
            paper
                .iter()
                .find(|(n, _)| *n == p.nodes)
                .map_or("-".to_string(), |(_, us)| format!("{us:.1}")),
        );
        for m in &models {
            row.push(m.at(p.nodes).map_or("-".to_string(), fnum));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_scales_logarithmically() {
        let p2 = measure_point(2, 3).unwrap();
        let p16 = measure_point(16, 3).unwrap();
        let p64 = measure_point(64, 3).unwrap();
        assert!(p2.cycles < p16.cycles);
        assert!(p16.cycles < p64.cycles);
        // Log growth: 64 nodes should cost far less than 8x the 2-node time.
        assert!(p64.cycles < p2.cycles * 8.0);
        // Order of magnitude near the paper: 2 nodes = 4.4 us = 55 cycles,
        // 64 nodes = 16.5 us = 206 cycles. Accept a factor-of-2.5 band.
        assert!(p2.us > 1.5 && p2.us < 12.0, "2 nodes: {} us", p2.us);
        assert!(p64.us > 7.0 && p64.us < 45.0, "64 nodes: {} us", p64.us);
    }
}
