//! Table 2: local producer-consumer synchronization with and without
//! hardware presence tags, plus the thread save/restore costs.
//!
//! The four events, timestamped in-guest with the cycle counter:
//!
//! * **Success** — reading data that is ready: with tags a plain `MOVE`;
//!   without tags a flag test, branch, and read.
//! * **Failure** — attempting to read unavailable data: with tags the cost
//!   to detect and vector (fault entry); without tags the flag test and
//!   taken branch.
//! * **Write** — producing data: with tags a waiter check (`CHECK` on the
//!   `ctx` tag) plus the store; without tags the flag read, data store,
//!   and flag store.
//! * **Restart** — both schemes hand the woken thread its value for free
//!   (0 cycles beyond save/restore).
//!
//! Save/restore (the dominant cost of a failed synchronization, 30–50 and
//! 20–50 cycles in the paper) is measured from the runtime futures
//! library: the host splits a park/resume run into its two phases and reads
//! the Sync-class cycle counters.

use crate::table::TextTable;
use jm_asm::{Builder, Region};
use jm_isa::consts::FaultKind;
use jm_isa::instr::{AluOp, MsgPriority, StatClass};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::tag::Tag;
use jm_isa::word::Word;
use jm_machine::{JMachine, MachineConfig, MachineError, StartPolicy};
use jm_runtime::futures;

/// Measured Table 2 values, in cycles.
#[derive(Debug, Clone, Copy)]
pub struct SyncCosts {
    /// Ready read, with tags.
    pub success_tags: u64,
    /// Ready read, without tags.
    pub success_notags: u64,
    /// Unavailable read, with tags (detect + vector).
    pub failure_tags: u64,
    /// Unavailable read, without tags (test + taken branch).
    pub failure_notags: u64,
    /// Produce, with tags.
    pub write_tags: u64,
    /// Produce, without tags.
    pub write_notags: u64,
    /// Thread save cost (fault entry to suspension).
    pub save: u64,
    /// Thread restore cost (resume message to re-execution).
    pub restore: u64,
}

// Slot block: [0] ready value, [1] flag, [2] flagged data, [3] write-tags
// target, [4] cfut slot, [5] zero flag. Results in "t2_r"[0..6].

fn sequences_program() -> jm_asm::Program {
    let mut b = Builder::new();
    b.data(
        "t2_s",
        Region::Imem,
        vec![
            Word::int(7),
            Word::int(1),
            Word::int(7),
            Word::cfut(),
            Word::cfut(),
            Word::int(0),
        ],
    );
    b.data("t2_r", Region::Imem, vec![Word::int(0); 6]);

    let stamp = |b: &mut Builder, slot: u32| {
        b.mov(R3, Special::Cycle);
        b.alu(AluOp::Sub, R3, R3, R2);
        b.subi(R3, R3, 1);
        b.mov(MemRef::disp(A2, slot), R3);
    };

    b.label("main");
    b.load_seg(A1, "t2_s");
    b.load_seg(A2, "t2_r");

    // Success, tags: one MOVE.
    b.mov(R2, Special::Cycle);
    b.mov(R1, MemRef::disp(A1, 0));
    stamp(&mut b, 0);

    // Success, no tags: test flag, branch (not taken), read.
    b.mov(R2, Special::Cycle);
    b.mov(R1, MemRef::disp(A1, 1));
    b.bz(R1, "dead");
    b.mov(R1, MemRef::disp(A1, 2));
    stamp(&mut b, 1);

    // Failure, tags: the cfut read vectors; the handler stamps.
    b.mov(R2, Special::Cycle);
    b.mov(R1, MemRef::disp(A1, 4)); // faults; resumes here afterwards

    // Failure, no tags: test zero flag, taken branch.
    b.mov(R2, Special::Cycle);
    b.mov(R1, MemRef::disp(A1, 5));
    b.bz(R1, "nf_fail");
    b.label("nf_cont");

    // Write, tags: waiter check + store.
    b.mov(R2, Special::Cycle);
    b.check(R1, MemRef::disp(A1, 3), Tag::Ctx);
    b.bt(R1, "dead");
    b.mov(MemRef::disp(A1, 3), 5);
    stamp(&mut b, 4);

    // Write, no tags: read flag, store data, store flag.
    b.mov(R2, Special::Cycle);
    b.mov(R1, MemRef::disp(A1, 1));
    b.mov(MemRef::disp(A1, 2), 5);
    b.mov(MemRef::disp(A1, 1), 1);
    stamp(&mut b, 5);
    b.halt();

    b.label("nf_fail");
    stamp(&mut b, 3);
    b.br("nf_cont");

    // cfut fault handler: stamp, fill the slot, resume (re-executes the
    // read, which now succeeds).
    b.label("t2_cfut");
    stamp(&mut b, 2);
    b.mov(MemRef::disp(A1, 4), 9);
    b.resume();

    b.label("dead");
    b.halt();

    b.entry("main");
    b.assemble().expect("table2 assembles")
}

/// Park/resume scenario for save/restore measurement.
fn park_program() -> jm_asm::Program {
    let mut b = Builder::new();
    b.data("slot", Region::Imem, vec![Word::cfut()]);
    b.reserve("out", Region::Imem, 1);
    b.label("consumer");
    b.load_seg(A2, "slot");
    b.mov(R1, MemRef::disp(A2, 0));
    b.load_seg(A2, "out");
    b.mov(MemRef::disp(A2, 0), R1);
    b.suspend();
    b.label("producer");
    b.load_seg(A1, "slot");
    b.movi(R0, 17);
    b.call(futures::SYNC_WRITE);
    b.suspend();
    futures::install(&mut b, 4);
    b.assemble().expect("park assembles")
}

/// Measures Table 2.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure() -> Result<SyncCosts, MachineError> {
    // Phase A: the six short sequences.
    let p = sequences_program();
    let results = p.segment("t2_r");
    let mut m = JMachine::new(p, MachineConfig::new(1).start(StartPolicy::AllNodes));
    m.install_vector(NodeId(0), FaultKind::CFutRead, "t2_cfut");
    m.run_until_quiescent(100_000)?;
    let r = |i: u32| m.read_word(NodeId(0), results.base + i).as_i32() as u64;

    // Phase B: full park / resume through the futures runtime.
    let p = park_program();
    let mut m = JMachine::new(p, MachineConfig::new(1).start(StartPolicy::None));
    m.install_vector_all(FaultKind::CFutRead, futures::CFUT_HANDLER);
    m.deliver_message(NodeId(0), MsgPriority::P0, "consumer", &[]);
    m.run(400); // consumer faults and parks
    let save = m.stats().nodes.class_cycles(StatClass::Sync);
    m.deliver_message(NodeId(0), MsgPriority::P0, "producer", &[]);
    m.run_until_quiescent(100_000)?;
    let total_sync = m.stats().nodes.class_cycles(StatClass::Sync);

    Ok(SyncCosts {
        success_tags: r(0),
        success_notags: r(1),
        failure_tags: r(2),
        failure_notags: r(3),
        write_tags: r(4),
        write_notags: r(5),
        save,
        restore: total_sync - save,
    })
}

/// Renders Table 2 next to the paper's values.
pub fn render(c: &SyncCosts) -> String {
    let mut out = String::new();
    out.push_str("Table 2: producer-consumer synchronization (cycles)\n\n");
    let mut t = TextTable::new(vec![
        "event",
        "tags",
        "no tags",
        "paper tags",
        "paper no-tags",
    ]);
    t.row(vec![
        "Success".to_string(),
        c.success_tags.to_string(),
        c.success_notags.to_string(),
        "2".to_string(),
        "5".to_string(),
    ]);
    t.row(vec![
        "Failure".to_string(),
        c.failure_tags.to_string(),
        c.failure_notags.to_string(),
        "6".to_string(),
        "7".to_string(),
    ]);
    t.row(vec![
        "Write".to_string(),
        c.write_tags.to_string(),
        c.write_notags.to_string(),
        "4".to_string(),
        "6".to_string(),
    ]);
    t.row(vec![
        "Restart".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nsave/restore: save {} cycles (paper 30-50), restore {} cycles (paper 20-50)\n",
        c.save, c.restore
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_beat_flags_and_costs_are_small() {
        let c = measure().unwrap();
        assert!(c.success_tags < c.success_notags);
        assert!(c.write_tags < c.write_notags);
        assert_eq!(c.success_tags, 2);
        assert_eq!(c.success_notags, 5);
        assert_eq!(c.write_notags, 6);
        // Failure with tags: fault entry dominated, single digits.
        assert!(
            c.failure_tags >= 5 && c.failure_tags <= 10,
            "{}",
            c.failure_tags
        );
        // Save/restore in or near the paper's ranges.
        assert!(c.save >= 25 && c.save <= 90, "save {}", c.save);
        assert!(c.restore >= 15 && c.restore <= 90, "restore {}", c.restore);
    }
}
