//! Table 1: one-way message overhead — the sum of the fixed send and
//! receive costs, excluding network latency.
//!
//! The J-Machine row is measured: the sender timestamps its injection
//! sequence, the receiver's costs are the 4-cycle hardware dispatch plus
//! its (timestamped) handler epilogue. The per-byte cost comes from the
//! slope between 2-word and 10-word messages. Comparison rows are the
//! published constants modelled in [`crate::baselines`].

use crate::baselines;
use crate::table::{fnum, TextTable};
use jm_asm::{hdr, Builder, Program};
use jm_isa::consts::CLOCK_HZ;
use jm_isa::instr::{AluOp, MsgPriority::P0};
use jm_isa::node::{Coord, NodeId, RouteWord};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_machine::{JMachine, MachineConfig, MachineError, StartPolicy};

/// Measured J-Machine overheads.
#[derive(Debug, Clone, Copy)]
pub struct Overhead {
    /// Fixed one-way overhead in cycles (send + dispatch + receive).
    pub cycles_per_msg: f64,
    /// Incremental cost per byte, in cycles.
    pub cycles_per_byte: f64,
}

impl Overhead {
    /// Microseconds per message at the prototype clock.
    pub fn us_per_msg(&self) -> f64 {
        self.cycles_per_msg * 1e6 / CLOCK_HZ as f64
    }

    /// Microseconds per byte.
    pub fn us_per_byte(&self) -> f64 {
        self.cycles_per_byte * 1e6 / CLOCK_HZ as f64
    }
}

/// Builds the measurement program for an `l`-word message (header + pad).
fn program(l: u32) -> Program {
    assert!(l >= 2);
    let mut b = Builder::new();
    b.data("t1_r", jm_asm::Region::Imem, vec![jm_isa::Word::int(0); 2]);
    b.label("main");
    b.load_seg(A0, "t1_r");
    b.mov(R2, Special::Cycle);
    b.send(P0, RouteWord::new(Coord::new(1, 0, 0)).to_word());
    b.send(P0, hdr("t1_sink", l));
    for i in 0..l - 1 {
        if i + 1 == l - 1 {
            b.sende(P0, 0);
        } else {
            b.send(P0, 0);
        }
    }
    b.mov(R3, Special::Cycle);
    b.alu(AluOp::Sub, R3, R3, R2);
    b.subi(R3, R3, 1); // the t1 CYCLE read itself
    b.mov(MemRef::disp(A0, 0), R3);
    b.halt();

    // The null receiver: its entire cost is dispatch + one SUSPEND, the
    // hardware's "task creation" price.
    b.label("t1_sink");
    b.suspend();
    b.entry("main");
    b.assemble().expect("table1 assembles")
}

fn send_cycles(l: u32) -> Result<u64, MachineError> {
    let p = program(l);
    let seg = p.segment("t1_r");
    // A 2×1×1 machine so the +x neighbour exists.
    let dims = jm_isa::MeshDims::new(2, 1, 1);
    let mut m = JMachine::new(p, MachineConfig::with_dims(dims).start(StartPolicy::Node0));
    m.run_until_quiescent(100_000)?;
    Ok(m.read_word(NodeId(0), seg.base).as_i32() as u64)
}

/// Measures the J-Machine overheads.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure() -> Result<Overhead, MachineError> {
    let t2 = send_cycles(2)?;
    let t10 = send_cycles(10)?;
    // Receiver: 4-cycle dispatch + 1-cycle SUSPEND.
    let recv = 5.0;
    let cycles_per_msg = t2 as f64 + recv;
    // 8 extra words = 32 extra bytes between the two runs.
    let cycles_per_byte = (t10 as f64 - t2 as f64) / 32.0;
    Ok(Overhead {
        cycles_per_msg,
        cycles_per_byte,
    })
}

/// Renders Table 1.
pub fn render(measured: &Overhead) -> String {
    let mut out = String::new();
    out.push_str("Table 1: one-way message overhead\n\n");
    let mut t = TextTable::new(vec![
        "machine",
        "us/msg",
        "us/byte",
        "cycles/msg",
        "cycles/byte",
    ]);
    for m in baselines::table1_models() {
        t.row(vec![
            m.name.to_string(),
            fnum(m.us_per_msg),
            format!("{:.2}", m.us_per_byte),
            fnum(m.cycles_per_msg()),
            fnum(m.cycles_per_byte()),
        ]);
    }
    t.row(vec![
        "J-Machine (measured)".to_string(),
        format!("{:.2}", measured.us_per_msg()),
        format!("{:.3}", measured.us_per_byte()),
        fnum(measured.cycles_per_msg),
        format!("{:.2}", measured.cycles_per_byte),
    ]);
    let (paper_msg, paper_byte) = baselines::paper_jmachine_overhead();
    t.row(vec![
        "J-Machine (paper)".to_string(),
        format!("{paper_msg:.2}"),
        format!("{paper_byte:.3}"),
        "11".to_string(),
        "0.50".to_string(),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_order_of_magnitude_below_baselines() {
        let o = measure().unwrap();
        // The paper's claim: ~11 cycles/msg vs 460+ for the best baseline,
        // and per-byte ~0.5 cycles. Accept a generous band around that.
        assert!(
            o.cycles_per_msg > 4.0 && o.cycles_per_msg < 40.0,
            "cycles/msg {}",
            o.cycles_per_msg
        );
        assert!(
            o.cycles_per_byte > 0.1 && o.cycles_per_byte < 1.0,
            "cycles/byte {}",
            o.cycles_per_byte
        );
        let best_baseline = 109.0; // CM-5 Active Messages, cycles/msg
        assert!(o.cycles_per_msg * 3.0 < best_baseline);
    }
}
