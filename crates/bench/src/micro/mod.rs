//! Micro-benchmarks: the synthetic programs of the paper's §3.

pub mod bandwidth;
pub mod barrier;
pub mod latency;
pub mod load;
pub mod overhead;
pub mod sync;
