//! Figure 3: one-way message latency vs. bisection traffic (left) and
//! processor efficiency vs. grain size (right).
//!
//! Every node runs the paper's loop: pick a uniformly random destination,
//! send an `L`-word message, await an `L`-word acknowledgement, then "idle"
//! for a computation phase of `Z` spin iterations. The idle time sets the
//! offered load. Round-trip times accumulate in guest memory; the host
//! zeroes the accumulators after a warm-up window, measures over a fixed
//! window, and derives:
//!
//! * one-way latency = round-trip / 2 (the paper's method);
//! * bisection traffic from the network's flit counters;
//! * efficiency = compute cycles / total cycles (the right-hand plot).

use crate::table::{fnum, TextTable};
use jm_asm::{hdr, Builder, Program};
use jm_isa::instr::{AluOp, MsgPriority::P0, StatClass};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_machine::{JMachine, MachineConfig, MachineError, StartPolicy};
use jm_runtime::{nnr, rand as jrand};

/// One measured operating point.
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Message length in words.
    pub msg_len: u32,
    /// Spin iterations per exchange (grain knob).
    pub idle_iters: u32,
    /// Mean one-way latency, cycles.
    pub latency: f64,
    /// Bisection traffic, Mbit/s.
    pub bisection_mbits: f64,
    /// Mean cycles between exchanges (loop period).
    pub period: f64,
    /// Processor efficiency: compute fraction of all cycles.
    pub efficiency: f64,
}

// f3_r layout (per node): [0] rt_sum, [1] count, [2] seed, [3] t0.

/// Builds the exchange-loop program (public for engine benchmarks).
pub fn debug_program(l: u32, idle_iters: u32) -> Program {
    program(l, idle_iters)
}

fn program(l: u32, idle_iters: u32) -> Program {
    assert!(l >= 2, "need at least header + reply route");
    let mut b = Builder::new();
    b.data("f3_r", jm_asm::Region::Imem, vec![jm_isa::Word::int(0); 4]);
    b.reserve("f3_flag", jm_asm::Region::Imem, 1);

    b.label("main");
    b.load_seg(A2, "f3_r");
    // Distinct seeds per node.
    b.mov(R0, Special::Nid);
    b.alu(AluOp::Mul, R0, R0, 2_654_435);
    b.addi(R0, R0, 12345);
    b.mov(MemRef::disp(A2, 2), R0);
    // De-synchronize the SPMD lockstep start so loads do not arrive in
    // machine-wide bursts: stagger by a node-dependent spin.
    let modulus = (3 * idle_iters + 64) as i32;
    b.mov(R1, Special::Nid);
    b.alu(AluOp::Mul, R1, R1, 97);
    b.alu(AluOp::Rem, R1, R1, modulus);
    b.addi(R1, R1, 1);
    b.label("stagger");
    b.subi(R1, R1, 1);
    b.bnz(R1, "stagger");
    b.label("loop");
    b.mark(StatClass::Comm);
    // Random destination.
    b.mov(R0, MemRef::disp(A2, 2));
    b.call(jrand::LCG_NEXT);
    b.mov(MemRef::disp(A2, 2), R0);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Comm);
    b.load_seg(A2, "f3_r"); // route call clobbered A1 only, but reload for clarity
    b.load_seg(A1, "f3_flag");
    b.mov(MemRef::disp(A1, 0), 0);
    b.mov(R2, Special::Cycle);
    b.mov(MemRef::disp(A2, 3), R2);
    b.send(P0, R0);
    if l == 2 {
        b.send2e(P0, hdr("f3_echo", l), Special::Nnr);
    } else {
        b.send2(P0, hdr("f3_echo", l), Special::Nnr);
        for i in 0..l - 2 {
            if i + 1 == l - 2 {
                b.sende(P0, 0);
            } else {
                b.send(P0, 0);
            }
        }
    }
    b.label("wait");
    b.mov(R1, MemRef::disp(A1, 0));
    b.bz(R1, "wait");
    b.mov(R1, Special::Cycle);
    b.alu(AluOp::Sub, R1, R1, MemRef::disp(A2, 3));
    b.mov(R2, MemRef::disp(A2, 0));
    b.alu(AluOp::Add, R2, R2, R1);
    b.mov(MemRef::disp(A2, 0), R2);
    b.mov(R2, MemRef::disp(A2, 1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A2, 1), R2);
    // "Computation": the grain-size spin.
    b.mark(StatClass::Compute);
    if idle_iters > 0 {
        b.movi(R1, idle_iters as i32);
        b.label("spin");
        b.subi(R1, R1, 1);
        b.bnz(R1, "spin");
    }
    b.br("loop");

    // Echo: reply with an equal-length message to the embedded route.
    b.label("f3_echo");
    b.mark(StatClass::Comm);
    // Touch the final word first: the exchange is of whole L-word
    // messages, so the reply waits for the full request.
    b.mov(R1, MemRef::disp(A3, l - 1));
    b.send(P0, MemRef::disp(A3, 1));
    if l == 2 {
        b.send2e(P0, hdr("f3_ack", l), 0);
    } else {
        b.send2(P0, hdr("f3_ack", l), 0);
        for i in 0..l - 2 {
            if i + 1 == l - 2 {
                b.sende(P0, 0);
            } else {
                b.send(P0, 0);
            }
        }
    }
    b.suspend();

    b.label("f3_ack");
    b.mark(StatClass::Comm);
    b.mov(R1, MemRef::disp(A3, l - 1)); // stall until fully arrived
    b.load_seg(A0, "f3_flag");
    b.mov(MemRef::disp(A0, 0), 1);
    b.suspend();

    b.entry("main");
    nnr::install(&mut b);
    jrand::install(&mut b);
    b.assemble().expect("fig3 assembles")
}

/// Measures one operating point on a machine of `nodes` nodes.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure_point(
    nodes: u32,
    msg_len: u32,
    idle_iters: u32,
    warmup: u64,
    window: u64,
) -> Result<LoadPoint, MachineError> {
    let p = program(msg_len, idle_iters);
    let seg = p.segment("f3_r");
    let mut m = JMachine::new(p, MachineConfig::new(nodes).start(StartPolicy::AllNodes));
    m.run(warmup);
    if !m.node_errors().is_empty() {
        return Err(jm_machine::MachineError::NodeErrors(m.node_errors()));
    }
    // Zero the guest accumulators and snapshot host-side counters.
    for n in 0..nodes {
        m.write_word(NodeId(n), seg.base, jm_isa::Word::int(0));
        m.write_word(NodeId(n), seg.base + 1, jm_isa::Word::int(0));
    }
    let net0 = m.network().stats().clone();
    let stats0 = m.stats();
    m.run(window);
    if !m.node_errors().is_empty() {
        return Err(jm_machine::MachineError::NodeErrors(m.node_errors()));
    }
    let net1 = m.network().stats().since(&net0);
    let stats1 = m.stats();
    let mut rt_sum = 0u64;
    let mut count = 0u64;
    for n in 0..nodes {
        rt_sum += m.read_word(NodeId(n), seg.base).as_i32() as u64;
        count += m.read_word(NodeId(n), seg.base + 1).as_i32() as u64;
    }
    let latency = if count == 0 {
        0.0
    } else {
        rt_sum as f64 / count as f64 / 2.0
    };
    let compute = stats1.nodes.class_cycles(StatClass::Compute)
        - stats0.nodes.class_cycles(StatClass::Compute);
    let total = u64::from(nodes) * window;
    let period = if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    };
    Ok(LoadPoint {
        msg_len,
        idle_iters,
        latency,
        bisection_mbits: net1.bisection_bits_per_sec(window) / 1e6,
        period,
        efficiency: compute as f64 / total as f64,
    })
}

/// Runs the full Figure 3 sweep.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure(
    nodes: u32,
    lengths: &[u32],
    idles: &[u32],
    warmup: u64,
    window: u64,
) -> Result<Vec<LoadPoint>, MachineError> {
    let mut points = Vec::new();
    for &l in lengths {
        for &z in idles {
            points.push(measure_point(nodes, l, z, warmup, window)?);
        }
    }
    Ok(points)
}

/// Renders both projections of Figure 3.
pub fn render(nodes: u32, points: &[LoadPoint], capacity_mbits: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3 (left): one-way latency vs bisection traffic, {nodes} nodes\n"
    ));
    out.push_str(&format!(
        "bisection capacity {capacity_mbits:.0} Mbit/s; paper saturates near 6000 of 14400 Mbit/s\n\n",
    ));
    let mut t = TextTable::new(vec!["len(words)", "idle", "traffic(Mb/s)", "latency(cyc)"]);
    for p in points {
        t.row(vec![
            p.msg_len.to_string(),
            p.idle_iters.to_string(),
            fnum(p.bisection_mbits),
            fnum(p.latency),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nFigure 3 (right): efficiency vs grain size\n\n");
    let mut t = TextTable::new(vec!["len(words)", "grain(cyc)", "efficiency"]);
    for p in points {
        let grain = p.efficiency * p.period;
        t.row(vec![
            p.msg_len.to_string(),
            fnum(grain),
            format!("{:.2}", p.efficiency),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: 50% efficiency at 100-300 cycles/message of computation\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_rises_with_load() {
        // Heavy load (no idle) must show higher latency than light load
        // (large idle), and much higher bisection traffic.
        let light = measure_point(64, 8, 2000, 4_000, 80_000).unwrap();
        let heavy = measure_point(64, 8, 0, 4_000, 30_000).unwrap();
        assert!(heavy.bisection_mbits > 4.0 * light.bisection_mbits);
        assert!(
            heavy.latency > light.latency,
            "heavy {} vs light {}",
            heavy.latency,
            light.latency
        );
        assert!(light.efficiency > heavy.efficiency);
    }
}
