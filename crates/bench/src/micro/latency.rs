//! Figure 2: round-trip latency of a null RPC vs. distance and transfer.
//!
//! Node 0 (a corner of the mesh) timestamps a request/reply exchange with a
//! node at each distance along an X-then-Y-then-Z walk, for five transfer
//! kinds: a 2-word ping with a 1-word ack, and remote reads of 1 or 6 words
//! from internal or external memory.

use crate::table::TextTable;
use jm_asm::{Builder, Program};
use jm_isa::instr::{AluOp, MsgPriority::P0};
use jm_isa::node::{Coord, MeshDims, NodeId, RouteWord};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_machine::{JMachine, MachineConfig, MachineError, StartPolicy};
use jm_runtime::rpc;

/// The five curves of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcKind {
    /// 2-word request, 1-word acknowledgement.
    Ping,
    /// Remote read of 1 word from internal memory (reply: 2 words).
    Read1Imem,
    /// Remote read of 1 word from external memory.
    Read1Emem,
    /// Remote read of 6 words from internal memory (reply: 7 words).
    Read6Imem,
    /// Remote read of 6 words from external memory.
    Read6Emem,
}

impl RpcKind {
    /// All curves, in the figure's legend order.
    pub const ALL: [RpcKind; 5] = [
        RpcKind::Ping,
        RpcKind::Read1Imem,
        RpcKind::Read1Emem,
        RpcKind::Read6Imem,
        RpcKind::Read6Emem,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RpcKind::Ping => "Ping",
            RpcKind::Read1Imem => "Read 1 (Imem)",
            RpcKind::Read1Emem => "Read 1 (Emem)",
            RpcKind::Read6Imem => "Read 6 (Imem)",
            RpcKind::Read6Emem => "Read 6 (Emem)",
        }
    }
}

/// One curve: `(hops, round-trip cycles)` points.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Which transfer.
    pub kind: RpcKind,
    /// Measured points.
    pub points: Vec<(u32, u64)>,
}

impl Curve {
    /// Points at one hop or more. The 0-hop self-exchange serializes the
    /// requester, the handler, and the loopback on a single processor, so
    /// (as in the paper, which reports it separately as the "ping itself"
    /// base case) it is excluded from the distance fit.
    fn remote_points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points
            .iter()
            .filter(|(h, _)| *h >= 1)
            .map(|(h, c)| (f64::from(*h), *c as f64))
    }

    /// Least-squares slope in cycles/hop over remote points (paper: 2).
    pub fn slope(&self) -> f64 {
        let n = self.remote_points().count() as f64;
        let sx: f64 = self.remote_points().map(|(h, _)| h).sum();
        let sy: f64 = self.remote_points().map(|(_, c)| c).sum();
        let sxx: f64 = self.remote_points().map(|(h, _)| h * h).sum();
        let sxy: f64 = self.remote_points().map(|(h, c)| h * c).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }

    /// Extrapolated zero-distance latency of the remote fit.
    pub fn base(&self) -> f64 {
        let n = self.remote_points().count() as f64;
        let sx: f64 = self.remote_points().map(|(h, _)| h).sum();
        let sy: f64 = self.remote_points().map(|(_, c)| c).sum();
        sy / n - self.slope() * sx / n
    }
}

fn program(kind: RpcKind) -> Program {
    let mut b = Builder::new();
    b.data("f2_p", jm_asm::Region::Imem, vec![jm_isa::Word::int(0); 2]);
    b.label("main");
    b.load_seg(A0, "f2_p");
    b.load_seg(A1, rpc::FLAG);
    b.mov(MemRef::disp(A1, 0), 0);
    b.mov(R2, Special::Cycle);
    match kind {
        RpcKind::Ping => {
            b.send(P0, MemRef::disp(A0, 0));
            b.send2e(P0, jm_asm::hdr("rpc_ping", 2), Special::Nnr);
        }
        RpcKind::Read1Imem | RpcKind::Read1Emem => {
            let src = if kind == RpcKind::Read1Imem {
                rpc::SRC_IMEM
            } else {
                rpc::SRC_EMEM
            };
            b.send(P0, MemRef::disp(A0, 0));
            b.send2(P0, jm_asm::hdr("rpc_read1", 3), jm_asm::seg(src));
            b.sende(P0, Special::Nnr);
        }
        RpcKind::Read6Imem | RpcKind::Read6Emem => {
            let src = if kind == RpcKind::Read6Imem {
                rpc::SRC_IMEM
            } else {
                rpc::SRC_EMEM
            };
            b.send(P0, MemRef::disp(A0, 0));
            b.send2(P0, jm_asm::hdr("rpc_read6", 3), jm_asm::seg(src));
            b.sende(P0, Special::Nnr);
        }
    }
    b.label("wait");
    b.mov(R1, MemRef::disp(A1, 0));
    b.bz(R1, "wait");
    b.mov(R3, Special::Cycle);
    b.alu(AluOp::Sub, R3, R3, R2);
    b.mov(MemRef::disp(A0, 1), R3);
    b.halt();
    b.entry("main");
    rpc::install(&mut b);
    b.assemble().expect("fig2 assembles")
}

/// Target coordinate at `hops` from the origin corner: walk X, then Y,
/// then Z.
fn target_at(dims: MeshDims, hops: u32) -> Coord {
    let max = u32::from(dims.x - 1) + u32::from(dims.y - 1) + u32::from(dims.z - 1);
    assert!(
        hops <= max,
        "distance {hops} exceeds machine diameter {max}"
    );
    let x = hops.min(u32::from(dims.x - 1));
    let rest = hops - x;
    let y = rest.min(u32::from(dims.y - 1));
    let z = rest - y;
    Coord::new(x as u8, y as u8, z as u8)
}

/// Runs Figure 2 on a machine of `nodes` nodes, measuring every distance
/// from 0 to the diameter.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure(nodes: u32) -> Result<Vec<Curve>, MachineError> {
    let dims = MeshDims::for_nodes(nodes);
    let diameter = u32::from(dims.x - 1) + u32::from(dims.y - 1) + u32::from(dims.z - 1);
    let mut curves = Vec::new();
    for kind in RpcKind::ALL {
        let mut points = Vec::new();
        for hops in 0..=diameter {
            let p = program(kind);
            let param = p.segment("f2_p");
            let mut m = JMachine::new(p, MachineConfig::with_dims(dims).start(StartPolicy::Node0));
            let target = target_at(dims, hops);
            m.write_word(NodeId(0), param.base, RouteWord::new(target).to_word());
            m.run_until_quiescent(1_000_000)?;
            let cycles = m.read_word(NodeId(0), param.base + 1).as_i32() as u64;
            points.push((hops, cycles));
        }
        curves.push(Curve { kind, points });
    }
    Ok(curves)
}

/// Renders the measured curves with paper comparisons.
pub fn render(curves: &[Curve]) -> String {
    let mut out = String::new();
    out.push_str("Figure 2: round-trip latency (cycles) vs distance (hops)\n\n");
    let mut header = vec!["hops".to_string()];
    for c in curves {
        header.push(c.kind.name().to_string());
    }
    let mut table = TextTable::new(header);
    let max_h = curves[0].points.len();
    for i in 0..max_h {
        let mut row = vec![curves[0].points[i].0.to_string()];
        for c in curves {
            row.push(c.points[i].1.to_string());
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push('\n');
    for c in curves {
        out.push_str(&format!(
            "{:<14} slope {:.2} cyc/hop (paper: 2.0), base {:.0} cycles\n",
            c.kind.name(),
            c.slope(),
            c.base()
        ));
    }
    out.push_str(
        "\npaper anchors: ping-self 43 cycles; neighbour read 60; opposite-corner read 98\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_walk_is_monotone() {
        let dims = MeshDims::new(4, 4, 4);
        for h in 0..=9 {
            let c = target_at(dims, h);
            assert_eq!(Coord::new(0, 0, 0).hops_to(c), h);
        }
    }

    #[test]
    fn slope_is_one_cycle_per_hop_each_way() {
        let curves = measure(64).unwrap();
        for c in &curves {
            let slope = c.slope();
            assert!(
                (slope - 2.0).abs() < 0.4,
                "{}: slope {slope}",
                c.kind.name()
            );
        }
        // Reads cost more than pings; external reads more than internal.
        let base = |k: RpcKind| curves.iter().find(|c| c.kind == k).unwrap().base();
        assert!(base(RpcKind::Read1Imem) > base(RpcKind::Ping));
        assert!(base(RpcKind::Read1Emem) > base(RpcKind::Read1Imem));
        assert!(base(RpcKind::Read6Emem) > base(RpcKind::Read6Imem));
    }
}
