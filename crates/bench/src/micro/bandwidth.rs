//! Figure 4: terminal network bandwidth between two adjacent nodes vs.
//! message size, for three consumption modes: discard on arrival, copy to
//! internal memory, copy to external memory.
//!
//! The sender streams `L`-word messages back-to-back (send faults throttle
//! it to whatever the channel and the consumer sustain); the receiver's
//! consumption rate is read from its handler statistics over a measurement
//! window.

use crate::table::{fnum, TextTable};
use jm_asm::{hdr, Builder, Program};
use jm_isa::consts::CLOCK_HZ;
use jm_isa::instr::{MsgPriority::P0, StatClass};
use jm_isa::node::{Coord, NodeId, RouteWord};
use jm_isa::operand::MemRef;
use jm_isa::reg::{AReg::*, DReg::*};
use jm_machine::{JMachine, MachineConfig, MachineError, StartPolicy};

/// What the receiving handler does with the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Dispatch and discard (upper curve).
    Discard,
    /// Copy every payload word into on-chip memory.
    CopyImem,
    /// Copy every payload word into external memory.
    CopyEmem,
}

impl Sink {
    /// All modes, figure order.
    pub const ALL: [Sink; 3] = [Sink::Discard, Sink::CopyImem, Sink::CopyEmem];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sink::Discard => "Discard Data",
            Sink::CopyImem => "Copy to Imem",
            Sink::CopyEmem => "Copy to Emem",
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct BwPoint {
    /// Message size in words.
    pub msg_len: u32,
    /// Consumption mode.
    pub sink: Sink,
    /// Sustained data rate in Mbit/s (32 data bits per delivered word).
    pub mbits: f64,
}

fn program(l: u32, sink: Sink) -> Program {
    assert!(l >= 1);
    let mut b = Builder::new();
    b.reserve("f4_ibuf", jm_asm::Region::Imem, l.max(1));
    b.reserve("f4_ebuf", jm_asm::Region::Emem, l.max(1));
    b.label("main");
    // Node 0 streams to its +x neighbour forever.
    b.label("loop");
    b.mark(StatClass::Comm);
    b.send(P0, RouteWord::new(Coord::new(1, 0, 0)).to_word());
    if l == 1 {
        b.sende(P0, hdr("f4_sink", l));
    } else {
        b.send(P0, hdr("f4_sink", l));
        for i in 0..l - 1 {
            if i + 1 == l - 1 {
                b.sende(P0, i as i32);
            } else {
                b.send(P0, i as i32);
            }
        }
    }
    b.br("loop");

    b.label("f4_sink");
    b.mark(StatClass::Comm);
    match sink {
        Sink::Discard => {}
        Sink::CopyImem => {
            b.load_seg(A0, "f4_ibuf");
            for i in 1..l {
                b.mov(R0, MemRef::disp(A3, i));
                b.mov(MemRef::disp(A0, i), R0);
            }
        }
        Sink::CopyEmem => {
            b.load_seg(A0, "f4_ebuf");
            for i in 1..l {
                b.mov(R0, MemRef::disp(A3, i));
                b.mov(MemRef::disp(A0, i), R0);
            }
        }
    }
    b.suspend();
    b.entry("main");
    b.assemble().expect("fig4 assembles")
}

/// Measures one point.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure_point(
    l: u32,
    sink: Sink,
    warmup: u64,
    window: u64,
) -> Result<BwPoint, MachineError> {
    let p = program(l, sink);
    let handler = p.handler("f4_sink");
    // A 2×1×1 machine so the +x neighbour exists.
    let dims = jm_isa::MeshDims::new(2, 1, 1);
    let mut m = JMachine::new(p, MachineConfig::with_dims(dims).start(StartPolicy::Node0));
    m.run(warmup);
    if !m.node_errors().is_empty() {
        return Err(jm_machine::MachineError::NodeErrors(m.node_errors()));
    }
    let words0 = m
        .node(NodeId(1))
        .stats()
        .handlers
        .get(&handler)
        .map_or(0, |h| h.msg_words);
    m.run(window);
    if !m.node_errors().is_empty() {
        return Err(jm_machine::MachineError::NodeErrors(m.node_errors()));
    }
    let words1 = m
        .node(NodeId(1))
        .stats()
        .handlers
        .get(&handler)
        .map_or(0, |h| h.msg_words);
    let words = words1 - words0;
    let mbits = words as f64 * 32.0 * CLOCK_HZ as f64 / window as f64 / 1e6;
    Ok(BwPoint {
        msg_len: l,
        sink,
        mbits,
    })
}

/// Runs the full Figure 4 sweep.
///
/// # Errors
///
/// Propagates machine failures.
pub fn measure(lengths: &[u32], warmup: u64, window: u64) -> Result<Vec<BwPoint>, MachineError> {
    let mut out = Vec::new();
    for sink in Sink::ALL {
        for &l in lengths {
            out.push(measure_point(l, sink, warmup, window)?);
        }
    }
    Ok(out)
}

/// Renders Figure 4.
pub fn render(points: &[BwPoint], lengths: &[u32]) -> String {
    let mut out = String::new();
    out.push_str("Figure 4: terminal bandwidth (Mbit/s of data words) vs message size\n");
    out.push_str("paper: peak 200 Mbit/s; 90% of peak by 8-word messages;\n");
    out.push_str("       2-word messages already exceed half of peak\n\n");
    let mut t = TextTable::new(vec![
        "words",
        Sink::Discard.name(),
        Sink::CopyImem.name(),
        Sink::CopyEmem.name(),
    ]);
    for &l in lengths {
        let cell = |s: Sink| {
            points
                .iter()
                .find(|p| p.msg_len == l && p.sink == s)
                .map_or("-".to_string(), |p| fnum(p.mbits))
        };
        t.row(vec![
            l.to_string(),
            cell(Sink::Discard),
            cell(Sink::CopyImem),
            cell(Sink::CopyEmem),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discard_rate_grows_with_message_size_toward_peak() {
        let p2 = measure_point(2, Sink::Discard, 1_000, 8_000).unwrap();
        let p8 = measure_point(8, Sink::Discard, 1_000, 8_000).unwrap();
        let p16 = measure_point(16, Sink::Discard, 1_000, 8_000).unwrap();
        assert!(p8.mbits > p2.mbits);
        assert!(p16.mbits >= p8.mbits * 0.95);
        // Peak is 200 Mb/s × L/(L+1) wire efficiency.
        assert!(p16.mbits > 140.0 && p16.mbits <= 200.0, "{}", p16.mbits);
        // 2-word messages already beat half the eventual peak (paper).
        assert!(
            p2.mbits * 2.0 > p16.mbits,
            "p2 {} p16 {}",
            p2.mbits,
            p16.mbits
        );
    }

    #[test]
    fn slow_sinks_reduce_throughput() {
        let d = measure_point(8, Sink::Discard, 1_000, 8_000).unwrap();
        let i = measure_point(8, Sink::CopyImem, 1_000, 8_000).unwrap();
        let e = measure_point(8, Sink::CopyEmem, 1_000, 8_000).unwrap();
        assert!(d.mbits >= i.mbits);
        assert!(i.mbits > e.mbits);
    }
}
