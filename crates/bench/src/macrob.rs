//! Macro-benchmarks: Figures 5–6 and Tables 4–5 over the four
//! applications of `jm-apps`.

use crate::table::{fnum, TextTable};
use jm_apps::{lcs, nqueens, radix, tsp};
use jm_isa::instr::StatClass;
use jm_machine::{MachineError, MachineStats};
use std::collections::BTreeMap;

/// The four applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum App {
    /// Longest Common Subsequence.
    Lcs,
    /// Radix Sort.
    Radix,
    /// N-Queens.
    NQueens,
    /// Traveling Salesperson.
    Tsp,
}

impl App {
    /// All applications, figure order.
    pub const ALL: [App; 4] = [App::Lcs, App::Radix, App::NQueens, App::Tsp];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Lcs => "LCS",
            App::Radix => "RadixSort",
            App::NQueens => "NQueens",
            App::Tsp => "TSP",
        }
    }
}

/// One application run's harvest.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application.
    pub app: App,
    /// Machine size.
    pub nodes: u32,
    /// Cycles to completion.
    pub cycles: u64,
    /// Machine statistics.
    pub stats: MachineStats,
    /// `(thread name, entry label stats)` for Table 4/5, resolved from
    /// handler entry points.
    pub threads: Vec<(String, jm_mdp::HandlerStats)>,
}

/// Scaled default problem configurations (see `EXPERIMENTS.md` for the
/// paper-size originals).
#[derive(Debug, Clone, Copy)]
pub struct Problems {
    /// LCS configuration.
    pub lcs: lcs::LcsConfig,
    /// Radix configuration.
    pub radix: radix::RadixConfig,
    /// N-Queens configuration.
    pub nqueens: nqueens::NqConfig,
    /// TSP configuration.
    pub tsp: tsp::TspConfig,
}

impl Default for Problems {
    fn default() -> Problems {
        Problems {
            lcs: lcs::LcsConfig::scaled(),
            radix: radix::RadixConfig::scaled(),
            nqueens: nqueens::NqConfig::scaled(),
            tsp: tsp::TspConfig::scaled(),
        }
    }
}

impl Problems {
    /// The evaluation sizes used for the reported figures: large enough
    /// that a 64-node machine has real work per node (the scaled defaults
    /// are sized for fast tests and leave 64 nodes mostly idle).
    pub fn evaluation() -> Problems {
        Problems {
            lcs: lcs::LcsConfig {
                a_len: 512,
                b_len: 2048,
                seed: 0x1c5,
                alphabet: 4,
            },
            radix: radix::RadixConfig {
                keys: 16_384,
                seed: 0xad1,
            },
            nqueens: nqueens::NqConfig {
                n: 10,
                // Depth 4 gives ~2600 tasks: enough slack for the law of
                // averages to balance 64 nodes (the paper's 15%-idle
                // regime rather than the few-large-tasks regime).
                expand_depth: Some(4),
            },
            tsp: tsp::TspConfig {
                cities: 10,
                seed: 0x75b,
                task_depth: None,
                yield_every: 64,
            },
        }
    }
}

const MAX_CYCLES: u64 = 4_000_000_000;

fn thread_stats(
    program_threads: &[(&str, &str)],
    stats: &MachineStats,
    program: impl Fn(&str) -> u32,
) -> Vec<(String, jm_mdp::HandlerStats)> {
    program_threads
        .iter()
        .map(|(name, label)| {
            let ip = program(label);
            let h = stats.nodes.handlers.get(&ip).copied().unwrap_or_default();
            (name.to_string(), h)
        })
        .collect()
}

/// Runs one application on `nodes` nodes.
///
/// # Errors
///
/// Propagates machine failures.
pub fn run_app(app: App, nodes: u32, problems: &Problems) -> Result<AppRun, MachineError> {
    match app {
        App::Lcs => {
            let cfg = problems.lcs;
            let p = lcs::program(&cfg, nodes);
            let handler = |label: &str| p.handler(label);
            let r = lcs::run(nodes, &cfg, MAX_CYCLES)?;
            let threads = thread_stats(
                &[("NxtChar", "lcs_char"), ("StartUp", "main")],
                &r.stats,
                handler,
            );
            Ok(AppRun {
                app,
                nodes,
                cycles: r.cycles,
                stats: r.stats,
                threads,
            })
        }
        App::Radix => {
            let cfg = problems.radix;
            let p = radix::program(&cfg, nodes);
            let handler = |label: &str| p.handler(label);
            let r = radix::run(nodes, &cfg, MAX_CYCLES)?;
            let threads = thread_stats(
                &[("Sort", "main"), ("Write", "rs_write"), ("Scan", "rs_scan")],
                &r.stats,
                handler,
            );
            Ok(AppRun {
                app,
                nodes,
                cycles: r.cycles,
                stats: r.stats,
                threads,
            })
        }
        App::NQueens => {
            let cfg = problems.nqueens;
            let p = nqueens::program(&cfg, nodes);
            let handler = |label: &str| p.handler(label);
            let r = nqueens::run(nodes, &cfg, MAX_CYCLES)?;
            let threads = thread_stats(
                &[("NQueens", "nq_task"), ("NQDone", "nq_done")],
                &r.stats,
                handler,
            );
            Ok(AppRun {
                app,
                nodes,
                cycles: r.cycles,
                stats: r.stats,
                threads,
            })
        }
        App::Tsp => {
            let cfg = problems.tsp;
            let p = tsp::program(&cfg, nodes);
            let handler = |label: &str| p.handler(label);
            let r = tsp::run(nodes, &cfg, MAX_CYCLES)?;
            let threads = thread_stats(
                &[
                    ("Task", "tsp_work"),
                    ("Intake", "tsp_task"),
                    ("Bound", "tsp_bound"),
                    ("WorkReq", "tsp_req"),
                    ("WorkNone", "tsp_none"),
                    ("Done", "tsp_done"),
                ],
                &r.stats,
                handler,
            );
            Ok(AppRun {
                app,
                nodes,
                cycles: r.cycles,
                stats: r.stats,
                threads,
            })
        }
    }
}

/// Figure 5: speedups of all four applications across machine sizes.
///
/// # Errors
///
/// Propagates machine failures.
pub fn fig5(
    sizes: &[u32],
    problems: &Problems,
) -> Result<BTreeMap<App, Vec<AppRun>>, MachineError> {
    let mut out = BTreeMap::new();
    for app in App::ALL {
        let mut runs = Vec::new();
        for &n in sizes {
            runs.push(run_app(app, n, problems)?);
        }
        out.insert(app, runs);
    }
    Ok(out)
}

/// Renders Figure 5 as a speedup table.
pub fn render_fig5(results: &BTreeMap<App, Vec<AppRun>>) -> String {
    let mut out = String::new();
    out.push_str("Figure 5: application speedup vs machine size\n");
    out.push_str("(base = the application's own 1-node run, problem size constant)\n\n");
    let sizes: Vec<u32> = results
        .values()
        .next()
        .map(|runs| runs.iter().map(|r| r.nodes).collect())
        .unwrap_or_default();
    let mut header = vec!["app".to_string()];
    for n in &sizes {
        header.push(format!("{n}n"));
    }
    let mut t = TextTable::new(header);
    for (app, runs) in results {
        let base = runs
            .iter()
            .find(|r| r.nodes == 1)
            .map_or(runs[0].cycles, |r| r.cycles);
        let mut row = vec![app.name().to_string()];
        for r in runs {
            row.push(format!("{:.2}", base as f64 / r.cycles as f64));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str("\npaper shape: TSP super-linear on small machines (pruning),\n");
    out.push_str("LCS and NQueens sub-linear, RadixSort limited by global bandwidth\n");
    out
}

/// Figure 6: per-class cycle breakdown at one machine size.
pub fn render_fig6(runs: &[AppRun]) -> String {
    let mut out = String::new();
    let nodes = runs.first().map_or(0, |r| r.nodes);
    out.push_str(&format!(
        "Figure 6: breakdown of time by function, {nodes}-node machine (% of cycles)\n\n"
    ));
    let mut header = vec!["class".to_string()];
    for r in runs {
        header.push(r.app.name().to_string());
    }
    let mut t = TextTable::new(header);
    for class in StatClass::ALL {
        let mut row = vec![class.to_string()];
        for r in runs {
            row.push(format!("{:.1}", 100.0 * r.stats.class_fraction(class)));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str("\npaper anchors at 64 nodes: NQueens idle 15%, TSP idle 3.8%,\n");
    out.push_str("TSP sync 16%, visible xlate slice only for TSP (CST)\n");
    out
}

/// Table 4: per-thread statistics for LCS / NQueens / RadixSort.
pub fn render_table4(runs: &[AppRun]) -> String {
    let mut out = String::new();
    let nodes = runs.first().map_or(0, |r| r.nodes);
    out.push_str(&format!(
        "Table 4: application statistics, {nodes}-node machine\n\n"
    ));
    let mut t = TextTable::new(vec![
        "app",
        "run(ms)",
        "thread",
        "#threads",
        "#K instr",
        "instr/thread",
        "msg len",
    ]);
    for r in runs {
        for (i, (name, h)) in r.threads.iter().enumerate() {
            t.row(vec![
                if i == 0 {
                    format!("{} ({:.0} ms)", r.app.name(), r.stats.millis())
                } else {
                    String::new()
                },
                if i == 0 {
                    format!("{:.1}", r.stats.millis())
                } else {
                    String::new()
                },
                name.clone(),
                h.threads.to_string(),
                (h.instructions / 1000).to_string(),
                fnum(h.instr_per_thread()),
                fnum(h.mean_msg_len()),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str("\npaper (64 nodes): LCS NxtChar 262k threads, 232 instr/thread, len 3;\n");
    out.push_str(
        "RadixSort Write threads of 4 instructions, len 3; NQueens ~300k-instr tasks, len 8\n",
    );
    out
}

/// Table 5: the major cost components of TSP.
pub fn render_table5(run: &AppRun) -> String {
    assert_eq!(run.app, App::Tsp);
    let mut out = String::new();
    out.push_str(&format!(
        "Table 5: major components of cost for TSP, {} nodes\n\n",
        run.nodes
    ));
    let user: Vec<&(String, jm_mdp::HandlerStats)> = run
        .threads
        .iter()
        .filter(|(n, _)| n == "Task" || n == "Intake")
        .collect();
    let os: Vec<&(String, jm_mdp::HandlerStats)> = run
        .threads
        .iter()
        .filter(|(n, _)| n == "Bound" || n == "Done" || n == "WorkReq" || n == "WorkNone")
        .collect();
    let sum = |set: &[&(String, jm_mdp::HandlerStats)]| {
        let threads: u64 = set.iter().map(|(_, h)| h.threads).sum();
        let instr: u64 = set.iter().map(|(_, h)| h.instructions).sum();
        let words: u64 = set.iter().map(|(_, h)| h.msg_words).sum();
        (threads, instr, words)
    };
    let (ut, ui, uw) = sum(&user);
    let (ot, oi, ow) = sum(&os);
    let mut t = TextTable::new(vec!["metric", "user", "os", "paper user", "paper os"]);
    t.row(vec![
        "run time (ms)".to_string(),
        format!("{:.1}", run.stats.millis()),
        String::new(),
        "26300".to_string(),
        String::new(),
    ]);
    t.row(vec![
        "# threads (msgs)".to_string(),
        ut.to_string(),
        ot.to_string(),
        "9.1e6".to_string(),
        "8.9e6".to_string(),
    ]);
    t.row(vec![
        "# instructions".to_string(),
        ui.to_string(),
        oi.to_string(),
        "2.8e9".to_string(),
        "5.4e8".to_string(),
    ]);
    t.row(vec![
        "# xlates".to_string(),
        run.stats.nodes.xlates.to_string(),
        String::new(),
        "5.1e8".to_string(),
        String::new(),
    ]);
    t.row(vec![
        "# xlate faults".to_string(),
        run.stats.nodes.xlate_misses.to_string(),
        String::new(),
        "1.6e4".to_string(),
        String::new(),
    ]);
    t.row(vec![
        "instr/thread (mean)".to_string(),
        fnum(if ut == 0 { 0.0 } else { ui as f64 / ut as f64 }),
        fnum(if ot == 0 { 0.0 } else { oi as f64 / ot as f64 }),
        "309".to_string(),
        "61".to_string(),
    ]);
    t.row(vec![
        "avg msg length".to_string(),
        fnum(if ut == 0 { 0.0 } else { uw as f64 / ut as f64 }),
        fnum(if ot == 0 { 0.0 } else { ow as f64 / ot as f64 }),
        "5.1".to_string(),
        "4".to_string(),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_problems() -> Problems {
        Problems {
            lcs: lcs::LcsConfig {
                a_len: 32,
                b_len: 64,
                seed: 1,
                alphabet: 3,
            },
            radix: radix::RadixConfig { keys: 64, seed: 2 },
            nqueens: nqueens::NqConfig {
                n: 6,
                expand_depth: None,
            },
            tsp: tsp::TspConfig {
                cities: 6,
                seed: 3,
                task_depth: None,
                yield_every: 16,
            },
        }
    }

    #[test]
    fn all_apps_run_and_report() {
        let problems = tiny_problems();
        for app in App::ALL {
            let r = run_app(app, 4, &problems).unwrap();
            assert!(r.cycles > 0);
            assert!(!r.threads.is_empty());
            assert!(r.stats.nodes.instructions > 0);
        }
    }

    #[test]
    fn fig5_speedup_table_renders() {
        let problems = tiny_problems();
        let results = fig5(&[1, 4], &problems).unwrap();
        let text = render_fig5(&results);
        assert!(text.contains("LCS"));
        assert!(text.contains("TSP"));
    }
}
