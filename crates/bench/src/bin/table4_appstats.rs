//! Reproduces Table 4: per-thread application statistics on 64 nodes.

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let problems = jm_bench::macrob::Problems::evaluation();
    let runs: Vec<_> = [
        jm_bench::macrob::App::Lcs,
        jm_bench::macrob::App::NQueens,
        jm_bench::macrob::App::Radix,
    ]
    .iter()
    .map(|&app| jm_bench::macrob::run_app(app, nodes, &problems).expect("table4 run"))
    .collect();
    print!("{}", jm_bench::macrob::render_table4(&runs));
}
