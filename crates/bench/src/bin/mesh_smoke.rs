//! Large-mesh scaling bench: a bounded load-dominated run on a big cube,
//! executed under the event engine and the parallel engine at several
//! quantum lengths, with a digest diff across every row.
//!
//! Usage: `mesh_smoke [--nodes N] [--cycles C] [--threads T] [--digest PATH]`
//!
//! Defaults: a 16×16×16 mesh (4096 nodes), 5 000 cycles, 4 worker threads.
//! Every node runs the Figure-3 exchange loop, so the whole mesh is busy
//! every cycle — the regime ROADMAP's scaling work targets. The run is
//! bounded by cycle count, not quiescence, so its cost is predictable on a
//! scheduled CI job.
//!
//! Three rows run: `event`, `parallel-T` at quantum 1 (a decide every
//! cycle — the old barrier engine's cadence, and the worst case for the
//! crew scheduler), and `parallel-T` at the auto quantum (the shipped
//! default). The binary is its own gate: every row's full machine
//! statistics are hashed (FNV-1a over the debug rendering, the same
//! fingerprint style as the determinism digests) and compared; any
//! divergence — a non-deterministic parallel tick, a sharding-dependent
//! network path, a quantum-boundary bug — exits nonzero. `--digest`
//! writes the digest line to a file so a workflow can additionally diff
//! across runs or days. Peak RSS is reported per process so the 16³
//! footprint stays visible run over run.

use jm_machine::{Engine, JMachine, MachineConfig, StartPolicy};
use std::process::ExitCode;

/// FNV-1a over a byte string (the workspace's standard tiny fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: u32 = arg(&args, "--nodes").map_or(4096, |v| v.parse().expect("--nodes"));
    let cycles: u64 = arg(&args, "--cycles").map_or(5_000, |v| v.parse().expect("--cycles"));
    let threads: u32 = arg(&args, "--threads").map_or(4, |v| v.parse().expect("--threads"));
    let digest_path = arg(&args, "--digest");

    // (label, engine, quantum): quantum 0 is the auto default.
    let rows = [
        ("event".to_string(), Engine::Event, 0u32),
        (
            format!("parallel-{threads}-q1"),
            Engine::Parallel(threads),
            1,
        ),
        (
            format!("parallel-{threads}-qauto"),
            Engine::Parallel(threads),
            0,
        ),
    ];
    let mut lines = Vec::new();
    for (label, engine, quantum) in rows {
        let mut m = JMachine::new(
            jm_bench::micro::load::debug_program(4, 20),
            MachineConfig::new(nodes)
                .start(StartPolicy::AllNodes)
                .engine(engine)
                .quantum(quantum),
        );
        let start = std::time::Instant::now();
        m.run(cycles);
        let wall = start.elapsed().as_secs_f64();
        let stats = m.stats();
        let digest = fnv1a(format!("{stats:?}").as_bytes());
        println!(
            "{label:<18} {nodes} nodes  {cycles} cycles  {:.2}s wall  {:.0} cyc/s  stats digest {digest:016x}",
            wall,
            cycles as f64 / wall.max(1e-9),
        );
        lines.push((label, digest));
    }
    println!("peak rss: {} MiB", jm_bench::harness::peak_rss_mib());

    // The cross-engine digest diff is the gate.
    let (ref base_label, base) = lines[0];
    let mut ok = true;
    for (label, digest) in &lines[1..] {
        if *digest != base {
            eprintln!(
                "[FAIL] {label} digest {digest:016x} != {base_label} digest {base:016x}: \
                 engines diverged on the large mesh"
            );
            ok = false;
        }
    }
    if let Some(path) = digest_path {
        let body = format!(
            "mesh_smoke nodes={nodes} cycles={cycles} digest={base:016x} peak_rss_mib={}\n",
            jm_bench::harness::peak_rss_mib()
        );
        std::fs::write(&path, body).expect("write digest file");
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("mesh smoke passed: engines bit-identical at {nodes} nodes");
    ExitCode::SUCCESS
}
