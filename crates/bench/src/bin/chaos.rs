//! Chaos run: the four macro applications under a seeded delay-fault
//! plan, on a selectable engine.
//!
//! Usage: `chaos [--seed S] [--engine naive|event|parallelN]`
//!
//! The plan combines flaky links with link-down, router-stall, and
//! node-down windows, plus checksum trailers on every message. Delay
//! faults are lossless backpressure, so every application must still
//! produce its exact answer — each app's `run_on` validates the machine's
//! result against the host reference and panics on any mismatch, which
//! *is* the diff against the fault-free golden output. The binary
//! additionally checks that the plan actually disturbed the run
//! (blocked moves observed) so a silently vacuous plan cannot pass.
//!
//! CI runs this across a seed × engine matrix.

use jm_apps::{lcs, nqueens, radix, tsp};
use jm_machine::{Engine, FaultSpec, FaultWindow, MachineConfig};

const NODES: u32 = 8;
const MAX_CYCLES: u64 = 4_000_000_000;

/// The chaos plan: delay-only (corruption would lose messages, which the
/// plain apps do not retry — loss recovery is the reliable-RPC layer's
/// job, exercised by `fault_sweep`), with every delay-fault kind present.
fn plan(seed: u64) -> FaultSpec {
    FaultSpec::new(seed)
        .flaky(15_000)
        .checksums(true)
        .window(FaultWindow::link_down(0, 0, 2_000, 12_000))
        .window(FaultWindow::router_stall(3, 5_000, 9_000))
        .window(FaultWindow::node_down(5, 3_000, 4_000))
        .window(FaultWindow::link_down(6, 2, 20_000, 30_000))
}

fn parse_engine(s: &str) -> Engine {
    match s {
        "naive" => Engine::Naive,
        "event" => Engine::Event,
        _ => match s
            .strip_prefix("parallel")
            .and_then(|n| n.parse::<u32>().ok())
        {
            Some(n) if n > 0 => Engine::Parallel(n),
            _ => panic!("--engine takes naive, event, or parallelN, not {s:?}"),
        },
    }
}

fn main() {
    // When CI sets JM_REPLAY_CAPTURE, every machine in the run records a
    // replay log so a failure ships a reproducer artifact (DESIGN.md §4.11).
    if jm_machine::capture_replay_from_env() {
        println!("chaos: replay capture armed (JM_REPLAY_CAPTURE)");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = arg("--seed").map_or(3, |s| s.parse().expect("--seed takes a number"));
    let engine = parse_engine(&arg("--engine").unwrap_or_else(|| "event".to_string()));
    let mcfg = || MachineConfig::new(NODES).engine(engine).fault(plan(seed));
    println!("chaos: seed {seed}, engine {engine:?}, {NODES} nodes");

    let mut disturbed = 0u64;
    let mut check = |name: &str, cycles: u64, blocked: u64, answer: String| {
        println!("  {name:<8} ok: {answer}, {cycles} cycles, {blocked} blocked moves");
        disturbed += blocked;
    };

    let r = lcs::run_on(mcfg(), &lcs::LcsConfig::scaled(), MAX_CYCLES).expect("lcs");
    check(
        "lcs",
        r.cycles,
        r.stats.net.faults.blocked_moves,
        format!("length {}", r.length),
    );

    let cfg = radix::RadixConfig::scaled();
    let r = radix::run_on(mcfg(), &cfg, MAX_CYCLES).expect("radix");
    check(
        "radix",
        r.cycles,
        r.stats.net.faults.blocked_moves,
        format!("{} keys sorted", cfg.keys),
    );

    let r = nqueens::run_on(mcfg(), &nqueens::NqConfig::scaled(), MAX_CYCLES).expect("nqueens");
    check(
        "nqueens",
        r.cycles,
        r.stats.net.faults.blocked_moves,
        format!("{} solutions", r.solutions),
    );

    let r = tsp::run_on(mcfg(), &tsp::TspConfig::scaled(), MAX_CYCLES).expect("tsp");
    check(
        "tsp",
        r.cycles,
        r.stats.net.faults.blocked_moves,
        format!("best tour {}", r.best),
    );

    assert!(
        disturbed > 0,
        "the chaos plan disturbed nothing — it is vacuous"
    );
    println!("all four applications exact under chaos ({disturbed} blocked moves total)");
}
