//! Reproduces Figure 2: round-trip latency vs distance.
//!
//! Usage: `fig2_latency [nodes]` (default 512).

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let curves = jm_bench::micro::latency::measure(nodes).expect("fig2 run");
    print!("{}", jm_bench::micro::latency::render(&curves));
}
