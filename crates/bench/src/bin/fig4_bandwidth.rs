//! Reproduces Figure 4: terminal bandwidth vs message size.

fn main() {
    let lengths = [1u32, 2, 3, 4, 6, 8, 12, 16];
    let points = jm_bench::micro::bandwidth::measure(&lengths, 2_000, 20_000).expect("fig4 run");
    print!("{}", jm_bench::micro::bandwidth::render(&points, &lengths));
}
