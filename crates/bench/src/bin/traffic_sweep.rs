//! Synthetic-traffic saturation sweep: accepted throughput and latency
//! vs. offered load for every destination pattern.
//!
//! Usage: `traffic_sweep [--seed S] [--out PATH] [--digest PATH] [--threads N]`
//! or, for a single point on an explicit mesh (the nightly large-mesh
//! canary): `traffic_sweep --mesh XxYxZ --pattern NAME --load PPM
//! [--seed S] [--digest PATH] [--threads N]` — runs one saturation point
//! and records its counters plus the process's peak RSS in the digest.
//!
//! Runs the `jm_bench::traffic` load ladder for all five patterns under
//! one injection seed, prints the curves with their saturation knees,
//! gates on weak monotonicity (offered and accepted message counts must
//! not fall as the load grows — exit code 1 on violation), and writes
//! `BENCH_traffic.json`. `--digest` additionally writes a deterministic
//! fingerprint: an FNV-1a hash over the per-point simulated counters plus
//! the traced-machine fallback count, so CI can diff a plain run against
//! a `--threads 4` run and prove the generator and its accept/drop
//! decisions schedule-independent.

use jm_bench::traffic;

fn main() {
    // When CI sets JM_REPLAY_CAPTURE, every machine in the sweep records
    // a replay log so a determinism failure ships a reproducer artifact
    // (DESIGN.md §4.11).
    if jm_machine::capture_replay_from_env() {
        println!("traffic_sweep: replay capture armed (JM_REPLAY_CAPTURE)");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = arg("--seed").map_or(7, |s| s.parse().expect("--seed takes a number"));
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_traffic.json".to_string());
    let digest_path = arg("--digest");
    if let Some(t) = arg("--threads") {
        let t: u32 = t.parse().expect("--threads takes a worker count");
        jm_machine::Engine::set_default(jm_machine::Engine::Parallel(t));
        println!("running the counter runs under Engine::Parallel({t})");
    }

    // Single-point mode: one (mesh, pattern, load) saturation point.
    if let Some(mesh) = arg("--mesh") {
        let ext: Vec<u8> = mesh
            .split('x')
            .map(|d| d.parse().expect("--mesh takes XxYxZ"))
            .collect();
        assert_eq!(ext.len(), 3, "--mesh takes XxYxZ");
        let dims = jm_isa::MeshDims::new(ext[0], ext[1], ext[2]);
        let name = arg("--pattern").expect("--pattern NAME is required with --mesh");
        let pattern = traffic::PATTERNS
            .iter()
            .copied()
            .find(|p| p.label() == name)
            .unwrap_or_else(|| panic!("unknown pattern `{name}`"));
        let load: u32 = arg("--load")
            .expect("--load PPM is required with --mesh")
            .parse()
            .expect("--load takes parts per million");
        let p = traffic::measure_point(seed, dims, pattern, load);
        let rss = jm_bench::harness::peak_rss_mib();
        println!(
            "{name} on {mesh} at {load} ppm: offered {} accepted {} dropped {} \
             ({:.4} flits/node/cycle, lat p99 {}, {} cycles to drain, peak rss {rss} MiB)",
            p.offered_msgs,
            p.accepted_msgs,
            p.dropped_msgs,
            p.accepted_throughput(dims.nodes()),
            p.latency_p99,
            p.total_cycles,
        );
        if let Some(path) = digest_path {
            let fingerprint = format!(
                "jm-traffic-point v1\n{name} {mesh} {load} offered {} accepted {} dropped {} \
                 delivered {} cycles {} p50 {} p99 {} max {}\npeak_rss_mib {rss}\n",
                p.offered_msgs,
                p.accepted_msgs,
                p.dropped_msgs,
                p.delivered_msgs,
                p.total_cycles,
                p.latency_p50,
                p.latency_p99,
                p.latency_max,
            );
            std::fs::write(&path, &fingerprint).expect("write digest");
            print!("{fingerprint}");
        }
        return;
    }

    let report = traffic::sweep(seed);
    print!("{}", report.render());

    std::fs::write(&out_path, report.json()).expect("write BENCH_traffic.json");
    println!("\nwrote {out_path}");

    if let Some(path) = digest_path {
        let stats_hash = jm_trace::fnv1a(report.digest_lines().as_bytes());
        let fallbacks = jm_machine::parallel_trace_fallbacks();
        let fingerprint =
            format!("jm-traffic-digest v1\nstats {stats_hash:016x}\nfallbacks {fallbacks}\n");
        std::fs::write(&path, &fingerprint).expect("write digest");
        print!("{fingerprint}");
    }

    if let Err(violations) = report.check_monotone() {
        eprintln!("\nsaturation curves violate weak monotonicity:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("saturation curves are weakly monotone");
}
