//! Fault-injection degradation sweep: goodput, completion-time inflation,
//! and retry cost vs. fault rate.
//!
//! Usage: `fault_sweep [--seed S] [--out PATH] [--digest PATH] [--threads N]`
//!
//! Runs the three `jm_bench::faultb` sweeps under one fault-plan seed,
//! prints the curves, gates on weak monotonicity (goodput must not rise
//! and LCS completion time must not fall as the fault rate grows — exit
//! code 1 on violation), and writes `BENCH_fault.json`. `--digest`
//! additionally writes a deterministic fingerprint: an FNV-1a hash over
//! the per-point simulated counters plus the traced-machine fallback
//! count, so CI can diff a plain run against a `--threads 4` run and
//! prove the fault paths schedule-independent (and that both runs used
//! the engine they asked for).

use jm_bench::faultb;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = arg("--seed").map_or(7, |s| s.parse().expect("--seed takes a number"));
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_fault.json".to_string());
    let digest_path = arg("--digest");
    if let Some(t) = arg("--threads") {
        let t: u32 = t.parse().expect("--threads takes a worker count");
        jm_machine::Engine::set_default(jm_machine::Engine::Parallel(t));
        println!("running the sweep under Engine::Parallel({t})");
    }

    let report = faultb::sweep(seed, 20_000);
    print!("{}", report.render());

    std::fs::write(&out_path, report.json()).expect("write BENCH_fault.json");
    println!("\nwrote {out_path}");

    if let Some(path) = digest_path {
        let stats_hash = jm_trace::fnv1a(report.digest_lines().as_bytes());
        let fallbacks = jm_machine::parallel_trace_fallbacks();
        let fingerprint =
            format!("jm-fault-digest v1\nstats {stats_hash:016x}\nfallbacks {fallbacks}\n");
        std::fs::write(&path, &fingerprint).expect("write digest");
        print!("{fingerprint}");
    }

    if let Err(violations) = report.check_monotone() {
        eprintln!("\ndegradation curves violate weak monotonicity:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("degradation curves are weakly monotone");
}
