//! Reproduces Table 2: producer-consumer synchronization costs.

fn main() {
    let costs = jm_bench::micro::sync::measure().expect("table2 run");
    print!("{}", jm_bench::micro::sync::render(&costs));
}
