//! Reproduces Figure 3: latency vs bisection traffic and efficiency vs
//! grain size.
//!
//! Usage: `fig3_load [nodes]` (default 512; use 64 for a quick look).

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let lengths = [2u32, 4, 8, 16];
    let idles = [0u32, 50, 150, 400, 1000, 3000];
    let points =
        jm_bench::micro::load::measure(nodes, &lengths, &idles, 3_000, 20_000).expect("fig3 run");
    let capacity =
        jm_net::NetConfig::new(jm_isa::MeshDims::for_nodes(nodes)).bisection_capacity_bits() / 1e6;
    print!(
        "{}",
        jm_bench::micro::load::render(nodes, &points, capacity)
    );
}
