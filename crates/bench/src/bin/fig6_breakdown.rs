//! Reproduces Figure 6: breakdown of time by function on 64 nodes.
//!
//! Usage: `fig6_breakdown [nodes]` (default 64).

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let problems = jm_bench::macrob::Problems::evaluation();
    let runs: Vec<_> = jm_bench::macrob::App::ALL
        .iter()
        .map(|&app| jm_bench::macrob::run_app(app, nodes, &problems).expect("fig6 run"))
        .collect();
    print!("{}", jm_bench::macrob::render_fig6(&runs));
}
