//! Reproduces Table 3: barrier synchronization vs machine size.
//!
//! Usage: `table3_barrier [max_nodes]` (default 512).

fn main() {
    let max: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let sizes: Vec<u32> = (1..=9).map(|k| 1u32 << k).filter(|&n| n <= max).collect();
    let points = jm_bench::micro::barrier::measure(&sizes, 8).expect("table3 run");
    print!("{}", jm_bench::micro::barrier::render(&points));
}
