//! Reproduces Table 5: the major components of cost for TSP on 64 nodes.

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let problems = jm_bench::macrob::Problems::evaluation();
    let run =
        jm_bench::macrob::run_app(jm_bench::macrob::App::Tsp, nodes, &problems).expect("table5");
    print!("{}", jm_bench::macrob::render_table5(&run));
}
