//! Record, verify, and bisect deterministic replay logs (DESIGN.md §4.11).
//!
//! Usage:
//!
//! ```text
//! replay record  --workload exchange|chaos64 [--out PATH] [--interval N]
//!                [--cycles N] [--engine E] [--seed S]
//! replay verify  --log PATH [--engine E] [--quantum N] [--sched auto|event|scan]
//! replay bisect  --log PATH [--engine E] [--quantum N] [--sched auto|event|scan]
//!                [--expect-log-mismatch CYCLE]
//! replay corrupt --log PATH --checkpoint N [--out PATH]
//! ```
//!
//! `record` captures a canned workload into a `.jmrp` event log. `verify`
//! re-executes the log under a (possibly different) engine configuration
//! and compares every checkpoint hash; exit 0 on a clean replay, 1 on a
//! mismatch. `bisect` narrows a mismatch to the first diverging cycle and
//! names the diverging components; exit 0 when clean, 2 on a genuine
//! divergence, 3 when the log itself is irreproducible (corrupt or
//! recorded nondeterministically). `corrupt` flips one checkpoint hash in
//! a log — the CI self-test fixture: the bisector must then name exactly
//! that checkpoint's cycle as a log mismatch, which `bisect
//! --expect-log-mismatch CYCLE` asserts (exit 0 iff it does).
//!
//! Engine flags default to the configuration recorded in the log, so
//! `verify --log x.jmrp` with no overrides is a pure determinism check of
//! the recording environment itself.

use jm_machine::{Engine, FaultSpec, FaultWindow, MachineConfig, MachineFactory, StartPolicy};
use jm_machine::{JMachine, SchedMode};
use jm_replay::{Divergence, ReplayLog, DEFAULT_INTERVAL};
use std::process::ExitCode;

fn parse_engine(s: &str) -> Engine {
    match s {
        "naive" => Engine::Naive,
        "event" => Engine::Event,
        _ => match s
            .strip_prefix("parallel")
            .and_then(|n| n.parse::<u32>().ok())
        {
            Some(n) if n > 0 => Engine::Parallel(n),
            _ => panic!("--engine takes naive, event, or parallelN, not {s:?}"),
        },
    }
}

fn parse_sched(s: &str) -> SchedMode {
    match s {
        "auto" => SchedMode::Auto,
        "event" => SchedMode::ForcedEvent,
        "scan" => SchedMode::ForcedScan,
        _ => panic!("--sched takes auto, event, or scan, not {s:?}"),
    }
}

/// A delay-only fault plan for the 64-node chaos workload: lossless
/// backpressure (flaky links, a link-down window, a router stall) plus
/// checksum trailers, mirroring the `chaos` binary's plan shape but
/// sized to a short recorded run.
fn chaos_plan(seed: u64) -> FaultSpec {
    FaultSpec::new(seed)
        .flaky(15_000)
        .checksums(true)
        .window(FaultWindow::link_down(0, 0, 500, 3_000))
        .window(FaultWindow::router_stall(3, 1_000, 2_500))
        .window(FaultWindow::node_down(5, 800, 1_400))
}

/// Builds the target factory from the CLI overrides; with no flags the
/// replay runs under the configuration recorded in the log.
fn factory(arg: &impl Fn(&str) -> Option<String>) -> MachineFactory {
    let mut f = MachineFactory::recorded();
    if let Some(e) = arg("--engine") {
        f = f.engine(parse_engine(&e));
    }
    if let Some(q) = arg("--quantum") {
        f = f.quantum(q.parse().expect("--quantum takes a number"));
    }
    if let Some(s) = arg("--sched") {
        f = f.sched_mode(parse_sched(&s));
    }
    f
}

fn record(arg: &impl Fn(&str) -> Option<String>) -> ExitCode {
    let workload = arg("--workload").unwrap_or_else(|| "exchange".to_string());
    let out = arg("--out").unwrap_or_else(|| format!("{workload}.jmrp"));
    let interval: u64 = arg("--interval").map_or(DEFAULT_INTERVAL, |v| {
        v.parse().expect("--interval takes a number")
    });
    let cycles: u64 =
        arg("--cycles").map_or(20_000, |v| v.parse().expect("--cycles takes a number"));
    let seed: u64 = arg("--seed").map_or(3, |v| v.parse().expect("--seed takes a number"));
    let engine = parse_engine(&arg("--engine").unwrap_or_else(|| "event".to_string()));

    let mut config = MachineConfig::new(64)
        .start(StartPolicy::AllNodes)
        .engine(engine);
    match workload.as_str() {
        "exchange" => {}
        "chaos64" => config = config.fault(chaos_plan(seed)),
        other => panic!("--workload takes exchange or chaos64, not {other:?}"),
    }
    let mut m = JMachine::new(jm_bench::micro::load::debug_program(4, 20), config);
    m.record_replay(interval);
    m.run(cycles);
    let log = m.finish_replay().expect("recording was armed");
    log.write_file(&out).expect("write replay log");
    println!(
        "recorded {workload}: {} cycles, {} checkpoints (interval {interval}) -> {out}",
        log.end_cycle(),
        log.checkpoints(),
    );
    ExitCode::SUCCESS
}

fn verify(arg: &impl Fn(&str) -> Option<String>) -> ExitCode {
    let log = read_log(arg);
    let report = jm_replay::verify(&log, &factory(arg));
    println!("verify: {report}");
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn bisect(arg: &impl Fn(&str) -> Option<String>) -> ExitCode {
    let log = read_log(arg);
    let expect: Option<u64> = arg("--expect-log-mismatch")
        .map(|v| v.parse().expect("--expect-log-mismatch takes a cycle"));
    let report = jm_replay::bisect(&log, &MachineFactory::recorded(), &factory(arg));
    println!("bisect ({} probes): {report}", report.probes);
    if let Some(want) = expect {
        return match report.divergence {
            Divergence::LogMismatch { cycle, .. } if cycle == want => {
                println!("expected log mismatch at cycle {want}: confirmed");
                ExitCode::SUCCESS
            }
            other => {
                println!("expected log mismatch at cycle {want}, got: {other:?}");
                ExitCode::FAILURE
            }
        };
    }
    match report.divergence {
        Divergence::None => ExitCode::SUCCESS,
        Divergence::Diverged { .. } => ExitCode::from(2),
        Divergence::LogMismatch { .. } => ExitCode::from(3),
    }
}

fn corrupt(arg: &impl Fn(&str) -> Option<String>) -> ExitCode {
    let path = arg("--log").expect("corrupt needs --log PATH");
    let index: usize = arg("--checkpoint")
        .expect("corrupt needs --checkpoint N")
        .parse()
        .expect("--checkpoint takes an index");
    let out = arg("--out").unwrap_or_else(|| path.clone());
    let mut log = ReplayLog::read_file(&path).expect("read replay log");
    let cycle = log
        .corrupt_checkpoint(index)
        .expect("checkpoint index out of range");
    log.write_file(&out).expect("write corrupted log");
    println!("corrupted checkpoint {index} at cycle {cycle} -> {out}");
    ExitCode::SUCCESS
}

fn read_log(arg: &impl Fn(&str) -> Option<String>) -> ReplayLog {
    let path = arg("--log").expect("need --log PATH");
    ReplayLog::read_file(&path).expect("read replay log")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sub = args.first().map(String::as_str).unwrap_or("");
    let arg = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    match sub {
        "record" => record(&arg),
        "verify" => verify(&arg),
        "bisect" => bisect(&arg),
        "corrupt" => corrupt(&arg),
        _ => {
            eprintln!("usage: replay record|verify|bisect|corrupt [flags] (see --help in source)");
            ExitCode::FAILURE
        }
    }
}
