//! Runs the traced gather workload and exports the lifecycle trace.
//!
//! Usage: `trace_dump [--nodes N] [--sample-every E]
//!                    [--chrome PATH] [--summary PATH]`
//!
//! Writes a Chrome trace-event JSON (open in Perfetto / `chrome://tracing`)
//! and a compact machine-readable summary (histograms plus a deterministic
//! trace hash), and prints the per-mechanism latency breakdown table:
//! `T = T_net + T_queue` per message, plus handler time and hop counts.

use jm_bench::observe;
use jm_isa::MeshDims;
use jm_trace::{chrome_json, summary_json};

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: u32 = arg(&args, "--nodes")
        .map(|v| v.parse().expect("--nodes takes an integer"))
        .unwrap_or(64);
    let sample_every: u64 = arg(&args, "--sample-every")
        .map(|v| v.parse().expect("--sample-every takes an integer"))
        .unwrap_or(16);
    let chrome_path = arg(&args, "--chrome").unwrap_or_else(|| "trace_chrome.json".to_string());
    let summary_path = arg(&args, "--summary").unwrap_or_else(|| "trace_summary.json".to_string());

    let dims = MeshDims::for_nodes(nodes);
    let demo = observe::gather_demo(dims, sample_every).expect("gather workload quiesces");
    let trace = &demo.trace;

    println!(
        "gather on {}x{}x{} ({} nodes): {} messages, {} events, {} samples\n",
        dims.x,
        dims.y,
        dims.z,
        trace.nodes,
        trace.messages().len(),
        trace.events.len(),
        trace.samples.len(),
    );
    println!("{}", trace.breakdown_table());

    std::fs::write(&chrome_path, chrome_json(trace)).expect("write chrome trace");
    println!("wrote {chrome_path} (load in Perfetto or chrome://tracing)");
    std::fs::write(&summary_path, summary_json(trace)).expect("write trace summary");
    println!("wrote {summary_path}");
}
