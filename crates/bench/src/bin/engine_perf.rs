//! Measures host-side simulation throughput (simulated cycles per second of
//! wall clock) of the two machine engines on contrasting workloads, and
//! writes `BENCH_engine.json`.
//!
//! Usage: `engine_perf [--out PATH] [--quick] [--trace] [--threads]
//! [--require-cpus N]`
//!
//! `--require-cpus N` turns an undersized host into a hard failure: when
//! the host has fewer than `N` CPUs the binary emits a `::error::`
//! annotation and exits nonzero instead of quietly skipping the
//! thread-scaling floor. CI jobs that exist to enforce that floor pass
//! this flag so a mis-provisioned runner fails loudly rather than
//! green-washing the check.
//!
//! `--trace` additionally runs the ring workload on the event engine with
//! lifecycle tracing enabled and reports the tracing overhead (the
//! disabled path is a single pointer test, so the untraced numbers are
//! unaffected either way); the traced run's deterministic trace hash is
//! included in the JSON.
//!
//! `--threads` additionally sweeps the parallel engine over 1, 2, and 4
//! worker threads on the load-dominated exchange workload (the only one
//! where threads can help — the ring keeps one node busy), asserting the
//! results bit-identical to the event engine and recording the scaling in
//! a `"threads"` JSON section. On hosts with ≥ 4 CPUs the 4-thread run
//! must clear a 1.5x speedup floor; on smaller hosts (CI runners pinned
//! to one core) the floor is reported but not enforced, and `host_cpus`
//! is recorded so readers can tell which regime produced the numbers.
//!
//! Two workloads bracket the design space:
//!
//! * **ring (idle-dominated)** — one token circulates a 64-node ring, so at
//!   any instant one node works and 63 idle. This is the case the
//!   event-driven engine exists for: parked nodes and flitless routers cost
//!   nothing, and quiescence is an O(1) check. Expected speedup: large
//!   (the acceptance floor is 2x).
//! * **exchange (load-dominated)** — every node runs the Figure-3 exchange
//!   loop continuously. Here the worklist is always full, so the event
//!   engine can only match the naive engine, not beat it; the measurement
//!   guards against the bookkeeping becoming a regression.
//!
//! Both engines execute the identical workload in the same process run, so
//! the reported speedup is apples-to-apples.

use jm_asm::{hdr, Builder, Program};
use jm_bench::harness::time_once;
use jm_isa::instr::{AluOp, MsgPriority};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_machine::{Engine, JMachine, MachineConfig, StartPolicy};
use jm_runtime::nnr;
use std::fmt::Write as _;

/// One engine's measurement on one workload.
struct Measurement {
    wall_secs: f64,
    cycles: u64,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs.max(1e-9)
    }
}

/// Token-ring program: `rounds` full circulations of a single message.
fn ring_program(rounds: i32) -> Program {
    let mut b = Builder::new();
    b.data("acc", jm_asm::Region::Imem, vec![jm_isa::Word::int(0)]);
    b.reserve("next_route", jm_asm::Region::Imem, 1);
    b.label("main");
    b.mov(R0, Special::Nid);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Rem, R0, R0, Special::NNodes);
    b.call(nnr::NID_TO_ROUTE);
    b.load_seg(A0, "next_route");
    b.mov(MemRef::disp(A0, 0), R0);
    b.mov(R0, Special::Nid);
    b.bnz(R0, "main_done");
    b.mov(R1, Special::NNodes);
    b.alu(AluOp::Mul, R1, R1, rounds);
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("main_done");
    b.suspend();
    b.label("token");
    b.mov(R1, MemRef::disp(A3, 1));
    b.load_seg(A0, "acc");
    b.mov(R2, MemRef::disp(A0, 0));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 0), R2);
    b.subi(R1, R1, 1);
    b.bz(R1, "token_done");
    b.load_seg(A1, "next_route");
    b.send(MsgPriority::P0, MemRef::disp(A1, 0));
    b.send2e(MsgPriority::P0, hdr("token", 2), R1);
    b.label("token_done");
    b.suspend();
    b.entry("main");
    nnr::install(&mut b);
    b.assemble().unwrap()
}

/// Runs `program` to quiescence under `engine` and measures wall time.
fn run_to_quiescence(program: Program, nodes: u32, engine: Engine, max: u64) -> Measurement {
    let mut m = JMachine::new(
        program,
        MachineConfig::new(nodes)
            .start(StartPolicy::AllNodes)
            .engine(engine),
    );
    let (wall, cycles) = time_once(|| m.run_until_quiescent(max).expect("workload quiesces"));
    Measurement {
        wall_secs: wall.as_secs_f64(),
        cycles,
    }
}

/// Runs `program` to quiescence on the event engine with lifecycle
/// tracing enabled; returns the measurement and the trace hash.
fn run_traced(program: Program, nodes: u32, max: u64) -> (Measurement, u64) {
    let mut m = JMachine::new(
        program,
        MachineConfig::new(nodes)
            .start(StartPolicy::AllNodes)
            .engine(Engine::Event)
            .traced(),
    );
    let (wall, cycles) = time_once(|| m.run_until_quiescent(max).expect("workload quiesces"));
    let trace = m.take_trace().expect("tracing was enabled");
    (
        Measurement {
            wall_secs: wall.as_secs_f64(),
            cycles,
        },
        jm_trace::hash(&trace),
    )
}

/// Steps `program` for a fixed number of cycles under `engine`.
fn run_fixed(program: Program, nodes: u32, engine: Engine, cycles: u64) -> Measurement {
    let mut m = JMachine::new(
        program,
        MachineConfig::new(nodes)
            .start(StartPolicy::AllNodes)
            .engine(engine),
    );
    let (wall, ()) = time_once(|| m.run(cycles));
    Measurement {
        wall_secs: wall.as_secs_f64(),
        cycles,
    }
}

fn json_workload(out: &mut String, name: &str, naive: &Measurement, event: &Measurement) {
    let speedup = event.cycles_per_sec() / naive.cycles_per_sec();
    let _ = writeln!(
        out,
        "    {{\n      \"name\": \"{name}\",\n      \"cycles\": {},\n      \"naive\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n      \"event\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n      \"speedup\": {:.2}\n    }},",
        event.cycles,
        naive.wall_secs,
        naive.cycles_per_sec(),
        event.wall_secs,
        event.cycles_per_sec(),
        speedup,
    );
    println!(
        "{name:<24} naive {:>12.0} cyc/s   event {:>12.0} cyc/s   speedup {speedup:.2}x",
        naive.cycles_per_sec(),
        event.cycles_per_sec(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = args.iter().any(|a| a == "--trace");
    let threads = args.iter().any(|a| a == "--threads");
    let require_cpus: Option<usize> = args
        .iter()
        .position(|a| a == "--require-cpus")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--require-cpus takes a number"));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let ring_nodes = 64;
    let ring_rounds = if quick { 20 } else { 100 };
    let exch_nodes = 64;
    let exch_cycles = if quick { 20_000 } else { 100_000 };

    // Idle-dominated: one busy node, 63 parked.
    let ring_naive = run_to_quiescence(
        ring_program(ring_rounds),
        ring_nodes,
        Engine::Naive,
        500_000_000,
    );
    let ring_event = run_to_quiescence(
        ring_program(ring_rounds),
        ring_nodes,
        Engine::Event,
        500_000_000,
    );
    assert_eq!(
        ring_naive.cycles, ring_event.cycles,
        "engines must quiesce at the same cycle"
    );

    // Load-dominated: every node busy every cycle.
    let exch_program = jm_bench::micro::load::debug_program(4, 20);
    let exch_naive = run_fixed(exch_program.clone(), exch_nodes, Engine::Naive, exch_cycles);
    let exch_event = run_fixed(exch_program, exch_nodes, Engine::Event, exch_cycles);

    // Same workload with replay capture armed: the recording hook is a
    // single pointer test per host op plus one state hash per checkpoint
    // interval, so the captured run must stay within 10% of the
    // uncaptured event run (bench_gate enforces a 0.90 floor on the
    // "speedup" ratio below).
    let exch_captured = {
        let mut m = JMachine::new(
            jm_bench::micro::load::debug_program(4, 20),
            MachineConfig::new(exch_nodes)
                .start(StartPolicy::AllNodes)
                .engine(Engine::Event),
        );
        m.record_replay(jm_replay::DEFAULT_INTERVAL);
        let (wall, ()) = time_once(|| m.run(exch_cycles));
        let log = m.finish_replay().expect("recording was armed");
        assert_eq!(
            log.end_cycle(),
            exch_cycles,
            "capture must not change the run length"
        );
        Measurement {
            wall_secs: wall.as_secs_f64(),
            cycles: exch_cycles,
        }
    };

    // Recorded at the top level so artifact readers can tell a 1-CPU
    // runner's numbers from a real multi-core host without digging into
    // the threads section (which only exists under --threads).
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if let Some(need) = require_cpus {
        if host_cpus < need {
            // Printed on its own line so GitHub Actions renders it as an
            // error annotation; the nonzero exit fails the job either way.
            println!(
                "::error title=undersized bench runner::host has {host_cpus} CPU(s) but \
                 --require-cpus {need} was passed; the thread-scaling floor cannot be enforced here"
            );
            std::process::exit(1);
        }
    }
    let mut out = format!(
        "{{\n  \"bench\": \"engine\",\n  \"host_cpus\": {host_cpus},\n  \"workloads\": [\n"
    );
    json_workload(&mut out, "ring64_idle_dominated", &ring_naive, &ring_event);
    json_workload(
        &mut out,
        "exchange64_load_dominated",
        &exch_naive,
        &exch_event,
    );
    // The replay-capture row reuses the workload schema with
    // "uncaptured"/"captured" in place of "naive"/"event"; the gate's
    // parser keys on "name"/"cycles_per_sec"/"speedup" only, and the
    // "speedup" here is the capture-on/capture-off throughput ratio.
    let capture_ratio = exch_captured.cycles_per_sec() / exch_event.cycles_per_sec();
    let _ = writeln!(
        out,
        "    {{\n      \"name\": \"exchange64_replay_capture\",\n      \"cycles\": {},\n      \"uncaptured\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n      \"captured\": {{ \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.0} }},\n      \"speedup\": {:.2}\n    }},",
        exch_captured.cycles,
        exch_event.wall_secs,
        exch_event.cycles_per_sec(),
        exch_captured.wall_secs,
        exch_captured.cycles_per_sec(),
        capture_ratio,
    );
    println!(
        "exchange64_replay_capture uncaptured {:>10.0} cyc/s   captured {:>10.0} cyc/s   ratio {capture_ratio:.2}x",
        exch_event.cycles_per_sec(),
        exch_captured.cycles_per_sec(),
    );
    // Strip the trailing comma to keep the JSON valid.
    let trimmed = out.trim_end_matches(",\n").to_string();
    let mut body = format!("{trimmed}\n  ]");
    if trace {
        let (traced, trace_hash) = run_traced(ring_program(ring_rounds), ring_nodes, 500_000_000);
        assert_eq!(
            traced.cycles, ring_event.cycles,
            "tracing must not change the quiescence cycle"
        );
        let overhead = ring_event.cycles_per_sec() / traced.cycles_per_sec() - 1.0;
        println!(
            "ring64_traced            event {:>12.0} cyc/s   tracing overhead {:.0}%   trace hash {trace_hash:016x}",
            traced.cycles_per_sec(),
            overhead * 100.0,
        );
        let _ = write!(
            body,
            ",\n  \"tracing\": {{ \"workload\": \"ring64_idle_dominated\", \"cycles_per_sec\": {:.0}, \"overhead_vs_untraced\": {:.3}, \"trace_hash\": \"{trace_hash:016x}\" }}",
            traced.cycles_per_sec(),
            overhead,
        );
    }
    if threads {
        let sweep = jm_bench::threads::sweep(exch_nodes, exch_cycles, &[1, 2, 4]);
        print!("{}", jm_bench::threads::render(&sweep));
        let _ = write!(
            body,
            ",\n  \"threads\": {}",
            jm_bench::threads::render_json(&sweep)
        );
        let four = sweep.speedup(4).expect("4-thread point");
        if sweep.host_cpus >= 4 {
            assert!(
                four >= 1.5,
                "4-thread speedup {four:.2}x below the 1.5x floor on a {}-CPU host",
                sweep.host_cpus
            );
        } else {
            // The `::warning::` line renders as a loud annotation on GitHub
            // Actions (and is a harmless log line anywhere else): skipping
            // the floor on an undersized host must never look like a pass.
            println!(
                "::warning title=thread-scaling floor skipped::host has {} CPU(s) (< 4); \
                 the 1.5x 4-thread floor is not enforced ({four:.2}x measured)",
                sweep.host_cpus
            );
            println!(
                "note: host has {} CPU(s); the 1.5x 4-thread floor ({four:.2}x measured) is not enforced",
                sweep.host_cpus
            );
        }
    }
    let body = format!("{body}\n}}\n");
    std::fs::write(&out_path, &body).expect("write BENCH_engine.json");
    println!("wrote {out_path}");

    let speedup = ring_event.cycles_per_sec() / ring_naive.cycles_per_sec();
    assert!(
        speedup >= 2.0,
        "idle-dominated speedup {speedup:.2}x below the 2x acceptance floor"
    );
}
