//! Benchmark regression gate: compares a fresh `engine_perf` run against
//! the committed baseline.
//!
//! Usage: `bench_gate --baseline PATH --current PATH [--tolerance FRAC]
//! [--floor NAME=MIN]... [--floor-margin FRAC]`
//!
//! Both inputs are `BENCH_engine.json` documents. For every workload the
//! gate compares the *speedup* (event engine over naive engine) rather
//! than raw cycles/sec: absolute throughput varies with the host CI
//! machine, but the engines run in the same process on the same host, so
//! their ratio is stable. The gate fails when a workload's speedup drops
//! more than `tolerance` (default 0.30 = 30%) below the baseline, or when
//! a baseline workload disappears.
//!
//! `--floor NAME=MIN` (repeatable) additionally pins an *absolute* speedup
//! wall for one workload, independent of the committed baseline — a
//! ratchet cannot slide below it by re-blessing the baseline. Short CI
//! runs on shared runners jitter by a few percent, so the enforced wall is
//! `MIN * (1 - floor-margin)` (margin default 0.10); the nominal floor is
//! what the log reports against.
//!
//! `--traffic PATH [--traffic-baseline PATH]` extends the gate to
//! `BENCH_traffic.json`: every saturation curve is re-checked for shape
//! (message conservation, weak monotonicity below the knee, bounded
//! degradation past it — the same rules `traffic_sweep` enforces at
//! generation time, so a hand-edited baseline cannot sneak past CI), and
//! with a baseline each pattern's knee throughput is ratcheted. Floors
//! named `traffic:<pattern>` pin absolute knee-throughput walls
//! (flits/node/cycle) through the same `--floor` machinery.

use std::process::ExitCode;

/// One workload's numbers pulled from a `BENCH_engine.json` document.
#[derive(Debug, Clone, PartialEq)]
struct Workload {
    name: String,
    naive_cps: f64,
    event_cps: f64,
    speedup: f64,
}

/// Extracts the string value following `"key":` at/after `from`.
fn string_field(doc: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let pat = format!("\"{key}\"");
    let k = doc[from..].find(&pat)? + from + pat.len();
    let open = doc[k..].find('"')? + k + 1;
    let close = doc[open..].find('"')? + open;
    Some((doc[open..close].to_string(), close))
}

/// Extracts the numeric value following `"key":` at/after `from`.
fn number_field(doc: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\"");
    let k = doc[from..].find(&pat)? + from + pat.len();
    let colon = doc[k..].find(':')? + k + 1;
    let rest = &doc[colon..];
    let start = colon + rest.len() - rest.trim_start().len();
    let end = doc[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))?
        + start;
    doc[start..end].parse().ok().map(|v| (v, end))
}

/// Parses every workload entry out of a `BENCH_engine.json` document.
/// Hand-rolled to match the hand-rolled writer in `engine_perf` — the
/// workspace deliberately has no JSON dependency.
fn parse(doc: &str) -> Vec<Workload> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some((name, next)) = string_field(doc, "name", at) {
        at = next;
        let Some((naive_cps, next)) = number_field(doc, "cycles_per_sec", at) else {
            break;
        };
        at = next;
        let Some((event_cps, next)) = number_field(doc, "cycles_per_sec", at) else {
            break;
        };
        at = next;
        let Some((speedup, next)) = number_field(doc, "speedup", at) else {
            break;
        };
        at = next;
        out.push(Workload {
            name,
            naive_cps,
            event_cps,
            speedup,
        });
    }
    out
}

/// One thread-sweep run pulled from a document's `"threads"` section.
#[derive(Debug, Clone, PartialEq)]
struct ThreadRow {
    label: String,
    vs_event: f64,
    oversubscribed: bool,
}

/// Extracts the boolean value following `"key":` at/after `from`, returning
/// the key's position so callers can bound it to the current record.
fn bool_field(doc: &str, key: &str, from: usize) -> Option<(bool, usize)> {
    let pat = format!("\"{key}\"");
    let k = doc[from..].find(&pat)? + from;
    let colon = doc[k + pat.len()..].find(':')? + k + pat.len() + 1;
    let rest = doc[colon..].trim_start();
    if rest.starts_with("true") {
        Some((true, k))
    } else if rest.starts_with("false") {
        Some((false, k))
    } else {
        None
    }
}

/// Parses the thread-sweep rows (`"label"`-keyed, so the workload parser
/// above never sees them). Rows predating the `oversubscribed` stamp are
/// treated as oversubscribed — unratchetable — rather than guessed at:
/// exactly the bug this stamp exists to fix was unmarked rows from a
/// 1-CPU host reading as real scaling data.
fn parse_threads(doc: &str) -> Vec<ThreadRow> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some((label, next)) = string_field(doc, "label", at) {
        at = next;
        let Some((vs_event, next)) = number_field(doc, "vs_event", at) else {
            break;
        };
        at = next;
        let next_label = doc[at..].find("\"label\"").map_or(doc.len(), |p| p + at);
        let oversubscribed = match bool_field(doc, "oversubscribed", at) {
            Some((v, pos)) if pos < next_label => v,
            _ => true,
        };
        out.push(ThreadRow {
            label,
            vs_event,
            oversubscribed,
        });
    }
    out
}

/// One load point pulled from a `BENCH_traffic.json` curve.
#[derive(Debug, Clone, PartialEq)]
struct TrafficRow {
    load_ppm: f64,
    offered: f64,
    accepted: f64,
    dropped: f64,
    throughput: f64,
}

impl TrafficRow {
    fn accept_ratio(&self) -> f64 {
        if self.offered == 0.0 {
            1.0
        } else {
            self.accepted / self.offered
        }
    }
}

/// One pattern's saturation curve pulled from `BENCH_traffic.json`.
#[derive(Debug, Clone, PartialEq)]
struct TrafficCurve {
    pattern: String,
    knee_ppm: f64,
    knee_throughput: f64,
    points: Vec<TrafficRow>,
}

/// Parses the `"pattern"`-keyed curves of a `BENCH_traffic.json` document
/// (a key the workload and thread parsers never look for, and vice versa).
fn parse_traffic(doc: &str) -> Vec<TrafficCurve> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some((pattern, next)) = string_field(doc, "pattern", at) {
        at = next;
        let Some((knee_ppm, next)) = number_field(doc, "knee_ppm", at) else {
            break;
        };
        at = next;
        let Some((knee_throughput, next)) = number_field(doc, "knee_throughput", at) else {
            break;
        };
        at = next;
        // Points belong to this curve only up to the next "pattern" key.
        let section_end = doc[at..].find("\"pattern\"").map_or(doc.len(), |p| p + at);
        let section = &doc[at..section_end];
        let mut points = Vec::new();
        let mut sat = 0;
        while let Some((load_ppm, next)) = number_field(section, "load_ppm", sat) {
            sat = next;
            let fields = (
                number_field(section, "offered_msgs", sat),
                number_field(section, "accepted_msgs", sat),
                number_field(section, "dropped_msgs", sat),
                number_field(section, "throughput", sat),
            );
            let (
                Some((offered, _)),
                Some((accepted, _)),
                Some((dropped, _)),
                Some((throughput, t)),
            ) = fields
            else {
                break;
            };
            sat = t;
            points.push(TrafficRow {
                load_ppm,
                offered,
                accepted,
                dropped,
                throughput,
            });
        }
        out.push(TrafficCurve {
            pattern,
            knee_ppm,
            knee_throughput,
            points,
        });
    }
    out
}

/// Re-checks one curve's shape with the generation-time rules of
/// `jm_bench::traffic`. Returns every violation found.
fn check_traffic_curve(curve: &TrafficCurve) -> Vec<String> {
    use jm_bench::traffic::{COLLAPSE_FLOOR, KNEE_ACCEPT_RATIO, POST_SAT_SLACK, SLACK};
    let label = &curve.pattern;
    let mut bad = Vec::new();
    if curve.points.is_empty() {
        bad.push(format!("{label}: curve has no points"));
    }
    for p in &curve.points {
        if p.offered != p.accepted + p.dropped {
            bad.push(format!(
                "{label}: offered {} != accepted {} + dropped {} at {} ppm",
                p.offered, p.accepted, p.dropped, p.load_ppm
            ));
        }
    }
    let mut peak = 0.0_f64;
    for pair in curve.points.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if hi.offered < lo.offered {
            bad.push(format!(
                "{label}: offered load fell with the ladder at {} ppm",
                hi.load_ppm
            ));
        }
        let slack = if lo.accept_ratio() >= KNEE_ACCEPT_RATIO {
            SLACK
        } else {
            POST_SAT_SLACK
        };
        if hi.throughput < lo.throughput * (1.0 - slack) {
            bad.push(format!(
                "{label}: accepted throughput fell: {:.4} f/n/c at {} ppm vs {:.4} at {} ppm",
                hi.throughput, hi.load_ppm, lo.throughput, lo.load_ppm
            ));
        }
    }
    for p in &curve.points {
        if p.accept_ratio() < KNEE_ACCEPT_RATIO && p.throughput < peak * COLLAPSE_FLOOR {
            bad.push(format!(
                "{label}: post-saturation throughput collapsed: {:.4} f/n/c at {} ppm vs peak {peak:.4}",
                p.throughput, p.load_ppm
            ));
        }
        peak = peak.max(p.throughput);
    }
    bad
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Collects every `--floor NAME=MIN` pair from the command line.
fn floors(args: &[String]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--floor" {
            let spec = args.get(i + 1).expect("--floor takes NAME=MIN");
            let (name, min) = spec.split_once('=').expect("--floor takes NAME=MIN");
            out.push((
                name.to_string(),
                min.parse().expect("--floor minimum must be a number"),
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = arg(&args, "--baseline").unwrap_or_else(|| "BENCH_engine.json".into());
    let current_path = arg(&args, "--current").expect("--current PATH is required");
    let tolerance: f64 = arg(&args, "--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a fraction"))
        .unwrap_or(0.30);
    let floor_margin: f64 = arg(&args, "--floor-margin")
        .map(|v| v.parse().expect("--floor-margin takes a fraction"))
        .unwrap_or(0.10);

    let baseline_doc = std::fs::read_to_string(&baseline_path).expect("read baseline");
    let current_doc = std::fs::read_to_string(&current_path).expect("read current");
    let baseline = parse(&baseline_doc);
    let current = parse(&current_doc);
    assert!(!baseline.is_empty(), "no workloads in {baseline_path}");

    let mut failed = false;
    for base in &baseline {
        let Some(cur) = current.iter().find(|w| w.name == base.name) else {
            eprintln!("[FAIL] {}: missing from {current_path}", base.name);
            failed = true;
            continue;
        };
        let floor = base.speedup * (1.0 - tolerance);
        let ok = cur.speedup >= floor;
        println!(
            "[{}] {:<28} speedup {:.2}x (baseline {:.2}x, floor {:.2}x)  \
             naive {:.0} cyc/s  event {:.0} cyc/s",
            if ok { "ok" } else { "FAIL" },
            cur.name,
            cur.speedup,
            base.speedup,
            floor,
            cur.naive_cps,
            cur.event_cps,
        );
        failed |= !ok;
    }
    // Thread-scaling ratchet: compare `vs_event` per engine label, but only
    // between runs where the thread count fit the host — an oversubscribed
    // row (stamped, or predating the stamp) measures scheduler pressure,
    // not scaling, on either side of the comparison.
    for base in &parse_threads(&baseline_doc) {
        if base.oversubscribed {
            println!(
                "[skip] threads/{:<20} baseline row is oversubscribed (not scaling data)",
                base.label
            );
            continue;
        }
        let cur_rows = parse_threads(&current_doc);
        let Some(cur) = cur_rows.iter().find(|r| r.label == base.label) else {
            eprintln!("[FAIL] threads/{}: missing from {current_path}", base.label);
            failed = true;
            continue;
        };
        if cur.oversubscribed {
            println!(
                "[skip] threads/{:<20} current row is oversubscribed (host too small to compare)",
                cur.label
            );
            continue;
        }
        let floor = base.vs_event * (1.0 - tolerance);
        let ok = cur.vs_event >= floor;
        println!(
            "[{}] threads/{:<20} vs_event {:.2}x (baseline {:.2}x, floor {:.2}x)",
            if ok { "ok" } else { "FAIL" },
            cur.label,
            cur.vs_event,
            base.vs_event,
            floor,
        );
        failed |= !ok;
    }
    for (name, min) in floors(&args)
        .iter()
        .filter(|(n, _)| !n.starts_with("traffic:"))
    {
        let Some(cur) = current.iter().find(|w| &w.name == name) else {
            eprintln!("[FAIL] {name}: floor named a workload missing from {current_path}");
            failed = true;
            continue;
        };
        let wall = min * (1.0 - floor_margin);
        let ok = cur.speedup >= wall;
        println!(
            "[{}] {:<28} speedup {:.2}x vs absolute floor {:.2}x (enforced at {:.2}x)",
            if ok { "ok" } else { "FAIL" },
            cur.name,
            cur.speedup,
            min,
            wall,
        );
        failed |= !ok;
    }
    // Traffic saturation-curve gate: shape re-check, optional knee
    // ratchet against a committed baseline, and absolute knee floors.
    if let Some(traffic_path) = arg(&args, "--traffic") {
        let traffic_doc = std::fs::read_to_string(&traffic_path).expect("read traffic current");
        let curves = parse_traffic(&traffic_doc);
        assert!(!curves.is_empty(), "no curves in {traffic_path}");
        for curve in &curves {
            let bad = check_traffic_curve(curve);
            println!(
                "[{}] traffic/{:<20} shape (knee {} ppm, {:.4} f/n/c)",
                if bad.is_empty() { "ok" } else { "FAIL" },
                curve.pattern,
                curve.knee_ppm,
                curve.knee_throughput,
            );
            for v in &bad {
                eprintln!("       {v}");
            }
            failed |= !bad.is_empty();
        }
        if let Some(base_path) = arg(&args, "--traffic-baseline") {
            let base_doc = std::fs::read_to_string(&base_path).expect("read traffic baseline");
            for base in &parse_traffic(&base_doc) {
                let Some(cur) = curves.iter().find(|c| c.pattern == base.pattern) else {
                    eprintln!(
                        "[FAIL] traffic/{}: missing from {traffic_path}",
                        base.pattern
                    );
                    failed = true;
                    continue;
                };
                let floor = base.knee_throughput * (1.0 - tolerance);
                let ok = cur.knee_throughput >= floor;
                println!(
                    "[{}] traffic/{:<20} knee {:.4} f/n/c (baseline {:.4}, floor {:.4})",
                    if ok { "ok" } else { "FAIL" },
                    cur.pattern,
                    cur.knee_throughput,
                    base.knee_throughput,
                    floor,
                );
                failed |= !ok;
            }
        }
        for (name, min) in floors(&args)
            .iter()
            .filter(|(n, _)| n.starts_with("traffic:"))
        {
            let pattern = &name["traffic:".len()..];
            let Some(cur) = curves.iter().find(|c| c.pattern == pattern) else {
                eprintln!("[FAIL] {name}: floor named a pattern missing from {traffic_path}");
                failed = true;
                continue;
            };
            let wall = min * (1.0 - floor_margin);
            let ok = cur.knee_throughput >= wall;
            println!(
                "[{}] traffic/{:<20} knee {:.4} f/n/c vs absolute floor {:.4} (enforced at {:.4})",
                if ok { "ok" } else { "FAIL" },
                cur.pattern,
                cur.knee_throughput,
                min,
                wall,
            );
            failed |= !ok;
        }
    }
    if failed {
        eprintln!(
            "benchmark regression gate FAILED (tolerance {:.0}%)",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("benchmark gate passed ({} workloads)", baseline.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "engine",
  "workloads": [
    {
      "name": "ring64_idle_dominated",
      "cycles": 100,
      "naive": { "wall_secs": 1.0, "cycles_per_sec": 100 },
      "event": { "wall_secs": 0.1, "cycles_per_sec": 1000 },
      "speedup": 10.00
    },
    {
      "name": "exchange64_load_dominated",
      "cycles": 100,
      "naive": { "wall_secs": 1.0, "cycles_per_sec": 500 },
      "event": { "wall_secs": 1.0, "cycles_per_sec": 450 },
      "speedup": 0.90
    }
  ]
}
"#;

    #[test]
    fn parses_both_workloads() {
        let ws = parse(DOC);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].name, "ring64_idle_dominated");
        assert_eq!(ws[0].naive_cps, 100.0);
        assert_eq!(ws[0].event_cps, 1000.0);
        assert_eq!(ws[0].speedup, 10.0);
        assert_eq!(ws[1].name, "exchange64_load_dominated");
        assert_eq!(ws[1].speedup, 0.90);
    }

    const THREADS_DOC: &str = r#"{
  "threads": {
    "workload": "exchange64_load_dominated",
    "host_cpus": 4,
    "runs": [
      { "label": "event", "threads": 0, "wall_secs": 1.0, "cyc_per_sec": 1000, "vs_event": 1.00, "oversubscribed": false },
      { "label": "parallel-4", "threads": 4, "wall_secs": 0.4, "cyc_per_sec": 2500, "vs_event": 2.50, "oversubscribed": false },
      { "label": "parallel-8", "threads": 8, "wall_secs": 0.5, "cyc_per_sec": 2000, "vs_event": 2.00, "oversubscribed": true }
    ]
  }
}
"#;

    #[test]
    fn parses_thread_rows_with_oversubscription_stamp() {
        let rows = parse_threads(THREADS_DOC);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "event");
        assert!(!rows[0].oversubscribed);
        assert_eq!(rows[1].vs_event, 2.50);
        assert!(!rows[1].oversubscribed);
        assert!(rows[2].oversubscribed);
        // Workload parser must not trip over the threads section.
        assert!(parse(THREADS_DOC).is_empty());
    }

    #[test]
    fn unstamped_thread_rows_are_treated_as_oversubscribed() {
        // A pre-stamp document (like the committed 1-CPU baseline rows the
        // issue calls out) must not ratchet as if it were scaling data.
        let doc = r#"{ "runs": [
          { "label": "parallel-4", "wall_secs": 1.0, "cyc_per_sec": 270, "vs_event": 0.27 }
        ] }"#;
        let rows = parse_threads(doc);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].oversubscribed);
    }

    const TRAFFIC_DOC: &str = r#"{
  "seed": 7,
  "curves": [
    {"pattern": "uniform_random",
     "knee_ppm": 300000,
     "knee_throughput": 0.302200,
     "points": [
       {"load_ppm": 50000, "offered_msgs": 1579, "accepted_msgs": 1579, "dropped_msgs": 0, "delivered_msgs": 1579, "throughput": 0.049300, "latency_mean": 10.8, "latency_p50": 15, "latency_p99": 31, "latency_max": 35, "latency_count": 1579},
       {"load_ppm": 900000, "offered_msgs": 28894, "accepted_msgs": 14442, "dropped_msgs": 14452, "delivered_msgs": 14442, "throughput": 0.451300, "latency_mean": 148.0, "latency_p50": 127, "latency_p99": 511, "latency_max": 790, "latency_count": 14442}
     ]},
    {"pattern": "hotspot",
     "knee_ppm": 50000,
     "knee_throughput": 0.049200,
     "points": [
       {"load_ppm": 50000, "offered_msgs": 1579, "accepted_msgs": 1575, "dropped_msgs": 4, "delivered_msgs": 1575, "throughput": 0.049200, "latency_mean": 502.4, "latency_p50": 255, "latency_p99": 4095, "latency_max": 4582, "latency_count": 1575}
     ]}
  ]
}
"#;

    #[test]
    fn parses_traffic_curves_with_points_bounded_per_curve() {
        let curves = parse_traffic(TRAFFIC_DOC);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].pattern, "uniform_random");
        assert_eq!(curves[0].knee_ppm, 300_000.0);
        assert_eq!(curves[0].points.len(), 2);
        assert_eq!(curves[0].points[1].dropped, 14_452.0);
        assert_eq!(curves[1].pattern, "hotspot");
        assert_eq!(curves[1].points.len(), 1);
        // The other parsers must not trip over the traffic document.
        assert!(parse(TRAFFIC_DOC).is_empty());
        assert!(parse_threads(TRAFFIC_DOC).is_empty());
        // Shape rules hold on the real-sweep excerpt.
        for curve in &curves {
            assert!(check_traffic_curve(curve).is_empty(), "{curve:?}");
        }
    }

    #[test]
    fn traffic_shape_check_flags_violations() {
        let falling = TrafficCurve {
            pattern: "transpose".into(),
            knee_ppm: 100_000.0,
            knee_throughput: 0.1,
            points: vec![
                TrafficRow {
                    load_ppm: 50_000.0,
                    offered: 1000.0,
                    accepted: 1000.0,
                    dropped: 0.0,
                    throughput: 0.10,
                },
                TrafficRow {
                    load_ppm: 100_000.0,
                    offered: 2000.0,
                    accepted: 900.0,
                    dropped: 1000.0, // 900 + 1000 != 2000: conservation too
                    throughput: 0.05,
                },
            ],
        };
        let bad = check_traffic_curve(&falling);
        assert!(bad.iter().any(|v| v.contains("throughput fell")), "{bad:?}");
        assert!(bad.iter().any(|v| v.contains("offered")), "{bad:?}");
    }

    #[test]
    fn parses_repeated_floor_flags() {
        let args: Vec<String> = [
            "--floor",
            "exchange64_load_dominated=1.0",
            "--tolerance",
            "0.30",
            "--floor",
            "ring64_idle_dominated=2.5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let fs = floors(&args);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0], ("exchange64_load_dominated".to_string(), 1.0));
        assert_eq!(fs[1], ("ring64_idle_dominated".to_string(), 2.5));
    }
}
