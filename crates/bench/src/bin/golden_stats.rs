//! Golden-statistics gate: regenerates the headline paper metrics and
//! diffs them against the committed `tests/golden/stats.json`.
//!
//! Usage: `golden_stats [--check | --bless] [--path PATH]`
//!
//! The simulator is deterministic, so the golden metrics are exact: Figure
//! 2's fitted slope and zero-distance intercept per curve, Table 1's
//! one-way overhead, and Table 3's barrier cycles at 2/8/64 nodes. Any
//! drift — an ISA-timing tweak, a router change, a queue-policy edit —
//! shows up as a diff here long before it distorts a whole figure.
//! `--bless` rewrites the golden file after an intentional change;
//! `--check` (the default) fails with a field-by-field diff.

use jm_bench::micro;
use std::fmt::Write as _;
use std::process::ExitCode;

const DEFAULT_PATH: &str = "tests/golden/stats.json";
const FIG2_NODES: u32 = 64;
const BARRIER_SIZES: [u32; 3] = [2, 8, 64];
const BARRIER_ROUNDS: u32 = 8;

/// Regenerates the golden JSON document (exact, fixed-precision floats).
fn generate() -> String {
    let curves = micro::latency::measure(FIG2_NODES).expect("fig2");
    let overhead = micro::overhead::measure().expect("table1");
    let barrier = micro::barrier::measure(&BARRIER_SIZES, BARRIER_ROUNDS).expect("table3");

    let mut out = String::from("{\n  \"golden\": \"stats\",\n");
    let _ = writeln!(out, "  \"fig2_nodes\": {FIG2_NODES},");
    out.push_str("  \"fig2\": [\n");
    for (i, c) in curves.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"curve\": \"{}\", \"slope\": {:.4}, \"base\": {:.4} }}{}",
            c.kind.name(),
            c.slope(),
            c.base(),
            if i + 1 < curves.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"table1\": {{ \"cycles_per_msg\": {:.4}, \"cycles_per_byte\": {:.4} }},",
        overhead.cycles_per_msg, overhead.cycles_per_byte
    );
    out.push_str("  \"table3\": [\n");
    for (i, p) in barrier.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"nodes\": {}, \"cycles\": {:.4} }}{}",
            p.nodes,
            p.cycles,
            if i + 1 < barrier.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let path = args
        .iter()
        .position(|a| a == "--path")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| DEFAULT_PATH.to_string());

    let fresh = generate();
    if bless {
        std::fs::write(&path, &fresh).expect("write golden stats");
        println!("blessed {path}");
        return ExitCode::SUCCESS;
    }

    let committed = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}\nrun `golden_stats --bless` to create it");
            return ExitCode::FAILURE;
        }
    };
    if committed == fresh {
        println!("golden stats match {path}");
        return ExitCode::SUCCESS;
    }
    eprintln!("golden stats DIFFER from {path}:");
    for (i, (want, got)) in committed.lines().zip(fresh.lines()).enumerate() {
        if want != got {
            eprintln!(
                "  line {}:\n    committed: {want}\n    measured:  {got}",
                i + 1
            );
        }
    }
    let (a, b) = (committed.lines().count(), fresh.lines().count());
    if a != b {
        eprintln!("  line counts differ: committed {a}, measured {b}");
    }
    eprintln!("if the change is intentional, re-bless with `golden_stats --bless`");
    ExitCode::FAILURE
}
