//! Reproduces Table 1: one-way message overhead.

fn main() {
    let measured = jm_bench::micro::overhead::measure().expect("table1 run");
    print!("{}", jm_bench::micro::overhead::render(&measured));
}
