//! Reproduces Figure 5: application speedup vs machine size.
//!
//! Usage: `fig5_speedup [max_nodes]` (default 64; the paper runs to 512 —
//! pass 256 or 512 for the longer sweep).

fn main() {
    let max: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let sizes: Vec<u32> = (0..=9).map(|k| 1u32 << k).filter(|&n| n <= max).collect();
    let problems = jm_bench::macrob::Problems::evaluation();
    let results = jm_bench::macrob::fig5(&sizes, &problems).expect("fig5 run");
    print!("{}", jm_bench::macrob::render_fig5(&results));
}
