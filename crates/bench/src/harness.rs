//! A minimal self-timed benchmark harness.
//!
//! The workspace builds hermetically (no registry access), so `criterion`
//! is out; this module provides the small slice of it the benches need:
//! warmup, repeated timed runs, and a median-of-samples report. Use it from
//! a `harness = false` bench target or a binary.

use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Iterations per timed sample.
    pub iters: u32,
}

impl Sample {
    /// Nanoseconds per iteration (median).
    pub fn nanos_per_iter(&self) -> f64 {
        self.median.as_nanos() as f64 / f64::from(self.iters)
    }
}

/// Times `f`, calling it in batches of `iters`, for `samples` samples after
/// one warmup batch. Reports the per-iteration median and minimum.
pub fn bench<F: FnMut()>(name: &str, iters: u32, samples: u32, mut f: F) -> Sample {
    for _ in 0..iters {
        f(); // warmup batch
    }
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed()
        })
        .collect();
    times.sort();
    let sample = Sample {
        name: name.to_string(),
        median: times[times.len() / 2],
        min: times[0],
        iters,
    };
    println!(
        "{:<40} {:>12.1} ns/iter (min {:.1})",
        sample.name,
        sample.nanos_per_iter(),
        sample.min.as_nanos() as f64 / f64::from(sample.iters),
    );
    sample
}

/// Times a single run of `f` (for whole-workload measurements), returning
/// the wall-clock duration and the closure's output.
pub fn time_once<T, F: FnOnce() -> T>(f: F) -> (Duration, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Peak resident set size of this process in MiB (0 when unavailable —
/// `/proc` is Linux-only). Recorded in nightly digest artifacts so a
/// workload's memory footprint stays visible run over run.
pub fn peak_rss_mib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib / 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_positive_times() {
        let s = bench("spin", 10, 3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(s.nanos_per_iter() > 0.0);
        assert!(s.min <= s.median);
    }

    #[test]
    fn time_once_returns_output() {
        let (d, v) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
