//! Degradation sweeps under deterministic fault injection.
//!
//! Three curves, all driven by seeded `jm-fault` plans so every point is
//! reproducible bit-for-bit on any engine:
//!
//! * **Goodput vs. flaky-link rate** — a raw 32-node network under
//!   saturating uniform-random traffic; goodput is delivered words per
//!   cycle and must fall (weakly) as the per-port-cycle block probability
//!   rises.
//! * **Completion-cycle inflation vs. flaky-link rate** — the LCS
//!   application end to end; delay faults are lossless backpressure, so
//!   the answer stays exact while time-to-solution stretches.
//! * **Retry cost vs. corruption rate** — the reliable-RPC demo from
//!   `jm_runtime::reliable`; corrupted messages are dropped whole at
//!   dispatch and the watchdog resends, so the counter stays exact while
//!   retries and dropped messages climb.
//!
//! The `fault_sweep` binary renders these as tables, gates on weak
//! monotonicity, and emits `BENCH_fault.json`.

use std::fmt::Write as _;

use jm_apps::lcs;
use jm_fault::{FaultPlan, FaultSpec};
use jm_isa::consts::FaultKind;
use jm_isa::instr::MsgPriority;
use jm_isa::node::{MeshDims, NodeId, RouteWord};
use jm_isa::word::{MsgHeader, Word};
use jm_machine::{JMachine, MachineConfig};
use jm_net::{InjectResult, NetConfig, Network};
use jm_prng::Prng;
use jm_runtime::reliable;

/// Flaky-link rates swept (parts per million per port-cycle draw).
pub const FLAKY_PPM: [u32; 5] = [0, 20_000, 50_000, 100_000, 200_000];

/// Flaky-link rates for the LCS completion-time sweep. The systolic
/// pipeline hides link delay until the blocked link becomes the
/// throughput bottleneck, so this ladder reaches much higher than
/// [`FLAKY_PPM`] to show the knee of the curve.
pub const LCS_FLAKY_PPM: [u32; 5] = [0, 400_000, 600_000, 800_000, 900_000];

/// Payload-corruption rates swept (parts per million per ejected word).
pub const CORRUPT_PPM: [u32; 4] = [0, 10_000, 30_000, 60_000];

/// Relative slack for the weak-monotonicity gates: simulation noise from
/// routing perturbation may wiggle a point by a percent or two without
/// the curve being wrong.
pub const SLACK: f64 = 0.02;

/// One point of the raw-network goodput curve.
#[derive(Debug, Clone, Copy)]
pub struct GoodputPoint {
    /// Flaky-link block probability, parts per million.
    pub flaky_ppm: u32,
    /// Payload words delivered within the cycle budget.
    pub delivered_words: u64,
    /// Whole messages delivered within the cycle budget.
    pub delivered_msgs: u64,
    /// Channel moves suppressed by the fault plan.
    pub blocked_moves: u64,
    /// The fixed cycle budget.
    pub cycles: u64,
}

impl GoodputPoint {
    /// Goodput: delivered payload words per network cycle.
    pub fn words_per_cycle(&self) -> f64 {
        self.delivered_words as f64 / self.cycles as f64
    }
}

/// One point of the LCS completion-time curve.
#[derive(Debug, Clone, Copy)]
pub struct InflationPoint {
    /// Flaky-link block probability, parts per million.
    pub flaky_ppm: u32,
    /// Cycles to quiescence (answer validated against the host).
    pub cycles: u64,
    /// Channel moves suppressed by the fault plan.
    pub blocked_moves: u64,
}

/// One point of the reliable-RPC retry curve.
#[derive(Debug, Clone, Copy)]
pub struct RpcPoint {
    /// Payload-corruption probability, parts per million.
    pub corrupt_ppm: u32,
    /// Cycles to quiescence (counter validated exact).
    pub cycles: u64,
    /// Watchdog-triggered resends observed at the client.
    pub retries: i64,
    /// Messages dropped whole by checksum validation.
    pub dropped: u64,
    /// Words the fault plan corrupted at ejection.
    pub corrupted_words: u64,
}

/// The three curves of one sweep, plus the seed that produced them.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Fault-plan seed all three curves share.
    pub seed: u64,
    /// Raw-network goodput curve.
    pub goodput: Vec<GoodputPoint>,
    /// LCS completion-time curve.
    pub lcs: Vec<InflationPoint>,
    /// Reliable-RPC retry curve.
    pub rpc: Vec<RpcPoint>,
}

/// Measures raw-network goodput under saturating uniform-random traffic
/// for each rate in [`FLAKY_PPM`].
///
/// Every node keeps one 4-word message (plus route word) offered to its
/// injection port each cycle, addressed to a PRNG-chosen other node, and
/// drains its ejection FIFO as fast as words arrive. The offered load is
/// far past saturation, so delivered words per cycle measures the
/// network's remaining capacity under the fault plan.
pub fn goodput_sweep(seed: u64, cycles: u64) -> Vec<GoodputPoint> {
    FLAKY_PPM
        .iter()
        .map(|&ppm| goodput_point(seed, ppm, cycles))
        .collect()
}

fn goodput_point(seed: u64, flaky_ppm: u32, cycles: u64) -> GoodputPoint {
    let dims = MeshDims::new(4, 4, 2);
    let nodes = dims.nodes();
    let mut net = Network::new(NetConfig::new(dims));
    net.set_fault_plan(FaultPlan::from_spec(FaultSpec::new(seed).flaky(flaky_ppm)));

    // Per-node source state: a PRNG for destinations and the message
    // currently being offered (committed atomically, retried on stall).
    let mut rngs: Vec<Prng> = (0..nodes)
        .map(|n| Prng::from_label("goodput", seed ^ u64::from(n)))
        .collect();
    let mut pending: Vec<Vec<Word>> = (0..nodes)
        .map(|n| next_msg(&mut rngs[n as usize], dims, n))
        .collect();

    for _ in 0..cycles {
        for n in 0..nodes {
            let node = NodeId(n);
            match net.commit_msg(node, MsgPriority::P0, &pending[n as usize]) {
                InjectResult::Accepted => {
                    pending[n as usize] = next_msg(&mut rngs[n as usize], dims, n);
                }
                InjectResult::Stall => {}
                InjectResult::BadRoute => unreachable!("generator picks in-mesh nodes"),
            }
            while net.pop_delivered(node, MsgPriority::P0).is_some() {}
        }
        net.step();
    }
    let stats = net.stats();
    GoodputPoint {
        flaky_ppm,
        delivered_words: stats.delivered_words,
        delivered_msgs: stats.delivered_msgs,
        blocked_moves: stats.faults.blocked_moves,
        cycles,
    }
}

/// A fresh 4-word message (route + header + 3 payload words) to a
/// uniform-random other node.
fn next_msg(rng: &mut Prng, dims: MeshDims, from: u32) -> Vec<Word> {
    let nodes = dims.nodes();
    let mut dest = rng.range_u32(0, nodes - 1);
    if dest >= from {
        dest += 1; // uniform over the other nodes
    }
    vec![
        RouteWord::new(dims.coord(NodeId(dest))).to_word(),
        MsgHeader::new(1, 4).to_word(),
        Word::int(from as i32),
        Word::int(rng.range_i32(0, 1 << 20)),
        Word::int(rng.range_i32(0, 1 << 20)),
    ]
}

/// Runs LCS end to end for each rate in [`LCS_FLAKY_PPM`] and records
/// time-to-solution. The plan is delay-only plus checksum trailers (so
/// the wire format matches the chaos runs); the app's internal assert
/// guarantees the answer stayed exact at every point.
pub fn lcs_sweep(seed: u64) -> Vec<InflationPoint> {
    // One character per node: the handler does almost no arithmetic, so
    // the systolic forwarding chain is latency-bound and link faults land
    // on the critical path instead of hiding behind compute.
    let cfg = lcs::LcsConfig {
        a_len: 8,
        b_len: 512,
        seed: 0x1c5,
        alphabet: 4,
    };
    LCS_FLAKY_PPM
        .iter()
        .map(|&ppm| {
            let spec = FaultSpec::new(seed).flaky(ppm).checksums(true);
            let run = lcs::run_on(MachineConfig::new(8).fault(spec), &cfg, 4_000_000_000)
                .expect("LCS completes under delay faults");
            InflationPoint {
                flaky_ppm: ppm,
                cycles: run.cycles,
                blocked_moves: run.stats.net.faults.blocked_moves,
            }
        })
        .collect()
}

/// Runs the reliable-RPC demo for each rate in [`CORRUPT_PPM`] and
/// records the retry cost. Panics if the replicated counter is not exact
/// — that would mean lost or double-applied increments.
pub fn rpc_sweep(seed: u64) -> Vec<RpcPoint> {
    const CALLS: i32 = 6;
    CORRUPT_PPM
        .iter()
        .map(|&ppm| {
            let p = reliable::demo_program(CALLS, 7);
            let count = p.segment(reliable::COUNT);
            let retries = p.segment(reliable::RETRIES);
            let spec = FaultSpec::new(seed).corrupt(ppm).checksums(true);
            let mut m = JMachine::new(p, MachineConfig::new(8).fault(spec));
            let cycles = m
                .run_until_quiescent(50_000_000)
                .expect("reliable RPC completes under corruption");
            let got = m.read_word(NodeId(7), count.base).as_i32();
            assert_eq!(got, CALLS, "counter drifted at {ppm} ppm corruption");
            let stats = m.stats();
            RpcPoint {
                corrupt_ppm: ppm,
                cycles,
                retries: i64::from(m.read_word(NodeId(0), retries.base).as_i32()),
                dropped: stats.nodes.faults[FaultKind::CorruptMessage.vector() as usize],
                corrupted_words: stats.net.faults.corrupted_words,
            }
        })
        .collect()
}

/// Runs all three sweeps with one seed.
pub fn sweep(seed: u64, goodput_cycles: u64) -> FaultReport {
    FaultReport {
        seed,
        goodput: goodput_sweep(seed, goodput_cycles),
        lcs: lcs_sweep(seed),
        rpc: rpc_sweep(seed),
    }
}

impl FaultReport {
    /// Checks the degradation curves for weak monotonicity (with
    /// [`SLACK`] relative tolerance): goodput must not rise and LCS
    /// completion time must not fall as the fault rate grows, and the
    /// heaviest corruption point must actually have exercised the retry
    /// path. Returns every violation found.
    pub fn check_monotone(&self) -> Result<(), Vec<String>> {
        let mut bad = Vec::new();
        for pair in self.goodput.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if hi.words_per_cycle() > lo.words_per_cycle() * (1.0 + SLACK) {
                bad.push(format!(
                    "goodput rose with fault rate: {:.4} w/cyc at {} ppm vs {:.4} at {} ppm",
                    hi.words_per_cycle(),
                    hi.flaky_ppm,
                    lo.words_per_cycle(),
                    lo.flaky_ppm
                ));
            }
        }
        for pair in self.lcs.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if (hi.cycles as f64) < lo.cycles as f64 * (1.0 - SLACK) {
                bad.push(format!(
                    "LCS sped up with fault rate: {} cycles at {} ppm vs {} at {} ppm",
                    hi.cycles, hi.flaky_ppm, lo.cycles, lo.flaky_ppm
                ));
            }
        }
        if let Some(last) = self.rpc.last() {
            if last.retries == 0 || last.dropped == 0 {
                bad.push(format!(
                    "corruption at {} ppm exercised no retries ({} drops)",
                    last.corrupt_ppm, last.dropped
                ));
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Deterministic per-point counter lines — the digest source. Every
    /// number here is simulated state, so the digest is identical across
    /// engines and host thread counts.
    pub fn digest_lines(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "seed {}", self.seed);
        for p in &self.goodput {
            let _ = writeln!(
                s,
                "goodput {} {} {} {} {}",
                p.flaky_ppm, p.delivered_words, p.delivered_msgs, p.blocked_moves, p.cycles
            );
        }
        for p in &self.lcs {
            let _ = writeln!(s, "lcs {} {} {}", p.flaky_ppm, p.cycles, p.blocked_moves);
        }
        for p in &self.rpc {
            let _ = writeln!(
                s,
                "rpc {} {} {} {} {}",
                p.corrupt_ppm, p.cycles, p.retries, p.dropped, p.corrupted_words
            );
        }
        s
    }

    /// Renders the three curves as aligned text tables.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "fault degradation sweep (seed {})\n", self.seed);
        let _ = writeln!(
            s,
            "  goodput under flaky links (32-node mesh, saturating uniform-random traffic)"
        );
        let _ = writeln!(
            s,
            "  {:>10} {:>12} {:>10} {:>12} {:>10}",
            "flaky ppm", "words", "msgs", "blocked", "words/cyc"
        );
        for p in &self.goodput {
            let _ = writeln!(
                s,
                "  {:>10} {:>12} {:>10} {:>12} {:>10.4}",
                p.flaky_ppm,
                p.delivered_words,
                p.delivered_msgs,
                p.blocked_moves,
                p.words_per_cycle()
            );
        }
        let _ = writeln!(s, "\n  LCS completion time under flaky links (8 nodes)");
        let base = self.lcs.first().map_or(1, |p| p.cycles).max(1);
        let _ = writeln!(
            s,
            "  {:>10} {:>12} {:>12} {:>10}",
            "flaky ppm", "cycles", "blocked", "inflation"
        );
        for p in &self.lcs {
            let _ = writeln!(
                s,
                "  {:>10} {:>12} {:>12} {:>9.2}x",
                p.flaky_ppm,
                p.cycles,
                p.blocked_moves,
                p.cycles as f64 / base as f64
            );
        }
        let _ = writeln!(
            s,
            "\n  reliable RPC under payload corruption (8 nodes, 6 calls)"
        );
        let _ = writeln!(
            s,
            "  {:>11} {:>12} {:>8} {:>8} {:>10}",
            "corrupt ppm", "cycles", "retries", "drops", "corrupted"
        );
        for p in &self.rpc {
            let _ = writeln!(
                s,
                "  {:>11} {:>12} {:>8} {:>8} {:>10}",
                p.corrupt_ppm, p.cycles, p.retries, p.dropped, p.corrupted_words
            );
        }
        s
    }

    /// Renders `BENCH_fault.json` (hand-rolled; the workspace takes no
    /// serialization dependency).
    pub fn json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        s.push_str("  \"goodput\": [\n");
        for (i, p) in self.goodput.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"flaky_ppm\": {}, \"delivered_words\": {}, \"delivered_msgs\": {}, \
                 \"blocked_moves\": {}, \"cycles\": {}, \"words_per_cycle\": {:.6}}}",
                p.flaky_ppm,
                p.delivered_words,
                p.delivered_msgs,
                p.blocked_moves,
                p.cycles,
                p.words_per_cycle()
            );
            s.push_str(if i + 1 == self.goodput.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ],\n  \"lcs\": [\n");
        let base = self.lcs.first().map_or(1, |p| p.cycles).max(1);
        for (i, p) in self.lcs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"flaky_ppm\": {}, \"cycles\": {}, \"blocked_moves\": {}, \
                 \"inflation\": {:.6}}}",
                p.flaky_ppm,
                p.cycles,
                p.blocked_moves,
                p.cycles as f64 / base as f64
            );
            s.push_str(if i + 1 == self.lcs.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ],\n  \"rpc\": [\n");
        for (i, p) in self.rpc.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"corrupt_ppm\": {}, \"cycles\": {}, \"retries\": {}, \"dropped\": {}, \
                 \"corrupted_words\": {}}}",
                p.corrupt_ppm, p.cycles, p.retries, p.dropped, p.corrupted_words
            );
            s.push_str(if i + 1 == self.rpc.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_degrades_with_fault_rate() {
        let clean = goodput_point(42, 0, 2_000);
        let faulty = goodput_point(42, 200_000, 2_000);
        assert!(clean.delivered_words > 0);
        assert_eq!(clean.blocked_moves, 0);
        assert!(faulty.blocked_moves > 0);
        assert!(
            faulty.words_per_cycle() <= clean.words_per_cycle() * (1.0 + SLACK),
            "goodput did not degrade: clean {:.4}, faulty {:.4}",
            clean.words_per_cycle(),
            faulty.words_per_cycle()
        );
    }

    #[test]
    fn goodput_point_is_deterministic() {
        let a = goodput_point(7, 50_000, 1_000);
        let b = goodput_point(7, 50_000, 1_000);
        assert_eq!(a.delivered_words, b.delivered_words);
        assert_eq!(a.blocked_moves, b.blocked_moves);
    }
}
