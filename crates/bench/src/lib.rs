//! # jm-bench
//!
//! The experiment harness: one module (and one binary) per table and figure
//! of the paper's evaluation. Each experiment builds the measurement
//! program with `jm-asm`/`jm-runtime`, runs it on a simulated machine, and
//! prints the same rows/series the paper reports, alongside the paper's
//! own numbers for comparison.
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`micro::latency`] | Figure 2 — round-trip latency vs. distance |
//! | [`micro::overhead`] | Table 1 — one-way message overhead |
//! | [`micro::load`] | Figure 3 — latency vs. load, efficiency vs. grain |
//! | [`micro::bandwidth`] | Figure 4 — terminal bandwidth vs. message size |
//! | [`micro::sync`] | Table 2 — producer/consumer synchronization |
//! | [`micro::barrier`] | Table 3 — barrier synchronization |
//! | [`macrob`] | Figures 5 & 6, Tables 4 & 5 — the four applications |
//! | [`baselines`] | comparison columns for other machines (published data) |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod faultb;
pub mod harness;
pub mod macrob;
pub mod micro;
pub mod observe;
pub mod table;
pub mod threads;
pub mod traffic;
