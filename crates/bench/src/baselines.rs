//! Comparison machines for Tables 1 and 3.
//!
//! The paper compares the J-Machine against contemporary multicomputers
//! using published measurements (its references [6], [7], [14], [17]).
//! Those machines cannot be rebuilt here, so — per the substitution policy
//! in `DESIGN.md` — each is modelled by the published cost constants; the
//! J-Machine rows of both tables are always *measured* from the simulator,
//! never taken from these constants.

/// A software-messaging overhead model: the two-parameter cost model of
/// Table 1 (fixed per-message overhead plus per-byte injection cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessagingModel {
    /// Machine name as printed.
    pub name: &'static str,
    /// Fixed one-way overhead, microseconds (`T_o`).
    pub us_per_msg: f64,
    /// Per-byte overhead, microseconds (`T_b`).
    pub us_per_byte: f64,
    /// Clock used to convert to cycles in the table.
    pub clock_mhz: f64,
}

impl MessagingModel {
    /// Overhead in cycles per message.
    pub fn cycles_per_msg(&self) -> f64 {
        self.us_per_msg * self.clock_mhz
    }

    /// Overhead in cycles per byte.
    pub fn cycles_per_byte(&self) -> f64 {
        self.us_per_byte * self.clock_mhz
    }

    /// One-way overhead for an `n`-byte message, in microseconds.
    pub fn overhead_us(&self, bytes: u32) -> f64 {
        self.us_per_msg + self.us_per_byte * f64::from(bytes)
    }
}

/// Table 1's comparison rows (vendor libraries and Active Messages).
pub fn table1_models() -> Vec<MessagingModel> {
    vec![
        MessagingModel {
            name: "nCUBE/2 (Vendor)",
            us_per_msg: 160.0,
            us_per_byte: 0.45,
            clock_mhz: 20.0,
        },
        MessagingModel {
            name: "CM-5 (Vendor)",
            us_per_msg: 86.0,
            us_per_byte: 0.12,
            clock_mhz: 33.0,
        },
        MessagingModel {
            name: "DELTA (Vendor)",
            us_per_msg: 72.0,
            us_per_byte: 0.08,
            clock_mhz: 40.0,
        },
        MessagingModel {
            name: "nCUBE/2 (Active)",
            us_per_msg: 23.0,
            us_per_byte: 0.45,
            clock_mhz: 20.0,
        },
        MessagingModel {
            name: "CM-5 (Active)",
            us_per_msg: 3.3,
            us_per_byte: 0.12,
            clock_mhz: 33.0,
        },
    ]
}

/// A software-barrier cost model: published microseconds per barrier at
/// power-of-two machine sizes (Table 3; the paper's references [6], [7],
/// [14]).
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierModel {
    /// Machine name as printed.
    pub name: &'static str,
    /// `(nodes, microseconds)` pairs as published.
    pub points: Vec<(u32, f64)>,
}

impl BarrierModel {
    /// Published value at a machine size, if reported.
    pub fn at(&self, nodes: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|(n, _)| *n == nodes)
            .map(|(_, us)| *us)
    }
}

/// Table 3's comparison columns.
pub fn table3_models() -> Vec<BarrierModel> {
    vec![
        BarrierModel {
            name: "EM4",
            points: vec![(2, 2.7), (4, 3.6), (8, 4.7), (16, 5.4), (64, 7.4)],
        },
        BarrierModel {
            name: "KSR",
            points: vec![(2, 60.0), (4, 90.0), (8, 180.0), (16, 260.0), (32, 525.0)],
        },
        BarrierModel {
            name: "iPSC/860",
            points: vec![
                (2, 111.0),
                (4, 234.0),
                (8, 381.0),
                (16, 546.0),
                (32, 692.0),
                (64, 847.0),
            ],
        },
        BarrierModel {
            name: "Delta",
            points: vec![
                (2, 109.0),
                (4, 248.0),
                (8, 473.0),
                (16, 923.0),
                (32, 1816.0),
                (64, 3587.0),
            ],
        },
    ]
}

/// The paper's measured J-Machine barrier times (for paper-vs-measured
/// reporting only).
pub fn paper_jmachine_barrier() -> Vec<(u32, f64)> {
    vec![
        (2, 4.4),
        (4, 6.5),
        (8, 8.7),
        (16, 11.7),
        (32, 14.4),
        (64, 16.5),
        (128, 20.7),
        (256, 24.4),
        (512, 27.4),
    ]
}

/// The paper's Table 1 J-Machine row (for paper-vs-measured reporting).
pub fn paper_jmachine_overhead() -> (f64, f64) {
    (0.9, 0.04) // µs/msg, µs/byte
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_cycles_match_table1() {
        let ncube = &table1_models()[0];
        assert!((ncube.cycles_per_msg() - 3200.0).abs() < 1.0);
        assert!((ncube.cycles_per_byte() - 9.0).abs() < 0.1);
        let cm5 = &table1_models()[1];
        assert!((cm5.cycles_per_msg() - 2838.0).abs() < 1.0);
    }

    #[test]
    fn barrier_lookup() {
        let em4 = &table3_models()[0];
        assert_eq!(em4.at(8), Some(4.7));
        assert_eq!(em4.at(128), None);
    }

    #[test]
    fn overhead_is_affine() {
        let m = &table1_models()[2];
        let d = m.overhead_us(100) - m.overhead_us(0);
        assert!((d - 8.0).abs() < 1e-9);
    }
}
