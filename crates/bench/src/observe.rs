//! Shared traced demonstration workload for the observability tools.
//!
//! A many-to-one RPC gather: every node sends `(recv, nid)` to node 0,
//! whose handler accumulates the sender ids. The workload exercises every
//! lifecycle stage the tracer records — injection, hop-by-hop progress,
//! delivery, queueing (node 0's message queue backs up under the
//! convergecast), dispatch, and handler execution — in a few thousand
//! cycles, which makes it the standard input for `trace_dump` and for the
//! deterministic digest of `repro_all`.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{AluOp, MsgPriority};
use jm_isa::node::MeshDims;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::tag::Tag;
use jm_machine::{
    Engine, JMachine, MachineConfig, MachineError, MachineTrace, StartPolicy, TraceConfig,
};

/// A finished traced run: the machine (for its statistics) and its trace.
pub struct TraceDemo {
    /// The quiesced machine.
    pub machine: JMachine,
    /// The assembled lifecycle trace.
    pub trace: MachineTrace,
}

/// The gather program: every node RPCs its id to node 0.
pub fn gather_program() -> Program {
    let mut b = Builder::new();
    b.data("sum", Region::Imem, vec![jm_isa::Word::int(0); 2]);

    b.label("main");
    // Route word for node (0,0,0): zero coordinate bits under the route tag.
    b.movi(R0, 0);
    b.wtag(R0, R0, Tag::Route.bits() as i32);
    b.send(MsgPriority::P0, R0);
    b.send2e(MsgPriority::P0, hdr("recv", 2), Special::Nid);
    b.suspend();

    // Handler: sum += sender id; count += 1.
    b.label("recv");
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, "sum");
    b.mov(R1, MemRef::disp(A0, 0));
    b.alu(AluOp::Add, R1, R1, R0);
    b.mov(MemRef::disp(A0, 0), R1);
    b.mov(R2, MemRef::disp(A0, 1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 1), R2);
    b.suspend();

    b.entry("main");
    b.assemble().unwrap()
}

/// Runs the gather workload traced on a `dims` mesh and returns the
/// machine plus its trace.
pub fn gather_demo(dims: MeshDims, sample_every: u64) -> Result<TraceDemo, MachineError> {
    let config = MachineConfig::with_dims(dims)
        .start(StartPolicy::AllNodes)
        .engine(Engine::Event)
        .trace(TraceConfig::on().sample_every(sample_every));
    let mut machine = JMachine::new(gather_program(), config);
    machine.run_until_quiescent(1_000_000)?;
    let trace = machine.take_trace().expect("tracing was enabled");
    Ok(TraceDemo { machine, trace })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_demo_traces_every_node() {
        let demo = gather_demo(MeshDims::new(4, 4, 1), 32).unwrap();
        let msgs = demo.trace.messages();
        assert_eq!(msgs.len(), 16);
        assert!(msgs.iter().all(|m| m.dispatch.is_some()));
        // Node 0 summed all 16 sender ids: 0 + 1 + ... + 15.
        let sum = demo.machine.program().segment("sum");
        assert_eq!(
            demo.machine.read_word(jm_isa::NodeId(0), sum.base).as_i32(),
            (0..16).sum::<i32>()
        );
    }
}
