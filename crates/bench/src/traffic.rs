//! Saturation-throughput curves for the synthetic traffic patterns.
//!
//! For each destination pattern of `jm-traffic`, a ladder of offered loads
//! (flits per node per cycle, in parts per million) is run through a
//! **warmup / measure / drain** protocol on a 4×4×4 mesh:
//!
//! * **warmup** — the first [`WARMUP`] cycles are simulated but excluded
//!   from measurement, so FIFO and queue occupancies reach steady state;
//! * **measure** — counters over the next [`MEASURE`] cycles (a
//!   [`jm_machine::MachineStats`] delta) give offered/accepted/dropped
//!   message counts and the accepted throughput;
//! * **drain** — the traffic window closes and the run continues to
//!   quiescence, so every accepted message is delivered and end-to-end
//!   latencies are complete, not censored at a cutoff.
//!
//! Latency comes from a second, traced run of the identical workload
//! pinned to the event engine (tracing is single-shard), windowed to
//! messages *injected* during the measure phase via
//! [`jm_trace::MachineTrace::breakdown_window`]. Both runs see the exact
//! same injection sequence — the Bernoulli process is a pure function of
//! `(seed, node, cycle)` — so the curves pair counters and latencies from
//! one workload, not two similar ones.
//!
//! The **saturation knee** of a curve is the highest offered load the
//! network still accepts nearly in full (acceptance ratio at least
//! [`KNEE_ACCEPT_RATIO`]), scanning the ladder in order and stopping at
//! the first violation. The `traffic_sweep` binary renders the curves,
//! gates on weak monotonicity, and emits `BENCH_traffic.json`.

use std::fmt::Write as _;

use jm_asm::{Builder, Program, Region};
use jm_isa::node::MeshDims;
use jm_isa::operand::MemRef;
use jm_isa::reg::{AReg, DReg};
use jm_machine::{
    Engine, JMachine, MachineConfig, StartPolicy, TraceConfig, TrafficPattern, TrafficSpec,
};

/// Offered-load ladder, flits per node per cycle in parts per million.
pub const LOAD_PPM: [u32; 8] = [
    50_000, 100_000, 150_000, 200_000, 300_000, 450_000, 650_000, 900_000,
];

/// The five destination patterns, in report order.
pub const PATTERNS: [TrafficPattern; 5] = [
    TrafficPattern::UniformRandom,
    TrafficPattern::Transpose,
    TrafficPattern::BitReversal,
    TrafficPattern::Hotspot {
        weight_ppm: 300_000,
    },
    TrafficPattern::NearestNeighbor,
];

/// Cycles excluded from measurement while occupancies reach steady state.
pub const WARMUP: u64 = 1_000;

/// Cycles of the measurement window.
pub const MEASURE: u64 = 4_000;

/// Cycle budget for draining to quiescence after the window closes.
pub const DRAIN_LIMIT: u64 = 4_000_000;

/// Payload words per generated message (wire length `2*(words+1)` flits).
pub const MSG_WORDS: u32 = 3;

/// Minimum acceptance ratio for a load point to count as below the knee.
pub const KNEE_ACCEPT_RATIO: f64 = 0.95;

/// Relative slack for the weak-monotonicity gate below saturation, where
/// accepted throughput must track offered load almost exactly.
pub const SLACK: f64 = 0.05;

/// Relative slack between adjacent points past saturation. Accepted
/// throughput may *degrade* once a pattern saturates — hotspot tree
/// saturation is the textbook case — but only gently per ladder step.
pub const POST_SAT_SLACK: f64 = 0.15;

/// Collapse floor: no post-saturation point may fall below this fraction
/// of the curve's peak accepted throughput.
pub const COLLAPSE_FLOOR: f64 = 0.70;

/// Flits on the wire per generated message.
pub fn flits_per_msg() -> u64 {
    2 * (u64::from(MSG_WORDS) + 1)
}

/// One measured point of a saturation curve.
#[derive(Debug, Clone, Copy)]
pub struct TrafficPoint {
    /// Offered load, flits per node per cycle in parts per million.
    pub load_ppm: u32,
    /// Messages the Bernoulli process offered during the measure window.
    pub offered_msgs: u64,
    /// Offered messages accepted into injection FIFOs.
    pub accepted_msgs: u64,
    /// Offered messages refused (FIFO backpressure) and dropped.
    pub dropped_msgs: u64,
    /// Messages delivered during the measure window (includes warmup
    /// stragglers; a steady-state boundary effect, not double counting).
    pub delivered_msgs: u64,
    /// Length of the measure window in cycles.
    pub measure_cycles: u64,
    /// Total cycles to quiescence (window plus drain).
    pub total_cycles: u64,
    /// Mean end-to-end latency (inject → dispatch) of messages injected
    /// during the measure window.
    pub latency_mean: f64,
    /// Median end-to-end latency (log₂-bucket upper bound).
    pub latency_p50: u64,
    /// 99th-percentile end-to-end latency (log₂-bucket upper bound).
    pub latency_p99: u64,
    /// Worst end-to-end latency.
    pub latency_max: u64,
    /// Messages the latency histogram covers.
    pub latency_count: u64,
}

impl TrafficPoint {
    /// Accepted throughput: flits per node per cycle actually injected.
    pub fn accepted_throughput(&self, nodes: u32) -> f64 {
        self.accepted_msgs as f64 * flits_per_msg() as f64
            / (f64::from(nodes) * self.measure_cycles as f64)
    }

    /// Fraction of offered messages accepted (1.0 when nothing was
    /// offered — a vacuously unsaturated point).
    pub fn accept_ratio(&self) -> f64 {
        if self.offered_msgs == 0 {
            1.0
        } else {
            self.accepted_msgs as f64 / self.offered_msgs as f64
        }
    }
}

/// The saturation curve of one destination pattern.
#[derive(Debug, Clone)]
pub struct PatternCurve {
    /// The destination pattern.
    pub pattern: TrafficPattern,
    /// One point per ladder entry, in [`LOAD_PPM`] order.
    pub points: Vec<TrafficPoint>,
}

impl PatternCurve {
    /// The saturation knee: highest offered load (ppm) whose acceptance
    /// ratio — and that of every lighter load — is at least
    /// [`KNEE_ACCEPT_RATIO`]. Zero if even the lightest load saturates.
    pub fn knee_ppm(&self) -> u32 {
        let mut knee = 0;
        for p in &self.points {
            if p.accept_ratio() < KNEE_ACCEPT_RATIO {
                break;
            }
            knee = p.load_ppm;
        }
        knee
    }

    /// Accepted throughput (flits/node/cycle) at the knee point.
    pub fn knee_throughput(&self, nodes: u32) -> f64 {
        let knee = self.knee_ppm();
        self.points
            .iter()
            .find(|p| p.load_ppm == knee)
            .map_or(0.0, |p| p.accepted_throughput(nodes))
    }
}

/// A full sweep: every pattern's curve under one seed on one mesh.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Injection-process seed all curves share.
    pub seed: u64,
    /// Mesh dimensions of every run.
    pub dims: MeshDims,
    /// One curve per entry of [`PATTERNS`].
    pub curves: Vec<PatternCurve>,
}

/// A sink program: generated messages dispatch `sink`, which folds the
/// first payload word into a per-node accumulator and suspends.
pub fn sink_program() -> Program {
    let mut b = Builder::new();
    b.data("acc", Region::Imem, vec![jm_isa::word::Word::int(0)]);
    b.label("sink");
    b.load_seg(AReg::A0, "acc");
    b.mov(DReg::R0, MemRef::disp(AReg::A0, 0));
    b.mov(DReg::R1, MemRef::disp(AReg::A3, 1));
    b.alu(jm_isa::instr::AluOp::Add, DReg::R0, DReg::R0, DReg::R1);
    b.mov(MemRef::disp(AReg::A0, 0), DReg::R0);
    b.suspend();
    b.assemble().unwrap()
}

fn spec_for(seed: u64, pattern: TrafficPattern, load_ppm: u32, program: &Program) -> TrafficSpec {
    TrafficSpec::new(seed)
        .pattern(pattern)
        .load(load_ppm)
        .msg_words(MSG_WORDS)
        .window(0, WARMUP + MEASURE)
        .handler(program.handler("sink"))
}

/// Measures one load point: a counter run on the default engine (so
/// `--threads` sweeps exercise the parallel engine) paired with a traced
/// event-engine run of the identical workload for latency.
pub fn measure_point(
    seed: u64,
    dims: MeshDims,
    pattern: TrafficPattern,
    load_ppm: u32,
) -> TrafficPoint {
    let program = sink_program();
    let spec = spec_for(seed, pattern, load_ppm, &program);

    // Counter run: warmup, snapshot, measure, snapshot, drain.
    let mut m = JMachine::new(
        sink_program(),
        MachineConfig::with_dims(dims)
            .start(StartPolicy::None)
            .traffic(spec),
    );
    m.run(WARMUP);
    let warm = m.stats();
    m.run(MEASURE);
    let window = m.stats().net.since(&warm.net);
    let total_cycles = m
        .run_until_quiescent(DRAIN_LIMIT)
        .expect("traffic run drains to quiescence once the window closes");

    // Latency run: same workload, traced, pinned to the single-shard
    // event engine (bit-identical with every other engine by the
    // differential suite, so the pairing is exact).
    let mut traced = JMachine::new(
        sink_program(),
        MachineConfig::with_dims(dims)
            .start(StartPolicy::None)
            .traffic(spec)
            .engine(Engine::Event)
            .trace(TraceConfig::on().sample_every(1 << 20)),
    );
    traced
        .run_until_quiescent(DRAIN_LIMIT)
        .expect("traced traffic run drains to quiescence");
    let trace = traced.take_trace().expect("tracing was enabled");
    let lat = trace.breakdown_window(WARMUP, WARMUP + MEASURE).end_to_end;

    TrafficPoint {
        load_ppm,
        offered_msgs: window.traffic.offered_msgs,
        accepted_msgs: window.traffic.accepted_msgs,
        dropped_msgs: window.traffic.dropped_msgs,
        delivered_msgs: window.delivered_msgs,
        measure_cycles: MEASURE,
        total_cycles,
        latency_mean: lat.mean(),
        latency_p50: lat.quantile(0.50),
        latency_p99: lat.quantile(0.99),
        latency_max: lat.max(),
        latency_count: lat.count(),
    }
}

/// Runs the full ladder for every pattern with one seed.
pub fn sweep(seed: u64) -> TrafficReport {
    let dims = MeshDims::new(4, 4, 4);
    let curves = PATTERNS
        .iter()
        .map(|&pattern| PatternCurve {
            pattern,
            points: LOAD_PPM
                .iter()
                .map(|&load| measure_point(seed, dims, pattern, load))
                .collect(),
        })
        .collect();
    TrafficReport { seed, dims, curves }
}

impl TrafficReport {
    /// Checks every curve's shape: below saturation accepted throughput
    /// must track offered load (weak monotonicity with [`SLACK`]); past
    /// saturation it may degrade — hotspot tree saturation does — but
    /// only gently per step ([`POST_SAT_SLACK`]) and never below
    /// [`COLLAPSE_FLOOR`] of the curve's peak. Every point must conserve
    /// messages (offered = accepted + dropped), offered counts must grow
    /// with the ladder, and the heaviest hotspot load must actually have
    /// backpressured. Returns every violation found.
    pub fn check_monotone(&self) -> Result<(), Vec<String>> {
        let nodes = self.dims.nodes();
        let mut bad = Vec::new();
        for curve in &self.curves {
            let label = curve.pattern.label();
            for p in &curve.points {
                if p.offered_msgs != p.accepted_msgs + p.dropped_msgs {
                    bad.push(format!(
                        "{label}: offered {} != accepted {} + dropped {} at {} ppm",
                        p.offered_msgs, p.accepted_msgs, p.dropped_msgs, p.load_ppm
                    ));
                }
            }
            for pair in curve.points.windows(2) {
                let (lo, hi) = (pair[0], pair[1]);
                if hi.offered_msgs < lo.offered_msgs {
                    bad.push(format!(
                        "{label}: offered load fell with the ladder: {} msgs at {} ppm vs {} at {} ppm",
                        hi.offered_msgs, hi.load_ppm, lo.offered_msgs, lo.load_ppm
                    ));
                }
                let (t_lo, t_hi) = (lo.accepted_throughput(nodes), hi.accepted_throughput(nodes));
                let slack = if lo.accept_ratio() >= KNEE_ACCEPT_RATIO {
                    SLACK
                } else {
                    POST_SAT_SLACK
                };
                if t_hi < t_lo * (1.0 - slack) {
                    bad.push(format!(
                        "{label}: accepted throughput fell with offered load: \
                         {t_hi:.4} f/n/c at {} ppm vs {t_lo:.4} at {} ppm",
                        hi.load_ppm, lo.load_ppm
                    ));
                }
            }
            // Collapse check against the *running* peak: a point may sit
            // below a later, higher plateau (the curve still rising), but
            // not far below what lighter loads already achieved.
            let mut peak = 0.0_f64;
            for p in &curve.points {
                let t = p.accepted_throughput(nodes);
                if p.accept_ratio() < KNEE_ACCEPT_RATIO && t < peak * COLLAPSE_FLOOR {
                    bad.push(format!(
                        "{label}: post-saturation throughput collapsed: {t:.4} f/n/c at {} ppm \
                         vs earlier peak {peak:.4}",
                        p.load_ppm
                    ));
                }
                peak = peak.max(t);
            }
        }
        if let Some(hotspot) = self
            .curves
            .iter()
            .find(|c| matches!(c.pattern, TrafficPattern::Hotspot { .. }))
        {
            if hotspot.points.last().is_some_and(|p| p.dropped_msgs == 0) {
                bad.push("hotspot: heaviest load never backpressured".to_string());
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Deterministic per-point counter lines — the digest source. Every
    /// number is simulated state (counters from the default-engine run,
    /// latencies from the event-engine trace of the same workload), so
    /// the digest is identical across engines and host thread counts.
    pub fn digest_lines(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "mesh {}x{}x{}", self.dims.x, self.dims.y, self.dims.z);
        for curve in &self.curves {
            for p in &curve.points {
                let _ = writeln!(
                    s,
                    "{} {} {} {} {} {} {} {} {} {} {} {}",
                    curve.pattern.label(),
                    p.load_ppm,
                    p.offered_msgs,
                    p.accepted_msgs,
                    p.dropped_msgs,
                    p.delivered_msgs,
                    p.measure_cycles,
                    p.total_cycles,
                    p.latency_p50,
                    p.latency_p99,
                    p.latency_max,
                    p.latency_count,
                );
            }
        }
        s
    }

    /// Renders the curves as aligned text tables.
    pub fn render(&self) -> String {
        let nodes = self.dims.nodes();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "traffic saturation sweep (seed {}, {}x{}x{} mesh, warmup {} + measure {} cycles)",
            self.seed, self.dims.x, self.dims.y, self.dims.z, WARMUP, MEASURE
        );
        for curve in &self.curves {
            let _ = writeln!(
                s,
                "\n  {} (knee {} ppm, {:.4} flits/node/cycle)",
                curve.pattern.label(),
                curve.knee_ppm(),
                curve.knee_throughput(nodes)
            );
            let _ = writeln!(
                s,
                "  {:>9} {:>9} {:>9} {:>8} {:>10} {:>9} {:>8} {:>8}",
                "load ppm",
                "offered",
                "accepted",
                "dropped",
                "thru f/n/c",
                "lat mean",
                "lat p99",
                "lat max"
            );
            for p in &curve.points {
                let _ = writeln!(
                    s,
                    "  {:>9} {:>9} {:>9} {:>8} {:>10.4} {:>9.1} {:>8} {:>8}",
                    p.load_ppm,
                    p.offered_msgs,
                    p.accepted_msgs,
                    p.dropped_msgs,
                    p.accepted_throughput(nodes),
                    p.latency_mean,
                    p.latency_p99,
                    p.latency_max
                );
            }
        }
        s
    }

    /// Renders `BENCH_traffic.json` (hand-rolled; the workspace takes no
    /// serialization dependency). Rows are keyed `"pattern"` so the
    /// gate's field scanners cannot collide with `BENCH.json`'s
    /// `"name"`-keyed rows.
    pub fn json(&self) -> String {
        let nodes = self.dims.nodes();
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            s,
            "  \"mesh\": \"{}x{}x{}\",",
            self.dims.x, self.dims.y, self.dims.z
        );
        let _ = writeln!(s, "  \"warmup_cycles\": {WARMUP},");
        let _ = writeln!(s, "  \"measure_cycles\": {MEASURE},");
        s.push_str("  \"curves\": [\n");
        for (i, curve) in self.curves.iter().enumerate() {
            let _ = writeln!(s, "    {{\"pattern\": \"{}\",", curve.pattern.label());
            let _ = writeln!(s, "     \"knee_ppm\": {},", curve.knee_ppm());
            let _ = writeln!(
                s,
                "     \"knee_throughput\": {:.6},",
                curve.knee_throughput(nodes)
            );
            s.push_str("     \"points\": [\n");
            for (j, p) in curve.points.iter().enumerate() {
                let _ = write!(
                    s,
                    "       {{\"load_ppm\": {}, \"offered_msgs\": {}, \"accepted_msgs\": {}, \
                     \"dropped_msgs\": {}, \"delivered_msgs\": {}, \"throughput\": {:.6}, \
                     \"latency_mean\": {:.4}, \"latency_p50\": {}, \"latency_p99\": {}, \
                     \"latency_max\": {}, \"latency_count\": {}}}",
                    p.load_ppm,
                    p.offered_msgs,
                    p.accepted_msgs,
                    p.dropped_msgs,
                    p.delivered_msgs,
                    p.accepted_throughput(nodes),
                    p.latency_mean,
                    p.latency_p50,
                    p.latency_p99,
                    p.latency_max,
                    p.latency_count
                );
                s.push_str(if j + 1 == curve.points.len() {
                    "\n"
                } else {
                    ",\n"
                });
            }
            s.push_str("     ]}");
            s.push_str(if i + 1 == self.curves.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(load_ppm: u32, offered: u64, accepted: u64) -> TrafficPoint {
        TrafficPoint {
            load_ppm,
            offered_msgs: offered,
            accepted_msgs: accepted,
            dropped_msgs: offered - accepted,
            delivered_msgs: accepted,
            measure_cycles: MEASURE,
            total_cycles: WARMUP + MEASURE + 100,
            latency_mean: 20.0,
            latency_p50: 16,
            latency_p99: 64,
            latency_max: 80,
            latency_count: accepted,
        }
    }

    #[test]
    fn knee_is_the_last_load_before_acceptance_collapses() {
        let curve = PatternCurve {
            pattern: TrafficPattern::UniformRandom,
            points: vec![
                point(50_000, 1000, 1000),
                point(100_000, 2000, 1995), // 99.75% — above the knee ratio
                point(150_000, 3000, 2400), // 80% — saturated
                point(200_000, 4000, 3990), // recovery past the knee is ignored
            ],
        };
        assert_eq!(curve.knee_ppm(), 100_000);
    }

    #[test]
    fn knee_is_zero_when_even_the_lightest_load_saturates() {
        let curve = PatternCurve {
            pattern: TrafficPattern::UniformRandom,
            points: vec![point(50_000, 1000, 100)],
        };
        assert_eq!(curve.knee_ppm(), 0);
        assert_eq!(curve.knee_throughput(64), 0.0);
    }

    #[test]
    fn monotonicity_gate_flags_a_falling_curve() {
        let dims = MeshDims::new(4, 4, 4);
        let good = TrafficReport {
            seed: 1,
            dims,
            curves: vec![PatternCurve {
                pattern: TrafficPattern::Hotspot {
                    weight_ppm: 300_000,
                },
                points: vec![point(50_000, 1000, 1000), point(100_000, 2000, 1800)],
            }],
        };
        assert!(good.check_monotone().is_ok());

        let falling = TrafficReport {
            seed: 1,
            dims,
            curves: vec![PatternCurve {
                pattern: TrafficPattern::Hotspot {
                    weight_ppm: 300_000,
                },
                points: vec![point(50_000, 1000, 1000), point(100_000, 2000, 600)],
            }],
        };
        let violations = falling.check_monotone().unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("throughput fell")),
            "{violations:?}"
        );
    }

    #[test]
    fn low_load_uniform_point_accepts_everything() {
        let p = measure_point(
            7,
            MeshDims::new(4, 4, 4),
            TrafficPattern::UniformRandom,
            50_000,
        );
        assert!(p.offered_msgs > 0);
        assert_eq!(p.dropped_msgs, 0, "50k ppm must be far below saturation");
        assert_eq!(p.offered_msgs, p.accepted_msgs);
        assert_eq!(
            p.latency_count, p.accepted_msgs,
            "every measured message got a latency"
        );
        assert!(p.latency_mean > 0.0);
    }

    #[test]
    fn measure_point_is_deterministic() {
        let dims = MeshDims::new(4, 4, 4);
        let a = measure_point(9, dims, TrafficPattern::Transpose, 200_000);
        let b = measure_point(9, dims, TrafficPattern::Transpose, 200_000);
        assert_eq!(a.offered_msgs, b.offered_msgs);
        assert_eq!(a.accepted_msgs, b.accepted_msgs);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.latency_p99, b.latency_p99);
    }
}
