//! Thread-scaling sweep of the deterministic parallel engine.
//!
//! Runs one load-dominated workload (the Figure-3 exchange loop, every node
//! busy every cycle — the case where threading can actually help) for a
//! fixed cycle count under `Engine::Event` and `Engine::Parallel(t)` for
//! t ∈ {1, 2, 4}, timing each run. Because every engine is bit-exact
//! (DESIGN.md §4.7), the sweep doubles as a differential test: the final
//! statistics of every run are asserted identical before any number is
//! reported.
//!
//! Used by two binaries: `engine_perf --threads` (full sweep, appended to
//! `BENCH_engine.json`) and `repro_all` (small sweep, thread-scaling table
//! in `EXPERIMENTS.md` — excluded from the determinism digest, since wall
//! times vary run to run).

use crate::harness::time_once;
use crate::micro::load;
use jm_machine::{Engine, JMachine, MachineConfig, StartPolicy};
use std::fmt::Write as _;

/// One engine's timed run within the sweep.
#[derive(Debug, Clone)]
pub struct ThreadPoint {
    /// Short stable label (`event`, `parallel-1`, …) — deliberately keyed
    /// `"label"` in the JSON so `bench_gate`'s `"name"`-driven parser
    /// ignores the section.
    pub label: String,
    /// Worker threads requested (0 = the sequential event engine).
    pub threads: u32,
    /// Wall-clock seconds for the fixed-cycle run.
    pub wall_secs: f64,
    /// Simulated cycles per second of wall clock.
    pub cycles_per_sec: f64,
    /// Whether the run asked for more worker threads than the host has
    /// logical CPUs. An oversubscribed number measures scheduler pressure,
    /// not scaling — it is stamped so readers (and `bench_gate`'s ratchet)
    /// never mistake it for real thread-scaling data.
    pub oversubscribed: bool,
}

/// A completed thread-scaling sweep.
#[derive(Debug, Clone)]
pub struct ThreadSweep {
    /// Logical CPUs the host reports (1 on a constrained CI runner — the
    /// speedup acceptance floor only applies when this is ≥ 4).
    pub host_cpus: usize,
    /// Nodes in the simulated machine.
    pub nodes: u32,
    /// Simulated cycles per run.
    pub cycles: u64,
    /// One point per engine, event baseline first.
    pub points: Vec<ThreadPoint>,
}

impl ThreadSweep {
    /// Speedup of the `threads`-worker run over the event baseline.
    pub fn speedup(&self, threads: u32) -> Option<f64> {
        let base = self.points.first()?.cycles_per_sec;
        self.points
            .iter()
            .find(|p| p.threads == threads)
            .map(|p| p.cycles_per_sec / base)
    }
}

/// Runs the sweep: event baseline plus `Parallel(t)` for each `t` in
/// `threads`, asserting bit-identical final statistics across all runs.
pub fn sweep(nodes: u32, cycles: u64, threads: &[u32]) -> ThreadSweep {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points = Vec::new();
    let mut baseline_stats = None;
    let mut engines = vec![(String::from("event"), 0u32, Engine::Event)];
    engines.extend(
        threads
            .iter()
            .map(|&t| (format!("parallel-{t}"), t, Engine::Parallel(t))),
    );
    // Best-of-N wall time per point: a single timing on a busy host mixes
    // scheduler noise into the ratio; the minimum of a few repetitions is
    // the run least disturbed by the host. Repetitions are *interleaved*
    // (round-robin over engines) rather than run back-to-back per engine,
    // so a burst of host load lands on all engines roughly equally instead
    // of skewing whichever engine owned that time window. Every
    // repetition's stats are still asserted identical, so the differential
    // check gets N× deeper.
    const REPS: u32 = 5;
    let mut best_walls = vec![None::<std::time::Duration>; engines.len()];
    for _ in 0..REPS {
        for ((label, _, engine), best_wall) in engines.iter().zip(best_walls.iter_mut()) {
            let mut m = JMachine::new(
                load::debug_program(4, 20),
                MachineConfig::new(nodes)
                    .start(StartPolicy::AllNodes)
                    .engine(*engine),
            );
            let (wall, ()) = time_once(|| m.run(cycles));
            let stats = m.stats();
            match &baseline_stats {
                None => baseline_stats = Some(stats),
                Some(base) => assert_eq!(
                    base, &stats,
                    "{label}: parallel engine diverged from the event engine"
                ),
            }
            *best_wall = Some(best_wall.map_or(wall, |b| b.min(wall)));
        }
    }
    for ((label, t, _), best_wall) in engines.into_iter().zip(best_walls) {
        let wall_secs = best_wall.expect("at least one repetition").as_secs_f64();
        points.push(ThreadPoint {
            label,
            threads: t,
            wall_secs,
            cycles_per_sec: cycles as f64 / wall_secs.max(1e-9),
            oversubscribed: t as usize > host_cpus,
        });
    }
    ThreadSweep {
        host_cpus,
        nodes,
        cycles,
        points,
    }
}

/// Renders the sweep as a text table (for `EXPERIMENTS.md` and stdout).
pub fn render(sweep: &ThreadSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exchange loop, {} nodes, {} cycles, host CPUs: {}\n",
        sweep.nodes, sweep.cycles, sweep.host_cpus
    );
    let _ = writeln!(out, "{:<12} {:>14} {:>10}", "engine", "cyc/s", "speedup");
    let base = sweep.points[0].cycles_per_sec;
    for p in &sweep.points {
        let _ = writeln!(
            out,
            "{:<12} {:>14.0} {:>9.2}x{}",
            p.label,
            p.cycles_per_sec,
            p.cycles_per_sec / base,
            if p.oversubscribed {
                "  (oversubscribed)"
            } else {
                ""
            }
        );
    }
    out
}

/// Renders the sweep as the `"threads"` JSON object for `BENCH_engine.json`
/// (no surrounding comma or key).
pub fn render_json(sweep: &ThreadSweep) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n    \"workload\": \"exchange{}_load_dominated\",\n    \"cycles\": {},\n    \"host_cpus\": {},\n    \"runs\": [\n",
        sweep.nodes, sweep.cycles, sweep.host_cpus
    );
    let base = sweep.points[0].cycles_per_sec;
    for (i, p) in sweep.points.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {{ \"label\": \"{}\", \"threads\": {}, \"wall_secs\": {:.6}, \"cyc_per_sec\": {:.0}, \"vs_event\": {:.2}, \"oversubscribed\": {} }}{}",
            p.label,
            p.threads,
            p.wall_secs,
            p.cycles_per_sec,
            p.cycles_per_sec / base,
            p.oversubscribed,
            if i + 1 < sweep.points.len() { "," } else { "" }
        );
    }
    let _ = write!(out, "    ]\n  }}");
    out
}
