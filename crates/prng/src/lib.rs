//! A small, dependency-free deterministic PRNG.
//!
//! The workspace must build and test without network access, so external
//! `rand`/`proptest` crates are off limits. Workload generators (the app
//! input builders) and randomized tests use this instead: a seeded
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream with the few
//! helpers those call sites need. Streams are stable across platforms and
//! releases — changing the output for a given seed is a breaking change,
//! because app workloads are derived from it.

#![warn(missing_docs)]

/// A SplitMix64 pseudo-random number generator.
///
/// Passes BigCrush when used as a 64-bit generator; more than adequate for
/// synthetic-workload generation and randomized testing. Not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed. Distinct seeds give uncorrelated
    /// streams (the output function is a strong 64-bit mixer).
    pub fn new(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// Derives a generator from a string label, so test cases get distinct
    /// but reproducible streams (FNV-1a over the label, mixed with `seed`).
    pub fn from_label(label: &str, seed: u64) -> Prng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Prng::new(hash ^ seed)
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Lemire-style rejection-free-enough reduction: widen-multiply the
        // 64-bit draw by the span. The modulo bias of plain `% span` would
        // be negligible here, but this is just as cheap and exact enough.
        let span = hi - lo;
        let hi128 = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo + hi128
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (i64::from(hi) - i64::from(lo)) as u64;
        let off = self.range_u64(0, span);
        (i64::from(lo) + off as i64) as i32
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Canonical test vector from the public-domain splitmix64.c: the
        // first three outputs for seed 0. Locks the stream for all time.
        let mut g = Prng::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = Prng::new(7);
        for _ in 0..10_000 {
            let v = g.range_u32(3, 17);
            assert!((3..17).contains(&v));
            let s = g.range_i32(-50, 50);
            assert!((-50..50).contains(&s));
        }
    }

    #[test]
    fn ranges_cover_endpoints() {
        let mut g = Prng::new(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[g.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_derive_distinct_streams() {
        let a = Prng::from_label("lcs", 0);
        let b = Prng::from_label("tsp", 0);
        assert_ne!(a, b);
        assert_eq!(Prng::from_label("lcs", 0), Prng::from_label("lcs", 0));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut g = Prng::new(3);
        let hits = (0..10_000).filter(|_| g.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
