//! Per-node memory: internal SRAM plus external DRAM, word-addressed.

use jm_isa::consts::{EMEM_BASE, MEM_WORDS};
use jm_isa::word::Word;

/// A node's directly addressed memory: 4K words of on-chip SRAM at
/// `0..EMEM_BASE` followed by 256K words of DRAM.
///
/// `Memory` is storage only; access *timing* and the memory-mapped queue and
/// staging windows live in the execution engine.
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<Word>,
}

impl Memory {
    /// Creates nil-initialized memory.
    pub fn new() -> Memory {
        Memory {
            words: vec![Word::NIL; MEM_WORDS as usize],
        }
    }

    /// Reads a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range; callers bounds-check first (the
    /// execution engine raises a Bounds fault instead).
    #[inline]
    pub fn read(&self, addr: u32) -> Word {
        self.words[addr as usize]
    }

    /// Writes a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write(&mut self, addr: u32, word: Word) {
        self.words[addr as usize] = word;
    }

    /// Whether an address is in range.
    #[inline]
    pub fn in_range(&self, addr: u32) -> bool {
        addr < MEM_WORDS
    }

    /// Whether an address is in internal (on-chip) memory.
    #[inline]
    pub fn is_internal(addr: u32) -> bool {
        addr < EMEM_BASE
    }

    /// Bulk-writes a slice starting at `base` (host-side loader).
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds memory.
    pub fn load(&mut self, base: u32, words: &[Word]) {
        let base = base as usize;
        self.words[base..base + words.len()].copy_from_slice(words);
    }

    /// Reads `len` words starting at `base` (host-side extraction).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds memory.
    pub fn dump(&self, base: u32, len: u32) -> Vec<Word> {
        let base = base as usize;
        self.words[base..base + len as usize].to_vec()
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(0, Word::int(1));
        m.write(MEM_WORDS - 1, Word::int(2));
        assert_eq!(m.read(0).as_i32(), 1);
        assert_eq!(m.read(MEM_WORDS - 1).as_i32(), 2);
        assert_eq!(m.read(100), Word::NIL);
    }

    #[test]
    fn region_classification() {
        assert!(Memory::is_internal(0));
        assert!(Memory::is_internal(EMEM_BASE - 1));
        assert!(!Memory::is_internal(EMEM_BASE));
    }

    #[test]
    fn bulk_load_and_dump() {
        let mut m = Memory::new();
        let data = vec![Word::int(7), Word::int(8), Word::int(9)];
        m.load(5000, &data);
        assert_eq!(m.dump(5000, 3), data);
    }
}
