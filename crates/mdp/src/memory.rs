//! Per-node memory: internal SRAM plus external DRAM, word-addressed.

use jm_isa::consts::{EMEM_BASE, MEM_WORDS};
use jm_isa::word::Word;

/// Words per lazily allocated DRAM page (32 KiB of `Word`s).
const PAGE_WORDS: usize = 4096;
/// Number of DRAM pages covering `EMEM_BASE..MEM_WORDS`.
const PAGE_COUNT: usize = (MEM_WORDS - EMEM_BASE) as usize / PAGE_WORDS;

/// A node's directly addressed memory: 4K words of on-chip SRAM at
/// `0..EMEM_BASE` followed by 256K words of DRAM.
///
/// `Memory` is storage only; access *timing* and the memory-mapped queue and
/// staging windows live in the execution engine.
///
/// The SRAM is allocated eagerly (every handler touches it), but the DRAM
/// is demand-paged in [`PAGE_WORDS`]-word chunks: an unwritten page reads
/// as [`Word::NIL`] without existing. A node that never spills to external
/// memory costs ~33 KiB instead of the 2.1 MiB a flat array would take —
/// the difference between a 16×16×16 mesh (4096 nodes) needing ~140 MiB
/// and needing 8.5 GiB.
#[derive(Debug, Clone)]
pub struct Memory {
    /// On-chip SRAM, `0..EMEM_BASE`.
    imem: Box<[Word]>,
    /// External DRAM pages, `None` until first written.
    pages: Vec<Option<Box<[Word]>>>,
}

impl Memory {
    /// Creates nil-initialized memory.
    pub fn new() -> Memory {
        Memory {
            imem: vec![Word::NIL; EMEM_BASE as usize].into_boxed_slice(),
            pages: (0..PAGE_COUNT).map(|_| None).collect(),
        }
    }

    /// Reads a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range; callers bounds-check first (the
    /// execution engine raises a Bounds fault instead).
    #[inline]
    pub fn read(&self, addr: u32) -> Word {
        if addr < EMEM_BASE {
            return self.imem[addr as usize];
        }
        let off = (addr - EMEM_BASE) as usize;
        debug_assert!(addr < MEM_WORDS, "read past external memory");
        match &self.pages[off / PAGE_WORDS] {
            Some(page) => page[off % PAGE_WORDS],
            None => Word::NIL,
        }
    }

    /// Writes a word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write(&mut self, addr: u32, word: Word) {
        if addr < EMEM_BASE {
            self.imem[addr as usize] = word;
            return;
        }
        let off = (addr - EMEM_BASE) as usize;
        debug_assert!(addr < MEM_WORDS, "write past external memory");
        let page = self.pages[off / PAGE_WORDS]
            .get_or_insert_with(|| vec![Word::NIL; PAGE_WORDS].into_boxed_slice());
        page[off % PAGE_WORDS] = word;
    }

    /// Whether an address is in range.
    #[inline]
    pub fn in_range(&self, addr: u32) -> bool {
        addr < MEM_WORDS
    }

    /// Whether an address is in internal (on-chip) memory.
    #[inline]
    pub fn is_internal(addr: u32) -> bool {
        addr < EMEM_BASE
    }

    /// Bulk-writes a slice starting at `base` (host-side loader).
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds memory.
    pub fn load(&mut self, base: u32, words: &[Word]) {
        assert!(
            (base as usize) + words.len() <= MEM_WORDS as usize,
            "bulk load past the end of memory"
        );
        for (i, &word) in words.iter().enumerate() {
            self.write(base + i as u32, word);
        }
    }

    /// Folds the full memory image into a replay digest: the SRAM verbatim,
    /// then every allocated DRAM page tagged with its index. Unallocated
    /// pages contribute nothing — demand paging is write-driven, so the
    /// allocation pattern is itself deterministic and engine-independent.
    ///
    /// Runs of [`Word::NIL`] are folded as a run length instead of word by
    /// word: memory is overwhelmingly NIL, and the checkpoint hash sits on
    /// the replay capture's hot path (the bench gate holds capture
    /// overhead under 10%). The encoding stays positional and unambiguous
    /// — the `0xFF` run marker cannot collide with a real word's leading
    /// tag byte, which carries at most 4 tag bits.
    pub fn fold_state(&self, h: &mut jm_trace::Fnv1a) {
        fold_words_rle(h, &self.imem);
        for (i, page) in self.pages.iter().enumerate() {
            if let Some(page) = page {
                h.write_u32(i as u32);
                fold_words_rle(h, page);
            }
        }
    }

    /// Reads `len` words starting at `base` (host-side extraction).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds memory.
    pub fn dump(&self, base: u32, len: u32) -> Vec<Word> {
        assert!(
            (base as usize) + len as usize <= MEM_WORDS as usize,
            "dump past the end of memory"
        );
        (base..base + len).map(|a| self.read(a)).collect()
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

/// Folds a word array with NIL runs collapsed to `(0xFF, run_len)`.
fn fold_words_rle(h: &mut jm_trace::Fnv1a, words: &[Word]) {
    let mut run: u32 = 0;
    for &w in words {
        if w == Word::NIL {
            run += 1;
            continue;
        }
        if run > 0 {
            h.write_u8(0xFF);
            h.write_u32(run);
            run = 0;
        }
        crate::hash::fold_word(h, w);
    }
    if run > 0 {
        h.write_u8(0xFF);
        h.write_u32(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write(0, Word::int(1));
        m.write(MEM_WORDS - 1, Word::int(2));
        assert_eq!(m.read(0).as_i32(), 1);
        assert_eq!(m.read(MEM_WORDS - 1).as_i32(), 2);
        assert_eq!(m.read(100), Word::NIL);
    }

    #[test]
    fn region_classification() {
        assert!(Memory::is_internal(0));
        assert!(Memory::is_internal(EMEM_BASE - 1));
        assert!(!Memory::is_internal(EMEM_BASE));
    }

    #[test]
    fn bulk_load_and_dump() {
        let mut m = Memory::new();
        let data = vec![Word::int(7), Word::int(8), Word::int(9)];
        m.load(5000, &data);
        assert_eq!(m.dump(5000, 3), data);
    }

    #[test]
    fn unwritten_dram_reads_nil_without_allocating() {
        let m = Memory::new();
        assert_eq!(m.read(EMEM_BASE), Word::NIL);
        assert_eq!(m.read(MEM_WORDS - 1), Word::NIL);
        assert!(m.pages.iter().all(Option::is_none));
    }

    #[test]
    fn dram_pages_allocate_on_first_write_only() {
        let mut m = Memory::new();
        m.write(EMEM_BASE + 1, Word::int(9));
        assert_eq!(m.pages.iter().filter(|p| p.is_some()).count(), 1);
        assert_eq!(m.read(EMEM_BASE + 1).as_i32(), 9);
        assert_eq!(m.read(EMEM_BASE), Word::NIL);
        // A cross-page bulk load touches exactly the pages it spans.
        let span = vec![Word::int(1); PAGE_WORDS + 2];
        m.load(MEM_WORDS - span.len() as u32, &span);
        assert_eq!(
            m.dump(MEM_WORDS - span.len() as u32, 3),
            vec![Word::int(1); 3]
        );
    }
}
