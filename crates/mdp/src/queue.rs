//! The hardware message queues.
//!
//! Arriving messages are buffered in a ring of words carved from on-chip
//! SRAM. Words stream in from the network at up to 0.5 words/cycle; a task
//! is dispatched as soon as the header word of the queue-head message is
//! present, and handler reads of argument words that have not arrived yet
//! stall the processor (§2.1). A full queue refuses delivery, which
//! backpressures the network (§5 discusses the consequences).

use jm_isa::tag::Tag;
use jm_isa::word::{MsgHeader, Word};

/// One priority level's message queue.
#[derive(Debug, Clone)]
pub struct MsgQueue {
    buf: Vec<Word>,
    /// Ring index of the first word of the head message.
    head: usize,
    /// Words currently stored.
    len: usize,
    /// High-water mark of `len`.
    hwm: usize,
    /// Cycles during which a delivery was refused (overflow pressure).
    refusals: u64,
}

impl MsgQueue {
    /// Creates an empty queue of `capacity` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> MsgQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        MsgQueue {
            buf: vec![Word::NIL; capacity as usize],
            head: 0,
            len: 0,
            hwm: 0,
            refusals: 0,
        }
    }

    /// Queue capacity in words.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Words currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of buffered words.
    pub fn high_water(&self) -> usize {
        self.hwm
    }

    /// Number of refused deliveries (queue-full backpressure events).
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Accepts one arriving word, or refuses it if the queue is full.
    pub fn push(&mut self, word: Word) -> bool {
        if self.len == self.buf.len() {
            self.refusals += 1;
            return false;
        }
        let slot = (self.head + self.len) % self.buf.len();
        self.buf[slot] = word;
        self.len += 1;
        self.hwm = self.hwm.max(self.len);
        true
    }

    /// The word at `offset` from the head message's first word, if it has
    /// arrived.
    pub fn get(&self, offset: usize) -> Option<Word> {
        if offset < self.len {
            Some(self.buf[(self.head + offset) % self.buf.len()])
        } else {
            None
        }
    }

    /// Ring slot index of the head message's first word (used to build the
    /// `A3` descriptor into the queue window).
    pub fn head_slot(&self) -> usize {
        self.head
    }

    /// Reads the word in ring slot `slot` if it currently holds an arrived
    /// word.
    pub fn read_slot(&self, slot: usize) -> Option<Word> {
        let cap = self.buf.len();
        let offset = (slot + cap - self.head) % cap;
        self.get(offset)
    }

    /// The head message's header, if its header word has arrived and is
    /// well-formed. Returns `Err(word)` if the head word is not `msg`-tagged
    /// (queue desynchronization — a machine-level error).
    pub fn header(&self) -> Option<Result<MsgHeader, Word>> {
        let word = self.get(0)?;
        if word.tag() == Tag::Msg {
            Some(Ok(MsgHeader::from_word(word)))
        } else {
            Some(Err(word))
        }
    }

    /// Whether the head message has fully arrived.
    pub fn head_complete(&self) -> bool {
        match self.header() {
            Some(Ok(h)) => self.len >= h.len as usize,
            _ => false,
        }
    }

    /// Folds the architecturally visible queue state into a replay digest:
    /// the head ring slot (visible to programs through the `A3` queue
    /// descriptor), the occupancy, and the buffered words in arrival order.
    /// The high-water mark and refusal counter are statistics and are
    /// excluded.
    pub fn fold_state(&self, h: &mut jm_trace::Fnv1a) {
        h.write_u32(self.head as u32);
        h.write_u32(self.len as u32);
        for offset in 0..self.len {
            let w = self.buf[(self.head + offset) % self.buf.len()];
            crate::hash::fold_word(h, w);
        }
    }

    /// Removes the head message (`words` long, as given by its header).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `words` words are buffered.
    pub fn pop_msg(&mut self, words: usize) {
        assert!(words <= self.len, "popping an incomplete message");
        self.head = (self.head + words) % self.buf.len();
        self.len -= words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(ip: u32, len: u32) -> Word {
        MsgHeader::new(ip, len).to_word()
    }

    #[test]
    fn streams_and_dispatches_on_header() {
        let mut q = MsgQueue::new(8);
        assert!(q.header().is_none());
        assert!(q.push(hdr(5, 3)));
        let h = q.header().unwrap().unwrap();
        assert_eq!((h.ip, h.len), (5, 3));
        assert!(!q.head_complete());
        assert_eq!(q.get(1), None); // argument not yet arrived → stall
        q.push(Word::int(1));
        q.push(Word::int(2));
        assert!(q.head_complete());
        assert_eq!(q.get(2), Some(Word::int(2)));
    }

    #[test]
    fn wraps_around_the_ring() {
        let mut q = MsgQueue::new(4);
        q.push(hdr(1, 2));
        q.push(Word::int(10));
        q.pop_msg(2);
        // Now head = 2; a 3-word message wraps.
        q.push(hdr(2, 3));
        q.push(Word::int(20));
        q.push(Word::int(21));
        assert!(q.head_complete());
        assert_eq!(q.get(2), Some(Word::int(21)));
        assert_eq!(q.head_slot(), 2);
        assert_eq!(q.read_slot(0), Some(Word::int(21))); // wrapped slot
    }

    #[test]
    fn refuses_when_full() {
        let mut q = MsgQueue::new(2);
        assert!(q.push(hdr(1, 3)));
        assert!(q.push(Word::int(1)));
        assert!(!q.push(Word::int(2)));
        assert_eq!(q.refusals(), 1);
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn detects_desynchronized_head() {
        let mut q = MsgQueue::new(4);
        q.push(Word::int(42));
        assert!(matches!(q.header(), Some(Err(w)) if w.as_i32() == 42));
    }

    #[test]
    #[should_panic(expected = "incomplete message")]
    fn pop_requires_arrival() {
        let mut q = MsgQueue::new(4);
        q.push(hdr(1, 3));
        q.pop_msg(3);
    }

    #[test]
    fn refusal_after_wraparound() {
        // Drive the ring through a wrap, fill it to capacity, and check the
        // full queue still refuses (the wrapped fill must not fool the
        // occupancy accounting into accepting a 5th word into 4 slots).
        let mut q = MsgQueue::new(4);
        q.push(hdr(1, 3));
        q.push(Word::int(10));
        q.push(Word::int(11));
        q.pop_msg(3);
        assert!(q.is_empty());
        // head = 3: the next message occupies slots 3, 0, 1, 2 (wrapped).
        assert!(q.push(hdr(2, 4)));
        assert!(q.push(Word::int(20)));
        assert!(q.push(Word::int(21)));
        assert!(q.push(Word::int(22)));
        assert_eq!(q.len(), q.capacity());
        assert_eq!(q.head_slot(), 3);
        assert!(!q.push(Word::int(99)), "wrapped-full queue must refuse");
        assert_eq!(q.refusals(), 1);
        assert!(q.head_complete());
        assert_eq!(q.get(3), Some(Word::int(22)));
        // Popping the wrapped message frees the ring again.
        q.pop_msg(4);
        assert!(q.push(Word::int(30)));
        assert_eq!(q.refusals(), 1, "refusal count is sticky, not re-counted");
    }

    #[test]
    fn read_slot_of_freed_slot_is_none() {
        let mut q = MsgQueue::new(8);
        q.push(hdr(1, 2));
        q.push(Word::int(10));
        q.push(hdr(2, 2));
        q.push(Word::int(20));
        // While the first message is live, its slots read back.
        assert_eq!(q.read_slot(0), Some(hdr(1, 2)));
        assert_eq!(q.read_slot(1), Some(Word::int(10)));
        q.pop_msg(2);
        // Slots 0 and 1 now sit *behind* the head: a stale descriptor into
        // the queue window must read as not-arrived, not as old data.
        assert_eq!(q.read_slot(0), None);
        assert_eq!(q.read_slot(1), None);
        // The surviving message's slots still read back.
        assert_eq!(q.read_slot(2), Some(hdr(2, 2)));
        assert_eq!(q.read_slot(3), Some(Word::int(20)));
    }
}
