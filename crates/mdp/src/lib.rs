//! # jm-mdp
//!
//! Cycle-level model of the Message-Driven Processor: the 1.1M-transistor
//! VLSI node of the J-Machine (paper §2.1).
//!
//! One [`MdpNode`] models:
//!
//! * the triple-banked execution engine (background / priority-0 /
//!   priority-1) with per-instruction timing calibrated to the paper
//!   (1 cycle register-register, 2 cycles with an internal-memory operand,
//!   ~6 cycles external memory, 12.5 MHz clock);
//! * internal 4K-word SRAM and external 256K-word DRAM;
//! * the two hardware **message queues** with streaming arrival, 4-cycle
//!   task dispatch when a message header reaches the head, and stalls when
//!   a handler reads argument words that have not yet arrived;
//! * **presence-tag synchronization**: `cfut` reads and `fut` uses fault
//!   into runtime handlers through the vector table, with a hardware
//!   staging buffer exposing the faulted thread's registers;
//! * the **name-translation cache** behind `ENTER`/`XLATE`/`PROBE`
//!   (3-cycle hits, faulting misses);
//! * **send faults** when the network injection FIFO backpressures
//!   (§4.3.2), retried by the hardware while being counted;
//! * per-node statistics: cycles by class (compute / comm / sync / xlate /
//!   NNR-calc / dispatch / idle), per-handler thread counts and lengths
//!   (Table 4), fault and xlate counters (Table 5).
//!
//! The node is network-agnostic: the machine crate (`jm-machine`) pumps
//! ejected words into [`MdpNode::deliver`] and passes a [`NetPort`] for
//! injection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod exec;
mod hash;
mod memory;
mod node;
mod queue;
mod stats;
mod xlate;

pub use config::{MdpConfig, TimingConfig, QUEUE_VBASE, STAGING_FRAME, STAGING_VBASE};
pub use memory::Memory;
pub use node::{InjectAck, MdpNode, NetPort, NodeError, TickOutcome};
pub use queue::MsgQueue;
pub use stats::{HandlerStats, NodeStats};
pub use xlate::XlateCache;
