//! The MDP node: architectural state, thread scheduling, dispatch, and
//! fault machinery. Instruction semantics live in [`crate::exec`].

use crate::config::{MdpConfig, QUEUE_VBASE, STAGING_FRAME, STAGING_VBASE};
use crate::memory::Memory;
use crate::queue::MsgQueue;
use crate::stats::NodeStats;
use crate::xlate::XlateCache;
use jm_asm::Program;
use jm_isa::consts::{FaultKind, EMEM_BASE};
use jm_isa::instr::{MsgPriority, StatClass};
use jm_isa::node::{MeshDims, NodeId};
use jm_isa::reg::{Priority, RegFile};
use jm_isa::tag::Tag;
use jm_isa::word::{MsgHeader, SegDesc, Word};
use jm_isa::TraceId;
use jm_trace::{Event, EventKind, FaultEvent, Tracer};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Network injection acknowledgement, as seen by the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectAck {
    /// Word accepted.
    Accepted,
    /// Injection FIFO full: the `SEND` takes a send fault and retries.
    Stall,
    /// Framing violation (first word not a valid route word) — a program
    /// bug surfaced as a node error.
    Rejected,
}

/// The node's view of the network injection port.
///
/// Messages are composed in a per-thread buffer by the `SEND` family and
/// launched **whole** when the `SENDE` form retires — so a preempting
/// handler can never interleave its words into another thread's open
/// message, and a refused launch (send fault) retries without duplicating
/// already-injected words.
pub trait NetPort {
    /// Atomically offers a complete message: route word plus payload.
    fn commit(&mut self, priority: MsgPriority, words: &[Word]) -> InjectAck;
}

/// What a [`MdpNode::tick`] did, telling the machine's scheduler when (and
/// whether) the node next needs a tick. A node that reports [`Idle`] or
/// [`Stopped`] makes no progress until something external arrives — a
/// network delivery or a host injection — so an event-driven engine may
/// park it without changing any observable behavior.
///
/// [`Idle`]: TickOutcome::Idle
/// [`Stopped`]: TickOutcome::Stopped
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// The node did (or is doing) work and next makes progress at `until`.
    /// Ticks before `until` are no-ops.
    Busy {
        /// First cycle at which the node can do further work.
        until: u64,
    },
    /// No runnable thread and no queued message: the node burned one idle
    /// cycle (already attributed to [`StatClass::Idle`]) and every
    /// subsequent cycle is idle too until a delivery arrives. Parked
    /// engines owe those cycles via [`MdpNode::credit_idle`].
    Idle,
    /// The node halted or stopped on an error; it will never tick again.
    Stopped,
}

/// A fatal per-node condition. Real hardware would wedge or vector into a
/// debugger; the simulator stops the node and surfaces the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// A fault was raised whose vector slot does not hold an `ip` word.
    UnhandledFault {
        /// The fault raised.
        kind: FaultKind,
        /// IP of the faulting instruction.
        ip: u32,
    },
    /// A fault was raised while already in a fault handler (staging buffer
    /// would be clobbered).
    NestedFault {
        /// The second fault.
        kind: FaultKind,
        /// IP of the second faulting instruction.
        ip: u32,
    },
    /// The queue head is not a `msg`-tagged word — stream desynchronized.
    QueueDesync(Word),
    /// A message header named an out-of-range handler.
    BadHandler(u32),
    /// Execution ran off the end of the code image.
    IpOutOfRange(u32),
    /// The network rejected a send (bad route word framing).
    BadSend(Word),
    /// `RESUME` executed with a non-`ip` word in the staged IP slot.
    BadResume(Word),
    /// A thread suspended or halted while mid-message (network port locked
    /// without a terminating `SENDE`).
    OpenMessage,
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::UnhandledFault { kind, ip } => {
                write!(f, "unhandled {kind} fault at ip {ip}")
            }
            NodeError::NestedFault { kind, ip } => {
                write!(f, "nested {kind} fault at ip {ip}")
            }
            NodeError::QueueDesync(w) => write!(f, "queue head is not a header: {w:?}"),
            NodeError::BadHandler(ip) => write!(f, "message header names bad handler {ip}"),
            NodeError::IpOutOfRange(ip) => write!(f, "instruction pointer {ip} out of range"),
            NodeError::BadSend(w) => write!(f, "network rejected send of {w:?}"),
            NodeError::BadResume(w) => write!(f, "staged ip is not an ip word: {w:?}"),
            NodeError::OpenMessage => f.write_str("thread ended while composing a message"),
        }
    }
}

impl std::error::Error for NodeError {}

/// The message being handled by a priority level.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MsgCtx {
    /// Total message length in words.
    pub len: u32,
}

/// One J-Machine processing node.
pub struct MdpNode {
    pub(crate) id: NodeId,
    pub(crate) dims: MeshDims,
    pub(crate) config: MdpConfig,
    pub(crate) regs: RegFile,
    pub(crate) mem: Memory,
    pub(crate) program: Arc<Program>,
    /// First instruction index whose code word lies in external memory
    /// (`u32::MAX` when all code is internal).
    pub(crate) emem_code_from: u32,
    pub(crate) queues: [MsgQueue; 2],
    pub(crate) xlate: XlateCache,
    /// Register staging frames (R0–3, A0–3, IP), one per priority bank.
    pub(crate) staging: [[Word; 9]; 3],
    /// Whether the background thread may run.
    pub(crate) bg_runnable: bool,
    /// Whether a handler is active at P0/P1.
    pub(crate) active: [bool; 2],
    pub(crate) msg_ctx: [Option<MsgCtx>; 2],
    /// Cycle-attribution class per bank.
    pub(crate) class: [StatClass; 3],
    /// Entry IP of the thread running in each bank (per-handler stats).
    pub(crate) cur_handler: [u32; 3],
    /// Cached [`HandlerMap`](crate::stats::HandlerMap) slot of each bank's
    /// `cur_handler` (`usize::MAX` until first touched), so the
    /// per-instruction attribution is a plain indexed add.
    pub(crate) handler_slot: [usize; 3],
    /// Per-bank message-composition buffers: words accumulated by `SEND`
    /// instructions, launched whole at the `SENDE`.
    pub(crate) compose: [Vec<Word>; 3],
    /// Per bank: the composed message is complete and awaiting a
    /// successful commit (retried across send faults).
    pub(crate) commit_pending: [bool; 3],
    /// Whether each bank is inside a fault handler.
    pub(crate) in_fault: [bool; 3],
    /// Fault state specials.
    pub(crate) fip: u32,
    pub(crate) fval: Word,
    pub(crate) faddr: Word,
    pub(crate) busy_until: u64,
    pub(crate) halted: bool,
    pub(crate) error: Option<NodeError>,
    pub(crate) stats: NodeStats,
    /// Lifecycle-event buffer; `None` (the default) disables tracing.
    pub(crate) tracer: Option<Box<Tracer>>,
    /// Cycle of the most recent tick (timestamp for events emitted from
    /// execution paths that carry no cycle parameter).
    pub(crate) now: u64,
    /// Tracing only: payload words still owed by the message currently
    /// streaming into each queue (frames word deliveries into messages).
    pub(crate) incoming_rem: [u32; 2],
    /// Tracing only: trace ids of queued-but-undispatched messages, in
    /// arrival (= dispatch) order.
    pub(crate) trace_pending: [VecDeque<TraceId>; 2],
    /// Tracing only: trace id of the message each bank's thread is handling.
    pub(crate) cur_trace: [TraceId; 3],
}

impl fmt::Debug for MdpNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MdpNode")
            .field("id", &self.id)
            .field("halted", &self.halted)
            .field("bg_runnable", &self.bg_runnable)
            .field("active", &self.active)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

/// What the scheduler decided for this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Exec(Priority),
    Dispatch(MsgPriority),
    Idle,
    Stopped,
}

impl MdpNode {
    /// Creates a node, loads the shared program image (code placement, data
    /// blocks), and prepares the background thread if the program declares
    /// an entry point and `start_background` is set.
    pub fn new(
        id: NodeId,
        dims: MeshDims,
        program: Arc<Program>,
        config: MdpConfig,
        start_background: bool,
    ) -> MdpNode {
        let mut mem = Memory::new();
        for block in &program.data {
            if !block.init.is_empty() {
                mem.load(block.base, &block.init);
            }
        }
        // Compute where code crosses into external memory (2 instructions
        // per word, nominally).
        let emem_code_from = if program.code_base >= EMEM_BASE {
            0
        } else {
            let imem_words = EMEM_BASE - program.code_base;
            let boundary = imem_words.saturating_mul(2);
            if (boundary as usize) < program.code.len() {
                boundary
            } else {
                u32::MAX
            }
        };
        let mut regs = RegFile::new();
        let bg_entry = if start_background {
            program.entry
        } else {
            None
        };
        let bg_runnable = bg_entry.is_some();
        if let Some(entry) = bg_entry {
            regs.bank_mut(Priority::Background).ip = entry;
        }
        let cur_handler = [bg_entry.unwrap_or(0), 0, 0];
        MdpNode {
            id,
            dims,
            config,
            regs,
            mem,
            program,
            emem_code_from,
            queues: [
                MsgQueue::new(config.queue0_words),
                MsgQueue::new(config.queue1_words),
            ],
            xlate: XlateCache::new(config.xlate_entries),
            staging: [[Word::NIL; 9]; 3],
            bg_runnable,
            active: [false, false],
            msg_ctx: [None, None],
            class: [StatClass::Compute; 3],
            cur_handler,
            handler_slot: [usize::MAX; 3],
            compose: Default::default(),
            commit_pending: [false; 3],
            in_fault: [false; 3],
            fip: 0,
            fval: Word::NIL,
            faddr: Word::NIL,
            busy_until: 0,
            halted: false,
            error: None,
            stats: NodeStats::default(),
            tracer: None,
            now: 0,
            incoming_rem: [0; 2],
            trace_pending: Default::default(),
            cur_trace: [TraceId::NONE; 3],
        }
    }

    /// Turns lifecycle tracing on or off. While on, the node emits
    /// queue-enter, dispatch, and handler-end events and correlates each
    /// dispatched thread with the trace id of the message that created it.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer = if on {
            Some(Box::new(Tracer::new()))
        } else {
            None
        };
    }

    /// Whether lifecycle tracing is on.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Drains the buffered lifecycle events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<Event> {
        self.tracer.as_mut().map(|t| t.take()).unwrap_or_default()
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The node's fatal error, if it stopped.
    pub fn error(&self) -> Option<&NodeError> {
        self.error.as_ref()
    }

    /// Whether the node executed `HALT`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the node has any runnable or pending work.
    pub fn has_work(&self) -> bool {
        if self.error.is_some() || self.halted {
            return false;
        }
        self.bg_runnable
            || self.active[0]
            || self.active[1]
            || !self.queues[0].is_empty()
            || !self.queues[1].is_empty()
    }

    /// Whether messages remain queued (useful to detect work stranded at a
    /// halted or errored node).
    pub fn queued_words(&self) -> usize {
        self.queues[0].len() + self.queues[1].len()
    }

    /// Host access: reads a memory word.
    pub fn read_mem(&self, addr: u32) -> Word {
        self.mem.read(addr)
    }

    /// Host access: writes a memory word.
    pub fn write_mem(&mut self, addr: u32, word: Word) {
        self.mem.write(addr, word);
    }

    /// Host access: bulk-reads memory.
    pub fn dump_mem(&self, base: u32, len: u32) -> Vec<Word> {
        self.mem.dump(base, len)
    }

    /// Installs a fault vector: the handler's `ip` word at the vector slot.
    pub fn install_vector(&mut self, kind: FaultKind, handler_ip: u32) {
        self.mem.write(kind.vector(), Word::ip(handler_ip));
    }

    /// Offers one arriving word to a message queue, returning `false` when
    /// the queue is full (the network must hold the word — backpressure).
    pub fn deliver(&mut self, priority: MsgPriority, word: Word) -> bool {
        let now = self.now;
        self.deliver_traced(priority, word, TraceId::NONE, now)
    }

    /// [`Self::deliver`] with trace correlation: `trace` is the id of the
    /// message the word belongs to and `now` the delivery cycle. When the
    /// word opens a new message (the previous one's words have all arrived)
    /// a queue-enter event is emitted and `trace` is remembered so the
    /// eventual dispatch can name it.
    pub fn deliver_traced(
        &mut self,
        priority: MsgPriority,
        word: Word,
        trace: TraceId,
        now: u64,
    ) -> bool {
        let q = priority.index();
        if !self.queues[q].push(word) {
            return false;
        }
        if let Some(tracer) = &mut self.tracer {
            if self.incoming_rem[q] == 0 {
                // Header word of a new message; `msg` headers carry the
                // total length, anything else is treated as one word (it
                // will surface as a queue desync at dispatch).
                let len = if word.tag() == Tag::Msg {
                    let len = MsgHeader::from_word(word).len;
                    // Checksum mode: the wire message carries one trailer
                    // word beyond the header's stated length.
                    if self.config.checksum_msgs {
                        len + 1
                    } else {
                        len
                    }
                } else {
                    1
                };
                self.incoming_rem[q] = len.saturating_sub(1);
                self.trace_pending[q].push_back(trace);
                tracer.emit(
                    now,
                    EventKind::QueueEnter {
                        id: trace,
                        node: self.id,
                        priority,
                    },
                );
            } else {
                self.incoming_rem[q] -= 1;
            }
        }
        true
    }

    /// Queue occupancy high-water mark.
    pub fn queue_high_water(&self, priority: MsgPriority) -> usize {
        self.queues[priority.index()].high_water()
    }

    /// Deliveries refused because the queue was full (each refusal leaves
    /// the word parked in the network's ejection FIFO — backpressure).
    pub fn queue_refusals(&self, priority: MsgPriority) -> u64 {
        self.queues[priority.index()].refusals()
    }

    fn schedule(&self) -> Decision {
        if self.error.is_some() || self.halted {
            return Decision::Stopped;
        }
        if self.active[1] {
            return Decision::Exec(Priority::P1);
        }
        if self.dispatchable(1) {
            return Decision::Dispatch(MsgPriority::P1);
        }
        if self.active[0] {
            return Decision::Exec(Priority::P0);
        }
        if self.dispatchable(0) {
            return Decision::Dispatch(MsgPriority::P0);
        }
        if self.bg_runnable {
            return Decision::Exec(Priority::Background);
        }
        Decision::Idle
    }

    /// Whether queue `q`'s head message may dispatch now. Normally the
    /// header's arrival alone is enough (dispatch-on-arrival, §2.1; late
    /// argument reads stall in [`crate::exec`]). In checksum mode dispatch
    /// instead waits for the whole message plus its trailer word, because
    /// validation must read every word before a handler may see any of
    /// them. A desynchronized head (non-`msg` word) dispatches immediately
    /// in both modes so the error surfaces.
    fn dispatchable(&self, q: usize) -> bool {
        match self.queues[q].header() {
            None => false,
            Some(Err(_)) => true,
            Some(Ok(h)) => {
                !self.config.checksum_msgs || self.queues[q].get(h.len as usize).is_some()
            }
        }
    }

    /// Advances the node at cycle `now`. A cycle-scanning engine calls this
    /// once per machine cycle; an event-driven engine calls it only at the
    /// cycles the returned [`TickOutcome`] names (plus wake-ups on
    /// deliveries). Generic over the port so monomorphized engines inline
    /// the injection path.
    pub fn tick<P: NetPort + ?Sized>(&mut self, now: u64, net: &mut P) -> TickOutcome {
        self.now = now;
        if now < self.busy_until {
            return TickOutcome::Busy {
                until: self.busy_until,
            };
        }
        match self.schedule() {
            Decision::Stopped => TickOutcome::Stopped,
            Decision::Idle => {
                self.stats.add_cycles(StatClass::Idle, 1);
                self.busy_until = now + 1;
                TickOutcome::Idle
            }
            Decision::Dispatch(mp) => {
                self.dispatch(mp, now);
                self.outcome()
            }
            Decision::Exec(priority) => {
                self.exec_slice(priority, now, net);
                self.outcome()
            }
        }
    }

    /// Outcome after a dispatch or execution step: stopped if it raised a
    /// fatal error, otherwise busy until `busy_until`.
    fn outcome(&self) -> TickOutcome {
        if self.error.is_some() || self.halted {
            TickOutcome::Stopped
        } else {
            TickOutcome::Busy {
                until: self.busy_until,
            }
        }
    }

    /// Attributes `cycles` idle cycles in one batch. Event-driven engines
    /// park a node after an [`TickOutcome::Idle`] tick instead of ticking it
    /// every cycle; on wake-up they repay the skipped cycles here so the
    /// per-class cycle accounting matches a cycle-scanning engine exactly.
    pub fn credit_idle(&mut self, cycles: u64) {
        self.stats.add_cycles(StatClass::Idle, cycles);
    }

    /// Unwinds the idle tick the node just took (engine-internal). The
    /// parallel engine's quantum coordinator detects quiescence a few
    /// cycles late; a node that was still scheduled when the machine went
    /// quiet takes exactly one [`TickOutcome::Idle`] tick in that overrun
    /// window, which the sequential engines never run. An idle tick's whole
    /// effect on the node is one idle stat cycle and the `busy_until` bump,
    /// so undoing both restores the pre-tick state bit for bit.
    pub fn undo_idle_tick(&mut self) {
        debug_assert!(
            self.stats.class_cycles(StatClass::Idle) > 0 && self.busy_until > 0,
            "undo_idle_tick without a preceding idle tick"
        );
        self.stats.cycles[StatClass::Idle.index()] -= 1;
        self.busy_until -= 1;
    }

    fn dispatch(&mut self, mp: MsgPriority, now: u64) {
        let q = mp.index();
        let header = match self.queues[q].header() {
            Some(Ok(h)) => h,
            Some(Err(w)) => {
                // Fatal: no handler can run off a desynchronized queue, so
                // the fault is counted (for the statistics report) and the
                // node halts with a machine-level error rather than vectoring.
                self.stats.count_fault(FaultKind::QueueDesync);
                self.error = Some(NodeError::QueueDesync(w));
                return;
            }
            None => unreachable!("dispatch without header"),
        };
        if self.config.checksum_msgs && !self.verify_checksum(q, header, now) {
            return;
        }
        if header.ip as usize >= self.program.code.len() {
            self.error = Some(NodeError::BadHandler(header.ip));
            return;
        }
        let priority = if mp == MsgPriority::P0 {
            Priority::P0
        } else {
            Priority::P1
        };
        let head_slot = self.queues[q].head_slot() as u32;
        let bank = self.regs.bank_mut(priority);
        bank.ip = header.ip;
        // A3 := descriptor of the message, inside the queue window.
        bank.a[3] = SegDesc::new(QUEUE_VBASE[q] + head_slot, header.len).to_word();
        self.active[q] = true;
        // The handler's A3 window covers the header's `len` words; in
        // checksum mode the context length additionally counts the trailer
        // so `end_thread` pops the whole wire message.
        let wire_len = if self.config.checksum_msgs {
            header.len + 1
        } else {
            header.len
        };
        self.msg_ctx[q] = Some(MsgCtx { len: wire_len });
        self.class[priority.index()] = StatClass::Compute;
        self.cur_handler[priority.index()] = header.ip;
        self.compose[priority.index()].clear();
        self.commit_pending[priority.index()] = false;
        if let Some(tracer) = &mut self.tracer {
            let id = self.trace_pending[q].pop_front().unwrap_or(TraceId::NONE);
            self.cur_trace[priority.index()] = id;
            tracer.emit(
                now,
                EventKind::Dispatch {
                    id,
                    node: self.id,
                    handler: header.ip,
                },
            );
        }
        self.stats.threads += 1;
        self.stats.msgs_received += 1;
        let slot = self.stats.handlers.entry_slot(header.ip);
        self.handler_slot[priority.index()] = slot;
        let entry = self.stats.handlers.slot_mut(slot);
        entry.threads += 1;
        entry.msg_words += u64::from(header.len);
        let cost = self.config.timing.dispatch;
        self.stats.add_cycles(StatClass::Dispatch, cost);
        self.busy_until = now + cost;
    }

    /// Checksum-mode dispatch validation: recomputes the FNV-1a fold over
    /// the head message's `len` words and compares it with the trailer word
    /// at offset `len` (guaranteed present — [`Self::dispatchable`] held
    /// dispatch until full arrival). On mismatch the message is dropped
    /// whole: the fault is counted, the dispatch cost still charged (the
    /// hardware spent those cycles reading the message), and recovery is
    /// left to sender-side retry. Returns whether the message is intact.
    fn verify_checksum(&mut self, q: usize, header: MsgHeader, now: u64) -> bool {
        let len = header.len as usize;
        let mut acc = jm_fault::CHECKSUM_INIT;
        for offset in 0..len {
            let word = self.queues[q]
                .get(offset)
                .expect("dispatchable checked full arrival");
            acc = jm_fault::checksum_fold(acc, word);
        }
        let trailer = self.queues[q]
            .get(len)
            .expect("dispatchable checked trailer arrival");
        if trailer == Word::new(Tag::Int, acc) {
            return true;
        }
        self.stats.count_fault(FaultKind::CorruptMessage);
        self.queues[q].pop_msg(len + 1);
        if let Some(tracer) = &mut self.tracer {
            let id = self.trace_pending[q].pop_front().unwrap_or(TraceId::NONE);
            tracer.emit(
                now,
                EventKind::Fault {
                    id,
                    node: self.id,
                    what: FaultEvent::DropMessage,
                },
            );
        }
        let cost = self.config.timing.dispatch;
        self.stats.add_cycles(StatClass::Dispatch, cost);
        self.busy_until = now + cost;
        false
    }

    /// Ends the thread at `priority`: pops its message (if any) and clears
    /// activity. Background suspension parks the background thread for good.
    pub(crate) fn end_thread(&mut self, priority: Priority) {
        if !self.compose[priority.index()].is_empty() {
            self.error = Some(NodeError::OpenMessage);
            return;
        }
        match priority {
            Priority::Background => {
                self.bg_runnable = false;
            }
            Priority::P0 | Priority::P1 => {
                let q = if priority == Priority::P0 { 0 } else { 1 };
                if let Some(ctx) = self.msg_ctx[q].take() {
                    self.queues[q].pop_msg(ctx.len as usize);
                    if let Some(tracer) = &mut self.tracer {
                        let pi = priority.index();
                        tracer.emit(
                            self.now,
                            EventKind::HandlerEnd {
                                id: self.cur_trace[pi],
                                node: self.id,
                                handler: self.cur_handler[pi],
                            },
                        );
                        self.cur_trace[pi] = TraceId::NONE;
                    }
                }
                self.active[q] = false;
            }
        }
        self.in_fault[priority.index()] = false;
        self.class[priority.index()] = StatClass::Compute;
    }

    /// Raises a fault in `priority`'s bank: saves registers to the staging
    /// frame, latches `FIP`/`FVAL`/`FADDR`, and vectors. Returns the cost,
    /// or stops the node if the vector is not installed or a fault handler
    /// faulted.
    pub(crate) fn raise_fault(
        &mut self,
        priority: Priority,
        kind: FaultKind,
        val: Word,
        addr: Word,
    ) -> u64 {
        self.stats.count_fault(kind);
        let bank_index = priority.index();
        let ip = self.regs.bank(priority).ip;
        if self.in_fault[bank_index] {
            self.error = Some(NodeError::NestedFault { kind, ip });
            return 0;
        }
        let vector = self.mem.read(kind.vector());
        if vector.tag() != Tag::Ip || vector.bits() as usize >= self.program.code.len() {
            self.error = Some(NodeError::UnhandledFault { kind, ip });
            return 0;
        }
        // Hardware staging save.
        let bank = self.regs.bank(priority);
        let mut frame = [Word::NIL; 9];
        frame[..4].copy_from_slice(&bank.r);
        frame[4..8].copy_from_slice(&bank.a);
        frame[8] = Word::ip(ip);
        self.staging[bank_index] = frame;
        self.fip = ip;
        self.fval = val;
        self.faddr = addr;
        self.in_fault[bank_index] = true;
        self.regs.bank_mut(priority).ip = vector.bits();
        // Attribute fault entry according to its nature.
        let class = match kind {
            FaultKind::CFutRead | FaultKind::FutUse => StatClass::Sync,
            FaultKind::XlateMiss => StatClass::Xlate,
            _ => self.class[bank_index],
        };
        self.class[bank_index] = class;
        self.config.timing.fault_entry
    }

    /// Reads a staging-window word (memory-mapped at [`STAGING_VBASE`]).
    pub(crate) fn staging_read(&self, addr: u32) -> Option<Word> {
        let off = addr - STAGING_VBASE;
        let bank = (off / STAGING_FRAME) as usize;
        let slot = (off % STAGING_FRAME) as usize;
        if bank < 3 && slot < 9 {
            Some(self.staging[bank][slot])
        } else {
            None
        }
    }

    /// Writes a staging-window word.
    pub(crate) fn staging_write(&mut self, addr: u32, word: Word) -> bool {
        let off = addr - STAGING_VBASE;
        let bank = (off / STAGING_FRAME) as usize;
        let slot = (off % STAGING_FRAME) as usize;
        if bank < 3 && slot < 9 {
            self.staging[bank][slot] = word;
            true
        } else {
            false
        }
    }
}
