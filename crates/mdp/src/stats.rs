//! Per-node statistics — the "statistics hardware" the paper wished the MDP
//! had (§5).

use jm_isa::consts::FaultKind;
use jm_isa::instr::StatClass;

/// Aggregate statistics for one handler entry point (one "thread type" in
/// the paper's Table 4 terminology).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandlerStats {
    /// Times a thread was created at this entry point.
    pub threads: u64,
    /// Instructions executed by those threads.
    pub instructions: u64,
    /// Total message words consumed by those threads (for mean length).
    pub msg_words: u64,
}

impl HandlerStats {
    /// Mean instructions per thread.
    pub fn instr_per_thread(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.instructions as f64 / self.threads as f64
        }
    }

    /// Mean message length in words.
    pub fn mean_msg_len(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.msg_words as f64 / self.threads as f64
        }
    }
}

/// Per-handler statistics table, keyed by entry instruction index.
///
/// Backed by parallel vectors rather than a hash map: the executor bumps a
/// handler's instruction count on *every retired instruction*, and a node
/// only ever runs a handful of distinct handlers, so a cached slot index
/// (see `MdpNode::handler_slot`) turns the hot-path update into a plain
/// indexed add. Slots are assigned in first-touch order and never move.
#[derive(Debug, Clone, Default, Eq)]
pub struct HandlerMap {
    ips: Vec<u32>,
    stats: Vec<HandlerStats>,
}

impl HandlerMap {
    /// Slot index for `ip`, creating a zeroed entry on first touch.
    pub fn entry_slot(&mut self, ip: u32) -> usize {
        match self.ips.iter().position(|&k| k == ip) {
            Some(slot) => slot,
            None => {
                self.ips.push(ip);
                self.stats.push(HandlerStats::default());
                self.ips.len() - 1
            }
        }
    }

    /// The entry for `ip`, created zeroed if absent.
    pub fn entry(&mut self, ip: u32) -> &mut HandlerStats {
        let slot = self.entry_slot(ip);
        &mut self.stats[slot]
    }

    /// Direct access by a slot index previously returned by
    /// [`HandlerMap::entry_slot`] (the per-instruction hot path).
    #[inline]
    pub fn slot_mut(&mut self, slot: usize) -> &mut HandlerStats {
        &mut self.stats[slot]
    }

    /// The entry for `ip`, if any instruction or dispatch touched it.
    pub fn get(&self, ip: &u32) -> Option<&HandlerStats> {
        self.ips
            .iter()
            .position(|k| k == ip)
            .map(|slot| &self.stats[slot])
    }

    /// Inserts or replaces the entry for `ip`.
    pub fn insert(&mut self, ip: u32, stats: HandlerStats) {
        let slot = self.entry_slot(ip);
        self.stats[slot] = stats;
    }

    /// Iterates `(ip, stats)` pairs in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &HandlerStats)> {
        self.ips.iter().copied().zip(self.stats.iter())
    }

    /// Number of distinct handlers recorded.
    pub fn len(&self) -> usize {
        self.ips.len()
    }

    /// Whether no handler was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }
}

impl std::ops::Index<&u32> for HandlerMap {
    type Output = HandlerStats;
    fn index(&self, ip: &u32) -> &HandlerStats {
        self.get(ip).expect("no stats recorded for handler")
    }
}

// Equality ignores slot order (first-touch order can differ between a
// per-node table and a machine-level merge).
impl PartialEq for HandlerMap {
    fn eq(&self, other: &HandlerMap) -> bool {
        self.ips.len() == other.ips.len() && self.iter().all(|(ip, h)| other.get(&ip) == Some(h))
    }
}

/// Counters for one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Cycles attributed to each [`StatClass`].
    pub cycles: [u64; 7],
    /// Instructions retired.
    pub instructions: u64,
    /// Tasks dispatched from the message queues.
    pub threads: u64,
    /// `SEND` instructions retired.
    pub sends: u64,
    /// Send faults (injection refused; instruction retried).
    pub send_faults: u64,
    /// Messages completed (tail word injected).
    pub msgs_sent: u64,
    /// Messages consumed from the queues.
    pub msgs_received: u64,
    /// `XLATE`/`PROBE` lookups.
    pub xlates: u64,
    /// Lookups that missed.
    pub xlate_misses: u64,
    /// Faults raised, by kind.
    pub faults: [u64; 11],
    /// Cycles stalled waiting for message words to arrive.
    pub arrival_stalls: u64,
    /// Per-handler thread statistics, keyed by entry instruction index.
    pub handlers: HandlerMap,
}

impl NodeStats {
    /// Total cycles accounted.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Cycles attributed to one class.
    pub fn class_cycles(&self, class: StatClass) -> u64 {
        self.cycles[class.index()]
    }

    /// Adds cycles to a class.
    #[inline]
    pub fn add_cycles(&mut self, class: StatClass, cycles: u64) {
        self.cycles[class.index()] += cycles;
    }

    /// Records a fault.
    #[inline]
    pub fn count_fault(&mut self, kind: FaultKind) {
        self.faults[kind.vector() as usize] += 1;
    }

    /// Fault count for one kind.
    pub fn fault_count(&self, kind: FaultKind) -> u64 {
        self.faults[kind.vector() as usize]
    }

    /// Merges another node's counters into this one (machine-level totals).
    pub fn merge(&mut self, other: &NodeStats) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
        self.instructions += other.instructions;
        self.threads += other.threads;
        self.sends += other.sends;
        self.send_faults += other.send_faults;
        self.msgs_sent += other.msgs_sent;
        self.msgs_received += other.msgs_received;
        self.xlates += other.xlates;
        self.xlate_misses += other.xlate_misses;
        for (a, b) in self.faults.iter_mut().zip(other.faults.iter()) {
            *a += b;
        }
        self.arrival_stalls += other.arrival_stalls;
        for (ip, h) in other.handlers.iter() {
            let entry = self.handlers.entry(ip);
            entry.threads += h.threads;
            entry.instructions += h.instructions;
            entry.msg_words += h.msg_words;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_accounting() {
        let mut s = NodeStats::default();
        s.add_cycles(StatClass::Compute, 10);
        s.add_cycles(StatClass::Idle, 5);
        assert_eq!(s.class_cycles(StatClass::Compute), 10);
        assert_eq!(s.total_cycles(), 15);
    }

    #[test]
    fn handler_means() {
        let h = HandlerStats {
            threads: 4,
            instructions: 100,
            msg_words: 12,
        };
        assert_eq!(h.instr_per_thread(), 25.0);
        assert_eq!(h.mean_msg_len(), 3.0);
        assert_eq!(HandlerStats::default().instr_per_thread(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = NodeStats::default();
        let mut b = NodeStats::default();
        a.instructions = 5;
        b.instructions = 7;
        b.count_fault(FaultKind::CFutRead);
        b.handlers.insert(
            3,
            HandlerStats {
                threads: 1,
                instructions: 9,
                msg_words: 2,
            },
        );
        a.merge(&b);
        assert_eq!(a.instructions, 12);
        assert_eq!(a.fault_count(FaultKind::CFutRead), 1);
        assert_eq!(a.handlers[&3].instructions, 9);
    }
}
