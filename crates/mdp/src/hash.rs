//! Deterministic per-node state digests for the replay layer.
//!
//! The replay log stores one FNV-1a digest per node per checkpoint, split
//! into four architectural components so a divergence report can name the
//! part of the node that first disagreed. The fold deliberately excludes
//! observability state that differs between cycle-exact engines without
//! being architecturally visible: statistics, tracers, the `now` timestamp
//! of the most recent tick, and the handler-slot attribution cache. It also
//! folds `busy_until` relative to the checkpoint cycle, because a parked
//! event-driven node legitimately carries a stale absolute value.

use crate::node::MdpNode;
use jm_isa::word::Word;
use jm_trace::Fnv1a;

/// Folds one tagged word (tag bits then payload bits).
pub(crate) fn fold_word(h: &mut Fnv1a, w: Word) {
    h.write_u8(w.tag().bits());
    h.write_u32(w.bits());
}

impl MdpNode {
    /// The four per-node component digests at checkpoint cycle `at`, in a
    /// fixed reporting order: register state, message queues, memory, and
    /// control (scheduler/fault/translation) state.
    pub fn state_components(&self, at: u64) -> [(&'static str, u64); 4] {
        [
            ("regs", self.hash_regs()),
            ("queues", self.hash_queues()),
            ("mem", self.hash_mem()),
            ("ctl", self.hash_ctl(at)),
        ]
    }

    /// Digest of the triple-banked register file and the staging frames.
    fn hash_regs(&self) -> u64 {
        let mut h = Fnv1a::new();
        for p in [
            jm_isa::reg::Priority::Background,
            jm_isa::reg::Priority::P0,
            jm_isa::reg::Priority::P1,
        ] {
            let bank = self.regs.bank(p);
            for w in bank.r.iter().chain(bank.a.iter()) {
                fold_word(&mut h, *w);
            }
            h.write_u32(bank.ip);
        }
        for frame in &self.staging {
            for w in frame {
                fold_word(&mut h, *w);
            }
        }
        h.finish()
    }

    /// Digest of both hardware message queues and the per-priority message
    /// contexts (high-water marks and refusal counters are statistics and
    /// stay out).
    fn hash_queues(&self) -> u64 {
        let mut h = Fnv1a::new();
        for q in &self.queues {
            q.fold_state(&mut h);
        }
        for ctx in &self.msg_ctx {
            match ctx {
                Some(c) => {
                    h.write_u8(1);
                    h.write_u32(c.len);
                }
                None => h.write_u8(0),
            }
        }
        h.finish()
    }

    /// Digest of internal SRAM plus every allocated DRAM page.
    fn hash_mem(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.mem.fold_state(&mut h);
        h.finish()
    }

    /// Digest of scheduler, fault, composition, and translation state.
    /// `busy_until` is folded relative to `at` so a parked event-driven
    /// node (whose absolute stamp is stale but in the past) hashes equal
    /// to a scanned one.
    fn hash_ctl(&self, at: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u8(u8::from(self.bg_runnable));
        h.write_u8(u8::from(self.active[0]));
        h.write_u8(u8::from(self.active[1]));
        for c in self.class {
            h.write_u8(c.index() as u8);
        }
        for ip in self.cur_handler {
            h.write_u32(ip);
        }
        for buf in &self.compose {
            h.write_u32(buf.len() as u32);
            for w in buf {
                fold_word(&mut h, *w);
            }
        }
        for b in self.commit_pending {
            h.write_u8(u8::from(b));
        }
        for b in self.in_fault {
            h.write_u8(u8::from(b));
        }
        h.write_u32(self.fip);
        fold_word(&mut h, self.fval);
        fold_word(&mut h, self.faddr);
        h.write_u64(self.busy_until.saturating_sub(at));
        h.write_u8(u8::from(self.halted));
        match &self.error {
            Some(e) => {
                h.write_u8(1);
                h.write(format!("{e:?}").as_bytes());
            }
            None => h.write_u8(0),
        }
        self.xlate.fold_state(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MdpConfig;
    use jm_asm::Program;
    use jm_isa::instr::MsgPriority;
    use jm_isa::node::{MeshDims, NodeId};
    use std::sync::Arc;

    fn node() -> MdpNode {
        MdpNode::new(
            NodeId(0),
            MeshDims::new(2, 2, 1),
            Arc::new(Program::default()),
            MdpConfig::default(),
            false,
        )
    }

    #[test]
    fn components_are_stable_and_state_sensitive() {
        let a = node();
        let b = node();
        assert_eq!(a.state_components(0), b.state_components(0));

        // A memory write moves only the mem component.
        let mut c = node();
        c.write_mem(100, Word::int(7));
        let before = a.state_components(0);
        let after = c.state_components(0);
        assert_eq!(before[0], after[0]);
        assert_eq!(before[1], after[1]);
        assert_ne!(before[2].1, after[2].1);
        assert_eq!(before[3], after[3]);

        // A queued word moves only the queues component.
        let mut d = node();
        d.deliver(MsgPriority::P0, Word::int(1));
        let queued = d.state_components(0);
        assert_eq!(before[0], queued[0]);
        assert_ne!(before[1].1, queued[1].1);
        assert_eq!(before[2], queued[2]);
    }

    #[test]
    fn busy_until_hashes_relative_to_checkpoint() {
        let mut a = node();
        let mut b = node();
        a.busy_until = 100;
        b.busy_until = 50;
        // Both stamps are in the past at their respective checkpoints, so
        // the relative fold (zero) agrees.
        assert_eq!(a.state_components(100), b.state_components(50));
        // A genuinely pending stamp differs.
        a.busy_until = 105;
        assert_ne!(a.state_components(100)[3].1, b.state_components(50)[3].1);
    }

    #[test]
    fn queue_hash_tracks_logical_order_across_wraparound() {
        let mut h1 = Fnv1a::new();
        let mut q1 = crate::queue::MsgQueue::new(4);
        q1.push(Word::int(1));
        q1.push(Word::int(2));
        q1.fold_state(&mut h1);

        // Same logical contents at a different ring position hash
        // differently only through the architecturally visible head slot.
        let mut q2 = crate::queue::MsgQueue::new(4);
        q2.push(Word::int(9));
        q2.pop_msg(1);
        q2.push(Word::int(1));
        q2.push(Word::int(2));
        let mut h2 = Fnv1a::new();
        q2.fold_state(&mut h2);
        assert_ne!(h1.finish(), h2.finish(), "head slot is visible via A3");
    }

    #[test]
    fn xlate_hash_includes_insertion_order() {
        let mut a = crate::xlate::XlateCache::new(4);
        a.enter(Word::sym(1), Word::int(10));
        a.enter(Word::sym(2), Word::int(20));
        let mut b = crate::xlate::XlateCache::new(4);
        b.enter(Word::sym(2), Word::int(20));
        b.enter(Word::sym(1), Word::int(10));
        let (mut ha, mut hb) = (Fnv1a::new(), Fnv1a::new());
        a.fold_state(&mut ha);
        b.fold_state(&mut hb);
        // Insertion order determines future evictions, so it is state.
        assert_ne!(ha.finish(), hb.finish());
    }
}
