//! Instruction semantics and timing: the execution engine.

use crate::config::{QUEUE_VBASE, STAGING_FRAME, STAGING_VBASE};
use crate::memory::Memory;
use crate::node::{InjectAck, MdpNode, NetPort, NodeError};
use jm_isa::consts::{FaultKind, MEM_WORDS};
use jm_isa::instr::{Alu1Op, AluOp, Cond, Instruction, MsgPriority};
use jm_isa::node::RouteWord;
use jm_isa::operand::{Dst, Index, MemRef, Special, Src};
use jm_isa::reg::Priority;
use jm_isa::tag::Tag;
use jm_isa::word::{SegDesc, Word};

/// Why an operand access could not complete this cycle.
enum Hazard {
    /// Data not available yet (message word in flight): retry next cycle.
    Stall,
    /// Processor fault: vector through the fault table.
    Fault(FaultKind, Word, Word),
}

/// How strictly a source read enforces presence tags.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReadLevel {
    /// No tag enforcement (`RTAG`/`WTAG`/`CHECK`, fault handlers).
    Raw,
    /// `MOVE`/`SEND` semantics: `cfut` faults, `fut` may be copied.
    Move,
    /// Computing use: both `cfut` and `fut` fault.
    Use,
}

/// Result of executing one instruction.
enum Step {
    /// Retired normally; continue at `next_ip`.
    Done { cost: u64, next_ip: u32 },
    /// Not retired (send fault or arrival stall); retry the instruction.
    Retry { cost: u64 },
    /// Thread ended (`SUSPEND`/`HALT`); bookkeeping already done.
    End { cost: u64 },
    /// A fault vectored; the bank IP now points at the handler.
    Vectored { cost: u64 },
    /// The node recorded a fatal [`NodeError`].
    Error,
}

impl MdpNode {
    /// Executes at the given priority for one instruction (plus any
    /// zero-cost `MARK`s preceding it).
    pub(crate) fn exec_slice<P: NetPort + ?Sized>(
        &mut self,
        priority: Priority,
        now: u64,
        net: &mut P,
    ) {
        let pi = priority.index();
        loop {
            let ip = self.regs.bank(priority).ip;
            let Some(&instr) = self.program.code.get(ip as usize) else {
                self.error = Some(NodeError::IpOutOfRange(ip));
                return;
            };
            if let Instruction::Mark { class } = instr {
                self.class[pi] = class;
                self.regs.bank_mut(priority).ip = ip + 1;
                continue;
            }
            let fetch_extra = if ip >= self.emem_code_from {
                self.config.timing.emem_fetch
            } else {
                0
            };
            let step = self.exec_one(priority, instr, ip, now, net);
            let retired = matches!(step, Step::Done { .. } | Step::End { .. });
            if retired {
                self.stats.instructions += 1;
                let mut slot = self.handler_slot[pi];
                if slot == usize::MAX {
                    slot = self.stats.handlers.entry_slot(self.cur_handler[pi]);
                    self.handler_slot[pi] = slot;
                }
                self.stats.handlers.slot_mut(slot).instructions += 1;
            }
            let cost = match step {
                Step::Done { cost, next_ip } => {
                    self.regs.bank_mut(priority).ip = next_ip;
                    cost
                }
                Step::Retry { cost } | Step::End { cost } | Step::Vectored { cost } => cost,
                Step::Error => return,
            };
            if self.error.is_some() {
                return;
            }
            let cost = (cost + fetch_extra).max(1);
            self.stats.add_cycles(self.class[pi], cost);
            self.busy_until = now + cost;
            return;
        }
    }

    fn read_special(&self, sp: Special, now: u64) -> Word {
        match sp {
            Special::Nnr => RouteWord::new(self.dims.coord(self.id)).to_word(),
            Special::Nid => Word::int(self.id.0 as i32),
            Special::NNodes => Word::int(self.dims.nodes() as i32),
            Special::Dims => Word::new(
                Tag::Route,
                u32::from(self.dims.x)
                    | (u32::from(self.dims.y) << 5)
                    | (u32::from(self.dims.z) << 10),
            ),
            Special::Cycle => Word::int(now as i32),
            Special::Fip => Word::ip(self.fip),
            Special::FVal => self.fval,
            Special::FAddr => self.faddr,
        }
    }

    /// Resolves a memory reference to an absolute address.
    #[inline]
    fn resolve_mem(&mut self, priority: Priority, m: MemRef) -> Result<u32, Hazard> {
        let bank = self.regs.bank(priority);
        let desc_word = bank.a[m.base.index()];
        if desc_word.tag() != Tag::Addr {
            return Err(Hazard::Fault(FaultKind::Bounds, desc_word, Word::NIL));
        }
        let desc = SegDesc::from_word(desc_word);
        let index = match m.index {
            Index::Disp(d) => d,
            Index::Reg(r) => {
                let w = bank.r[r.index()];
                if w.faults_on_use() {
                    let kind = if w.tag() == Tag::CFut {
                        FaultKind::CFutRead
                    } else {
                        FaultKind::FutUse
                    };
                    return Err(Hazard::Fault(kind, w, Word::NIL));
                }
                if w.tag() != Tag::Int || w.as_i32() < 0 {
                    return Err(Hazard::Fault(FaultKind::Bounds, w, desc_word));
                }
                w.bits()
            }
        };
        match desc.address(index) {
            Some(addr) => Ok(addr),
            None => Err(Hazard::Fault(
                FaultKind::Bounds,
                desc_word,
                Word::int(index as i32),
            )),
        }
    }

    /// Reads the word at an absolute address, charging region cost into
    /// `extra`. Queue-window reads stall until the word has arrived.
    #[inline]
    fn addressed_read(&mut self, addr: u32, extra: &mut u64) -> Result<Word, Hazard> {
        let t = &self.config.timing;
        if addr < MEM_WORDS {
            *extra += if Memory::is_internal(addr) {
                t.imem_operand
            } else {
                t.emem_operand
            };
            return Ok(self.mem.read(addr));
        }
        for (q, &base) in QUEUE_VBASE.iter().enumerate() {
            let cap = self.queues[q].capacity() as u32;
            // The window is twice the ring size: a message descriptor's
            // base is `head_slot`, so in-message offsets may run past the
            // ring end and wrap (read_slot reduces modulo the capacity).
            if addr >= base && addr < base + 2 * cap {
                *extra += t.queue_operand;
                return match self.queues[q].read_slot((addr - base) as usize) {
                    Some(word) => Ok(word),
                    None => {
                        self.stats.arrival_stalls += 1;
                        Err(Hazard::Stall)
                    }
                };
            }
        }
        if (STAGING_VBASE..STAGING_VBASE + 3 * STAGING_FRAME).contains(&addr) {
            if let Some(word) = self.staging_read(addr) {
                return Ok(word);
            }
        }
        Err(Hazard::Fault(
            FaultKind::Bounds,
            Word::int(addr as i32),
            Word::NIL,
        ))
    }

    /// Writes the word at an absolute address, charging region cost.
    #[inline]
    fn addressed_write(&mut self, addr: u32, word: Word, extra: &mut u64) -> Result<(), Hazard> {
        let t = &self.config.timing;
        if addr < MEM_WORDS {
            *extra += if Memory::is_internal(addr) {
                t.imem_operand
            } else {
                t.emem_operand
            };
            self.mem.write(addr, word);
            return Ok(());
        }
        if (STAGING_VBASE..STAGING_VBASE + 3 * STAGING_FRAME).contains(&addr)
            && self.staging_write(addr, word)
        {
            return Ok(());
        }
        // Queue windows are read-only to software.
        Err(Hazard::Fault(
            FaultKind::Bounds,
            Word::int(addr as i32),
            word,
        ))
    }

    #[inline]
    fn read_src(
        &mut self,
        priority: Priority,
        src: Src,
        level: ReadLevel,
        extra: &mut u64,
        now: u64,
    ) -> Result<Word, Hazard> {
        let t = &self.config.timing;
        let (word, addr) = match src {
            Src::D(r) => (self.regs.bank(priority).r[r.index()], Word::NIL),
            Src::A(a) => (self.regs.bank(priority).a[a.index()], Word::NIL),
            Src::Sp(sp) => (self.read_special(sp, now), Word::NIL),
            Src::Imm(w) => {
                if !(w.tag() == Tag::Int && (-128..128).contains(&w.as_i32())) {
                    *extra += t.imm_ext;
                }
                // Immediates are program text, not data: a `cfut` immediate
                // is how slots are (re)initialized, so it never faults as a
                // MOVE source. Computing uses still enforce tags below by
                // falling through.
                if level == ReadLevel::Move {
                    return Ok(w);
                }
                (w, Word::NIL)
            }
            Src::Mem(m) => {
                let addr = self.resolve_mem(priority, m)?;
                (self.addressed_read(addr, extra)?, Word::int(addr as i32))
            }
        };
        // Inside a fault handler the MDP masks presence-tag faults (a
        // nested fault would clobber the staging buffer), so handlers can
        // copy arbitrary words with plain MOVEs.
        let level = if self.in_fault[priority.index()] {
            ReadLevel::Raw
        } else {
            level
        };
        match level {
            ReadLevel::Raw => Ok(word),
            ReadLevel::Move => {
                if word.faults_on_read() {
                    Err(Hazard::Fault(FaultKind::CFutRead, word, addr))
                } else {
                    Ok(word)
                }
            }
            ReadLevel::Use => {
                if word.tag() == Tag::CFut {
                    Err(Hazard::Fault(FaultKind::CFutRead, word, addr))
                } else if word.tag() == Tag::Fut {
                    Err(Hazard::Fault(FaultKind::FutUse, word, addr))
                } else {
                    Ok(word)
                }
            }
        }
    }

    #[inline]
    fn write_dst(
        &mut self,
        priority: Priority,
        dst: Dst,
        word: Word,
        extra: &mut u64,
    ) -> Result<(), Hazard> {
        match dst {
            Dst::D(r) => {
                self.regs.bank_mut(priority).r[r.index()] = word;
                Ok(())
            }
            Dst::A(a) => {
                self.regs.bank_mut(priority).a[a.index()] = word;
                Ok(())
            }
            Dst::Mem(m) => {
                let addr = self.resolve_mem(priority, m)?;
                self.addressed_write(addr, word, extra)
            }
        }
    }

    #[inline]
    fn alu2(&self, op: AluOp, a: Word, b: Word) -> Result<Word, Hazard> {
        use AluOp::*;
        let mismatch = |w: Word| Hazard::Fault(FaultKind::TagMismatch, w, Word::NIL);
        match op {
            Eq => return Ok(Word::bool(a == b)),
            Ne => return Ok(Word::bool(a != b)),
            And | Or | Xor if a.tag() == Tag::Bool && b.tag() == Tag::Bool => {
                let v = match op {
                    And => a.as_bool() && b.as_bool(),
                    Or => a.as_bool() || b.as_bool(),
                    _ => a.as_bool() != b.as_bool(),
                };
                return Ok(Word::bool(v));
            }
            _ => {}
        }
        if a.tag() != Tag::Int {
            return Err(mismatch(a));
        }
        if b.tag() != Tag::Int {
            return Err(mismatch(b));
        }
        let (x, y) = (a.as_i32(), b.as_i32());
        let value = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(Hazard::Fault(FaultKind::DivZero, a, b));
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(Hazard::Fault(FaultKind::DivZero, a, b));
                }
                x.wrapping_rem(y)
            }
            And => ((x as u32) & (y as u32)) as i32,
            Or => ((x as u32) | (y as u32)) as i32,
            Xor => ((x as u32) ^ (y as u32)) as i32,
            Lsh => {
                if y >= 32 || y <= -32 {
                    0
                } else if y >= 0 {
                    ((x as u32) << y) as i32
                } else {
                    ((x as u32) >> (-y)) as i32
                }
            }
            Ash => {
                if y >= 32 {
                    0
                } else if y <= -32 {
                    x >> 31
                } else if y >= 0 {
                    ((x as u32) << y) as i32
                } else {
                    x >> (-y)
                }
            }
            Lt => return Ok(Word::bool(x < y)),
            Le => return Ok(Word::bool(x <= y)),
            Gt => return Ok(Word::bool(x > y)),
            Ge => return Ok(Word::bool(x >= y)),
            Min => x.min(y),
            Max => x.max(y),
            Eq | Ne => unreachable!(),
        };
        Ok(Word::int(value))
    }

    fn exec_one<P: NetPort + ?Sized>(
        &mut self,
        priority: Priority,
        instr: Instruction,
        ip: u32,
        now: u64,
        net: &mut P,
    ) -> Step {
        let pi = priority.index();
        let base = self.config.timing.base;
        let mut extra = 0u64;

        macro_rules! hazard {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(Hazard::Stall) => return Step::Retry { cost: 1 },
                    Err(Hazard::Fault(kind, val, addr)) => {
                        let cost = self.raise_fault(priority, kind, val, addr);
                        if self.error.is_some() {
                            return Step::Error;
                        }
                        // The detecting instruction spends its own cycles
                        // (base + operand access) before the vector entry:
                        // a cfut read costs 2 (detect) + 4 (vector) = the
                        // paper's 6-cycle failure (Table 2).
                        return Step::Vectored {
                            cost: cost + base + extra,
                        };
                    }
                }
            };
        }

        match instr {
            Instruction::Mark { .. } => unreachable!("handled in exec_slice"),
            Instruction::Move { dst, src } => {
                let v = hazard!(self.read_src(priority, src, ReadLevel::Move, &mut extra, now));
                hazard!(self.write_dst(priority, dst, v, &mut extra));
                Step::Done {
                    cost: base + extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Alu { op, dst, a, b } => {
                let av = hazard!(self.read_src(priority, a, ReadLevel::Use, &mut extra, now));
                let bv = hazard!(self.read_src(priority, b, ReadLevel::Use, &mut extra, now));
                let out = hazard!(self.alu2(op, av, bv));
                hazard!(self.write_dst(priority, dst, out, &mut extra));
                let op_extra = match op {
                    AluOp::Mul => self.config.timing.mul,
                    AluOp::Div | AluOp::Rem => self.config.timing.div,
                    _ => 0,
                };
                Step::Done {
                    cost: base + extra + op_extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Alu1 { op, dst, src } => {
                let v = hazard!(self.read_src(priority, src, ReadLevel::Use, &mut extra, now));
                let out = match op {
                    Alu1Op::Neg => {
                        if v.tag() != Tag::Int {
                            hazard!(Err(Hazard::Fault(FaultKind::TagMismatch, v, Word::NIL)))
                        } else {
                            Word::int(v.as_i32().wrapping_neg())
                        }
                    }
                    Alu1Op::Not => {
                        if v.tag() != Tag::Bool {
                            hazard!(Err(Hazard::Fault(FaultKind::TagMismatch, v, Word::NIL)))
                        } else {
                            Word::bool(!v.as_bool())
                        }
                    }
                    Alu1Op::Inv => {
                        if v.tag() != Tag::Int {
                            hazard!(Err(Hazard::Fault(FaultKind::TagMismatch, v, Word::NIL)))
                        } else {
                            Word::int(!v.as_i32())
                        }
                    }
                };
                hazard!(self.write_dst(priority, dst, out, &mut extra));
                Step::Done {
                    cost: base + extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Br { off } => Step::Done {
                cost: base + self.config.timing.branch_taken,
                next_ip: (ip as i64 + 1 + off as i64) as u32,
            },
            Instruction::Bc { cond, src, off } => {
                let v = hazard!(self.read_src(priority, src, ReadLevel::Use, &mut extra, now));
                let taken = match cond {
                    Cond::True | Cond::False => {
                        if v.tag() != Tag::Bool {
                            hazard!(Err(Hazard::Fault(FaultKind::TagMismatch, v, Word::NIL)))
                        } else {
                            (cond == Cond::True) == v.as_bool()
                        }
                    }
                    Cond::Zero | Cond::NonZero => {
                        if v.tag() != Tag::Int {
                            hazard!(Err(Hazard::Fault(FaultKind::TagMismatch, v, Word::NIL)))
                        } else {
                            (cond == Cond::Zero) == (v.as_i32() == 0)
                        }
                    }
                };
                let (cost, next_ip) = if taken {
                    (
                        base + extra + self.config.timing.branch_taken,
                        (ip as i64 + 1 + off as i64) as u32,
                    )
                } else {
                    (base + extra, ip + 1)
                };
                Step::Done { cost, next_ip }
            }
            Instruction::Jmp { target } => {
                let v = hazard!(self.read_src(priority, target, ReadLevel::Use, &mut extra, now));
                if v.tag() != Tag::Ip && v.tag() != Tag::Int {
                    hazard!(Err(Hazard::Fault(FaultKind::TagMismatch, v, Word::NIL)))
                }
                Step::Done {
                    cost: base + extra + self.config.timing.jump,
                    next_ip: v.bits(),
                }
            }
            Instruction::Jal { link, off } => {
                self.regs.bank_mut(priority).r[link.index()] = Word::ip(ip + 1);
                Step::Done {
                    cost: base + self.config.timing.jump,
                    next_ip: (ip as i64 + 1 + off as i64) as u32,
                }
            }
            Instruction::Send {
                priority: mp,
                a,
                b,
                end,
            } => self.exec_send(priority, mp, a, b, end, now, net),
            Instruction::Suspend => match priority {
                Priority::Background => {
                    self.end_thread(priority);
                    Step::End { cost: base }
                }
                Priority::P0 | Priority::P1 => {
                    let q = if priority == Priority::P0 { 0 } else { 1 };
                    if self.msg_ctx[q].is_some() && !self.queues[q].head_complete() {
                        self.stats.arrival_stalls += 1;
                        return Step::Retry { cost: 1 };
                    }
                    self.end_thread(priority);
                    Step::End { cost: base }
                }
            },
            Instruction::Resume => {
                let frame = self.staging[pi];
                let staged_ip = frame[8];
                if staged_ip.tag() != Tag::Ip {
                    self.error = Some(NodeError::BadResume(staged_ip));
                    return Step::Error;
                }
                let bank = self.regs.bank_mut(priority);
                bank.r.copy_from_slice(&frame[..4]);
                bank.a.copy_from_slice(&frame[4..8]);
                self.in_fault[pi] = false;
                Step::Done {
                    cost: base + self.config.timing.resume_extra,
                    next_ip: staged_ip.bits(),
                }
            }
            Instruction::Rtag { dst, src } => {
                let v = hazard!(self.read_src(priority, src, ReadLevel::Raw, &mut extra, now));
                hazard!(self.write_dst(
                    priority,
                    dst,
                    Word::int(i32::from(v.tag().bits())),
                    &mut extra
                ));
                Step::Done {
                    cost: base + extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Wtag { dst, src, tag } => {
                let v = hazard!(self.read_src(priority, src, ReadLevel::Raw, &mut extra, now));
                let t = hazard!(self.read_src(priority, tag, ReadLevel::Use, &mut extra, now));
                if t.tag() != Tag::Int {
                    hazard!(Err(Hazard::Fault(FaultKind::TagMismatch, t, Word::NIL)))
                }
                let new_tag = Tag::from_bits((t.bits() & 0xf) as u8);
                hazard!(self.write_dst(priority, dst, v.retagged(new_tag), &mut extra));
                Step::Done {
                    cost: base + extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Check { dst, src, tag } => {
                let v = hazard!(self.read_src(priority, src, ReadLevel::Raw, &mut extra, now));
                hazard!(self.write_dst(priority, dst, Word::bool(v.tag() == tag), &mut extra));
                Step::Done {
                    cost: base + extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Enter { key, value } => {
                let k = hazard!(self.read_src(priority, key, ReadLevel::Raw, &mut extra, now));
                let v = hazard!(self.read_src(priority, value, ReadLevel::Raw, &mut extra, now));
                self.xlate.enter(k, v);
                Step::Done {
                    cost: base + extra + self.config.timing.enter_extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Xlate { dst, key } => {
                let k = hazard!(self.read_src(priority, key, ReadLevel::Raw, &mut extra, now));
                self.stats.xlates += 1;
                match self.xlate.xlate(k) {
                    Some(v) => {
                        hazard!(self.write_dst(priority, dst, v, &mut extra));
                        Step::Done {
                            cost: base + extra + self.config.timing.xlate_extra,
                            next_ip: ip + 1,
                        }
                    }
                    None => {
                        self.stats.xlate_misses += 1;
                        hazard!(Err(Hazard::Fault(FaultKind::XlateMiss, k, Word::NIL)));
                        unreachable!()
                    }
                }
            }
            Instruction::Probe { dst, key } => {
                let k = hazard!(self.read_src(priority, key, ReadLevel::Raw, &mut extra, now));
                self.stats.xlates += 1;
                let v = self.xlate.xlate(k).unwrap_or_else(|| {
                    self.stats.xlate_misses += 1;
                    Word::NIL
                });
                hazard!(self.write_dst(priority, dst, v, &mut extra));
                Step::Done {
                    cost: base + extra + self.config.timing.xlate_extra,
                    next_ip: ip + 1,
                }
            }
            Instruction::Halt => {
                self.halted = true;
                self.bg_runnable = false;
                Step::End { cost: base }
            }
            Instruction::Nop => Step::Done {
                cost: base,
                next_ip: ip + 1,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_send<P: NetPort + ?Sized>(
        &mut self,
        priority: Priority,
        mp: MsgPriority,
        a: Src,
        b: Option<Src>,
        end: bool,
        now: u64,
        net: &mut P,
    ) -> Step {
        let pi = priority.index();
        let base = self.config.timing.base;
        let mut extra = 0u64;
        // Compose (unless this is a retried commit, whose operands were
        // already appended before the send fault).
        if !self.commit_pending[pi] {
            let operands = [Some(a), b];
            let count = if b.is_some() { 2 } else { 1 };
            for src in operands.iter().take(count).flatten() {
                let word = match self.read_src(priority, *src, ReadLevel::Move, &mut extra, now) {
                    Ok(v) => v,
                    Err(Hazard::Stall) => return Step::Retry { cost: 1 },
                    Err(Hazard::Fault(kind, val, addr)) => {
                        let cost = self.raise_fault(priority, kind, val, addr);
                        if self.error.is_some() {
                            return Step::Error;
                        }
                        return Step::Vectored {
                            cost: cost + base + extra,
                        };
                    }
                };
                self.compose[pi].push(word);
            }
            if end {
                self.commit_pending[pi] = true;
            }
        }
        // Launch on message end.
        if self.commit_pending[pi] {
            match net.commit(mp, &self.compose[pi]) {
                InjectAck::Accepted => {
                    self.compose[pi].clear();
                    self.commit_pending[pi] = false;
                    self.stats.msgs_sent += 1;
                }
                InjectAck::Stall => {
                    self.stats.send_faults += 1;
                    return Step::Retry { cost: 1 };
                }
                InjectAck::Rejected => {
                    let word = self.compose[pi].first().copied().unwrap_or(Word::NIL);
                    self.error = Some(NodeError::BadSend(word));
                    return Step::Error;
                }
            }
        }
        self.stats.sends += 1;
        Step::Done {
            cost: base + extra,
            next_ip: self.regs.bank(priority).ip + 1,
        }
    }
}
