//! Node configuration: timing model and microarchitectural parameters.

use jm_isa::consts::{QUEUE0_WORDS, QUEUE1_WORDS};

/// Virtual base addresses of the two message-queue windows (priority 0 and
/// priority 1). A dispatched handler's `A3` descriptor points into this
/// window; reads resolve into the queue ring buffer.
pub const QUEUE_VBASE: [u32; 2] = [0x8_0000, 0xC_0000];

/// Virtual base address of the register staging buffers, one 16-word frame
/// per priority bank (background, P0, P1). On any fault the hardware copies
/// the faulting bank here (R0–R3 at +0..4, A0–A3 at +4..8, IP at +8);
/// runtime handlers read it to save a context and write it back before
/// `RESUME`.
pub const STAGING_VBASE: u32 = 0xF_0000;

/// Words per staging frame.
pub const STAGING_FRAME: u32 = 16;

/// Per-instruction timing, in cycles. Values reproduce §2.1/§3/§4 of the
/// paper; see `DESIGN.md` for the calibration table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Base cost of any instruction.
    pub base: u64,
    /// Extra cycles for an operand (read or write) in internal SRAM
    /// ("two cycles if one operand is in internal memory").
    pub imem_operand: u64,
    /// Extra cycles for an operand in external DRAM (6-cycle latency).
    pub emem_operand: u64,
    /// Extra cycles for an operand in the message-queue window (the queue
    /// has a direct path to the datapath; a queue read costs the base cycle
    /// only, making "relocate to Imem" cost 3 cycles as in §4.3.2).
    pub queue_operand: u64,
    /// Extra cycles per instruction when fetching code from external memory
    /// (two instructions per word; drops execution below 2 MIPS as in §2.1).
    pub emem_fetch: u64,
    /// Extra cycles for a large (extension-word) immediate.
    pub imm_ext: u64,
    /// Extra cycles on a taken branch (prefetch refill).
    pub branch_taken: u64,
    /// Extra cycles for `JMP`/`JAL`.
    pub jump: u64,
    /// Extra cycles for multiply.
    pub mul: u64,
    /// Extra cycles for divide/remainder.
    pub div: u64,
    /// Hardware task-dispatch cost ("a task is dispatched … in four
    /// processor cycles").
    pub dispatch: u64,
    /// Fault-entry cost (staging save + vector fetch).
    pub fault_entry: u64,
    /// Total cost of a successful `XLATE`/`PROBE` (3 cycles, §2.1);
    /// expressed as extra over `base`.
    pub xlate_extra: u64,
    /// Extra cost of `ENTER`.
    pub enter_extra: u64,
    /// Extra cost of `RESUME`.
    pub resume_extra: u64,
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            base: 1,
            imem_operand: 1,
            emem_operand: 5,
            queue_operand: 0,
            emem_fetch: 3,
            imm_ext: 1,
            branch_taken: 1,
            jump: 1,
            mul: 1,
            div: 9,
            dispatch: 4,
            fault_entry: 4,
            xlate_extra: 2,
            enter_extra: 3,
            resume_extra: 2,
        }
    }
}

/// Full node configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdpConfig {
    /// Timing model.
    pub timing: TimingConfig,
    /// Priority-0 queue capacity in words (default: the Tuned-J 512).
    pub queue0_words: u32,
    /// Priority-1 queue capacity in words.
    pub queue1_words: u32,
    /// Name-translation cache capacity in entries.
    pub xlate_entries: usize,
    /// Checksummed-message mode (fault-injection runs): every message
    /// carries one extra trailer word — an FNV-1a fold of its header and
    /// payload — appended at injection and validated at dispatch. A
    /// mismatch drops the message and counts a
    /// [`jm_isa::consts::FaultKind::CorruptMessage`] instead of letting a
    /// handler run on damaged arguments. Off by default: fault-free runs
    /// carry no trailer and take the unchecked dispatch path.
    pub checksum_msgs: bool,
}

impl Default for MdpConfig {
    fn default() -> MdpConfig {
        MdpConfig {
            timing: TimingConfig::default(),
            queue0_words: QUEUE0_WORDS,
            queue1_words: QUEUE1_WORDS,
            xlate_entries: 1024,
            checksum_msgs: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_figures() {
        let t = TimingConfig::default();
        // Register-register: 1 cycle; one Imem operand: 2 cycles.
        assert_eq!(t.base, 1);
        assert_eq!(t.base + t.imem_operand, 2);
        // Emem operand: 6 cycles total.
        assert_eq!(t.base + t.emem_operand, 6);
        // Queue word relocation to Imem: read (1) + write (2) = 3 (§4.3.2).
        assert_eq!(t.base + t.queue_operand + t.base + t.imem_operand, 3);
        // Dispatch: 4 cycles; xlate: 3 cycles.
        assert_eq!(t.dispatch, 4);
        assert_eq!(t.base + t.xlate_extra, 3);
    }

    #[test]
    fn windows_fit_segment_descriptors() {
        use jm_isa::word::SegDesc;
        for base in QUEUE_VBASE {
            assert!(base <= SegDesc::MAX_BASE);
        }
        const _: () = assert!(STAGING_VBASE + 3 * STAGING_FRAME <= SegDesc::MAX_BASE);
    }
}
