//! The name-translation cache behind `ENTER` / `XLATE` / `PROBE`.
//!
//! The MDP accelerates virtual-name → value translation with a hardware
//! table: pairs are inserted with `enter` and retrieved with `xlate`
//! (3 cycles on a hit, §2.1). Misses fault to a software handler. The
//! paper's Table 5 shows CST programs issuing hundreds of millions of
//! xlates with a tiny miss ratio, so capacity and replacement matter only
//! at the margins; we model a bounded table with FIFO eviction.

use jm_isa::word::Word;
use std::collections::{HashMap, VecDeque};

/// Key type: full tagged words compare by tag and payload.
type Key = (u8, u32);

fn key_of(word: Word) -> Key {
    (word.tag().bits(), word.bits())
}

/// A bounded key→value map of tagged words with FIFO replacement.
#[derive(Debug, Clone)]
pub struct XlateCache {
    map: HashMap<Key, Word>,
    order: VecDeque<Key>,
    capacity: usize,
    evictions: u64,
}

impl XlateCache {
    /// Creates an empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> XlateCache {
        assert!(capacity > 0, "xlate cache capacity must be positive");
        XlateCache {
            map: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Inserts or replaces a binding (the `ENTER` instruction).
    pub fn enter(&mut self, key: Word, value: Word) {
        let k = key_of(key);
        if self.map.insert(k, value).is_none() {
            self.order.push_back(k);
            if self.map.len() > self.capacity {
                // FIFO eviction; skip stale order entries.
                while let Some(victim) = self.order.pop_front() {
                    if self.map.remove(&victim).is_some() {
                        self.evictions += 1;
                        break;
                    }
                }
            }
        }
    }

    /// Looks a key up (the `XLATE`/`PROBE` instructions).
    pub fn xlate(&self, key: Word) -> Option<Word> {
        self.map.get(&key_of(key)).copied()
    }

    /// Folds the cache state into a replay digest. The FIFO `order` deque —
    /// including entries gone stale through replacement or `purge`, whose
    /// presence still determines future evictions — is itself fully
    /// deterministic, so folding it in order (with each key's current
    /// binding) captures the live map without touching `HashMap` iteration
    /// order.
    pub fn fold_state(&self, h: &mut jm_trace::Fnv1a) {
        h.write_u32(self.map.len() as u32);
        for &(tag, bits) in &self.order {
            h.write_u8(tag);
            h.write_u32(bits);
            match self.map.get(&(tag, bits)) {
                Some(v) => {
                    h.write_u8(1);
                    h.write_u8(v.tag().bits());
                    h.write_u32(v.bits());
                }
                None => h.write_u8(0),
            }
        }
    }

    /// Removes a binding, returning the previous value.
    pub fn purge(&mut self, key: Word) -> Option<Word> {
        self.map.remove(&key_of(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_isa::tag::Tag;

    #[test]
    fn enter_then_xlate() {
        let mut c = XlateCache::new(4);
        c.enter(Word::sym(9), Word::int(42));
        assert_eq!(c.xlate(Word::sym(9)), Some(Word::int(42)));
        assert_eq!(c.xlate(Word::sym(8)), None);
        // Same payload, different tag → different key.
        assert_eq!(c.xlate(Word::new(Tag::Int, 9)), None);
    }

    #[test]
    fn replaces_existing_binding() {
        let mut c = XlateCache::new(2);
        c.enter(Word::sym(1), Word::int(10));
        c.enter(Word::sym(1), Word::int(20));
        assert_eq!(c.xlate(Word::sym(1)), Some(Word::int(20)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_fifo_beyond_capacity() {
        let mut c = XlateCache::new(2);
        c.enter(Word::sym(1), Word::int(1));
        c.enter(Word::sym(2), Word::int(2));
        c.enter(Word::sym(3), Word::int(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.xlate(Word::sym(1)), None);
        assert_eq!(c.xlate(Word::sym(3)), Some(Word::int(3)));
    }

    #[test]
    fn purge_removes() {
        let mut c = XlateCache::new(4);
        c.enter(Word::sym(5), Word::int(50));
        assert_eq!(c.purge(Word::sym(5)), Some(Word::int(50)));
        assert_eq!(c.xlate(Word::sym(5)), None);
        assert_eq!(c.purge(Word::sym(5)), None);
    }
}
