//! Behavioural tests of the MDP node: timing, dispatch, presence-tag
//! faults, queue streaming, send faults, and name translation.

use jm_asm::{hdr, seg, Builder, Program, Region};
use jm_isa::consts::FaultKind;
use jm_isa::instr::{AluOp, MsgPriority, StatClass};
use jm_isa::node::{MeshDims, NodeId};
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::tag::Tag;
use jm_isa::word::{MsgHeader, Word};
use jm_mdp::{InjectAck, MdpConfig, MdpNode, NetPort};
use std::sync::Arc;

/// A recording network port; optionally stalls the first `stall_count`
/// commit attempts.
#[derive(Default)]
struct MockNet {
    /// Flattened committed words with their priority and end-of-message
    /// marker, mirroring the old word-wise trace shape.
    words: Vec<(MsgPriority, Word, bool)>,
    stall_count: u32,
}

impl NetPort for MockNet {
    fn commit(&mut self, priority: MsgPriority, words: &[Word]) -> InjectAck {
        if self.stall_count > 0 {
            self.stall_count -= 1;
            return InjectAck::Stall;
        }
        for (i, &w) in words.iter().enumerate() {
            self.words.push((priority, w, i + 1 == words.len()));
        }
        InjectAck::Accepted
    }
}

fn node_for(program: Program) -> MdpNode {
    MdpNode::new(
        NodeId(0),
        MeshDims::new(2, 2, 2),
        Arc::new(program),
        MdpConfig::default(),
        true,
    )
}

/// Runs the node until it has no work or `max` cycles pass; returns the
/// cycle count at quiescence.
fn run(node: &mut MdpNode, net: &mut MockNet, max: u64) -> u64 {
    for now in 0..max {
        if let Some(err) = node.error() {
            panic!("node error at cycle {now}: {err}");
        }
        if !node.has_work() && now >= 1 {
            return now;
        }
        node.tick(now, net);
    }
    panic!("node did not quiesce in {max} cycles");
}

#[test]
fn background_arithmetic_and_store() {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 2);
    b.label("main");
    b.movi(R0, 20);
    b.alu(AluOp::Mul, R0, R0, 2);
    b.addi(R0, R0, 2);
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R0);
    b.halt();
    b.entry("main");
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let mut node = node_for(p);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.read_mem(out.base).as_i32(), 42);
    assert!(node.is_halted());
}

#[test]
fn timing_matches_paper_model() {
    // MOVE reg,reg = 1 cycle; with an Imem operand = 2; with an Emem
    // operand = 6; dispatch = 4. Measure via stats.
    let mut b = Builder::new();
    b.reserve("fast", Region::Imem, 1);
    b.reserve("slow", Region::Emem, 1);
    b.label("main");
    b.mov(R0, R1); // 1
    b.load_seg(A0, "fast"); // imm ext: 1 + 1 = 2
    b.load_seg(A1, "slow"); // 2
    b.mov(R0, MemRef::disp(A0, 0)); // 2
    b.mov(R0, MemRef::disp(A1, 0)); // 6
    b.halt(); // 1
    b.entry("main");
    let p = b.assemble().unwrap();
    let mut node = node_for(p);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.stats().class_cycles(StatClass::Compute), 14);
    assert_eq!(node.stats().instructions, 6);
}

#[test]
fn message_dispatch_runs_handler() {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 1);
    b.label("handler");
    b.mov(R0, MemRef::disp(A3, 1)); // first argument
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let handler = p.handler("handler");
    let mut node = node_for(p);
    let mut net = MockNet::default();
    node.deliver(MsgPriority::P0, MsgHeader::new(handler, 2).to_word());
    node.deliver(MsgPriority::P0, Word::int(77));
    run(&mut node, &mut net, 100);
    assert_eq!(node.read_mem(out.base).as_i32(), 77);
    assert_eq!(node.stats().threads, 1);
    assert_eq!(node.stats().msgs_received, 1);
    assert_eq!(node.stats().class_cycles(StatClass::Dispatch), 4);
    let hs = &node.stats().handlers[&handler];
    assert_eq!(hs.threads, 1);
    assert_eq!(hs.msg_words, 2);
}

#[test]
fn handler_stalls_until_argument_arrives() {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 1);
    b.label("handler");
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let handler = p.handler("handler");
    let mut node = node_for(p);
    let mut net = MockNet::default();
    node.deliver(MsgPriority::P0, MsgHeader::new(handler, 2).to_word());
    // Argument arrives only at cycle 40.
    for now in 0..80 {
        if now == 40 {
            node.deliver(MsgPriority::P0, Word::int(5));
        }
        node.tick(now, &mut net);
        assert!(node.error().is_none(), "{:?}", node.error());
    }
    assert_eq!(node.read_mem(out.base).as_i32(), 5);
    assert!(node.stats().arrival_stalls > 20);
}

#[test]
fn priority_one_preempts_priority_zero() {
    // A long-running P0 handler is interrupted by a P1 message; the P1
    // handler's store must land while the P0 handler still runs.
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 2);
    b.label("p0_handler");
    b.movi(R0, 200);
    b.label("loop");
    b.subi(R0, R0, 1);
    b.bnz(R0, "loop");
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();
    b.label("p1_handler");
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 1), Word::int(1));
    b.suspend();
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let (h0, h1) = (p.handler("p0_handler"), p.handler("p1_handler"));
    let mut node = node_for(p);
    let mut net = MockNet::default();
    node.deliver(MsgPriority::P0, MsgHeader::new(h0, 1).to_word());
    let mut p1_done_at = None;
    let mut p0_done_at = None;
    for now in 0..2000 {
        if now == 20 {
            node.deliver(MsgPriority::P1, MsgHeader::new(h1, 1).to_word());
        }
        node.tick(now, &mut net);
        if p1_done_at.is_none() && node.read_mem(out.base + 1).as_i32() == 1 {
            p1_done_at = Some(now);
        }
        if p0_done_at.is_none() && node.read_mem(out.base).tag() == Tag::Int {
            p0_done_at = Some(now);
        }
    }
    let (p1_at, p0_at) = (
        p1_done_at.expect("p1 ran"),
        p0_done_at.expect("p0 finished"),
    );
    assert!(p1_at < p0_at, "P1 at {p1_at}, P0 at {p0_at}");
    assert!(p1_at < 60, "P1 was not prompt: {p1_at}");
}

#[test]
fn cfut_read_faults_and_resume_reexecutes() {
    // The handler writes the value into the slot and RESUMEs; the faulting
    // MOVE re-executes and succeeds.
    let mut b = Builder::new();
    b.data("slot", Region::Imem, vec![Word::cfut()]);
    b.reserve("out", Region::Imem, 1);
    b.label("main");
    b.load_seg(A0, "slot");
    b.mov(R1, MemRef::disp(A0, 0)); // faults: cfut
    b.load_seg(A1, "out");
    b.mov(MemRef::disp(A1, 0), R1);
    b.halt();
    // cfut fault handler: fill the slot, then resume.
    b.label("cfut_handler");
    b.load_seg(A0, "slot");
    b.mov(MemRef::disp(A0, 0), Word::int(99));
    b.resume();
    b.entry("main");
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let handler = p.handler("cfut_handler");
    let mut node = node_for(p);
    node.install_vector(FaultKind::CFutRead, handler);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 200);
    assert_eq!(node.read_mem(out.base).as_i32(), 99);
    assert_eq!(node.stats().fault_count(FaultKind::CFutRead), 1);
    assert!(node.stats().class_cycles(StatClass::Sync) > 0);
}

#[test]
fn fut_moves_but_faults_on_use() {
    let mut b = Builder::new();
    b.data("slot", Region::Imem, vec![Word::fut(7)]);
    b.label("main");
    b.load_seg(A0, "slot");
    b.mov(R1, MemRef::disp(A0, 0)); // futures copy fine
    b.addi(R2, R1, 1); // but using one faults
    b.halt();
    b.label("fut_handler");
    b.halt();
    b.entry("main");
    let p = b.assemble().unwrap();
    let handler = p.handler("fut_handler");
    let mut node = node_for(p);
    node.install_vector(FaultKind::FutUse, handler);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.stats().fault_count(FaultKind::FutUse), 1);
    assert_eq!(node.stats().fault_count(FaultKind::CFutRead), 0);
}

#[test]
fn unhandled_fault_stops_the_node() {
    let mut b = Builder::new();
    b.label("main");
    b.alu(AluOp::Div, R0, 1, 0);
    b.halt();
    b.entry("main");
    let mut node = node_for(b.assemble().unwrap());
    let mut net = MockNet::default();
    for now in 0..10 {
        node.tick(now, &mut net);
    }
    assert!(matches!(
        node.error(),
        Some(jm_mdp::NodeError::UnhandledFault { .. })
    ));
    assert!(!node.has_work());
}

#[test]
fn send_builds_messages_and_retries_on_stall() {
    let mut b = Builder::new();
    b.label("main");
    b.mov(R0, Special::Nnr);
    b.send(MsgPriority::P0, R0);
    b.send2e(MsgPriority::P0, hdr("main", 2), 5);
    b.halt();
    b.entry("main");
    let p = b.assemble().unwrap();
    let mut node = node_for(p);
    let mut net = MockNet {
        stall_count: 3,
        ..MockNet::default()
    };
    run(&mut node, &mut net, 200);
    assert_eq!(net.words.len(), 3);
    assert_eq!(net.words[0].1.tag(), Tag::Route);
    assert!(!net.words[0].2);
    assert_eq!(net.words[1].1.tag(), Tag::Msg);
    assert_eq!(net.words[2].1.as_i32(), 5);
    assert!(net.words[2].2, "last word must end the message");
    assert_eq!(node.stats().send_faults, 3);
    assert_eq!(node.stats().msgs_sent, 1);
    assert_eq!(node.stats().sends, 2);
}

#[test]
fn xlate_enter_probe_and_miss_fault() {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 3);
    b.label("main");
    b.load_seg(A0, "out");
    b.enter(Word::sym(5), Word::int(50));
    b.xlate(R0, Word::sym(5));
    b.mov(MemRef::disp(A0, 0), R0);
    b.probe(R1, Word::sym(6)); // miss → nil, no fault
    b.check(R2, R1, Tag::Nil);
    b.mov(MemRef::disp(A0, 1), R2);
    b.xlate(R0, Word::sym(6)); // miss → fault
    b.halt();
    b.label("miss_handler");
    b.enter(Word::sym(6), Word::int(60));
    b.resume();
    b.entry("main");
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let handler = p.handler("miss_handler");
    let mut node = node_for(p);
    node.install_vector(FaultKind::XlateMiss, handler);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 200);
    assert_eq!(node.read_mem(out.base).as_i32(), 50);
    assert!(node.read_mem(out.base + 1).as_bool());
    assert_eq!(node.stats().xlates, 4); // xlate + probe + miss + re-execute
    assert_eq!(node.stats().xlate_misses, 2);
    assert_eq!(node.stats().fault_count(FaultKind::XlateMiss), 1);
}

#[test]
fn bounds_fault_on_bad_descriptor_and_index() {
    let mut b = Builder::new();
    b.data("buf", Region::Imem, vec![Word::int(0), Word::int(0)]);
    b.label("main");
    b.load_seg(A0, "buf");
    b.mov(R0, MemRef::disp(A0, 2)); // out of bounds (len 2)
    b.halt();
    b.label("bounds_handler");
    b.halt();
    b.entry("main");
    let p = b.assemble().unwrap();
    let handler = p.handler("bounds_handler");
    let mut node = node_for(p);
    node.install_vector(FaultKind::Bounds, handler);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.stats().fault_count(FaultKind::Bounds), 1);
}

#[test]
fn mark_switches_attribution_for_free() {
    let mut b = Builder::new();
    b.label("main");
    b.mark(StatClass::NnrCalc);
    b.nop();
    b.nop();
    b.mark(StatClass::Compute);
    b.nop();
    b.halt();
    b.entry("main");
    let mut node = node_for(b.assemble().unwrap());
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.stats().class_cycles(StatClass::NnrCalc), 2);
    assert_eq!(node.stats().class_cycles(StatClass::Compute), 2); // nop + halt
    assert_eq!(node.stats().instructions, 4);
}

#[test]
fn specials_report_identity() {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 3);
    b.label("main");
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), Special::Nid);
    b.mov(MemRef::disp(A0, 1), Special::NNodes);
    b.mov(MemRef::disp(A0, 2), Special::Nnr);
    b.halt();
    b.entry("main");
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let mut node = MdpNode::new(
        NodeId(5),
        MeshDims::new(2, 2, 2),
        Arc::new(p),
        MdpConfig::default(),
        true,
    );
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.read_mem(out.base).as_i32(), 5);
    assert_eq!(node.read_mem(out.base + 1).as_i32(), 8);
    let route = node.read_mem(out.base + 2);
    assert_eq!(route.tag(), Tag::Route);
    // Node 5 in a 2x2x2 mesh is (1, 0, 1).
    assert_eq!(route.bits() & 0x1f, 1);
    assert_eq!((route.bits() >> 10) & 0x1f, 1);
}

#[test]
fn call_and_return_convention() {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 1);
    b.label("main");
    b.movi(R0, 3);
    b.call("double");
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R0);
    b.halt();
    b.label("double");
    b.alu(AluOp::Add, R0, R0, R0);
    b.ret();
    b.entry("main");
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let mut node = node_for(p);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.read_mem(out.base).as_i32(), 6);
}

#[test]
fn seg_reference_via_message_and_queue_window_is_readonly() {
    // A handler that tries to write into its message faults.
    let mut b = Builder::new();
    b.label("handler");
    b.mov(MemRef::disp(A3, 1), Word::int(0));
    b.suspend();
    b.label("bounds_handler");
    b.halt();
    let p = b.assemble().unwrap();
    let handler = p.handler("handler");
    let bounds = p.handler("bounds_handler");
    let mut node = node_for(p);
    node.install_vector(FaultKind::Bounds, bounds);
    let mut net = MockNet::default();
    node.deliver(MsgPriority::P0, MsgHeader::new(handler, 2).to_word());
    node.deliver(MsgPriority::P0, Word::int(1));
    for now in 0..100 {
        node.tick(now, &mut net);
    }
    assert_eq!(node.stats().fault_count(FaultKind::Bounds), 1);
}

#[test]
fn emem_code_runs_slower() {
    // Same loop, once with code in Imem and once padded into Emem.
    fn loop_cycles(pad: usize) -> u64 {
        let mut b = Builder::new();
        b.label("main");
        for _ in 0..pad {
            b.nop();
        }
        b.label("start");
        b.movi(R0, 100);
        b.label("loop");
        b.subi(R0, R0, 1);
        b.bnz(R0, "loop");
        b.halt();
        if pad > 0 {
            b.entry("start");
        } else {
            b.entry("main");
        }
        let mut node = node_for(b.assemble().unwrap());
        let mut net = MockNet::default();
        run(&mut node, &mut net, 100_000)
    }
    let fast = loop_cycles(0);
    let slow = loop_cycles(9000); // pushes the loop body past the Imem boundary
    assert!(
        slow > fast * 2,
        "Emem code should be much slower: {fast} vs {slow}"
    );
}

#[test]
fn wtag_builds_route_words_in_software() {
    // The "NNR calc" pattern: compute a route word from a linear node id.
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 1);
    b.label("main");
    b.mark(StatClass::NnrCalc);
    b.movi(R0, 5); // target node id in a 2x2x2 mesh
    b.alu(AluOp::Rem, R1, R0, 2); // x = id % 2
    b.alu(AluOp::Div, R0, R0, 2);
    b.alu(AluOp::Rem, R2, R0, 2); // y
    b.alu(AluOp::Div, R0, R0, 2); // z
    b.alu(AluOp::Lsh, R2, R2, 5);
    b.alu(AluOp::Lsh, R0, R0, 10);
    b.alu(AluOp::Or, R1, R1, R2);
    b.alu(AluOp::Or, R1, R1, R0);
    b.wtag(R1, R1, Tag::Route.bits() as i32);
    b.mark(StatClass::Compute);
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R1);
    b.halt();
    b.entry("main");
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let mut node = node_for(p);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 200);
    let route = node.read_mem(out.base);
    assert_eq!(route.tag(), Tag::Route);
    assert_eq!(route.bits(), 1 | (1 << 10));
    assert!(node.stats().class_cycles(StatClass::NnrCalc) > 10);
}

#[test]
fn data_blocks_load_and_seg_resolves() {
    let mut b = Builder::new();
    b.data(
        "tbl",
        Region::Emem,
        vec![Word::int(10), Word::int(20), Word::int(30)],
    );
    b.reserve("out", Region::Imem, 1);
    b.label("main");
    b.mov(A0, seg("tbl"));
    b.movi(R1, 2);
    b.mov(R0, MemRef::reg(A0, R1));
    b.load_seg(A1, "out");
    b.mov(MemRef::disp(A1, 0), R0);
    b.halt();
    b.entry("main");
    let p = b.assemble().unwrap();
    let out = p.segment("out");
    let mut node = node_for(p);
    let mut net = MockNet::default();
    run(&mut node, &mut net, 100);
    assert_eq!(node.read_mem(out.base).as_i32(), 30);
}

/// Builds the shared store-first-argument handler program used by the
/// checksum tests.
fn checksum_program() -> Program {
    let mut b = Builder::new();
    b.reserve("out", Region::Imem, 1);
    b.label("handler");
    b.mov(R0, MemRef::disp(A3, 1));
    b.load_seg(A0, "out");
    b.mov(MemRef::disp(A0, 0), R0);
    b.suspend();
    b.assemble().unwrap()
}

#[test]
fn checksum_mode_drops_corrupt_messages_and_passes_clean_ones() {
    let p = checksum_program();
    let out = p.segment("out");
    let handler = p.handler("handler");
    let cfg = MdpConfig {
        checksum_msgs: true,
        ..MdpConfig::default()
    };
    let mut node = MdpNode::new(NodeId(0), MeshDims::new(2, 2, 2), Arc::new(p), cfg, true);
    let mut net = MockNet::default();

    // A damaged message first: the trailer is computed over the intended
    // words, then a different argument arrives (as link corruption would
    // deliver it).
    let intended = [MsgHeader::new(handler, 2).to_word(), Word::int(13)];
    let trailer = jm_fault::checksum_words(&intended);
    node.deliver(MsgPriority::P0, intended[0]);
    node.deliver(MsgPriority::P0, Word::int(99));
    node.deliver(MsgPriority::P0, trailer);
    // Then a clean one.
    let clean = [MsgHeader::new(handler, 2).to_word(), Word::int(42)];
    node.deliver(MsgPriority::P0, clean[0]);
    node.deliver(MsgPriority::P0, clean[1]);
    node.deliver(MsgPriority::P0, jm_fault::checksum_words(&clean));
    run(&mut node, &mut net, 200);
    // The damaged message was dropped whole — its argument never reached
    // memory, no thread ran for it — and the clean one dispatched normally.
    assert_eq!(node.read_mem(out.base).as_i32(), 42);
    assert_eq!(node.stats().threads, 1);
    assert_eq!(node.stats().msgs_received, 1);
    assert_eq!(node.stats().fault_count(FaultKind::CorruptMessage), 1);
    assert!(node.error().is_none());
}

#[test]
fn checksum_mode_defers_dispatch_until_full_arrival() {
    let p = checksum_program();
    let out = p.segment("out");
    let handler = p.handler("handler");
    let cfg = MdpConfig {
        checksum_msgs: true,
        ..MdpConfig::default()
    };
    let mut node = MdpNode::new(NodeId(0), MeshDims::new(2, 2, 2), Arc::new(p), cfg, true);
    let mut net = MockNet::default();
    let msg = [MsgHeader::new(handler, 2).to_word(), Word::int(7)];
    node.deliver(MsgPriority::P0, msg[0]);
    node.deliver(MsgPriority::P0, msg[1]);
    // Trailer not yet arrived: validation cannot run, so dispatch waits
    // (in plain mode the header alone would have started the handler).
    for now in 0..40 {
        node.tick(now, &mut net);
    }
    assert_eq!(node.stats().threads, 0);
    node.deliver(MsgPriority::P0, jm_fault::checksum_words(&msg));
    for now in 40..120 {
        node.tick(now, &mut net);
    }
    assert_eq!(node.stats().threads, 1);
    assert_eq!(node.read_mem(out.base).as_i32(), 7);
    assert!(node.error().is_none());
}
