//! Compact machine-readable trace summary and deterministic hashing.
//!
//! The summary is the machine-consumable counterpart of the Chrome export:
//! a small JSON document with event counts, the latency decomposition, and
//! an [FNV-1a] hash over every event in the trace. Two runs of the same
//! program are cycle-identical exactly when their summary hashes match,
//! which is what the CI determinism job diffs.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use crate::event::EventKind;
use crate::histogram::Histogram;
use crate::trace::MachineTrace;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming FNV-1a fold: the incremental counterpart of [`fnv1a`].
///
/// Because FNV-1a consumes its input strictly left to right, a fold over a
/// concatenation equals a fold over the first part continued over the
/// second — `Fnv1a::with_seed(fold(A)).chain(B) == fold(A ++ B)`. The
/// replay layer's interval digests rely on exactly that composition
/// property, and the state-hash hooks in `jm-mdp`/`jm-net` use the
/// integer-push methods to fold component state without allocating.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fold starting from the FNV offset basis (equivalent to `fnv1a`
    /// of the empty string).
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Continues a fold from a previously-finished digest.
    pub fn with_seed(seed: u64) -> Fnv1a {
        Fnv1a(seed)
    }

    /// Folds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.0 ^= u64::from(v);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Folds a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A deterministic 64-bit digest of the whole trace: every event's cycle,
/// kind, and fields, plus every sample point, folded through FNV-1a. The
/// trace's canonical sort order makes the hash independent of component
/// buffer interleaving.
pub fn hash(trace: &MachineTrace) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for e in &trace.events {
        mix(e.cycle);
        mix(u64::from(e.kind.rank()));
        mix(e.kind.id().0);
        match e.kind {
            EventKind::Inject {
                src,
                dst,
                priority,
                words,
                ..
            } => {
                mix(u64::from(src.0));
                mix(u64::from(dst.0));
                mix(priority.index() as u64);
                mix(u64::from(words));
            }
            EventKind::Hop { node, .. } | EventKind::Deliver { node, .. } => {
                mix(u64::from(node.0));
            }
            EventKind::QueueEnter { node, priority, .. } => {
                mix(u64::from(node.0));
                mix(priority.index() as u64);
            }
            EventKind::Dispatch { node, handler, .. }
            | EventKind::HandlerEnd { node, handler, .. } => {
                mix(u64::from(node.0));
                mix(u64::from(handler));
            }
            EventKind::Fault { node, what, .. } => {
                mix(u64::from(node.0));
                mix(u64::from(what.code()));
            }
        }
    }
    for s in &trace.samples {
        mix(s.cycle);
        mix(s.queued_words);
        mix(s.in_flight);
        mix(u64::from(s.active_routers));
        mix(u64::from(s.busy_nodes));
    }
    h
}

fn histogram_json(h: &Histogram) -> String {
    let nonzero: Vec<String> = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != 0)
        .map(|(i, &c)| format!("[{i},{c}]"))
        .collect();
    format!(
        r#"{{"count":{},"sum":{},"max":{},"mean":{:.3},"p50":{},"p99":{},"log2_buckets":[{}]}}"#,
        h.count(),
        h.sum(),
        h.max(),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
        nonzero.join(",")
    )
}

/// Renders the compact summary JSON: per-kind event counts, message totals,
/// the four latency-component histograms, sample count, and the trace hash
/// (as a hex string so shell tooling can compare it verbatim).
pub fn summary_json(trace: &MachineTrace) -> String {
    let mut kind_counts = [0u64; 7];
    for e in &trace.events {
        kind_counts[e.kind.rank() as usize] += 1;
    }
    let msgs = trace.messages();
    let dispatched = msgs.iter().filter(|m| m.dispatch.is_some()).count();
    let b = trace.breakdown();
    format!(
        concat!(
            "{{\n",
            "  \"nodes\": {},\n",
            "  \"events\": {{\"inject\": {}, \"hop\": {}, \"deliver\": {}, ",
            "\"queue_enter\": {}, \"dispatch\": {}, \"handler_end\": {}, ",
            "\"fault\": {}}},\n",
            "  \"messages\": {{\"injected\": {}, \"dispatched\": {}}},\n",
            "  \"latency\": {{\n",
            "    \"net\": {},\n",
            "    \"queue\": {},\n",
            "    \"handler\": {},\n",
            "    \"end_to_end\": {},\n",
            "    \"hops\": {}\n",
            "  }},\n",
            "  \"samples\": {},\n",
            "  \"trace_hash\": \"{:016x}\"\n",
            "}}\n"
        ),
        trace.nodes,
        kind_counts[0],
        kind_counts[1],
        kind_counts[2],
        kind_counts[3],
        kind_counts[4],
        kind_counts[5],
        kind_counts[6],
        msgs.len(),
        dispatched,
        histogram_json(&b.net),
        histogram_json(&b.queue),
        histogram_json(&b.handler),
        histogram_json(&b.end_to_end),
        histogram_json(&b.hops),
        trace.samples.len(),
        hash(trace)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use jm_isa::instr::MsgPriority;
    use jm_isa::node::NodeId;
    use jm_isa::TraceId;

    fn sample_trace() -> MachineTrace {
        let id = TraceId(1);
        let events = vec![
            Event {
                cycle: 1,
                kind: EventKind::Inject {
                    id,
                    src: NodeId(0),
                    dst: NodeId(1),
                    priority: MsgPriority::P0,
                    words: 2,
                },
            },
            Event {
                cycle: 6,
                kind: EventKind::Deliver {
                    id,
                    node: NodeId(1),
                },
            },
            Event {
                cycle: 9,
                kind: EventKind::Dispatch {
                    id,
                    node: NodeId(1),
                    handler: 4,
                },
            },
        ];
        MachineTrace::assemble(vec![events], Vec::new(), 2)
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_fold_matches_and_composes() {
        let mut s = Fnv1a::new();
        s.write(b"foobar");
        assert_eq!(s.finish(), fnv1a(b"foobar"));
        // Composition: fold(A ++ B) == continue(fold(A), B), at any split.
        let bytes = b"the quick brown fox";
        for split in 0..bytes.len() {
            let mut whole = Fnv1a::new();
            whole.write(bytes);
            let mut resumed = Fnv1a::with_seed(fnv1a(&bytes[..split]));
            resumed.write(&bytes[split..]);
            assert_eq!(whole.finish(), resumed.finish(), "split at {split}");
        }
    }

    #[test]
    fn hash_is_stable_and_field_sensitive() {
        let t = sample_trace();
        assert_eq!(hash(&t), hash(&t.clone()));
        let mut t2 = sample_trace();
        t2.events[0].cycle = 2;
        assert_ne!(hash(&t), hash(&t2));
    }

    #[test]
    fn summary_reports_counts_and_hash() {
        let t = sample_trace();
        let json = summary_json(&t);
        assert!(json.contains(r#""inject": 1"#));
        assert!(json.contains(r#""dispatched": 1"#));
        assert!(json.contains(&format!("\"trace_hash\": \"{:016x}\"", hash(&t))));
        let open = json.matches('{').count();
        assert_eq!(open, json.matches('}').count());
    }
}
