//! Chrome trace-event JSON exporter.
//!
//! Emits the [Trace Event Format] consumed by Perfetto and `chrome://tracing`:
//! one *process* per node, with a `mdp` thread (tid 0) for handler execution
//! and a `router` thread (tid 1) for network activity. Machine cycles are
//! written as microsecond timestamps, so viewer time reads directly in
//! cycles. The JSON is assembled with `format!` — the workspace is hermetic
//! and takes no serialization dependency.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::EventKind;
use crate::trace::MachineTrace;

const TID_MDP: u32 = 0;
const TID_ROUTER: u32 = 1;

/// Renders a [`MachineTrace`] as a complete Chrome trace-event JSON document.
///
/// Per message the exporter draws three `"X"` (complete) spans — `net` and
/// `queue` on the destination's router track, `handler` on its MDP track —
/// plus an `"i"` (instant) mark per hop on the hop router's track. Each
/// [`SamplePoint`](crate::SamplePoint) becomes `"C"` (counter) events under a
/// synthetic `machine` process so Perfetto plots queue depth, flits in
/// flight, and active-router/busy-node counts as time series.
pub fn chrome_json(trace: &MachineTrace) -> String {
    let mut ev: Vec<String> = Vec::new();

    // Process/thread metadata so tracks are labelled in the viewer. The
    // synthetic machine-wide counter process gets the highest pid so node
    // pids stay equal to node indices.
    let machine_pid = trace.nodes;
    ev.push(meta_process(machine_pid, "machine"));
    for n in 0..trace.nodes {
        ev.push(meta_process(n, &format!("node{n}")));
        ev.push(meta_thread(n, TID_MDP, "mdp"));
        ev.push(meta_thread(n, TID_ROUTER, "router"));
    }

    for m in trace.messages() {
        let id = m.id.0;
        let dst = m.dst.0;
        if let Some(deliver) = m.deliver {
            ev.push(span(
                dst,
                TID_ROUTER,
                "net",
                &format!("net msg#{id}"),
                m.inject,
                deliver - m.inject,
            ));
        }
        if let (Some(deliver), Some(dispatch)) = (m.deliver, m.dispatch) {
            ev.push(span(
                dst,
                TID_ROUTER,
                "queue",
                &format!("queue msg#{id}"),
                deliver,
                dispatch - deliver,
            ));
        }
        if let (Some(dispatch), Some(end), Some(handler)) = (m.dispatch, m.handler_end, m.handler) {
            ev.push(span(
                dst,
                TID_MDP,
                "handler",
                &format!("handler@{handler} msg#{id}"),
                dispatch,
                end - dispatch,
            ));
        }
    }
    for e in &trace.events {
        if let EventKind::Hop { id, node } = e.kind {
            ev.push(format!(
                r#"{{"name":"hop msg#{}","cat":"net","ph":"i","ts":{},"pid":{},"tid":{},"s":"t"}}"#,
                id.0, e.cycle, node.0, TID_ROUTER
            ));
        }
        if let EventKind::Fault { id, node, what } = e.kind {
            ev.push(format!(
                r#"{{"name":"{} msg#{}","cat":"fault","ph":"i","ts":{},"pid":{},"tid":{},"s":"p"}}"#,
                what.label(),
                id.0,
                e.cycle,
                node.0,
                TID_ROUTER
            ));
        }
    }

    for s in &trace.samples {
        for (name, value) in [
            ("queued_words", s.queued_words),
            ("net_in_flight", s.in_flight),
            ("active_routers", u64::from(s.active_routers)),
            ("busy_nodes", u64::from(s.busy_nodes)),
        ] {
            ev.push(format!(
                r#"{{"name":"{name}","cat":"sample","ph":"C","ts":{},"pid":{machine_pid},"tid":0,"args":{{"{name}":{value}}}}}"#,
                s.cycle
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        ev.join(",\n")
    )
}

fn meta_process(pid: u32, name: &str) -> String {
    format!(r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{name}"}}}}"#)
}

fn meta_thread(pid: u32, tid: u32, name: &str) -> String {
    format!(
        r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{name}"}}}}"#
    )
}

fn span(pid: u32, tid: u32, cat: &str, name: &str, ts: u64, dur: u64) -> String {
    format!(
        r#"{{"name":"{name}","cat":"{cat}","ph":"X","ts":{ts},"dur":{dur},"pid":{pid},"tid":{tid}}}"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use jm_isa::instr::MsgPriority;
    use jm_isa::node::NodeId;
    use jm_isa::TraceId;

    #[test]
    fn exports_spans_hops_and_counters() {
        let id = TraceId(1);
        let events = vec![
            Event {
                cycle: 5,
                kind: EventKind::Inject {
                    id,
                    src: NodeId(0),
                    dst: NodeId(1),
                    priority: MsgPriority::P0,
                    words: 2,
                },
            },
            Event {
                cycle: 7,
                kind: EventKind::Hop {
                    id,
                    node: NodeId(0),
                },
            },
            Event {
                cycle: 11,
                kind: EventKind::Deliver {
                    id,
                    node: NodeId(1),
                },
            },
            Event {
                cycle: 14,
                kind: EventKind::Dispatch {
                    id,
                    node: NodeId(1),
                    handler: 3,
                },
            },
            Event {
                cycle: 20,
                kind: EventKind::HandlerEnd {
                    id,
                    node: NodeId(1),
                    handler: 3,
                },
            },
        ];
        let samples = vec![crate::SamplePoint {
            cycle: 10,
            queued_words: 4,
            in_flight: 6,
            active_routers: 2,
            busy_nodes: 1,
        }];
        let t = MachineTrace::assemble(vec![events], samples, 2);
        let json = chrome_json(&t);
        assert!(json.contains(r#""name":"net msg#1","cat":"net","ph":"X","ts":5,"dur":6"#));
        assert!(json.contains(r#""name":"queue msg#1","cat":"queue","ph":"X","ts":11,"dur":3"#));
        assert!(
            json.contains(r#""name":"handler@3 msg#1","cat":"handler","ph":"X","ts":14,"dur":6"#)
        );
        assert!(json.contains(r#""name":"hop msg#1","cat":"net","ph":"i","ts":7"#));
        assert!(json.contains(r#""queued_words":4"#));
        // Every node plus the machine counter process is labelled.
        assert!(json.contains(r#""name":"node0""#));
        assert!(json.contains(r#""name":"node1""#));
        assert!(json.contains(r#""name":"machine""#));
        // Balanced braces — cheap structural sanity check on the JSON.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }
}
