//! Log-scaled histograms for latency and occupancy distributions.
//!
//! Latencies in the simulator span five orders of magnitude (a 2-cycle hop
//! to multi-million-cycle application phases), so the histograms bucket by
//! bit length: bucket 0 holds the value 0 and bucket *i* (for `i >= 1`)
//! holds values in `[2^(i-1), 2^i - 1]`. Every `u64` lands in exactly one
//! of the 65 buckets, recording is branch-light (`leading_zeros` compiles
//! to one instruction), and the memory cost is fixed.

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket a value falls into: 0 for 0, else the value's bit length.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive value range covered by bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket {index} out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 for an empty histogram. Because buckets are
    /// power-of-two ranges this is an upper estimate within 2× of the true
    /// quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// A compact single-line rendering: `count/mean/p50/p99/max`.
    pub fn summary_line(&self) -> String {
        format!(
            "n={} mean={:.1} p50<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gets_its_own_bucket() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 1 starts bucket 1; each 2^k starts bucket k+1; 2^k - 1 ends bucket k.
        assert_eq!(Histogram::bucket_index(1), 1);
        for k in 1..64 {
            let p = 1u64 << k;
            assert_eq!(Histogram::bucket_index(p), k + 1, "2^{k}");
            assert_eq!(Histogram::bucket_index(p - 1), k, "2^{k}-1");
            let (lo, hi) = Histogram::bucket_bounds(k + 1);
            assert_eq!(lo, p);
            if k + 1 < 64 {
                assert_eq!(hi, (p << 1) - 1);
            }
        }
    }

    #[test]
    fn u64_max_lands_in_the_last_bucket() {
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[64], 2);
        assert_eq!(h.max(), u64::MAX);
        // The sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // p50 of 1..=100 is 50; its bucket [32,63] upper bound is 63.
        assert_eq!(h.quantile(0.5), 63);
        // p100 is clamped to the true max.
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(3);
        b.record(300);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 300);
        assert_eq!(a.sum(), 303);
        assert_eq!(a.buckets()[0], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_reject_out_of_range() {
        let _ = Histogram::bucket_bounds(65);
    }
}
