//! # jm-trace
//!
//! Zero-cost-when-disabled message-lifecycle tracing for the J-Machine
//! simulator.
//!
//! The paper's central claim is a latency decomposition: an end-to-end
//! message time `T = T_send + T_net + T_queue + T_dispatch`, each term owned
//! by a hardware mechanism. This crate makes that decomposition observable
//! in the simulator. Every message is stamped with a [`TraceId`] when the
//! network accepts it, and the network and node models emit lifecycle
//! [`Event`]s — inject, per-hop route, deliver, queue-enter, dispatch,
//! handler-complete — each with a cycle timestamp.
//!
//! Components buffer events locally in a [`Tracer`] (`Option<Box<Tracer>>`
//! on each component: the disabled path is one pointer test and zero
//! allocation). The machine merges buffers into a [`MachineTrace`], which
//! reconstructs per-message [`MsgTrace`] lifecycles, accumulates log-scaled
//! [`Histogram`]s, and exports either Chrome trace-event JSON
//! ([`chrome_json`], for Perfetto) or a compact machine-readable summary
//! ([`summary_json`]) with a deterministic FNV-1a trace [`hash`].
//!
//! This crate depends only on `jm-isa`; it knows nothing about the network
//! or node microarchitecture beyond what the events carry.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod event;
pub mod histogram;
pub mod summary;
pub mod trace;

pub use chrome::chrome_json;
pub use event::{Event, EventKind, FaultEvent, Tracer};
pub use histogram::{Histogram, BUCKETS};
pub use jm_isa::TraceId;
pub use summary::{fnv1a, hash, summary_json, Fnv1a};
pub use trace::{Breakdown, MachineTrace, MsgTrace, SamplePoint};
