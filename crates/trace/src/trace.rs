//! Assembled whole-machine traces and per-message latency decomposition.

use crate::event::{Event, EventKind};
use crate::histogram::Histogram;
use jm_isa::instr::MsgPriority;
use jm_isa::node::NodeId;
use jm_isa::TraceId;
use std::collections::HashMap;

/// One periodic sample of machine-wide occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePoint {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Words buffered across all node message queues.
    pub queued_words: u64,
    /// Flits buffered inside the network.
    pub in_flight: u64,
    /// Routers currently holding flits.
    pub active_routers: u32,
    /// Nodes with runnable or queued work.
    pub busy_nodes: u32,
}

/// One message's reconstructed lifecycle, correlated by [`TraceId`].
///
/// Cycles are absolute; stages a message never reached (e.g. it was still
/// in flight when the trace was collected) are `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgTrace {
    /// The message.
    pub id: TraceId,
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network.
    pub priority: MsgPriority,
    /// Payload words (route word excluded); 0 when injected word-at-a-time.
    pub words: u32,
    /// Cycle the injection port accepted the message.
    pub inject: u64,
    /// Cycle the header word reached the destination ejection FIFO.
    pub deliver: Option<u64>,
    /// Cycle the header word entered the destination's message queue.
    pub queue_enter: Option<u64>,
    /// Cycle the hardware dispatched a handler thread for the message.
    pub dispatch: Option<u64>,
    /// Cycle the handler thread ended.
    pub handler_end: Option<u64>,
    /// Handler entry point, once dispatched.
    pub handler: Option<u32>,
    /// Router-to-router hops taken by the head flit.
    pub hops: u32,
}

impl MsgTrace {
    /// Network component: inject → header ejection.
    pub fn t_net(&self) -> Option<u64> {
        self.deliver.map(|d| d - self.inject)
    }

    /// Queueing component: header ejection → dispatch (ejection-FIFO
    /// staging, remaining streaming, and message-queue wait).
    pub fn t_queue(&self) -> Option<u64> {
        Some(self.dispatch? - self.deliver?)
    }

    /// Handler component: dispatch → thread end (includes the hardware's
    /// fixed dispatch cost).
    pub fn t_handler(&self) -> Option<u64> {
        Some(self.handler_end? - self.dispatch?)
    }

    /// End-to-end latency: inject → dispatch. Always equals
    /// `t_net + t_queue` by construction.
    pub fn end_to_end(&self) -> Option<u64> {
        self.dispatch.map(|d| d - self.inject)
    }
}

/// Latency histograms over every fully-dispatched message in a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// `t_net` distribution.
    pub net: Histogram,
    /// `t_queue` distribution.
    pub queue: Histogram,
    /// `t_handler` distribution (messages whose handler ended).
    pub handler: Histogram,
    /// End-to-end (inject → dispatch) distribution.
    pub end_to_end: Histogram,
    /// Hop-count distribution.
    pub hops: Histogram,
}

/// A whole machine run's merged trace: every component's events in one
/// deterministic order, plus the periodic occupancy samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineTrace {
    /// All events, sorted by `(cycle, causal rank, id)`.
    pub events: Vec<Event>,
    /// Periodic occupancy samples, in cycle order.
    pub samples: Vec<SamplePoint>,
    /// Number of nodes in the traced machine.
    pub nodes: u32,
}

impl MachineTrace {
    /// Merges per-component event buffers into one trace. Events are sorted
    /// by cycle, then causal rank, then message id, then node — a total
    /// order independent of buffer iteration order, so two runs of the same
    /// program produce byte-identical traces.
    pub fn assemble(
        sources: Vec<Vec<Event>>,
        samples: Vec<SamplePoint>,
        nodes: u32,
    ) -> MachineTrace {
        let mut events: Vec<Event> = sources.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.cycle, e.kind.rank(), e.kind.id(), sort_node(&e.kind)));
        MachineTrace {
            events,
            samples,
            nodes,
        }
    }

    /// Reconstructs every injected message's lifecycle, in injection order.
    pub fn messages(&self) -> Vec<MsgTrace> {
        let mut by_id: HashMap<TraceId, usize> = HashMap::new();
        let mut msgs: Vec<MsgTrace> = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::Inject {
                    id,
                    src,
                    dst,
                    priority,
                    words,
                } => {
                    by_id.insert(id, msgs.len());
                    msgs.push(MsgTrace {
                        id,
                        src,
                        dst,
                        priority,
                        words,
                        inject: e.cycle,
                        deliver: None,
                        queue_enter: None,
                        dispatch: None,
                        handler_end: None,
                        handler: None,
                        hops: 0,
                    });
                }
                EventKind::Hop { id, .. } => {
                    if let Some(&i) = by_id.get(&id) {
                        msgs[i].hops += 1;
                    }
                }
                EventKind::Deliver { id, .. } => {
                    if let Some(&i) = by_id.get(&id) {
                        msgs[i].deliver = Some(e.cycle);
                    }
                }
                EventKind::QueueEnter { id, .. } => {
                    if let Some(&i) = by_id.get(&id) {
                        msgs[i].queue_enter = Some(e.cycle);
                    }
                }
                EventKind::Dispatch { id, handler, .. } => {
                    if let Some(&i) = by_id.get(&id) {
                        msgs[i].dispatch = Some(e.cycle);
                        msgs[i].handler = Some(handler);
                    }
                }
                EventKind::HandlerEnd { id, .. } => {
                    if let Some(&i) = by_id.get(&id) {
                        msgs[i].handler_end = Some(e.cycle);
                    }
                }
                // Fault events annotate a message's lifecycle but are not
                // themselves a stage of it.
                EventKind::Fault { .. } => {}
            }
        }
        msgs
    }

    /// Histograms of the latency decomposition over all dispatched messages.
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for m in self.messages() {
            if let (Some(net), Some(queue), Some(e2e)) = (m.t_net(), m.t_queue(), m.end_to_end()) {
                b.net.record(net);
                b.queue.record(queue);
                b.end_to_end.record(e2e);
                b.hops.record(u64::from(m.hops));
            }
            if let Some(h) = m.t_handler() {
                b.handler.record(h);
            }
        }
        b
    }

    /// Histograms of the latency decomposition restricted to messages
    /// *injected* in cycles `[from, until)` — the measurement window of a
    /// warmup/measure/drain protocol. Keying the filter on the injection
    /// cycle (rather than delivery) keeps the population well-defined: a
    /// message injected inside the window contributes its full latency even
    /// when it dispatches during the drain phase.
    pub fn breakdown_window(&self, from: u64, until: u64) -> Breakdown {
        let mut b = Breakdown::default();
        for m in self.messages() {
            if m.inject < from || m.inject >= until {
                continue;
            }
            if let (Some(net), Some(queue), Some(e2e)) = (m.t_net(), m.t_queue(), m.end_to_end()) {
                b.net.record(net);
                b.queue.record(queue);
                b.end_to_end.record(e2e);
                b.hops.record(u64::from(m.hops));
            }
            if let Some(h) = m.t_handler() {
                b.handler.record(h);
            }
        }
        b
    }

    /// Renders the per-mechanism latency breakdown as a text table: one row
    /// per component, mean/median/p99/max in cycles.
    pub fn breakdown_table(&self) -> String {
        let b = self.breakdown();
        let mut out = String::new();
        out.push_str(&format!(
            "per-mechanism latency breakdown over {} dispatched message(s)\n\n",
            b.end_to_end.count()
        ));
        out.push_str(&format!(
            "  {:<26} {:>10} {:>8} {:>8} {:>8}\n",
            "component", "mean", "p50<=", "p99<=", "max"
        ));
        for (name, h) in [
            ("T_net (wire)", &b.net),
            ("T_queue (eject+queue)", &b.queue),
            ("end-to-end (to dispatch)", &b.end_to_end),
            ("T_handler (incl. dispatch)", &b.handler),
            ("hops", &b.hops),
        ] {
            out.push_str(&format!(
                "  {:<26} {:>10.1} {:>8} {:>8} {:>8}\n",
                name,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max()
            ));
        }
        out
    }
}

/// Node used only to complete the deterministic sort key.
fn sort_node(kind: &EventKind) -> u32 {
    match *kind {
        EventKind::Inject { src, .. } => src.0,
        EventKind::Hop { node, .. }
        | EventKind::Deliver { node, .. }
        | EventKind::QueueEnter { node, .. }
        | EventKind::Dispatch { node, .. }
        | EventKind::HandlerEnd { node, .. }
        | EventKind::Fault { node, .. } => node.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifecycle_events() -> Vec<Event> {
        let id = TraceId(1);
        vec![
            Event {
                cycle: 10,
                kind: EventKind::Inject {
                    id,
                    src: NodeId(0),
                    dst: NodeId(3),
                    priority: MsgPriority::P0,
                    words: 2,
                },
            },
            Event {
                cycle: 12,
                kind: EventKind::Hop {
                    id,
                    node: NodeId(0),
                },
            },
            Event {
                cycle: 13,
                kind: EventKind::Hop {
                    id,
                    node: NodeId(1),
                },
            },
            Event {
                cycle: 18,
                kind: EventKind::Deliver {
                    id,
                    node: NodeId(3),
                },
            },
            Event {
                cycle: 19,
                kind: EventKind::QueueEnter {
                    id,
                    node: NodeId(3),
                    priority: MsgPriority::P0,
                },
            },
            Event {
                cycle: 20,
                kind: EventKind::Dispatch {
                    id,
                    node: NodeId(3),
                    handler: 7,
                },
            },
            Event {
                cycle: 30,
                kind: EventKind::HandlerEnd {
                    id,
                    node: NodeId(3),
                    handler: 7,
                },
            },
        ]
    }

    #[test]
    fn assemble_orders_across_buffers() {
        let all = lifecycle_events();
        // Split events across two buffers in a scrambled grouping.
        let a = vec![all[3], all[6]];
        let b = vec![all[0], all[1], all[2], all[4], all[5]];
        let t = MachineTrace::assemble(vec![a, b], Vec::new(), 8);
        assert_eq!(t.events, all);
    }

    #[test]
    fn messages_reconstruct_the_decomposition() {
        let t = MachineTrace::assemble(vec![lifecycle_events()], Vec::new(), 8);
        let msgs = t.messages();
        assert_eq!(msgs.len(), 1);
        let m = &msgs[0];
        assert_eq!(m.hops, 2);
        assert_eq!(m.t_net(), Some(8));
        assert_eq!(m.t_queue(), Some(2));
        assert_eq!(m.t_handler(), Some(10));
        assert_eq!(m.end_to_end(), Some(10));
        assert_eq!(
            m.t_net().unwrap() + m.t_queue().unwrap(),
            m.end_to_end().unwrap()
        );
    }

    #[test]
    fn breakdown_counts_only_dispatched_messages() {
        let mut events = lifecycle_events();
        // A second message that never got past injection.
        events.push(Event {
            cycle: 40,
            kind: EventKind::Inject {
                id: TraceId(2),
                src: NodeId(1),
                dst: NodeId(2),
                priority: MsgPriority::P0,
                words: 3,
            },
        });
        let t = MachineTrace::assemble(vec![events], Vec::new(), 8);
        let b = t.breakdown();
        assert_eq!(b.end_to_end.count(), 1);
        assert_eq!(t.messages().len(), 2);
        assert!(t.breakdown_table().contains("1 dispatched message"));
    }

    #[test]
    fn breakdown_window_filters_on_inject_cycle() {
        // The lifecycle message injects at cycle 10 and dispatches at 20:
        // a window containing its injection keeps it even when the window
        // closes before dispatch; a window past its injection drops it.
        let t = MachineTrace::assemble(vec![lifecycle_events()], Vec::new(), 8);
        assert_eq!(t.breakdown_window(0, 11).end_to_end.count(), 1);
        assert_eq!(t.breakdown_window(10, 11).end_to_end.count(), 1);
        assert_eq!(t.breakdown_window(11, 100).end_to_end.count(), 0);
        assert_eq!(t.breakdown_window(0, 10).end_to_end.count(), 0);
        assert_eq!(t.breakdown_window(0, 11), t.breakdown());
    }
}
