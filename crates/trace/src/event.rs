//! Lifecycle events and the per-component event buffer.

use jm_isa::instr::MsgPriority;
use jm_isa::node::NodeId;
use jm_isa::TraceId;

/// One lifecycle event, stamped with the machine cycle at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Machine cycle of the event.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The stages of a message's life, in causal order.
///
/// The end-to-end latency of message *m* decomposes along these events
/// exactly as the paper's cost model `T = T_net + T_queue + T_dispatch`
/// predicts:
///
/// * [`Inject`](EventKind::Inject) → [`Deliver`](EventKind::Deliver) is
///   `T_net` (injection pipeline plus wire time of the header word — the
///   MDP dispatches on header arrival while the tail may still be
///   streaming through the network, so delivery is keyed on the head);
/// * [`Deliver`](EventKind::Deliver) → [`Dispatch`](EventKind::Dispatch) is
///   `T_queue` (ejection-FIFO staging, remaining streaming, and
///   message-queue wait);
/// * [`Dispatch`](EventKind::Dispatch) → first handler instruction is the
///   hardware's fixed dispatch cost, and →
///   [`HandlerEnd`](EventKind::HandlerEnd) the handler run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A whole message was accepted by a node's injection port.
    Inject {
        /// The message.
        id: TraceId,
        /// Injecting node.
        src: NodeId,
        /// Destination named by the route word.
        dst: NodeId,
        /// Virtual network.
        priority: MsgPriority,
        /// Payload length in words (route word excluded); 0 when unknown
        /// (word-at-a-time injection).
        words: u32,
    },
    /// The message's head flit advanced one hop to a neighbouring router.
    Hop {
        /// The message.
        id: TraceId,
        /// Router the flit departed from.
        node: NodeId,
    },
    /// The message's first payload word (its header) reached the
    /// destination's ejection FIFO.
    Deliver {
        /// The message.
        id: TraceId,
        /// Destination node.
        node: NodeId,
    },
    /// The message's header word entered the node's hardware message queue.
    QueueEnter {
        /// The message ([`TraceId::NONE`] for host-port deliveries).
        id: TraceId,
        /// Receiving node.
        node: NodeId,
        /// Queue priority.
        priority: MsgPriority,
    },
    /// The queue head reached dispatch: a handler thread was created.
    Dispatch {
        /// The message ([`TraceId::NONE`] for host-port deliveries).
        id: TraceId,
        /// Dispatching node.
        node: NodeId,
        /// Handler entry point (instruction index).
        handler: u32,
    },
    /// The handler thread ended (`SUSPEND` retired).
    HandlerEnd {
        /// The message that created the thread.
        id: TraceId,
        /// Node the thread ran on.
        node: NodeId,
        /// Handler entry point.
        handler: u32,
    },
    /// A fault was injected into (or detected on) a message. Emitted only
    /// by fault-injection runs; ordinary traces never contain it.
    Fault {
        /// The affected message ([`TraceId::NONE`] when no message is
        /// identifiable, e.g. a refused injection).
        id: TraceId,
        /// Node where the fault struck.
        node: NodeId,
        /// What happened.
        what: FaultEvent,
    },
}

/// What a [`EventKind::Fault`] event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A payload word had one bit flipped at the ejection port.
    CorruptWord,
    /// Checksum validation failed at dispatch; the message was dropped.
    DropMessage,
    /// An injection was refused because the node's interface was down.
    SendStall,
}

impl FaultEvent {
    /// Stable small integer for hashing and export.
    pub fn code(self) -> u32 {
        match self {
            FaultEvent::CorruptWord => 0,
            FaultEvent::DropMessage => 1,
            FaultEvent::SendStall => 2,
        }
    }

    /// Short label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultEvent::CorruptWord => "corrupt-word",
            FaultEvent::DropMessage => "drop-message",
            FaultEvent::SendStall => "send-stall",
        }
    }
}

impl EventKind {
    /// Causal rank of the kind, used as a deterministic same-cycle
    /// tie-breaker when buffers from independent components are merged.
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::Inject { .. } => 0,
            EventKind::Hop { .. } => 1,
            EventKind::Deliver { .. } => 2,
            EventKind::QueueEnter { .. } => 3,
            EventKind::Dispatch { .. } => 4,
            EventKind::HandlerEnd { .. } => 5,
            EventKind::Fault { .. } => 6,
        }
    }

    /// The message the event belongs to.
    pub fn id(&self) -> TraceId {
        match *self {
            EventKind::Inject { id, .. }
            | EventKind::Hop { id, .. }
            | EventKind::Deliver { id, .. }
            | EventKind::QueueEnter { id, .. }
            | EventKind::Dispatch { id, .. }
            | EventKind::HandlerEnd { id, .. }
            | EventKind::Fault { id, .. } => id,
        }
    }
}

/// An append-only event buffer owned by one simulation component.
///
/// Each component (the network, every node) that traces holds its own
/// `Tracer`, so the hot paths never contend on a shared sink; the machine
/// collects and merges the buffers when a
/// [`MachineTrace`](crate::MachineTrace) is assembled. A component that is
/// not tracing holds no tracer at all (`Option<Box<Tracer>>`), making the
/// disabled path a single pointer test.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    events: Vec<Event>,
}

impl Tracer {
    /// Creates an empty buffer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Records one event.
    #[inline]
    pub fn emit(&mut self, cycle: u64, kind: EventKind) {
        self.events.push(Event { cycle, kind });
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the buffer, leaving the tracer empty but still recording.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_follow_causal_order() {
        let id = TraceId(1);
        let n = NodeId(0);
        let seq = [
            EventKind::Inject {
                id,
                src: n,
                dst: n,
                priority: MsgPriority::P0,
                words: 2,
            },
            EventKind::Hop { id, node: n },
            EventKind::Deliver { id, node: n },
            EventKind::QueueEnter {
                id,
                node: n,
                priority: MsgPriority::P0,
            },
            EventKind::Dispatch {
                id,
                node: n,
                handler: 0,
            },
            EventKind::HandlerEnd {
                id,
                node: n,
                handler: 0,
            },
        ];
        for (i, k) in seq.iter().enumerate() {
            assert_eq!(k.rank() as usize, i);
            assert_eq!(k.id(), id);
        }
    }

    #[test]
    fn tracer_records_and_drains() {
        let mut t = Tracer::new();
        assert!(t.is_empty());
        t.emit(
            3,
            EventKind::Hop {
                id: TraceId(1),
                node: NodeId(2),
            },
        );
        assert_eq!(t.len(), 1);
        let events = t.take();
        assert_eq!(events[0].cycle, 3);
        assert!(t.is_empty());
    }
}
