//! Deterministic multi-threaded execution of a sharded machine.
//!
//! One worker thread per network shard (z-slab); each worker owns its slab's
//! routers, its nodes, and their scheduler. A simulated cycle is two phases
//! separated by barriers:
//!
//! 1. **Step** ([`shard_cycle`]): the worker pumps its slab's ejection
//!    FIFOs, ticks its due nodes, and steps its routers against the
//!    *immutable* boundary-space snapshots published last cycle. Writes to
//!    other shards go to edge mailboxes only.
//! 2. **Exchange**: the worker drains mailboxes addressed to it, publishes
//!    fresh boundary snapshots, and posts its status (work count, errors,
//!    net-idle, next wake-up) to the control block. The last thread through
//!    the second barrier runs the coordinator decision — continue, skip
//!    idle cycles, or stop — which every worker then obeys.
//!
//! Determinism: phase 1 reads no data another worker writes during phase 1
//! (`jm_net::NetShard` documents why boundary space and deferred mailbox
//! delivery are scan-order-independent), phase 2 touches only shard-own
//! state plus mailboxes/snapshots with a single deterministic writer, and
//! the coordinator reduces shard statuses in fixed order. Thread count and
//! OS scheduling therefore cannot change any observable value — the
//! equivalence suite runs the same workloads at 1, 2, and 4 threads against
//! the sequential engines and demands bit-identical results.
//!
//! Idle-cycle skipping composes with sharding: when every shard reports an
//! idle network, the coordinator jumps the global clock to the minimum
//! wake-up cycle across shards (bounded by the deadline), exactly mirroring
//! the sequential engine's `fast_forward`.

use crate::machine::{EventSched, ScanMode, PARKED};
use jm_isa::instr::MsgPriority;
use jm_isa::node::NodeId;
use jm_isa::word::Word;
use jm_mdp::{InjectAck, MdpNode, NetPort, TickOutcome};
use jm_net::{edge_pair, Edge, InjectResult, NetShard};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::SeqCst};

/// Adapter giving one node's `SEND` instructions access to its shard's
/// injection port (the shard-local sibling of the machine-level `Port`).
struct ShardPort<'a> {
    shard: &'a mut NetShard,
    node: NodeId,
}

impl NetPort for ShardPort<'_> {
    fn commit(&mut self, priority: MsgPriority, words: &[Word]) -> InjectAck {
        match self.shard.commit_msg(self.node, priority, words) {
            InjectResult::Accepted => InjectAck::Accepted,
            InjectResult::Stall => InjectAck::Stall,
            InjectResult::BadRoute => InjectAck::Rejected,
        }
    }
}

/// Phase 1 for one shard: pump deliveries, tick due nodes, step routers.
/// `nodes` is the slab's slice of the machine's node array (local indexing);
/// `sched` is the slab's scheduler (global ids in its heap). Also the body
/// of the sequential event engine's step — `Engine::Event` is exactly this
/// with one all-covering shard, which is how the engines stay identical by
/// construction.
pub(crate) fn shard_cycle(
    now: u64,
    shard: &mut NetShard,
    sched: &mut EventSched,
    nodes: &mut [MdpNode],
    below: Option<&Edge>,
    above: Option<&Edge>,
) {
    let base = shard.base();
    // 1. Pump — only nodes the shard flagged as holding deliveries. The
    //    ascending-id snapshot mirrors the naive 0..n scan order (nothing a
    //    pump does affects another node).
    let mut pending = std::mem::take(&mut sched.pump_scratch);
    pending.clear();
    pending.extend(shard.pending_nodes().map(|id| id.0));
    for &n in &pending {
        let id = NodeId(n);
        let node = &mut nodes[id.index() - base];
        let mut delivered = false;
        for priority in MsgPriority::ALL {
            while let Some((word, trace)) = shard.delivered_front_traced(id, priority) {
                if node.deliver_traced(priority, word, trace, now) {
                    shard.pop_delivered(id, priority);
                    delivered = true;
                } else {
                    break; // queue full: backpressure
                }
            }
        }
        if delivered {
            sched.wake(node, now);
            sched.set_work(id.index(), node.has_work());
        }
    }
    sched.pump_scratch = pending;
    // 2. Execute every node due this cycle. Both strategies visit due nodes
    //    in ascending id order (equal-cycle heap entries pop in id order),
    //    and a tick touches only its own node's state and injection FIFO,
    //    so the strategy — and when `retune` switches it — is unobservable.
    let mut ticked = 0usize;
    match sched.mode {
        ScanMode::Heap => {
            while let Some(&Reverse((c, i))) = sched.heap.peek() {
                if c > now {
                    break;
                }
                sched.heap.pop();
                let i = i as usize;
                let l = i - base;
                if sched.wake_at[l] != c {
                    continue; // superseded entry
                }
                sched.wake_at[l] = PARKED;
                tick_node(now, shard, sched, nodes, base, i);
                ticked += 1;
            }
        }
        ScanMode::Dense => {
            for l in 0..sched.wake_at.len() {
                // PARKED is u64::MAX, so parked nodes fail this test too.
                if sched.wake_at[l] > now {
                    continue;
                }
                sched.wake_at[l] = PARKED;
                tick_node(now, shard, sched, nodes, base, base + l);
                ticked += 1;
            }
        }
    }
    sched.retune(ticked);
    // 3. Move this shard's routers (O(1) when no flits are buffered).
    shard.step_cycle(below, above);
}

/// Ticks one due node (already removed from the wake structures) and
/// re-files it according to the outcome.
#[inline]
fn tick_node(
    now: u64,
    shard: &mut NetShard,
    sched: &mut EventSched,
    nodes: &mut [MdpNode],
    base: usize,
    i: usize,
) {
    let l = i - base;
    let node = &mut nodes[l];
    let mut port = ShardPort {
        shard,
        node: node.id(),
    };
    match node.tick(now, &mut port) {
        TickOutcome::Busy { until } => sched.schedule(i, until.max(now + 1)),
        TickOutcome::Idle => sched.idle_since[l] = now + 1,
        TickOutcome::Stopped => {
            if node.error().is_some() {
                sched.record_error(i);
            }
        }
    }
    sched.set_work(i, nodes[l].has_work());
}

/// Sense-reversing spin barrier. The last arriver may run a closure (the
/// coordinator's serial section) before releasing the others. Spinning
/// yields to the OS after a short burst so the scheme stays live even with
/// fewer cores than workers.
pub(crate) struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicU64,
}

impl SpinBarrier {
    pub(crate) fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Waits for all `n` workers; the last one runs `serial` before
    /// releasing the rest.
    pub(crate) fn wait_with(&self, serial: impl FnOnce()) {
        let generation = self.generation.load(SeqCst);
        if self.count.fetch_add(1, SeqCst) + 1 == self.n {
            serial();
            // Reset the count *before* bumping the generation: a released
            // worker may re-arrive at the next barrier immediately, and its
            // increment must start from zero. A straggler still spinning on
            // the old generation has already contributed its increment, and
            // the next round cannot complete without its new arrival.
            self.count.store(0, SeqCst);
            self.generation.fetch_add(1, SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(SeqCst) == generation {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// What the machine is driving toward.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Mode {
    /// `run(cycles)`: step to the deadline, no other checks.
    Fixed {
        /// Absolute cycle to stop at.
        deadline: u64,
    },
    /// `run_until_quiescent`: stop on error, quiescence, or the deadline;
    /// skip idle stretches.
    Quiescent {
        /// Absolute cycle of the budget.
        deadline: u64,
    },
}

/// Coordinator decisions, encoded in [`ParallelCtl::kind`].
const CONTINUE: u8 = 0;
const SKIP: u8 = 1;
const STOP: u8 = 2;

/// Per-shard status published at the end of every cycle, aligned out so two
/// workers never share a cache line.
#[repr(align(128))]
pub(crate) struct ShardStatus {
    work: AtomicUsize,
    errors: AtomicUsize,
    net_idle: AtomicBool,
    next_wake: AtomicU64,
}

impl ShardStatus {
    fn new() -> ShardStatus {
        ShardStatus {
            work: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            net_idle: AtomicBool::new(false),
            next_wake: AtomicU64::new(0),
        }
    }
}

/// Shared control block for one parallel drive: the two per-cycle barriers,
/// per-shard statuses, and the coordinator's decision.
pub(crate) struct ParallelCtl {
    barrier: SpinBarrier,
    status: Vec<ShardStatus>,
    mode: Mode,
    /// Decision kind for the cycle just decided.
    kind: AtomicU8,
    /// Decision cycle: the skip target, or the cycle execution stopped at.
    target: AtomicU64,
}

impl ParallelCtl {
    pub(crate) fn new(shards: usize, mode: Mode) -> ParallelCtl {
        ParallelCtl {
            barrier: SpinBarrier::new(shards),
            status: (0..shards).map(|_| ShardStatus::new()).collect(),
            mode,
            kind: AtomicU8::new(CONTINUE),
            target: AtomicU64::new(0),
        }
    }

    /// The cycle the machine stopped at (valid after the drive returns).
    pub(crate) fn final_cycle(&self) -> u64 {
        self.target.load(SeqCst)
    }

    /// Serial coordinator section, run by the last worker through the
    /// end-of-cycle barrier. `c` is the cycle about to run. Reduces shard
    /// statuses in fixed order and mirrors the sequential
    /// `run_until_quiescent` loop head exactly: stop on error, quiescence,
    /// or deadline; with every shard's network idle, skip to the earliest
    /// wake-up (a skip that reaches the deadline stops there — the
    /// sequential engine times out on the next iteration without stepping).
    fn decide(&self, c: u64) {
        let mut work = 0usize;
        let mut errors = 0usize;
        let mut idle = true;
        let mut wake = u64::MAX;
        for status in &self.status {
            work += status.work.load(SeqCst);
            errors += status.errors.load(SeqCst);
            idle &= status.net_idle.load(SeqCst);
            wake = wake.min(status.next_wake.load(SeqCst));
        }
        let (kind, target) = match self.mode {
            Mode::Fixed { deadline } => {
                if c >= deadline {
                    (STOP, c)
                } else {
                    (CONTINUE, c)
                }
            }
            Mode::Quiescent { deadline } => {
                if errors > 0 || (work == 0 && idle) || c >= deadline {
                    (STOP, c)
                } else if idle {
                    let t = wake.min(deadline);
                    if t >= deadline {
                        (STOP, deadline)
                    } else if t > c {
                        (SKIP, t)
                    } else {
                        (CONTINUE, c)
                    }
                } else {
                    (CONTINUE, c)
                }
            }
        };
        self.kind.store(kind, SeqCst);
        self.target.store(target, SeqCst);
    }
}

/// One worker's slice of the machine: its shard, scheduler, and nodes.
pub(crate) struct ShardWorker<'a> {
    pub(crate) k: usize,
    pub(crate) shard: &'a mut NetShard,
    pub(crate) sched: &'a mut EventSched,
    pub(crate) nodes: &'a mut [MdpNode],
}

/// Body of one worker thread: run cycles in lockstep with the siblings until
/// the coordinator stops everyone. Every worker makes the same sequence of
/// barrier crossings and obeys the same decisions, so no worker can run
/// ahead or exit early.
pub(crate) fn worker_loop(w: ShardWorker<'_>, edges: &[Edge], ctl: &ParallelCtl, start: u64) {
    let (below, above) = edge_pair(edges, w.k);
    let mut now = start;
    loop {
        shard_cycle(now, w.shard, w.sched, w.nodes, below, above);
        // Barrier 1: every shard finished phase 1 — mailboxes are complete
        // and nobody reads boundary snapshots anymore this cycle.
        ctl.barrier.wait_with(|| {});
        w.shard.exchange(below, above);
        let status = &ctl.status[w.k];
        status.work.store(w.sched.work_count, SeqCst);
        status.errors.store(w.sched.error_count, SeqCst);
        status.net_idle.store(w.shard.is_idle(), SeqCst);
        status.next_wake.store(w.sched.next_due(), SeqCst);
        now += 1;
        // Barrier 2: every shard finished phase 2; the last arriver decides
        // what cycle `now` does.
        ctl.barrier.wait_with(|| ctl.decide(now));
        match ctl.kind.load(SeqCst) {
            CONTINUE => {}
            SKIP => {
                let t = ctl.target.load(SeqCst);
                w.shard.skip_to(t);
                now = t;
            }
            _ => {
                let t = ctl.target.load(SeqCst);
                if t > now {
                    // Stop-at-deadline via skip: only issued when every
                    // shard's network is idle.
                    w.shard.skip_to(t);
                }
                break;
            }
        }
    }
}
