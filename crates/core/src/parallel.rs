//! Deterministic multi-threaded execution of a sharded machine.
//!
//! The mesh is cut into contiguous z-slabs (about two per worker, so the
//! crew can balance activity dynamically) and each slab's simulated cycle
//! is two *tasks*:
//!
//! 1. **Phase 1** ([`shard_cycle`]): pump the slab's ejection FIFOs, tick
//!    its due nodes, and step its routers against the *immutable* boundary
//!    space snapshots the neighbors published for this cycle. Writes to
//!    other slabs go to edge mailboxes only.
//! 2. **Exchange**: drain the mailboxes addressed to this slab and publish
//!    fresh boundary snapshots for the next cycle.
//!
//! Earlier revisions ran one worker per slab in lockstep with two global
//! barriers per simulated cycle; on a load-dominated mesh the barriers —
//! not per-node work — dominated, and with fewer cores than workers each
//! crossing burned a scheduling quantum. The crew design replaces both
//! global barriers with the task graph's *neighbor-only* data dependencies:
//!
//! * phase 1 of slab `k`, cycle `c` needs exchanges `c-1` of `k-1, k, k+1`
//!   (their boundary snapshots for `c` are then published);
//! * exchange of slab `k`, cycle `c` needs phase 1 `c` of `k-1, k, k+1`
//!   (every mailbox entry for cycle `c` has then been posted).
//!
//! Any worker may execute any ready task: a slab is claimed with a
//! `try_lock`, advanced as far as its dependencies allow, and released.
//! Per-slab progress counters (`p_cycle`/`x_cycle`) are the dependency
//! state; cross-slab latency is one cycle in both directions (mailbox
//! deliveries carry `ready_cycle = c + 1`, space snapshots describe the
//! *next* cycle's credit), so neighbor skew never exceeds one cycle and a
//! mailbox holds at most one cycle's flits — which is why the single-slot
//! mailbox/snapshot structures need no versioning. On an oversubscribed
//! host the crew degenerates gracefully: whichever thread the OS runs
//! sweeps *all* slabs forward itself instead of spinning on stragglers,
//! and task-starved workers back off spin → yield → sleep ([`Backoff`]).
//!
//! Global coordination — the stop/skip decision `run_until_quiescent`
//! makes every cycle on the sequential engines — runs only at **quantum
//! boundaries**, every Q cycles ([`MachineConfig::quantum`]): phase 1 may
//! not pass `decided_through`, so the task graph drains naturally at the
//! boundary and exactly one worker claims the serial [`QuantumCtl::decide`]
//! section. Fixed-cycle drives (`run(cycles)`) need no decisions at all —
//! the deadline is the only boundary. Quiescence and the deadline are
//! reconstructed *exactly* despite the deferred check (see
//! `DESIGN.md` §4.10: a quiescent machine's extra cycles are pure counter
//! increments, rewound before stopping); a node error stops the drive at
//! the boundary after the error rather than the cycle after it — the one
//! documented, deterministic divergence, and `quantum == 1` restores the
//! per-cycle behavior bit-for-bit.
//!
//! Determinism: every task runs exactly once, under its slab's mutex, with
//! all dependencies complete; phase 1 reads nothing another slab writes
//! during phase 1, exchange touches only slab-own state plus mailboxes
//! with deterministic content, and the decide section reduces slab
//! statuses in fixed order. Which worker runs a task, the thread count,
//! the slab count, and the quantum therefore cannot change any observable
//! value — the equivalence suites run the same workloads across threads
//! ∈ {1, 2, 4} × quanta ∈ {1, 2, 4, 8} against the sequential engines and
//! demand bit-identical results.

use crate::machine::{EventSched, ScanMode, NOT_IDLE, PARKED};
use jm_isa::instr::MsgPriority;
use jm_isa::node::NodeId;
use jm_isa::word::Word;
use jm_mdp::{InjectAck, MdpNode, NetPort, TickOutcome};
use jm_net::{edge_pair, Edge, InjectResult, NetShard};
use std::cmp::Reverse;
use std::sync::atomic::{
    AtomicBool, AtomicU32, AtomicU64, AtomicUsize,
    Ordering::{AcqRel, Acquire, Relaxed, Release},
};
use std::sync::Mutex;

/// Adapter giving one node's `SEND` instructions access to its shard's
/// injection port (the shard-local sibling of the machine-level `Port`).
struct ShardPort<'a> {
    shard: &'a mut NetShard,
    node: NodeId,
}

impl NetPort for ShardPort<'_> {
    fn commit(&mut self, priority: MsgPriority, words: &[Word]) -> InjectAck {
        match self.shard.commit_msg(self.node, priority, words) {
            InjectResult::Accepted => InjectAck::Accepted,
            InjectResult::Stall => InjectAck::Stall,
            InjectResult::BadRoute => InjectAck::Rejected,
        }
    }
}

/// Phase 1 for one shard: pump deliveries, tick due nodes, step routers.
/// `nodes` is the slab's slice of the machine's node array (local indexing);
/// `sched` is the slab's scheduler (global ids in its heap). Also the body
/// of the sequential event engine's step — `Engine::Event` is exactly this
/// with one all-covering shard, which is how the engines stay identical by
/// construction.
pub(crate) fn shard_cycle(
    now: u64,
    shard: &mut NetShard,
    sched: &mut EventSched,
    nodes: &mut [MdpNode],
    below: Option<&Edge>,
    above: Option<&Edge>,
) {
    let base = shard.base();
    // 1. Pump — only nodes the shard flagged as holding deliveries. The
    //    ascending-id snapshot mirrors the naive 0..n scan order (nothing a
    //    pump does affects another node).
    let mut pending = std::mem::take(&mut sched.pump_scratch);
    pending.clear();
    pending.extend(shard.pending_nodes().map(|id| id.0));
    for &n in &pending {
        let id = NodeId(n);
        let node = &mut nodes[id.index() - base];
        let mut delivered = false;
        for priority in MsgPriority::ALL {
            while let Some((word, trace)) = shard.delivered_front_traced(id, priority) {
                if node.deliver_traced(priority, word, trace, now) {
                    shard.pop_delivered(id, priority);
                    delivered = true;
                } else {
                    break; // queue full: backpressure
                }
            }
        }
        if delivered {
            sched.wake(node, now);
            sched.set_work(id.index(), node.has_work());
        }
    }
    sched.pump_scratch = pending;
    // 2. Execute every node due this cycle. Both strategies visit due nodes
    //    in ascending id order (equal-cycle heap entries pop in id order),
    //    and a tick touches only its own node's state and injection FIFO,
    //    so the strategy — and when `retune` switches it — is unobservable.
    let mut ticked = 0usize;
    match sched.mode {
        ScanMode::Heap => {
            while let Some(&Reverse((c, i))) = sched.heap.peek() {
                if c > now {
                    break;
                }
                sched.heap.pop();
                let i = i as usize;
                let l = i - base;
                if sched.wake_at[l] != c {
                    continue; // superseded entry
                }
                sched.wake_at[l] = PARKED;
                tick_node(now, shard, sched, nodes, base, i);
                ticked += 1;
            }
        }
        ScanMode::Dense => {
            for l in 0..sched.wake_at.len() {
                // PARKED is u64::MAX, so parked nodes fail this test too.
                if sched.wake_at[l] > now {
                    continue;
                }
                sched.wake_at[l] = PARKED;
                tick_node(now, shard, sched, nodes, base, base + l);
                ticked += 1;
            }
        }
    }
    sched.retune(ticked);
    // 3. Move this shard's routers (O(1) when no flits are buffered).
    shard.step_cycle(below, above);
}

/// Ticks one due node (already removed from the wake structures) and
/// re-files it according to the outcome.
#[inline]
fn tick_node(
    now: u64,
    shard: &mut NetShard,
    sched: &mut EventSched,
    nodes: &mut [MdpNode],
    base: usize,
    i: usize,
) {
    let l = i - base;
    let node = &mut nodes[l];
    let mut port = ShardPort {
        shard,
        node: node.id(),
    };
    match node.tick(now, &mut port) {
        TickOutcome::Busy { until } => sched.schedule(i, until.max(now + 1)),
        TickOutcome::Idle => sched.idle_since[l] = now + 1,
        TickOutcome::Stopped => {
            if node.error().is_some() {
                sched.record_error(i);
            }
        }
    }
    sched.set_work(i, nodes[l].has_work());
}

/// Escalating wait for task-starved workers: a short spin burst (the gap is
/// usually one neighbor task), then bounded `yield_now`, then sleeping in
/// growing slices. The sleep stage is what keeps an oversubscribed host
/// (fewer cores than workers) healthy — a yield storm between runnable
/// threads still burns the core the working thread needs, a sleeping
/// straggler does not.
pub(crate) struct Backoff {
    step: u32,
}

/// Steps 0..SPIN: `spin_loop` bursts doubling in length.
const SPIN_STEPS: u32 = 6;
/// Steps SPIN..SPIN+YIELD: `yield_now`.
const YIELD_STEPS: u32 = 8;
/// Sleep slice at the first sleep step (doubles up to [`MAX_SLEEP_US`]).
const BASE_SLEEP_US: u64 = 20;
/// Longest single sleep. Sized for the oversubscribed case: a starved
/// worker waking 4× per timeslice-ish interval costs the working thread
/// almost nothing, while a busy crew resets long before reaching the cap.
const MAX_SLEEP_US: u64 = 2_000;

impl Backoff {
    pub(crate) fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Forget accumulated pressure (called after real progress).
    pub(crate) fn reset(&mut self) {
        self.step = 0;
    }

    /// Whether the next [`Backoff::snooze`] would sleep (for tests).
    #[cfg(test)]
    pub(crate) fn would_sleep(&self) -> bool {
        self.step >= SPIN_STEPS + YIELD_STEPS
    }

    /// Wait a little, escalating each call until `reset`.
    pub(crate) fn snooze(&mut self) {
        if self.step < SPIN_STEPS {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < SPIN_STEPS + YIELD_STEPS {
            std::thread::yield_now();
        } else {
            let exp = (self.step - SPIN_STEPS - YIELD_STEPS).min(16);
            let us = (BASE_SLEEP_US << exp).min(MAX_SLEEP_US);
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        self.step = self.step.saturating_add(1);
    }
}

/// What the machine is driving toward.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Mode {
    /// `run(cycles)`: step to the deadline, no other checks (and therefore
    /// no quantum decisions at all — the deadline is the only boundary).
    Fixed {
        /// Absolute cycle to stop at.
        deadline: u64,
    },
    /// `run_until_quiescent`: stop on error, quiescence, or the deadline;
    /// skip idle stretches. Checked at quantum boundaries.
    Quiescent {
        /// Absolute cycle of the budget.
        deadline: u64,
    },
}

/// Sentinel in `quiet_since` slots: the shard is not currently quiet.
const NOT_QUIET: u64 = u64::MAX;

/// Per-shard status written with the exchange of the last pre-boundary
/// cycle and read by the decide section, aligned out so two workers never
/// share a cache line. Plain (`Relaxed`) stores suffice: they are sequenced
/// before the `Release` publication of `x_cycle`, whose `Acquire` read is
/// how the decider learns the boundary completed.
#[repr(align(128))]
struct ShardStatus {
    work: AtomicUsize,
    errors: AtomicUsize,
    net_idle: AtomicBool,
    next_wake: AtomicU64,
    /// First cycle of the shard's current quiet run ([`NOT_QUIET`] when the
    /// shard was not quiet after its last pre-boundary exchange).
    quiet_since: AtomicU64,
    /// Activity signal for the claim-order heuristic: flits buffered in the
    /// slab plus nodes with work, as of the last boundary.
    activity: AtomicU64,
}

impl ShardStatus {
    fn new() -> ShardStatus {
        ShardStatus {
            work: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            net_idle: AtomicBool::new(false),
            next_wake: AtomicU64::new(0),
            quiet_since: AtomicU64::new(NOT_QUIET),
            activity: AtomicU64::new(0),
        }
    }
}

/// Per-shard progress word, aligned out of its neighbors' cache lines.
#[repr(align(128))]
struct Progress(AtomicU64);

/// One slab's mutable state, handed between workers under a mutex. The
/// mutex is the claim: whoever holds it may run the slab's next ready task.
pub(crate) struct ShardSlot<'a> {
    pub(crate) shard: &'a mut NetShard,
    pub(crate) sched: &'a mut EventSched,
    pub(crate) nodes: &'a mut [MdpNode],
    /// First cycle of the current quiet run (work_count == 0 and network
    /// idle after that cycle's exchange), [`NOT_QUIET`] otherwise.
    /// Quiescence is absorbing (nothing can wake a workless idle mesh), so
    /// this only moves forward or resets on activity.
    quiet_since: u64,
}

impl<'a> ShardSlot<'a> {
    pub(crate) fn new(
        shard: &'a mut NetShard,
        sched: &'a mut EventSched,
        nodes: &'a mut [MdpNode],
    ) -> ShardSlot<'a> {
        ShardSlot {
            shard,
            sched,
            nodes,
            quiet_since: NOT_QUIET,
        }
    }
}

/// Shared control block for one parallel drive.
pub(crate) struct QuantumCtl {
    mode: Mode,
    /// Cycles between global decisions (`Quiescent` mode only).
    quantum: u64,
    /// Per-slab: the next cycle whose phase 1 has not run.
    p_cycle: Vec<Progress>,
    /// Per-slab: the next cycle whose exchange has not run.
    x_cycle: Vec<Progress>,
    status: Vec<ShardStatus>,
    /// Phase 1 may run cycles strictly below this (the current boundary).
    decided_through: AtomicU64,
    /// Boundary cycle whose decide section has been claimed (strictly
    /// increasing; a failed claim means another worker owns this boundary).
    claimed: AtomicU64,
    stopped: AtomicBool,
    final_cycle: AtomicU64,
    /// Claim-order hint: slab indices, busiest first, refreshed by the
    /// decide section from the boundary statuses. Purely a scheduling
    /// heuristic — any order is correct — so entries are read/written
    /// `Relaxed` and may be observed mid-update.
    order: Vec<AtomicU32>,
}

impl QuantumCtl {
    pub(crate) fn new(shards: usize, mode: Mode, quantum: u64, start: u64) -> QuantumCtl {
        let quantum = quantum.max(1);
        let first_boundary = match mode {
            // No decisions: the whole drive is one quantum.
            Mode::Fixed { deadline } => deadline,
            Mode::Quiescent { deadline } => deadline.min(start.saturating_add(quantum)),
        };
        QuantumCtl {
            mode,
            quantum,
            p_cycle: (0..shards)
                .map(|_| Progress(AtomicU64::new(start)))
                .collect(),
            x_cycle: (0..shards)
                .map(|_| Progress(AtomicU64::new(start)))
                .collect(),
            status: (0..shards).map(|_| ShardStatus::new()).collect(),
            decided_through: AtomicU64::new(first_boundary),
            claimed: AtomicU64::new(start),
            stopped: AtomicBool::new(false),
            final_cycle: AtomicU64::new(start),
            order: (0..shards).map(|k| AtomicU32::new(k as u32)).collect(),
        }
    }

    /// The cycle the machine stopped at (valid after the drive returns).
    pub(crate) fn final_cycle(&self) -> u64 {
        self.final_cycle.load(Acquire)
    }

    fn stop(&self, cycle: u64) {
        self.final_cycle.store(cycle, Release);
        self.stopped.store(true, Release);
    }

    /// Whether phase 1 of `c` may run on slab `k`: the boundary gate, the
    /// slab's own exchange of `c-1` (implied by the caller's progress
    /// read), and both neighbors' exchanges of `c-1` — their boundary
    /// snapshots for `c` are then final. `x_cycle` is the next unexchanged
    /// cycle, so "exchanged through `c-1`" reads as `x_cycle >= c`.
    fn phase1_ready(&self, k: usize, c: u64) -> bool {
        if c >= self.decided_through.load(Acquire) {
            return false;
        }
        (k == 0 || self.x_cycle[k - 1].0.load(Acquire) >= c)
            && (k + 1 == self.x_cycle.len() || self.x_cycle[k + 1].0.load(Acquire) >= c)
    }

    /// Whether the exchange of `c` may run on slab `k`: both neighbors'
    /// phase 1 of `c` (every mailbox entry for `c` is then posted). The
    /// slab's own phase 1 is implied by the caller's progress read.
    fn exchange_ready(&self, k: usize, c: u64) -> bool {
        (k == 0 || self.p_cycle[k - 1].0.load(Acquire) > c)
            && (k + 1 == self.p_cycle.len() || self.p_cycle[k + 1].0.load(Acquire) > c)
    }

    /// Advances slab `k` through every currently-ready task. Returns whether
    /// anything ran.
    fn advance(&self, k: usize, slot: &mut ShardSlot<'_>, edges: &[Edge]) -> bool {
        let (below, above) = edge_pair(edges, k);
        let mut progressed = false;
        loop {
            // Acquire: reading our own progress (possibly advanced by
            // another worker that held this mutex) must also bring in the
            // boundary value that worker saw, so the status-publication test
            // below never compares against a stale `decided_through`
            // (read-read coherence carries it over the mutex anyway; the
            // Acquire documents the dependency).
            let p = self.p_cycle[k].0.load(Acquire);
            let x = self.x_cycle[k].0.load(Acquire);
            if x < p {
                // Exchange of cycle `x` is pending.
                if !self.exchange_ready(k, x) {
                    return progressed;
                }
                slot.shard.exchange(below, above);
                // A shard whose traffic window still lies ahead is not
                // quiet: quiescence must wait for the generator to finish
                // (mirrors `JMachine::is_quiescent`).
                let quiet = slot.sched.work_count == 0
                    && slot.shard.is_idle()
                    && slot.shard.traffic_wake() == u64::MAX;
                if quiet {
                    if slot.quiet_since == NOT_QUIET {
                        slot.quiet_since = x;
                    }
                } else {
                    slot.quiet_since = NOT_QUIET;
                }
                if x + 1 == self.decided_through.load(Acquire) {
                    // Last exchange before the boundary: publish status for
                    // the decide section (sequenced before the `Release`
                    // below).
                    let st = &self.status[k];
                    st.work.store(slot.sched.work_count, Relaxed);
                    st.errors.store(slot.sched.error_count, Relaxed);
                    st.net_idle.store(slot.shard.is_idle(), Relaxed);
                    // The traffic window's next active cycle caps the
                    // idle-skip target exactly like a scheduled node
                    // wake-up (mirrors `JMachine::fast_forward`).
                    st.next_wake.store(
                        slot.sched.next_due().min(slot.shard.traffic_wake()),
                        Relaxed,
                    );
                    st.quiet_since.store(slot.quiet_since, Relaxed);
                    st.activity.store(
                        slot.shard.in_flight() + slot.sched.work_count as u64,
                        Relaxed,
                    );
                }
                self.x_cycle[k].0.store(x + 1, Release);
            } else {
                // Phase 1 of cycle `p` is pending.
                if !self.phase1_ready(k, p) {
                    return progressed;
                }
                shard_cycle(p, slot.shard, slot.sched, slot.nodes, below, above);
                self.p_cycle[k].0.store(p + 1, Release);
            }
            progressed = true;
        }
    }

    /// Boundary bookkeeping: detect completion of the current boundary and
    /// either finish a `Fixed` drive or claim and run the serial decide
    /// section. Cheap when the boundary is not yet complete (n atomic
    /// loads). Returns whether this call decided (progress for the caller).
    fn try_decide(&self, slots: &[Mutex<ShardSlot<'_>>]) -> bool {
        if self.stopped.load(Acquire) {
            return false;
        }
        let b = self.decided_through.load(Acquire);
        if self.x_cycle.iter().any(|x| x.0.load(Acquire) < b) {
            return false;
        }
        if let Mode::Fixed { deadline } = self.mode {
            // All slabs exchanged through the deadline: the drive is done.
            // Several workers may observe this; the store is idempotent.
            self.stop(deadline);
            return true;
        }
        // Claim this boundary (boundaries strictly increase, so an equal
        // `claimed` value means another worker owns it).
        let prev = self.claimed.load(Relaxed);
        if prev >= b
            || self
                .claimed
                .compare_exchange(prev, b, AcqRel, Relaxed)
                .is_err()
        {
            return false;
        }
        self.decide(b, slots);
        true
    }

    /// Serial coordinator section at boundary `b` (all slabs aligned at
    /// `b`, no task runnable, this worker holds the claim). Mirrors the
    /// sequential `run_until_quiescent` loop head: stop on error,
    /// quiescence, or deadline; with every slab's network idle, skip to the
    /// earliest wake-up. Quiescence is reconstructed exactly even though
    /// the check is deferred — see the module docs and `DESIGN.md` §4.10.
    fn decide(&self, b: u64, slots: &[Mutex<ShardSlot<'_>>]) {
        let Mode::Quiescent { deadline } = self.mode else {
            unreachable!("Fixed drives make no decisions");
        };
        let mut work = 0usize;
        let mut errors = 0usize;
        let mut idle = true;
        let mut wake = u64::MAX;
        let mut quiet_max = 0u64;
        let mut all_quiet = true;
        for st in &self.status {
            work += st.work.load(Relaxed);
            errors += st.errors.load(Relaxed);
            idle &= st.net_idle.load(Relaxed);
            wake = wake.min(st.next_wake.load(Relaxed));
            let q = st.quiet_since.load(Relaxed);
            if q == NOT_QUIET {
                all_quiet = false;
            } else {
                quiet_max = quiet_max.max(q);
            }
        }
        self.refresh_order();
        if errors > 0 {
            // Deterministic, quantum-granular: the sequential engines stop
            // the cycle after the error; we stop at the boundary after it
            // (identical when quantum == 1). Documented in DESIGN.md §4.10.
            self.stop(b);
            return;
        }
        if all_quiet {
            debug_assert_eq!(work, 0, "quiet shards reported work");
            // Globally quiescent since the end of cycle `quiet_max`: the
            // sequential engines stop at `quiet_max + 1`; we overran by up
            // to a quantum. The overrun simulated nothing except shard
            // cycle-counter bumps plus — for each node that was still
            // *scheduled* when the machine went quiet (a handler's final
            // instruction reports busy-until before the node parks) —
            // exactly one idle tick. Both are exactly invertible; unwind
            // them and stop where the sequential engines stop.
            let stop_at = quiet_max + 1;
            for slot in slots {
                let mut slot = slot.lock().expect("slab mutex poisoned");
                let slot = &mut *slot;
                slot.shard.rewind_idle_to(stop_at);
                let base = slot.shard.base();
                for l in 0..slot.nodes.len() {
                    let since = slot.sched.idle_since[l];
                    // `idle_since == w + 1` marks an idle tick at cycle `w`;
                    // `w >= stop_at` means it ran in the overrun window.
                    if since != NOT_IDLE && since > stop_at {
                        slot.nodes[l].undo_idle_tick();
                        slot.sched.idle_since[l] = NOT_IDLE;
                        // Re-park the node exactly as sequential leaves it:
                        // scheduled for the tick it has not yet taken.
                        slot.sched.schedule(base + l, since - 1);
                    }
                }
            }
            self.stop(stop_at);
            return;
        }
        if b >= deadline {
            self.stop(b);
            return;
        }
        if idle {
            // Network idle everywhere but nodes still scheduled: mirror the
            // sequential fast-forward. (Stepping the idle cycles up to here
            // was equally a no-op, so skipping from `b` is exact.)
            let t = wake.min(deadline);
            if t >= deadline {
                for slot in slots {
                    let mut slot = slot.lock().expect("slab mutex poisoned");
                    slot.shard.skip_to(deadline);
                }
                self.stop(deadline);
                return;
            }
            if t > b {
                for (k, slot) in slots.iter().enumerate() {
                    let mut slot = slot.lock().expect("slab mutex poisoned");
                    slot.shard.skip_to(t);
                    self.p_cycle[k].0.store(t, Release);
                    self.x_cycle[k].0.store(t, Release);
                }
                self.decided_through
                    .store(deadline.min(t.saturating_add(self.quantum)), Release);
                return;
            }
        }
        self.decided_through
            .store(deadline.min(b.saturating_add(self.quantum)), Release);
    }

    /// Re-sorts the claim-order hint by the just-published activity,
    /// busiest slab first. Heuristic only: racing readers may see a mix of
    /// old and new entries, which is harmless.
    fn refresh_order(&self) {
        let n = self.status.len();
        let mut pairs: Vec<(u64, u32)> = (0..n)
            .map(|k| (self.status[k].activity.load(Relaxed), k as u32))
            .collect();
        pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (slot, (_, k)) in self.order.iter().zip(pairs) {
            slot.store(k, Relaxed);
        }
    }
}

/// Body of one crew worker: sweep the slabs (own home slab first, then the
/// activity-ordered rest), advancing every slab whose mutex is free and
/// whose next task is ready, deciding at quantum boundaries, and backing
/// off when task-starved.
pub(crate) fn crew_loop(
    me: usize,
    workers: usize,
    slots: &[Mutex<ShardSlot<'_>>],
    edges: &[Edge],
    ctl: &QuantumCtl,
) {
    let n = slots.len();
    // Spread workers' home slabs across the mesh so the common case is
    // every worker advancing its own pipeline stage.
    let home = me * n / workers.max(1);
    let mut backoff = Backoff::new();
    while !ctl.stopped.load(Acquire) {
        let mut progressed = false;
        // Home slab first, then every slab in activity order (busiest
        // first). Every slab appears in the sweep — the order hint biases
        // contention, it must never starve a dependency.
        for j in 0..=n {
            let k = if j == 0 {
                home
            } else {
                ctl.order[j - 1].load(Relaxed) as usize % n
            };
            if let Ok(mut slot) = slots[k].try_lock() {
                progressed |= ctl.advance(k, &mut slot, edges);
            }
        }
        progressed |= ctl.try_decide(slots);
        if progressed {
            backoff.reset();
        } else {
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_escalates_to_sleeping() {
        let mut b = Backoff::new();
        assert!(!b.would_sleep());
        for _ in 0..(SPIN_STEPS + YIELD_STEPS) {
            assert!(!b.would_sleep());
            b.snooze();
        }
        assert!(b.would_sleep(), "escalation never reached the sleep stage");
        b.reset();
        assert!(!b.would_sleep());
    }

    #[test]
    fn backoff_sleep_slices_are_bounded() {
        // The capped slice keeps worst-case wake-up latency small even
        // after long starvation.
        let exp = 16u32;
        assert!((BASE_SLEEP_US << exp.min(16)).min(MAX_SLEEP_US) <= MAX_SLEEP_US);
        let mut b = Backoff::new();
        for _ in 0..(SPIN_STEPS + YIELD_STEPS) {
            b.snooze();
        }
        let t0 = std::time::Instant::now();
        b.snooze(); // first sleep step
        let waited = t0.elapsed();
        assert!(
            waited >= std::time::Duration::from_micros(BASE_SLEEP_US / 2),
            "sleep step did not sleep ({waited:?})"
        );
    }
}
