//! Machine configuration.

use jm_fault::FaultSpec;
use jm_isa::node::MeshDims;
use jm_mdp::MdpConfig;
use jm_net::NetConfig;
use jm_traffic::TrafficSpec;

/// Which nodes start a background thread at boot (at the program's declared
/// entry point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartPolicy {
    /// Only node 0 — the common SPMD pattern where node 0 orchestrates and
    /// the rest react to messages.
    #[default]
    Node0,
    /// Every node runs the background entry.
    AllNodes,
    /// No background threads; the host must deliver the first messages.
    None,
}

/// Which simulation engine drives the machine's clock.
///
/// All engines are **cycle-exact**: final memory, machine statistics,
/// per-class cycle attribution, and network counters are identical. They
/// differ only in host run time — the event engine tracks work instead of
/// scanning for it, and the parallel engine additionally spreads the mesh's
/// z-slabs over worker threads (bit-identically: see `DESIGN.md` §4.7 for
/// the two-phase tick and the determinism argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Event-driven: active-node worklist, delivery notification, active
    /// routers only, and O(1) quiescence. The default.
    Event,
    /// Naive reference: every node ticks and every router is scanned every
    /// cycle. Kept as the semantic baseline for differential testing.
    Naive,
    /// Deterministic multi-threaded: the mesh is cut into contiguous
    /// z-slabs (about two per worker, clamped to the z extent) and a crew
    /// of this many worker threads advances them as a task graph with
    /// neighbor-only synchronization; global coordination happens only at
    /// multi-cycle quantum boundaries (see [`MachineConfig::quantum`] and
    /// `DESIGN.md` §4.10). Results are bit-identical to the other engines
    /// for every thread count and every quantum. `Parallel(1)` runs the
    /// event engine's sequential path. Machines built with lifecycle
    /// tracing enabled are an error unless the config opts into
    /// [`TraceFallback::Allow`] (trace ids need a global injection
    /// counter).
    Parallel(u32),
}

/// What to do when a machine requests [`Engine::Parallel`] with lifecycle
/// tracing enabled. Trace ids are injection ordinals from one global
/// counter, which sharded injection does not maintain, so the combination
/// cannot run threaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFallback {
    /// Refuse to build the machine
    /// ([`MachineError::TraceUnsupportedUnderParallel`](crate::MachineError)).
    /// The default: a benchmark that asks for the parallel engine must not
    /// silently measure a different one.
    #[default]
    Error,
    /// Fall back to [`Engine::Event`] — bit-identical by construction, so
    /// the trace describes exactly what the parallel engine would have
    /// simulated. The fallback is counted
    /// ([`parallel_trace_fallbacks`](crate::parallel_trace_fallbacks)) and
    /// logged so run metadata can name the engine that actually executed.
    Allow,
}

/// How the event engine's per-shard scheduler advances due nodes.
///
/// `Auto` (the default) watches measured occupancy — the number of nodes
/// that actually ticked in the cycle just run — and flips between the
/// wake-up heap (sparse activity) and a dense scan of the wake table
/// (saturated activity). The up-switch threshold (5/8 of the shard's nodes)
/// sits well above the down-switch threshold (1/4), so a load hovering near
/// either cannot thrash the switch. All three modes are bit-identical — the
/// differential suite runs them side by side — because due nodes tick in
/// ascending id order under both strategies; only the cost of *finding*
/// them changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Congestion-aware switching with hysteresis.
    #[default]
    Auto,
    /// Always use the wake-up heap (the classic event engine).
    ForcedEvent,
    /// Always use the dense wake-table scan.
    ForcedScan,
}

/// Process-wide default-engine override (see [`Engine::set_default`]).
static DEFAULT_ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();

impl Default for Engine {
    /// [`Engine::Event`], unless the process overrode it.
    fn default() -> Engine {
        *DEFAULT_ENGINE.get().unwrap_or(&Engine::Event)
    }
}

impl Engine {
    /// Overrides what [`Engine::default`] — and therefore every
    /// [`MachineConfig`] that doesn't set an engine explicitly — returns
    /// for the rest of the process. The first call wins; later calls are
    /// ignored. This exists for harness binaries (e.g. `repro_all
    /// --threads N`) that must run an entire experiment suite under a
    /// non-default engine without plumbing a parameter through every
    /// experiment's API; call it at startup, before building machines.
    pub fn set_default(engine: Engine) {
        let _ = DEFAULT_ENGINE.set(engine);
    }
}

/// Message-lifecycle tracing configuration.
///
/// Off by default: an untraced machine allocates no event buffers, and the
/// per-event cost in every component is a single pointer test. Tracing is
/// purely observational — enabling it changes no simulated behavior and no
/// [`MachineStats`](crate::MachineStats) counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether lifecycle events are recorded.
    pub enabled: bool,
    /// Cycle interval between occupancy samples (queue depths, flits in
    /// flight, active routers). Only read while `enabled`.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            sample_every: 64,
        }
    }
}

impl TraceConfig {
    /// Tracing on, default sampling interval.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Sets the sampling interval (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn sample_every(mut self, every: u64) -> TraceConfig {
        assert!(every > 0, "sample interval must be positive");
        self.sample_every = every;
        self
    }
}

/// Configuration of a whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Mesh dimensions.
    pub dims: MeshDims,
    /// Per-node configuration.
    pub mdp: MdpConfig,
    /// Network configuration (dims must match `dims`).
    pub net: NetConfig,
    /// Background start policy.
    pub start: StartPolicy,
    /// Simulation engine.
    pub engine: Engine,
    /// Lifecycle tracing (off by default).
    pub trace: TraceConfig,
    /// Policy for tracing + [`Engine::Parallel`] (an error by default).
    pub trace_fallback: TraceFallback,
    /// Parallel-engine quantum: simulated cycles between global
    /// coordination points (quiescence/error/idle-skip checks). `0` (the
    /// default) picks automatically. Purely a host-performance knob —
    /// observable results are bit-identical for every quantum; the only
    /// documented divergence is *when* a `run_until_quiescent` drive stops
    /// after a node error (at the next quantum boundary rather than the
    /// cycle after the error; see `DESIGN.md` §4.10). Ignored by the
    /// sequential engines.
    pub quantum: u32,
    /// Scheduler advance strategy (auto-switching by default).
    pub sched: SchedMode,
    /// Fault-injection plan (none by default). A vacuous spec — no windows,
    /// zero rates, no checksums — canonicalizes to no plan at machine
    /// build, so it takes the exact fault-free code paths.
    pub fault: Option<FaultSpec>,
    /// Synthetic background-traffic plan (none by default). A vacuous
    /// spec — zero load or an empty window — canonicalizes to no plan at
    /// machine build, so it takes the exact traffic-free code paths.
    pub traffic: Option<TrafficSpec>,
}

impl MachineConfig {
    /// Near-cubic machine of `nodes` nodes with default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` cannot be factored into a mesh (see
    /// [`MeshDims::for_nodes`]).
    pub fn new(nodes: u32) -> MachineConfig {
        let dims = MeshDims::for_nodes(nodes);
        MachineConfig {
            dims,
            mdp: MdpConfig::default(),
            net: NetConfig::new(dims),
            start: StartPolicy::default(),
            engine: Engine::default(),
            trace: TraceConfig::default(),
            trace_fallback: TraceFallback::default(),
            quantum: 0,
            sched: SchedMode::default(),
            fault: None,
            traffic: None,
        }
    }

    /// Machine with explicit mesh dimensions.
    pub fn with_dims(dims: MeshDims) -> MachineConfig {
        MachineConfig {
            dims,
            mdp: MdpConfig::default(),
            net: NetConfig::new(dims),
            start: StartPolicy::default(),
            engine: Engine::default(),
            trace: TraceConfig::default(),
            trace_fallback: TraceFallback::default(),
            quantum: 0,
            sched: SchedMode::default(),
            fault: None,
            traffic: None,
        }
    }

    /// The paper's 512-node prototype (8×8×8).
    pub fn prototype_512() -> MachineConfig {
        MachineConfig::new(512)
    }

    /// Sets the start policy (builder style).
    pub fn start(mut self, policy: StartPolicy) -> MachineConfig {
        self.start = policy;
        self
    }

    /// Sets the per-node configuration (builder style).
    pub fn mdp(mut self, mdp: MdpConfig) -> MachineConfig {
        self.mdp = mdp;
        self
    }

    /// Sets the simulation engine (builder style).
    pub fn engine(mut self, engine: Engine) -> MachineConfig {
        self.engine = engine;
        self
    }

    /// Sets the tracing configuration (builder style).
    pub fn trace(mut self, trace: TraceConfig) -> MachineConfig {
        self.trace = trace;
        self
    }

    /// Enables tracing with default settings (builder style).
    pub fn traced(mut self) -> MachineConfig {
        self.trace = TraceConfig::on();
        self
    }

    /// Sets the tracing + parallel-engine policy (builder style).
    pub fn trace_fallback(mut self, policy: TraceFallback) -> MachineConfig {
        self.trace_fallback = policy;
        self
    }

    /// Sets the parallel-engine quantum in cycles, `0` = auto (builder
    /// style).
    pub fn quantum(mut self, quantum: u32) -> MachineConfig {
        self.quantum = quantum;
        self
    }

    /// Sets the scheduler advance strategy (builder style).
    pub fn sched_mode(mut self, sched: SchedMode) -> MachineConfig {
        self.sched = sched;
        self
    }

    /// Sets the fault-injection plan (builder style).
    pub fn fault(mut self, spec: FaultSpec) -> MachineConfig {
        self.fault = Some(spec);
        self
    }

    /// Sets the synthetic background-traffic plan (builder style).
    pub fn traffic(mut self, spec: TrafficSpec) -> MachineConfig {
        self.traffic = Some(spec);
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.dims.nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match() {
        let c = MachineConfig::new(64);
        assert_eq!(c.nodes(), 64);
        assert_eq!(c.dims, MeshDims::new(4, 4, 4));
        assert_eq!(c.net.dims, c.dims);
    }

    #[test]
    fn builder_style_setters() {
        let c = MachineConfig::new(8).start(StartPolicy::AllNodes);
        assert_eq!(c.start, StartPolicy::AllNodes);
    }
}
