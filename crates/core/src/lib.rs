//! # jm-machine
//!
//! The whole J-Machine: N Message-Driven Processor nodes (`jm-mdp`) on a
//! 3-D mesh (`jm-net`), stepped under one clock.
//!
//! A [`JMachine`] is built from an assembled [`jm_asm::Program`] (loaded
//! identically on every node, as on the real machine) and a
//! [`MachineConfig`]. The host interface mirrors what the prototype's
//! diagnostic host could do: deliver messages into node queues, peek and
//! poke node memory, install fault vectors, and read every statistic.
//!
//! # Example
//!
//! ```
//! use jm_machine::{JMachine, MachineConfig, StartPolicy};
//! use jm_asm::Builder;
//! use jm_isa::reg::DReg::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Builder::new();
//! b.reserve("out", jm_asm::Region::Imem, 1);
//! b.label("main");
//! b.movi(R0, 42);
//! b.load_seg(jm_isa::reg::AReg::A0, "out");
//! b.mov(jm_isa::operand::MemRef::disp(jm_isa::reg::AReg::A0, 0), R0);
//! b.halt();
//! b.entry("main");
//! let program = b.assemble()?;
//!
//! let mut machine = JMachine::new(program, MachineConfig::new(8).start(StartPolicy::AllNodes));
//! machine.run_until_quiescent(10_000)?;
//! let out = machine.program().segment("out");
//! assert_eq!(machine.read_word(jm_isa::NodeId(3), out.base).as_i32(), 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod machine;
mod parallel;
mod replay;
mod stats;

pub use config::{Engine, MachineConfig, SchedMode, StartPolicy, TraceConfig, TraceFallback};
pub use jm_fault::{FaultSpec, FaultStats, FaultWindow, FaultWindowKind};
pub use jm_trace::{MachineTrace, MsgTrace, SamplePoint};
pub use jm_traffic::{TrafficPattern, TrafficSpec, TrafficStats};
pub use machine::{parallel_trace_fallbacks, JMachine, MachineError};
pub use replay::{
    capture_replay, capture_replay_from_env, recorded_machine_config, Corruption, MachineFactory,
    MachineReplayer,
};
pub use stats::MachineStats;
