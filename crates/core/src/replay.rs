//! Replay capture and re-execution for [`JMachine`].
//!
//! This module is `jm-machine`'s half of the deterministic-replay story
//! (the format and the engine-agnostic verify/bisect algorithms live in
//! `jm-replay`, below this crate in the dependency order):
//!
//! * **Recording.** A capturing machine logs every host-boundary input
//!   (vector installs, host message deliveries, memory pokes) stamped with
//!   the cycle it was applied at, plus a combined state hash
//!   ([`JMachine::state_hash`]) at every `interval`-cycle boundary. Runs
//!   are transparently chunked at those boundaries; the chunking is
//!   unobservable in simulated state because every engine can stop on any
//!   exact cycle. Nothing else needs recording — given the config, the
//!   program, the fault spec, and the host inputs, every engine reproduces
//!   the run bit-identically (that is the repo's core invariant, and the
//!   hashes are how a violation is caught and localized).
//! * **Capture control.** Per machine, [`JMachine::record_replay`] /
//!   [`JMachine::finish_replay`]. Process-wide, [`capture_replay`] (or
//!   [`capture_replay_from_env`], reading `JM_REPLAY_CAPTURE` and
//!   `JM_REPLAY_INTERVAL`) arms every subsequently-built machine and
//!   writes each machine's log into the capture directory when it drops —
//!   this is how harness binaries capture replay artifacts from
//!   experiments they cannot individually instrument.
//! * **Re-execution.** [`MachineFactory`] implements
//!   `jm_replay::ExecFactory`: it rebuilds a machine from a log's recorded
//!   configuration — optionally overriding the engine, thread count,
//!   quantum, or scheduler mode, which is the whole point of cross-engine
//!   verification — and drives it with exact fixed-cycle runs. A
//!   [`Corruption`] can be attached to inject a deliberate, unrecorded
//!   single-word divergence at a chosen cycle; the CI acceptance test uses
//!   it to prove the bisector localizes a fault to the exact cycle and
//!   component.

use crate::config::{Engine, MachineConfig, SchedMode, StartPolicy};
use crate::machine::JMachine;
use jm_isa::consts::FaultKind;
use jm_isa::instr::MsgPriority;
use jm_isa::node::NodeId;
use jm_isa::word::Word;
use jm_replay::{ComponentHash, HostOp, Record, RecordedConfig, ReplayLog};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-wide capture directive (see [`capture_replay`]).
struct Capture {
    dir: PathBuf,
    interval: u64,
    seq: AtomicU64,
}

static CAPTURE: OnceLock<Capture> = OnceLock::new();

/// Arms process-wide replay capture: every [`JMachine`] built after this
/// call records a replay log with hash boundaries every `interval` cycles
/// and writes it to `dir/replay-NNNN.jmrp` when the machine is dropped
/// (sequence numbers follow drop order). The first call wins; later calls
/// are ignored — like [`Engine::set_default`], this exists for harness
/// binaries that must capture an entire experiment suite without plumbing
/// a parameter through every experiment's API.
///
/// # Panics
///
/// Panics if `interval` is zero.
pub fn capture_replay(dir: impl Into<PathBuf>, interval: u64) {
    assert!(interval > 0, "replay interval must be positive");
    let dir = dir.into();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "jm-machine: warning: cannot create replay capture dir {}: {e}",
            dir.display()
        );
    }
    let _ = CAPTURE.set(Capture {
        dir,
        interval,
        seq: AtomicU64::new(0),
    });
}

/// Arms [`capture_replay`] from the environment: `JM_REPLAY_CAPTURE` names
/// the capture directory (unset or empty leaves capture off) and
/// `JM_REPLAY_INTERVAL` optionally overrides the boundary spacing
/// (default [`jm_replay::DEFAULT_INTERVAL`]). Returns whether capture was
/// armed. Harness binaries call this at startup so CI can flip capture on
/// without new flags.
pub fn capture_replay_from_env() -> bool {
    match std::env::var("JM_REPLAY_CAPTURE") {
        Ok(dir) if !dir.is_empty() => {
            let interval = std::env::var("JM_REPLAY_INTERVAL")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&i| i > 0)
                .unwrap_or(jm_replay::DEFAULT_INTERVAL);
            capture_replay(dir, interval);
            true
        }
        _ => false,
    }
}

/// Per-machine recording state (attached to a [`JMachine`] while it is
/// capturing).
pub(crate) struct Recorder {
    /// Hash-boundary spacing in cycles.
    pub(crate) interval: u64,
    /// Whether the drop handler writes the log into the process-wide
    /// capture directory (global capture) or an explicit
    /// [`JMachine::finish_replay`] is expected (per-machine capture).
    pub(crate) autosave: bool,
    /// Ops and checkpoints accumulated so far, in order.
    pub(crate) records: Vec<Record>,
}

impl Recorder {
    /// A recorder for a freshly-built machine when process-wide capture is
    /// armed, else `None`.
    pub(crate) fn from_capture() -> Option<Recorder> {
        CAPTURE.get().map(|c| Recorder {
            interval: c.interval,
            autosave: true,
            records: Vec::new(),
        })
    }
}

/// First interval boundary strictly after `cycle`.
fn next_boundary(cycle: u64, interval: u64) -> u64 {
    (cycle / interval + 1).saturating_mul(interval)
}

impl JMachine {
    /// Starts capturing a replay log on this machine, with a state-hash
    /// checkpoint every `interval` cycles ([`jm_replay::DEFAULT_INTERVAL`]
    /// is the tuned default). Call before any host op — recording starts
    /// empty. [`Self::finish_replay`] collects the log.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or the machine has already run.
    pub fn record_replay(&mut self, interval: u64) {
        assert!(interval > 0, "replay interval must be positive");
        assert_eq!(
            self.cycle(),
            0,
            "replay capture must start on an unrun machine"
        );
        self.recorder = Some(Recorder {
            interval,
            autosave: false,
            records: Vec::new(),
        });
    }

    /// Stops capturing and returns the finished log (with a final `End`
    /// checkpoint at the current cycle), or `None` if the machine was not
    /// recording.
    pub fn finish_replay(&mut self) -> Option<ReplayLog> {
        self.recorder.as_ref()?;
        let cycle = self.cycle();
        let hash = self.state_hash();
        let rec = self.recorder.take().expect("checked above");
        let mut records = rec.records;
        records.push(Record::End { cycle, hash });
        Some(ReplayLog {
            config: recorded_config(self.config()),
            fault: self.config().fault,
            traffic: self.config().traffic,
            interval: rec.interval,
            program: self.program().clone(),
            records,
        })
    }

    /// Records one host-boundary op at the current cycle (no-op unless
    /// capturing).
    pub(crate) fn record_op(&mut self, op: HostOp) {
        if self.recorder.is_none() {
            return;
        }
        let cycle = self.cycle();
        self.recorder
            .as_mut()
            .expect("checked above")
            .records
            .push(Record::Op { cycle, op });
    }

    /// Records a state-hash checkpoint at the current cycle.
    fn record_boundary(&mut self) {
        let cycle = self.cycle();
        let hash = self.state_hash();
        if let Some(r) = self.recorder.as_mut() {
            r.records.push(Record::Boundary { cycle, hash });
        }
    }

    /// [`Self::run`] while capturing: the same fixed drive, chunked at
    /// hash boundaries. Exactness of per-chunk deadlines (every engine
    /// stops on the exact cycle asked for) makes the chunking unobservable
    /// in simulated state.
    pub(crate) fn run_recorded(&mut self, cycles: u64) {
        let deadline = self.cycle().saturating_add(cycles);
        while self.cycle() < deadline {
            let interval = self.recorder.as_ref().expect("recording").interval;
            let boundary = next_boundary(self.cycle(), interval).min(deadline);
            self.run_inner(boundary - self.cycle());
            if self.cycle().is_multiple_of(interval) {
                self.record_boundary();
            }
        }
    }

    /// [`Self::run_until_quiescent`] while capturing: the inner drive runs
    /// with per-chunk budgets ending at hash boundaries; a chunk that
    /// "times out" at a boundary short of the real budget records a
    /// checkpoint and continues. Error, quiescence, and real-timeout
    /// classification are unchanged — the inner loop checks them every
    /// cycle exactly as the unrecorded path does.
    pub(crate) fn run_until_quiescent_recorded(
        &mut self,
        max_cycles: u64,
    ) -> Result<u64, crate::MachineError> {
        let start = self.cycle();
        let deadline = start.saturating_add(max_cycles);
        loop {
            let interval = self.recorder.as_ref().expect("recording").interval;
            let boundary = next_boundary(self.cycle(), interval).min(deadline);
            match self.run_until_quiescent_inner(boundary - self.cycle()) {
                Ok(_) => return Ok(self.cycle() - start),
                Err(crate::MachineError::Timeout {
                    busy_nodes,
                    in_flight,
                    ..
                }) => {
                    debug_assert_eq!(self.cycle(), boundary, "inner drive overshot its chunk");
                    if self.cycle() >= deadline {
                        return Err(crate::MachineError::Timeout {
                            cycles: self.cycle() - start,
                            busy_nodes,
                            in_flight,
                        });
                    }
                    self.record_boundary();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for JMachine {
    /// Globally-captured machines write their log on drop — this is what
    /// lets harness binaries capture experiments they cannot individually
    /// instrument, and what preserves a partial log (no `End` record) when
    /// a run dies mid-flight.
    fn drop(&mut self) {
        if std::thread::panicking() || !self.recorder.as_ref().is_some_and(|r| r.autosave) {
            return;
        }
        let Some(log) = self.finish_replay() else {
            return;
        };
        let Some(cap) = CAPTURE.get() else { return };
        let n = cap.seq.fetch_add(1, Ordering::Relaxed);
        let path = cap.dir.join(format!("replay-{n:04}.jmrp"));
        if let Err(e) = log.write_file(&path) {
            eprintln!(
                "jm-machine: warning: failed to write replay log {}: {e}",
                path.display()
            );
        }
    }
}

/// [`MachineConfig`] → the log header's engine-portable subset.
fn recorded_config(c: &MachineConfig) -> RecordedConfig {
    let (engine, threads) = match c.engine {
        Engine::Naive => (0, 0),
        Engine::Event => (1, 0),
        Engine::Parallel(t) => (2, t),
    };
    RecordedConfig {
        dims: c.dims,
        start: match c.start {
            StartPolicy::Node0 => 0,
            StartPolicy::AllNodes => 1,
            StartPolicy::None => 2,
        },
        engine,
        threads,
        quantum: c.quantum,
        sched: match c.sched {
            SchedMode::Auto => 0,
            SchedMode::ForcedEvent => 1,
            SchedMode::ForcedScan => 2,
        },
        mdp: c.mdp,
        net: c.net,
    }
}

/// Reconstructs the [`MachineConfig`] a log was recorded under (tracing
/// off — it is observational and not part of the recorded run). This is
/// the configuration [`MachineFactory::recorded`] replays with;
/// out-of-range discriminants fall back to the defaults rather than
/// panicking on a hand-edited log.
pub fn recorded_machine_config(log: &ReplayLog) -> MachineConfig {
    let rc = &log.config;
    let mut cfg = MachineConfig::with_dims(rc.dims);
    cfg.mdp = rc.mdp;
    cfg.net = rc.net;
    cfg.start = match rc.start {
        1 => StartPolicy::AllNodes,
        2 => StartPolicy::None,
        _ => StartPolicy::Node0,
    };
    cfg.engine = match rc.engine {
        0 => Engine::Naive,
        2 => Engine::Parallel(rc.threads),
        _ => Engine::Event,
    };
    cfg.quantum = rc.quantum;
    cfg.sched = match rc.sched {
        1 => SchedMode::ForcedEvent,
        2 => SchedMode::ForcedScan,
        _ => SchedMode::Auto,
    };
    cfg.fault = log.fault;
    cfg.traffic = log.traffic;
    cfg
}

/// A deliberate, *unrecorded* single-word memory write injected into a
/// replayed execution: the machine's state at `cycle` (and after) differs
/// from an uncorrupted replay by exactly this write, so bisection must
/// localize the divergence to `cycle` and component `node N mem`. This is
/// the test fixture that proves the bisector's localization claim
/// end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// Cycle the write lands at (state *at* this cycle already differs).
    /// Must be at least 1 — the executions agree at cycle 0 by
    /// construction.
    pub cycle: u64,
    /// Target node.
    pub node: NodeId,
    /// Word address written.
    pub addr: u32,
    /// Value written.
    pub word: Word,
}

/// Builds [`JMachine`]-backed executions of a replay log
/// (`jm_replay::ExecFactory`). The default replays under the *recorded*
/// configuration; the builder methods override the engine (with thread
/// count), quantum, or scheduler mode — the cross-engine axes the replay
/// machinery exists to compare — and optionally attach a [`Corruption`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MachineFactory {
    engine: Option<Engine>,
    quantum: Option<u32>,
    sched: Option<SchedMode>,
    corruption: Option<Corruption>,
}

impl MachineFactory {
    /// Replays under exactly the recorded configuration.
    pub fn recorded() -> MachineFactory {
        MachineFactory::default()
    }

    /// Overrides the engine (builder style).
    pub fn engine(mut self, engine: Engine) -> MachineFactory {
        self.engine = Some(engine);
        self
    }

    /// Overrides the parallel-engine quantum (builder style).
    pub fn quantum(mut self, quantum: u32) -> MachineFactory {
        self.quantum = Some(quantum);
        self
    }

    /// Overrides the scheduler advance strategy (builder style).
    pub fn sched_mode(mut self, sched: SchedMode) -> MachineFactory {
        self.sched = Some(sched);
        self
    }

    /// Injects an unrecorded memory corruption into every execution this
    /// factory builds (builder style).
    pub fn corrupt(mut self, corruption: Corruption) -> MachineFactory {
        self.corruption = Some(corruption);
        self
    }
}

impl jm_replay::ExecFactory for MachineFactory {
    fn build(&self, log: &ReplayLog) -> Box<dyn jm_replay::Execution> {
        let mut cfg = recorded_machine_config(log);
        if let Some(e) = self.engine {
            cfg.engine = e;
        }
        if let Some(q) = self.quantum {
            cfg.quantum = q;
        }
        if let Some(s) = self.sched {
            cfg.sched = s;
        }
        let mut m = JMachine::new(log.program.clone(), cfg);
        // A replayed machine never re-captures, even under global capture.
        m.recorder = None;
        Box::new(MachineReplayer {
            m,
            corruption: self.corruption,
        })
    }
}

/// `FaultKind` from its recorded discriminant.
///
/// # Panics
///
/// Panics on an out-of-range discriminant (a corrupt log body).
fn fault_kind(bits: u8) -> FaultKind {
    FaultKind::ALL[bits as usize]
}

/// A [`JMachine`] being driven through a replay log: implements
/// `jm_replay::Execution` with exact fixed-cycle drives (all engines stop
/// on the exact cycle asked for, which is what makes single-cycle
/// bisection probes meaningful).
pub struct MachineReplayer {
    m: JMachine,
    corruption: Option<Corruption>,
}

impl MachineReplayer {
    /// The underlying machine (for stats or memory inspection after a
    /// replay).
    pub fn machine(&self) -> &JMachine {
        &self.m
    }
}

impl jm_replay::Execution for MachineReplayer {
    fn cycle(&self) -> u64 {
        self.m.cycle()
    }

    fn advance_to(&mut self, cycle: u64) {
        if let Some(c) = self.corruption {
            if self.m.cycle() < c.cycle && cycle >= c.cycle {
                self.m.run_inner(c.cycle - self.m.cycle());
                self.m.node_mut(c.node).write_mem(c.addr, c.word);
            }
        }
        if cycle > self.m.cycle() {
            self.m.run_inner(cycle - self.m.cycle());
        }
    }

    fn apply(&mut self, op: &HostOp) {
        match op {
            HostOp::InstallVectorAll { kind, ip } => {
                let kind = fault_kind(*kind);
                for i in 0..self.m.node_count() {
                    self.m.node_mut(NodeId(i)).install_vector(kind, *ip);
                }
            }
            HostOp::InstallVector { node, kind, ip } => {
                self.m
                    .node_mut(NodeId(*node))
                    .install_vector(fault_kind(*kind), *ip);
            }
            HostOp::Deliver {
                node,
                priority,
                words,
            } => {
                let priority = MsgPriority::ALL[*priority as usize];
                self.m.deliver_words(NodeId(*node), priority, words);
            }
            HostOp::WriteWord { node, addr, word } => {
                self.m.node_mut(NodeId(*node)).write_mem(*addr, *word);
            }
        }
    }

    fn state_hash(&mut self) -> u64 {
        self.m.state_hash()
    }

    fn component_hashes(&mut self) -> Vec<ComponentHash> {
        self.m.component_hashes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_asm::{hdr, Builder, Region};
    use jm_isa::operand::{MemRef, Special};
    use jm_isa::reg::AReg::*;
    use jm_isa::reg::DReg::*;
    use jm_isa::tag::Tag;
    use jm_replay::Divergence;

    /// Node 0 ping-pongs a counter with the last node `rounds` times, then
    /// stores it — enough traffic to keep routers and queues busy across
    /// many hash boundaries.
    fn pingpong(rounds: i32) -> jm_asm::Program {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 1);
        b.label("main");
        b.movi(R0, 0x421); // (1,1,1) on a 2x2x2 mesh
        b.wtag(R0, R0, Tag::Route.bits() as i32);
        b.send(jm_isa::instr::MsgPriority::P0, R0);
        b.send2(jm_isa::instr::MsgPriority::P0, hdr("pong", 3), 0);
        b.sende(jm_isa::instr::MsgPriority::P0, Special::Nnr);
        b.suspend();

        b.label("pong");
        b.mov(R0, MemRef::disp(A3, 1));
        b.addi(R0, R0, 1);
        b.send(jm_isa::instr::MsgPriority::P0, MemRef::disp(A3, 2));
        b.send2e(jm_isa::instr::MsgPriority::P0, hdr("ping", 2), R0);
        b.suspend();

        b.label("ping");
        b.mov(R0, MemRef::disp(A3, 1));
        b.alu(jm_isa::instr::AluOp::Lt, R1, R0, rounds);
        b.bf(R1, "done");
        b.movi(R2, 0x421);
        b.wtag(R2, R2, Tag::Route.bits() as i32);
        b.send(jm_isa::instr::MsgPriority::P0, R2);
        b.send2(jm_isa::instr::MsgPriority::P0, hdr("pong", 3), R0);
        b.sende(jm_isa::instr::MsgPriority::P0, Special::Nnr);
        b.suspend();
        b.label("done");
        b.load_seg(A0, "out");
        b.mov(MemRef::disp(A0, 0), R0);
        b.suspend();

        b.entry("main");
        b.assemble().unwrap()
    }

    fn record(engine: Engine, interval: u64) -> ReplayLog {
        let cfg = MachineConfig::new(8).engine(engine);
        let mut m = JMachine::new(pingpong(40), cfg);
        m.record_replay(interval);
        m.run_until_quiescent(100_000).unwrap();
        let log = m.finish_replay().unwrap();
        assert!(m.finish_replay().is_none(), "finish is one-shot");
        log
    }

    #[test]
    fn recorded_run_verifies_under_other_engines() {
        let log = record(Engine::Event, 32);
        assert!(log.checkpoints() > 3, "expected several checkpoints");
        for f in [
            MachineFactory::recorded(),
            MachineFactory::recorded().engine(Engine::Naive),
            MachineFactory::recorded().engine(Engine::Parallel(2)),
            MachineFactory::recorded()
                .engine(Engine::Parallel(2))
                .quantum(1),
            MachineFactory::recorded().sched_mode(SchedMode::ForcedScan),
        ] {
            let report = jm_replay::verify(&log, &f);
            assert!(report.clean(), "{f:?}: {report}");
            assert_eq!(report.checked as usize, log.checkpoints());
        }
    }

    #[test]
    fn log_round_trips_and_host_ops_replay() {
        // Exercise every op kind: per-node and all-node vector installs, a
        // host delivery, and a memory poke mid-run.
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 2);
        b.label("main");
        b.suspend();
        b.label("copy");
        b.mov(R0, MemRef::disp(A3, 1));
        b.load_seg(A0, "out");
        b.mov(MemRef::disp(A0, 0), R0);
        b.suspend();
        b.entry("main");
        let program = b.assemble().unwrap();
        let cfg = MachineConfig::new(8).start(StartPolicy::None);
        let mut m = JMachine::new(program, cfg);
        m.record_replay(16);
        m.install_vector_all(FaultKind::CFutRead, "copy");
        m.install_vector(NodeId(3), FaultKind::FutUse, "copy");
        m.deliver_message(NodeId(3), MsgPriority::P0, "copy", &[Word::int(9)]);
        m.run_until_quiescent(10_000).unwrap();
        m.write_word(NodeId(3), 0x200, Word::int(77));
        m.run(40);
        let log = m.finish_replay().unwrap();
        let back = ReplayLog::from_bytes(&log.to_bytes()).unwrap();
        assert_eq!(back, log);
        let ops = log
            .records
            .iter()
            .filter(|r| matches!(r, Record::Op { .. }))
            .count();
        assert_eq!(ops, 4);
        let report = jm_replay::verify(&back, &MachineFactory::recorded().engine(Engine::Naive));
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn corruption_is_bisected_to_its_cycle_and_component() {
        let log = record(Engine::Event, 64);
        let end = log.end_cycle();
        assert!(end > 130, "run too short for a mid-run corruption: {end}");
        let at = 97; // deliberately not a checkpoint cycle
        let target = MachineFactory::recorded().corrupt(Corruption {
            cycle: at,
            node: NodeId(5),
            addr: 0x300,
            word: Word::int(123),
        });
        let report = jm_replay::bisect(&log, &MachineFactory::recorded(), &target);
        match &report.divergence {
            Divergence::Diverged {
                cycle, components, ..
            } => {
                assert_eq!(*cycle, at, "{report}");
                assert_eq!(components.len(), 1, "{report}");
                assert_eq!(components[0].label, "node 5 mem");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_checkpoint_is_named_as_log_mismatch() {
        let mut log = record(Engine::Event, 64);
        let cycle = log.corrupt_checkpoint(1).unwrap();
        let report = jm_replay::bisect(
            &log,
            &MachineFactory::recorded(),
            &MachineFactory::recorded().engine(Engine::Parallel(2)),
        );
        match &report.divergence {
            Divergence::LogMismatch { cycle: c, .. } => assert_eq!(*c, cycle, "{report}"),
            other => panic!("expected LogMismatch, got {other:?}"),
        }
    }

    #[test]
    fn capture_is_transparent() {
        // A captured run and an uncaptured run of the same config land on
        // identical cycle counts, stats, and memory.
        let run = |capture: bool| {
            let mut m = JMachine::new(pingpong(25), MachineConfig::new(8));
            if capture {
                m.record_replay(32);
            }
            let cycles = m.run_until_quiescent(100_000).unwrap();
            let out = m.program().segment("out");
            (cycles, m.stats(), m.read_word(NodeId(0), out.base))
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn recorded_config_round_trips() {
        let spec = jm_fault::FaultSpec::new(3).flaky(100_000).checksums(true);
        let cfg = MachineConfig::new(8)
            .engine(Engine::Parallel(3))
            .quantum(17)
            .sched_mode(SchedMode::ForcedScan)
            .start(StartPolicy::AllNodes)
            .fault(spec);
        let mut m = JMachine::new(pingpong(4), cfg);
        m.record_replay(64);
        let log = m.finish_replay().unwrap();
        let back = recorded_machine_config(&log);
        assert_eq!(back.dims, cfg.dims);
        assert_eq!(back.engine, Engine::Parallel(3));
        assert_eq!(back.quantum, 17);
        assert_eq!(back.sched, SchedMode::ForcedScan);
        assert_eq!(back.start, StartPolicy::AllNodes);
        assert_eq!(back.fault, Some(spec));
    }

    #[test]
    fn traffic_run_records_its_spec_and_replays_clean() {
        // A machine driven purely by the synthetic-traffic generator has
        // no host ops at all — everything it does comes from the traffic
        // spec. If the log did not carry the spec, a replay would rebuild
        // a silent machine and diverge at the first injected message.
        let mut b = Builder::new();
        b.data("acc", Region::Imem, vec![Word::int(0)]);
        b.label("sink");
        b.load_seg(A0, "acc");
        b.mov(R0, MemRef::disp(A0, 0));
        b.mov(R1, MemRef::disp(A3, 1));
        b.alu(jm_isa::instr::AluOp::Add, R0, R0, R1);
        b.mov(MemRef::disp(A0, 0), R0);
        b.suspend();
        let program = b.assemble().unwrap();
        let spec = crate::TrafficSpec::new(11)
            .pattern(crate::TrafficPattern::BitReversal)
            .load(200_000)
            .msg_words(3)
            .window(0, 300)
            .handler(program.handler("sink"));
        let cfg = MachineConfig::new(8).start(StartPolicy::None).traffic(spec);
        let mut m = JMachine::new(program, cfg);
        m.record_replay(64);
        m.run(300);
        m.run_until_quiescent(100_000).unwrap();
        let log = m.finish_replay().unwrap();
        assert_eq!(log.traffic, Some(spec));
        assert!(log.checkpoints() > 3, "expected several checkpoints");
        let back = ReplayLog::from_bytes(&log.to_bytes()).unwrap();
        assert_eq!(back, log);
        assert_eq!(recorded_machine_config(&log).traffic, Some(spec));
        for f in [
            MachineFactory::recorded(),
            MachineFactory::recorded().engine(Engine::Naive),
            MachineFactory::recorded()
                .engine(Engine::Parallel(2))
                .quantum(1),
        ] {
            let report = jm_replay::verify(&log, &f);
            assert!(report.clean(), "{f:?}: {report}");
            assert_eq!(report.checked as usize, log.checkpoints());
        }
    }
}
