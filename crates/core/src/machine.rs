//! The machine: nodes + network under one clock.
//!
//! Two engines drive that clock (see [`Engine`]): a naive reference that
//! scans every node and router each cycle, and the default event-driven
//! engine that tracks *where work is* — a wake-up heap for busy nodes, the
//! network's delivery notifications for queue pumping, and counters that
//! make quiescence an O(1) check. Both produce bit-identical observable
//! results; `DESIGN.md` ("Simulation engine scheduling") gives the
//! invariants and the cycle-exactness argument.

use crate::config::{Engine, MachineConfig, SchedMode, StartPolicy, TraceFallback};
use crate::stats::MachineStats;
use jm_asm::Program;
use jm_fault::{checksum_words, FaultPlan};
use jm_isa::consts::FaultKind;
use jm_isa::instr::{MsgPriority, StatClass};
use jm_isa::node::NodeId;
use jm_isa::word::{MsgHeader, Word};
use jm_isa::TraceId;
use jm_mdp::{InjectAck, MdpNode, NetPort, NodeError};
use jm_net::{InjectResult, Network, ScanPolicy};
use jm_trace::{MachineTrace, SamplePoint};
use jm_traffic::TrafficPlan;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of traced runs that requested [`Engine::Parallel`]
/// and were built on [`Engine::Event`] instead (see [`JMachine::new`]).
static PARALLEL_TRACE_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// How many machines in this process requested the parallel engine with
/// tracing enabled and silently-equivalently ran the event engine instead.
/// Harness binaries record this in their run metadata (e.g. the
/// `fault_sweep --digest` output) so a digest names the engine that
/// actually executed, not just the one requested.
pub fn parallel_trace_fallbacks() -> u64 {
    PARALLEL_TRACE_FALLBACKS.load(Ordering::Relaxed)
}

/// A machine-level failure.
#[derive(Debug, Clone)]
pub enum MachineError {
    /// One or more nodes stopped with an error.
    NodeErrors(Vec<(NodeId, NodeError)>),
    /// The cycle budget elapsed before quiescence.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Nodes that still had work.
        busy_nodes: u32,
        /// Flits still in the network.
        in_flight: u64,
    },
    /// The machine quiesced but undelivered words remain queued at halted
    /// nodes (a protocol bug in the guest program).
    StrandedMessages {
        /// Nodes with stranded words.
        nodes: Vec<NodeId>,
    },
    /// The configuration asked for [`Engine::Parallel`] with lifecycle
    /// tracing enabled, without opting into a fallback. Trace ids are
    /// injection ordinals from one global counter, which sharded injection
    /// does not maintain — run traced machines on [`Engine::Event`]
    /// (bit-identical), or set
    /// [`TraceFallback::Allow`](crate::TraceFallback) to let the machine do
    /// that itself (counted, so run metadata can name the engine that
    /// actually executed).
    TraceUnsupportedUnderParallel,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NodeErrors(errors) => {
                write!(f, "{} node error(s):", errors.len())?;
                for (id, e) in errors.iter().take(4) {
                    write!(f, " [{id}: {e}]")?;
                }
                Ok(())
            }
            MachineError::Timeout {
                cycles,
                busy_nodes,
                in_flight,
            } => write!(
                f,
                "no quiescence after {cycles} cycles ({busy_nodes} busy nodes, {in_flight} flits in flight)"
            ),
            MachineError::StrandedMessages { nodes } => {
                write!(f, "messages stranded at {} halted node(s)", nodes.len())
            }
            MachineError::TraceUnsupportedUnderParallel => write!(
                f,
                "lifecycle tracing is unsupported under Engine::Parallel; \
                 use Engine::Event or opt into TraceFallback::Allow"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// Adapter giving one node's `SEND` instructions access to its injection
/// port.
struct Port<'a> {
    net: &'a mut Network,
    node: NodeId,
}

impl NetPort for Port<'_> {
    fn commit(&mut self, priority: MsgPriority, words: &[Word]) -> InjectAck {
        match self.net.commit_msg(self.node, priority, words) {
            InjectResult::Accepted => InjectAck::Accepted,
            InjectResult::Stall => InjectAck::Stall,
            InjectResult::BadRoute => InjectAck::Rejected,
        }
    }
}

/// Sentinel in `wake_at`: the node is parked (not in the wake heap).
pub(crate) const PARKED: u64 = u64::MAX;
/// Sentinel in `idle_since`: the node is not parked idle.
pub(crate) const NOT_IDLE: u64 = u64::MAX;

/// Which strategy the scheduler is currently using to find due nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScanMode {
    /// Wake-up heap: O(log n) per transition, skips idle nodes entirely.
    Heap,
    /// Dense scan of `wake_at`: O(n) per cycle but no heap maintenance —
    /// cheaper when most nodes tick every cycle (the load-dominated regime).
    Dense,
}

/// A shard needs at least this many nodes before dense scanning can beat
/// the heap (below it the heap is tiny anyway).
const DENSE_MIN_NODES: usize = 16;

/// Event-engine bookkeeping for one shard's nodes: which need ticking and
/// when. The sequential event engine uses a single all-covering instance;
/// the parallel engine gives each shard its own, mirroring the network's
/// slab layout. Heap entries and method arguments use **global** node ids;
/// the per-node vectors are indexed locally (`id - base`).
///
/// Invariants (between steps), writing `l` for a node's local index:
/// * in [`ScanMode::Heap`], node `i` has exactly one heap entry iff
///   `wake_at[l] != PARKED`, and that entry is `(wake_at[l], i)`; in
///   [`ScanMode::Dense`] the heap is empty and `wake_at` alone is
///   authoritative (rebuilt into a heap on the down-switch);
/// * a parked node's `schedule()` decision is `Idle` or `Stopped`, so it
///   cannot make progress until a delivery arrives (which re-schedules it);
/// * `idle_since[l] != NOT_IDLE` iff the node is parked after an idle tick;
///   cycles `idle_since[l]..` are idle cycles the node has not yet been
///   credited for (repaid on wake-up, or virtually by [`JMachine::stats`]);
/// * `has_work[l]` mirrors `nodes[l].has_work()` and `work_count` counts
///   the `true` entries, making quiescence O(shards);
/// * `errored[l]`/`error_count` latch nodes that stopped with an error.
///
/// Both scan modes tick the same due set in the same (ascending id) order —
/// equal-cycle heap entries pop in id order, and the dense scan walks ids
/// ascending — so the mode, and when the auto policy switches it, is
/// unobservable in simulated state.
pub(crate) struct EventSched {
    /// First global node id this scheduler covers.
    base: usize,
    pub(crate) heap: BinaryHeap<Reverse<(u64, u32)>>,
    pub(crate) wake_at: Vec<u64>,
    pub(crate) idle_since: Vec<u64>,
    has_work: Vec<bool>,
    pub(crate) work_count: usize,
    errored: Vec<bool>,
    pub(crate) error_count: usize,
    /// Scratch for the pump's snapshot of nodes with pending deliveries.
    pub(crate) pump_scratch: Vec<u32>,
    /// Current advance strategy.
    pub(crate) mode: ScanMode,
    /// Switching policy (from [`MachineConfig::sched`]).
    policy: SchedMode,
}

impl EventSched {
    /// Every node starts scheduled for cycle 0 — the first step ticks them
    /// all once, exactly like the naive engine, and the workless ones park.
    /// `nodes` is the covered slice (ids `base .. base + nodes.len()`).
    fn new(nodes: &[MdpNode], base: usize, policy: SchedMode) -> EventSched {
        let n = nodes.len();
        let has_work: Vec<bool> = nodes.iter().map(MdpNode::has_work).collect();
        let work_count = has_work.iter().filter(|&&w| w).count();
        let mode = match policy {
            SchedMode::ForcedScan => ScanMode::Dense,
            SchedMode::Auto | SchedMode::ForcedEvent => ScanMode::Heap,
        };
        EventSched {
            base,
            heap: match mode {
                ScanMode::Heap => (0..n).map(|i| Reverse((0, (base + i) as u32))).collect(),
                ScanMode::Dense => BinaryHeap::new(),
            },
            wake_at: vec![0; n],
            idle_since: vec![NOT_IDLE; n],
            has_work,
            work_count,
            errored: vec![false; n],
            error_count: 0,
            pump_scratch: Vec::new(),
            mode,
            policy,
        }
    }

    /// Enters a popped (or parked) node into the heap for cycle `at`.
    pub(crate) fn schedule(&mut self, i: usize, at: u64) {
        self.wake_at[i - self.base] = at;
        if self.mode == ScanMode::Heap {
            self.heap.push(Reverse((at, i as u32)));
        }
    }

    /// Occupancy feedback after a cycle that ticked `ticked` nodes: the
    /// auto policy switches to dense scanning when ≥ 5/8 of the shard's
    /// nodes ticked and back to the heap when ≤ 1/4 did. The wide gap is
    /// the hysteresis — a load sitting between the thresholds keeps
    /// whatever mode it is in.
    pub(crate) fn retune(&mut self, ticked: usize) {
        if self.policy != SchedMode::Auto {
            return;
        }
        let n = self.wake_at.len();
        match self.mode {
            ScanMode::Heap => {
                if n >= DENSE_MIN_NODES && ticked * 8 >= n * 5 {
                    self.mode = ScanMode::Dense;
                    // `wake_at` is authoritative from here on.
                    self.heap.clear();
                }
            }
            ScanMode::Dense => {
                if ticked * 4 <= n {
                    self.mode = ScanMode::Heap;
                    debug_assert!(self.heap.is_empty());
                    for (l, &at) in self.wake_at.iter().enumerate() {
                        if at != PARKED {
                            self.heap.push(Reverse((at, (self.base + l) as u32)));
                        }
                    }
                }
            }
        }
    }

    /// Wakes a parked node for cycle `at` (no-op if already scheduled),
    /// first repaying the idle cycles it skipped while parked.
    pub(crate) fn wake(&mut self, node: &mut MdpNode, at: u64) {
        let i = node.id().index();
        let l = i - self.base;
        if self.wake_at[l] != PARKED {
            return;
        }
        if self.idle_since[l] != NOT_IDLE {
            node.credit_idle(at - self.idle_since[l]);
            self.idle_since[l] = NOT_IDLE;
        }
        self.schedule(i, at);
    }

    /// Updates the cached `has_work` bit for (global) node `i`.
    pub(crate) fn set_work(&mut self, i: usize, work: bool) {
        let l = i - self.base;
        if self.has_work[l] != work {
            self.has_work[l] = work;
            if work {
                self.work_count += 1;
            } else {
                self.work_count -= 1;
            }
        }
    }

    /// Latches a node error (once).
    pub(crate) fn record_error(&mut self, i: usize) {
        let l = i - self.base;
        if !self.errored[l] {
            self.errored[l] = true;
            self.error_count += 1;
        }
    }

    /// Earliest scheduled wake-up, `u64::MAX` when every node is parked.
    /// O(1) on the heap; a linear scan in dense mode (`PARKED` is `u64::MAX`,
    /// so parked nodes never win the minimum).
    pub(crate) fn next_due(&self) -> u64 {
        match self.mode {
            ScanMode::Heap => self.heap.peek().map_or(u64::MAX, |&Reverse((c, _))| c),
            ScanMode::Dense => self.wake_at.iter().copied().min().unwrap_or(u64::MAX),
        }
    }
}

/// A simulated J-Machine.
pub struct JMachine {
    program: Arc<Program>,
    config: MachineConfig,
    nodes: Vec<MdpNode>,
    net: Network,
    cycle: u64,
    /// One scheduler per network shard (a single all-covering instance on
    /// the sequential engines), mirroring the network's slab layout.
    scheds: Vec<EventSched>,
    /// Periodic occupancy samples (tracing only).
    samples: Vec<SamplePoint>,
    /// Replay recorder: `Some` while this machine is capturing a replay log
    /// (see [`crate::replay`]). `None` on the hot path — every hook below
    /// is a single pointer test.
    pub(crate) recorder: Option<crate::replay::Recorder>,
}

impl fmt::Debug for JMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JMachine")
            .field("nodes", &self.nodes.len())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl JMachine {
    /// Boots a machine with `program` loaded on every node.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation (assembled programs are
    /// always valid), or if the configuration is rejected (see
    /// [`JMachine::try_new`] for the fallible form).
    pub fn new(program: Program, config: MachineConfig) -> JMachine {
        JMachine::try_new(program, config).expect("invalid machine configuration")
    }

    /// Boots a machine with `program` loaded on every node, reporting
    /// configuration errors instead of panicking.
    ///
    /// # Errors
    ///
    /// [`MachineError::TraceUnsupportedUnderParallel`] when the config
    /// enables lifecycle tracing under [`Engine::Parallel`] without opting
    /// into [`TraceFallback::Allow`] — a benchmark that asked for the
    /// parallel engine must not silently measure a different one.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation (assembled programs are
    /// always valid).
    pub fn try_new(program: Program, config: MachineConfig) -> Result<JMachine, MachineError> {
        program.validate().expect("invalid program image");
        let mut config = config;
        if config.trace.enabled && matches!(config.engine, Engine::Parallel(_)) {
            // Trace ids are injection ordinals from one global counter,
            // which sharded injection does not maintain.
            match config.trace_fallback {
                TraceFallback::Error => {
                    return Err(MachineError::TraceUnsupportedUnderParallel);
                }
                TraceFallback::Allow => {
                    // Fall back to the event engine — bit-identical by
                    // construction, so the trace describes exactly what the
                    // parallel engine would have simulated. Counted and
                    // logged so run metadata can name the engine that
                    // actually executed.
                    PARALLEL_TRACE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "jm-machine: warning: traced machine requested {:?}; running Engine::Event instead (bit-identical)",
                        config.engine
                    );
                    config.engine = Engine::Event;
                }
            }
        }
        // Canonicalize the fault plan: a vacuous spec is no plan at all, so
        // every fault hook below stays on its fault-free path.
        let fault = config.fault.and_then(FaultPlan::from_spec);
        config.mdp.checksum_msgs = fault.is_some_and(|p| p.checksums());
        // Same canonicalization for the synthetic-traffic plan.
        let traffic = config.traffic.and_then(TrafficPlan::from_spec);
        // One knob drives both congestion-aware switches: the scheduler's
        // heap/dense choice and the net layer's active-set/occupancy scan.
        config.net.scan = match config.sched {
            SchedMode::Auto => ScanPolicy::Auto,
            SchedMode::ForcedEvent => ScanPolicy::ForcedSparse,
            SchedMode::ForcedScan => ScanPolicy::ForcedDense,
        };
        // Slab count for the parallel engine: about two z-slabs per worker,
        // but never finer than two z-planes per slab. Over-decomposing gives
        // the crew slack to balance activity — a worker whose home slab
        // went idle picks up a busy one — while `sharding_is_unobservable`
        // (jm-net) guarantees the cut cannot change results. The two-plane
        // grain floor matters on small meshes: one-plane slabs make *every*
        // z-hop a cross-slab mailbox crossing (on a 4×4×4 mesh that is all
        // of the z traffic), and the mailbox copies then eat the win; with
        // two planes per slab, alternate plane boundaries stay in-slab.
        let shards = match config.engine {
            Engine::Parallel(threads) if threads >= 2 => {
                let z = config.dims.z as usize;
                (2 * threads as usize).min(z / 2).max(1)
            }
            Engine::Parallel(_) | Engine::Event | Engine::Naive => 1,
        };
        let program = Arc::new(program);
        let mut nodes = config
            .dims
            .iter_nodes()
            .map(|id| {
                let start = match config.start {
                    StartPolicy::AllNodes => true,
                    StartPolicy::Node0 => id.0 == 0,
                    StartPolicy::None => false,
                };
                MdpNode::new(id, config.dims, Arc::clone(&program), config.mdp, start)
            })
            .collect::<Vec<_>>();
        let mut net = Network::with_shards(config.net, shards);
        net.set_fault_plan(fault);
        net.set_traffic_plan(traffic);
        if config.trace.enabled {
            net.set_tracing(true);
            for node in &mut nodes {
                node.set_tracing(true);
            }
        }
        let scheds = {
            let (parts, _) = net.shard_parts();
            parts
                .iter()
                .map(|s| {
                    EventSched::new(&nodes[s.base()..s.base() + s.len()], s.base(), config.sched)
                })
                .collect()
        };
        Ok(JMachine {
            program,
            config,
            nodes,
            net,
            cycle: 0,
            scheds,
            samples: Vec::new(),
            recorder: crate::replay::Recorder::from_capture(),
        })
    }

    /// The loaded program image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// A node, by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &MdpNode {
        &self.nodes[id.index()]
    }

    /// Mutable node access (host interface).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut MdpNode {
        &mut self.nodes[id.index()]
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Installs a fault vector on every node, resolving `handler` through
    /// the program's symbol table.
    ///
    /// # Panics
    ///
    /// Panics if the label is not a code symbol.
    pub fn install_vector_all(&mut self, kind: FaultKind, handler: &str) {
        let ip = self.program.handler(handler);
        self.record_op(jm_replay::HostOp::InstallVectorAll {
            kind: kind.vector() as u8,
            ip,
        });
        for node in &mut self.nodes {
            node.install_vector(kind, ip);
        }
    }

    /// Installs a fault vector on one node, resolving `handler` through the
    /// program's symbol table. The machine-level twin of
    /// [`MdpNode::install_vector`]; host harnesses should prefer this form —
    /// it is captured in replay logs, where direct node pokes are invisible.
    ///
    /// # Panics
    ///
    /// Panics if the label is not a code symbol or `node` is out of range.
    pub fn install_vector(&mut self, node: NodeId, kind: FaultKind, handler: &str) {
        let ip = self.program.handler(handler);
        self.record_op(jm_replay::HostOp::InstallVector {
            node: node.0,
            kind: kind.vector() as u8,
            ip,
        });
        self.nodes[node.index()].install_vector(kind, ip);
    }

    /// Host interface: delivers a message directly into a node's queue
    /// (bypassing the network, like the prototype's host port).
    ///
    /// # Panics
    ///
    /// Panics if the handler label is unknown.
    pub fn deliver_message(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        handler: &str,
        args: &[Word],
    ) {
        let ip = self.program.handler(handler);
        let header = MsgHeader::new(ip, args.len() as u32 + 1).to_word();
        // In checksum mode host messages carry the trailer too — the node
        // validates every dispatch, however the message arrived.
        let mut words = Vec::with_capacity(args.len() + 2);
        words.push(header);
        words.extend_from_slice(args);
        if self.config.mdp.checksum_msgs {
            words.push(checksum_words(&words));
        }
        if self.recorder.is_some() {
            self.record_op(jm_replay::HostOp::Deliver {
                node: node.0,
                priority: priority.index() as u8,
                words: words.clone(),
            });
        }
        self.deliver_words(node, priority, &words);
    }

    /// Streams pre-built message words into a node's queue — the shared
    /// tail of [`Self::deliver_message`] and of replay application (the log
    /// stores the delivered words, header and trailer included, so replay
    /// does not re-resolve symbols or recompute checksums).
    pub(crate) fn deliver_words(&mut self, node: NodeId, priority: MsgPriority, words: &[Word]) {
        let cycle = self.cycle;
        let target = &mut self.nodes[node.index()];
        // Host deliveries bypass the network and carry no trace id.
        for &w in words {
            assert!(
                target.deliver_traced(priority, w, TraceId::NONE, cycle),
                "host delivery overflow"
            );
        }
        if self.config.engine != Engine::Naive {
            let shard = self.net.shard_of_node(node);
            self.scheds[shard].wake(target, cycle);
            self.scheds[shard].set_work(node.index(), target.has_work());
        }
    }

    /// Host interface: reads a word of node memory.
    pub fn read_word(&self, node: NodeId, addr: u32) -> Word {
        self.nodes[node.index()].read_mem(addr)
    }

    /// Host interface: writes a word of node memory.
    pub fn write_word(&mut self, node: NodeId, addr: u32, word: Word) {
        self.record_op(jm_replay::HostOp::WriteWord {
            node: node.0,
            addr,
            word,
        });
        self.nodes[node.index()].write_mem(addr, word);
    }

    /// Host interface: reads a whole named data block from one node.
    ///
    /// # Panics
    ///
    /// Panics if the program has no such block.
    pub fn read_block(&self, node: NodeId, name: &str) -> Vec<Word> {
        let block = self
            .program
            .data
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("no data block `{name}`"));
        self.nodes[node.index()].dump_mem(block.base, block.len)
    }

    /// Advances the machine by one cycle: ejected words are pumped into the
    /// queues, nodes tick, and the network moves flits.
    pub fn step(&mut self) {
        match self.config.engine {
            Engine::Naive => self.step_naive(),
            Engine::Event | Engine::Parallel(_) => self.step_sharded(),
        }
        if self.config.trace.enabled && self.cycle.is_multiple_of(self.config.trace.sample_every) {
            self.record_sample();
        }
    }

    /// Appends one occupancy sample (tracing only). Pure observation: reads
    /// counters every engine already maintains.
    fn record_sample(&mut self) {
        let queued_words: u64 = self.nodes.iter().map(|n| n.queued_words() as u64).sum();
        self.samples.push(SamplePoint {
            cycle: self.cycle,
            queued_words,
            in_flight: self.net.in_flight(),
            active_routers: self.net.active_routers(),
            busy_nodes: self.busy_nodes(),
        });
    }

    /// Reference engine: pump, tick, and scan everything, every cycle.
    fn step_naive(&mut self) {
        let now = self.cycle;
        // 1. Pump ejection FIFOs into message queues (hardware path,
        //    rate-limited upstream by the 0.5 words/cycle eject channel).
        for node in &mut self.nodes {
            let id = node.id();
            for priority in MsgPriority::ALL {
                while let Some((word, trace)) = self.net.delivered_front_traced(id, priority) {
                    if node.deliver_traced(priority, word, trace, now) {
                        self.net.pop_delivered(id, priority);
                    } else {
                        break; // queue full: backpressure
                    }
                }
            }
        }
        // 2. Execute.
        for node in &mut self.nodes {
            let id = node.id();
            let mut port = Port {
                net: &mut self.net,
                node: id,
            };
            node.tick(now, &mut port);
        }
        // 3. Move the network.
        self.net.step();
        self.cycle += 1;
    }

    /// Event/parallel engine step: touch only nodes that can act this
    /// cycle, shard by shard. Cycle-exact with [`Self::step_naive`] —
    /// skipped nodes are exactly those whose naive tick would be a no-op
    /// (still busy) or a pure idle count (repaid on wake-up), and skipped
    /// routers hold no flits. With one shard (the event engine) this is the
    /// classic event-driven step; with several it is the *same* per-shard
    /// code the worker threads run, driven sequentially — which is why
    /// single-cycle stepping of a parallel-configured machine needs no
    /// threads and stays bit-identical.
    fn step_sharded(&mut self) {
        let now = self.cycle;
        let (shards, edges) = self.net.shard_parts();
        for (k, shard) in shards.iter_mut().enumerate() {
            let (below, above) = jm_net::edge_pair(edges, k);
            let nodes = &mut self.nodes[shard.base()..shard.base() + shard.len()];
            crate::parallel::shard_cycle(now, shard, &mut self.scheds[k], nodes, below, above);
        }
        if shards.len() > 1 {
            for (k, shard) in shards.iter_mut().enumerate() {
                let (below, above) = jm_net::edge_pair(edges, k);
                shard.exchange(below, above);
            }
        }
        self.cycle += 1;
    }

    /// Jumps the clock to the next cycle where anything can happen
    /// (earliest scheduled wake-up across all shards), bounded by `limit`.
    /// Legal only while the network is idle — every skipped cycle is then
    /// provably a no-op for every component except idle accounting, which
    /// is repaid on wake-up or virtually in [`Self::stats`].
    fn fast_forward(&mut self, limit: u64) {
        if !self.net.is_idle() {
            return;
        }
        let next = self
            .scheds
            .iter()
            .map(EventSched::next_due)
            .min()
            .unwrap_or(u64::MAX);
        // A pending traffic window is a scheduled wake-up too: skipping to
        // its first cycle is sound (nothing can fire before it), skipping
        // past it would lose generated messages.
        let target = next.min(self.net.traffic_wake()).min(limit);
        if target > self.cycle {
            self.net.skip_to(target);
            self.cycle = target;
        }
    }

    /// Hands the machine to a crew of worker threads (at most one per slab,
    /// at most the configured thread count) until the quantum coordinator
    /// stops them (see [`crate::parallel`]), then resyncs the machine
    /// clock. Only called with more than one shard.
    fn drive_parallel(&mut self, mode: crate::parallel::Mode) {
        let start = self.cycle;
        let threads = match self.config.engine {
            Engine::Parallel(t) => t.max(1) as usize,
            Engine::Event | Engine::Naive => unreachable!("drive_parallel without Parallel"),
        };
        // Auto quantum: long enough that boundary coordination is noise
        // against Q cycles of slab work, short enough that error stops and
        // quiescence detection stay prompt.
        let quantum = match self.config.quantum {
            0 => 64,
            q => u64::from(q),
        };
        let (shards, edges) = self.net.shard_parts();
        let ctl = crate::parallel::QuantumCtl::new(shards.len(), mode, quantum, start);
        let mut slots = Vec::with_capacity(shards.len());
        let mut nodes_rest: &mut [MdpNode] = &mut self.nodes;
        let mut scheds_rest: &mut [EventSched] = &mut self.scheds;
        for shard in shards.iter_mut() {
            let (nodes, rest) = std::mem::take(&mut nodes_rest).split_at_mut(shard.len());
            nodes_rest = rest;
            let (sched, rest) = std::mem::take(&mut scheds_rest)
                .split_first_mut()
                .expect("one scheduler per shard");
            scheds_rest = rest;
            slots.push(std::sync::Mutex::new(crate::parallel::ShardSlot::new(
                shard, sched, nodes,
            )));
        }
        let workers = threads.min(slots.len());
        std::thread::scope(|scope| {
            let ctl = &ctl;
            let slots = &slots;
            for me in 1..workers {
                scope.spawn(move || crate::parallel::crew_loop(me, workers, slots, edges, ctl));
            }
            // The calling thread joins the crew instead of idling.
            crate::parallel::crew_loop(0, workers, slots, edges, ctl);
        });
        self.cycle = ctl.final_cycle();
    }

    /// Whether this machine runs multi-threaded (parallel engine with more
    /// than one shard — a 1-thread parallel machine degenerates to the
    /// event engine's sequential path).
    fn threaded(&self) -> bool {
        matches!(self.config.engine, Engine::Parallel(_)) && self.net.shard_count() > 1
    }

    /// Runs for a fixed number of cycles.
    pub fn run(&mut self, cycles: u64) {
        if self.recorder.is_some() {
            self.run_recorded(cycles);
            return;
        }
        self.run_inner(cycles);
    }

    /// [`Self::run`] without the replay-capture chunking (the recorded path
    /// calls this between hash boundaries).
    pub(crate) fn run_inner(&mut self, cycles: u64) {
        if self.threaded() && cycles > 0 && !self.config.trace.enabled {
            let deadline = self.cycle.saturating_add(cycles);
            self.drive_parallel(crate::parallel::Mode::Fixed { deadline });
            return;
        }
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Whether nothing can happen anymore: every node idle with empty
    /// queues and the network drained. O(1) on the event engine (maintained
    /// counters); a full scan on the naive engine.
    pub fn is_quiescent(&self) -> bool {
        // A machine whose traffic plan can still generate messages is not
        // finished, however idle it looks right now.
        if self.net.traffic_wake() != u64::MAX {
            return false;
        }
        match self.config.engine {
            Engine::Naive => self.net.is_idle() && self.nodes.iter().all(|n| !n.has_work()),
            Engine::Event | Engine::Parallel(_) => {
                self.scheds.iter().all(|s| s.work_count == 0) && self.net.is_idle()
            }
        }
    }

    /// Nodes that stopped with an error.
    pub fn node_errors(&self) -> Vec<(NodeId, NodeError)> {
        self.nodes
            .iter()
            .filter_map(|n| n.error().map(|e| (n.id(), e.clone())))
            .collect()
    }

    /// Whether any node stopped with an error (O(1) on the event engine).
    fn any_node_error(&self) -> bool {
        match self.config.engine {
            Engine::Naive => self.nodes.iter().any(|n| n.error().is_some()),
            Engine::Event | Engine::Parallel(_) => self.scheds.iter().any(|s| s.error_count > 0),
        }
    }

    /// Nodes that still have runnable or queued work.
    fn busy_nodes(&self) -> u32 {
        match self.config.engine {
            Engine::Naive => self.nodes.iter().filter(|n| n.has_work()).count() as u32,
            Engine::Event | Engine::Parallel(_) => {
                self.scheds.iter().map(|s| s.work_count as u32).sum()
            }
        }
    }

    /// Runs until quiescence, a node error, or the cycle budget. All three
    /// conditions are checked every cycle on both engines, so the returned
    /// cycle counts (and timeout cycle counts) are engine-independent; on
    /// the event engine each check is O(1) and stretches of cycles where
    /// nothing can happen are skipped outright.
    ///
    /// # Errors
    ///
    /// [`MachineError::NodeErrors`] if any node stopped on a fatal error,
    /// [`MachineError::Timeout`] if the budget elapsed, and
    /// [`MachineError::StrandedMessages`] if the machine quiesced with
    /// words still queued at halted/errored nodes.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> Result<u64, MachineError> {
        if self.recorder.is_some() {
            return self.run_until_quiescent_recorded(max_cycles);
        }
        self.run_until_quiescent_inner(max_cycles)
    }

    /// [`Self::run_until_quiescent`] without the replay-capture chunking.
    pub(crate) fn run_until_quiescent_inner(
        &mut self,
        max_cycles: u64,
    ) -> Result<u64, MachineError> {
        let start = self.cycle;
        let deadline = start.saturating_add(max_cycles);
        loop {
            if self.any_node_error() {
                return Err(MachineError::NodeErrors(self.node_errors()));
            }
            if self.is_quiescent() {
                let stranded: Vec<NodeId> = self
                    .nodes
                    .iter()
                    .filter(|n| n.queued_words() > 0)
                    .map(|n| n.id())
                    .collect();
                if !stranded.is_empty() {
                    return Err(MachineError::StrandedMessages { nodes: stranded });
                }
                return Ok(self.cycle - start);
            }
            if self.cycle >= deadline {
                return Err(MachineError::Timeout {
                    cycles: self.cycle - start,
                    busy_nodes: self.busy_nodes(),
                    in_flight: self.net.in_flight(),
                });
            }
            if self.config.engine != Engine::Naive {
                self.fast_forward(deadline);
                if self.cycle >= deadline {
                    continue; // skipped straight to the budget: time out
                }
            }
            if self.threaded() {
                // Run threaded until the coordinator hits one of this
                // loop's stop conditions (its decision rule mirrors the
                // checks above exactly), then loop around to classify it.
                self.drive_parallel(crate::parallel::Mode::Quiescent { deadline });
                continue;
            }
            self.step();
        }
    }

    /// Aggregated statistics snapshot.
    ///
    /// On the event engine, idle cycles owed to currently-parked nodes
    /// (skipped since their last tick) are included here virtually, so the
    /// snapshot always matches what the naive engine would report at the
    /// same cycle. Per-node [`MdpNode::stats`] of a parked node lag by
    /// exactly that idle residue until the node next wakes.
    pub fn stats(&self) -> MachineStats {
        let mut nodes = jm_mdp::NodeStats::default();
        for node in &self.nodes {
            nodes.merge(node.stats());
        }
        if self.config.engine != Engine::Naive {
            for sched in &self.scheds {
                for &since in &sched.idle_since {
                    if since != NOT_IDLE && self.cycle > since {
                        nodes.add_cycles(StatClass::Idle, self.cycle - since);
                    }
                }
            }
        }
        MachineStats {
            cycles: self.cycle,
            nodes,
            net: self.net.stats(),
        }
    }

    /// Collects the machine's lifecycle trace: every component's event
    /// buffer merged into one deterministically-ordered [`MachineTrace`],
    /// plus the periodic occupancy samples. Returns `None` when the machine
    /// was built with tracing disabled. Draining is destructive — buffers
    /// restart empty, so a second call covers only cycles simulated since.
    pub fn take_trace(&mut self) -> Option<MachineTrace> {
        if !self.config.trace.enabled {
            return None;
        }
        let mut sources = Vec::with_capacity(self.nodes.len() + 1);
        sources.push(self.net.take_trace_events());
        for node in &mut self.nodes {
            sources.push(node.take_trace_events());
        }
        Some(MachineTrace::assemble(
            sources,
            std::mem::take(&mut self.samples),
            self.node_count(),
        ))
    }

    /// Combined state hash at the current cycle: an in-order FNV-1a fold of
    /// exactly the hashes [`Self::component_hashes`] reports, over every
    /// piece of simulated state the engines are required to agree on (node
    /// registers, queues, memory, control state; per-router channel
    /// occupancy). Engine bookkeeping — schedulers, statistics, traces,
    /// scan modes — is excluded by construction, so equal machine states
    /// hash equal under *any* engine, thread count, quantum, or scheduler
    /// mode. Takes `&mut self` because in-flight bulk wormhole transfers
    /// are first materialized to their exact buffered equivalent (a
    /// semantically invisible canonicalization; see `jm-net`).
    pub fn state_hash(&mut self) -> u64 {
        let at = self.cycle;
        let mut h = jm_trace::Fnv1a::new();
        for node in &self.nodes {
            for (_, hash) in node.state_components(at) {
                h.write_u64(hash);
            }
        }
        self.net.fold_components(|_, _, hash| h.write_u64(hash));
        h.finish()
    }

    /// Per-component state hashes at the current cycle, in the fixed order
    /// whose fold equals [`Self::state_hash`]: for each node (ascending
    /// id) its `regs`/`queues`/`mem`/`ctl` parts, then for each router
    /// (ascending id) its two virtual networks' channel occupancy. Labels
    /// are stable, human-readable component names — divergence reports
    /// print them verbatim.
    pub fn component_hashes(&mut self) -> Vec<jm_replay::ComponentHash> {
        let at = self.cycle;
        let dims = self.config.dims;
        let mut out = Vec::with_capacity(self.nodes.len() * 6);
        for node in &self.nodes {
            for (part, hash) in node.state_components(at) {
                out.push(jm_replay::ComponentHash {
                    label: format!("node {} {part}", node.id().0),
                    hash,
                });
            }
        }
        self.net.fold_components(|id, vnet, hash| {
            let c = dims.coord(id);
            out.push(jm_replay::ComponentHash {
                label: format!("router ({},{},{}) vnet{vnet} occupancy", c.x, c.y, c.z),
                hash,
            });
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_asm::{hdr, Builder, Region};
    use jm_isa::instr::{AluOp, StatClass};
    use jm_isa::operand::{MemRef, Special};
    use jm_isa::reg::AReg::*;
    use jm_isa::reg::DReg::*;
    use jm_isa::tag::Tag;

    /// Node 0 sends an increment request to node `N-1`; that node replies
    /// with the incremented value; node 0 stores it.
    fn rpc_program() -> Program {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 1);

        b.label("main");
        // Build a route word for the last node. Dims are read from the
        // DIMS special; for the test machine (2x2x2) the last node is
        // (1,1,1) = bits 0b10000100001.
        b.movi(R0, 0x421);
        b.wtag(R0, R0, Tag::Route.bits() as i32);
        b.send(MsgPriority::P0, R0);
        b.send2(MsgPriority::P0, hdr("incr", 3), 41);
        b.sende(MsgPriority::P0, Special::Nnr); // reply route
        b.suspend();

        b.label("incr");
        b.mov(R0, MemRef::disp(A3, 1)); // value
        b.addi(R0, R0, 1);
        b.send(MsgPriority::P0, MemRef::disp(A3, 2)); // reply route word
        b.send2e(MsgPriority::P0, hdr("store", 2), R0);
        b.suspend();

        b.label("store");
        b.mov(R0, MemRef::disp(A3, 1));
        b.load_seg(A0, "out");
        b.mov(MemRef::disp(A0, 0), R0);
        b.suspend();

        b.entry("main");
        b.assemble().unwrap()
    }

    #[test]
    fn end_to_end_rpc() {
        let mut m = JMachine::new(rpc_program(), MachineConfig::new(8));
        let cycles = m.run_until_quiescent(10_000).unwrap();
        let out = m.program().segment("out");
        assert_eq!(m.read_word(NodeId(0), out.base).as_i32(), 42);
        // Whole exchange should take tens of cycles, not thousands.
        assert!(cycles < 200, "RPC took {cycles} cycles");
        let stats = m.stats();
        assert_eq!(stats.nodes.msgs_sent, 2);
        assert_eq!(stats.nodes.msgs_received, 2);
        assert_eq!(stats.net.delivered_msgs, 2);
    }

    #[test]
    fn faulted_rpc_completes_and_engines_agree() {
        // A lossless delay plan (flaky links) plus checksum trailers: the
        // RPC must still produce the right answer on every engine, with
        // bit-identical statistics, while the plan demonstrably interfered.
        let spec = jm_fault::FaultSpec::new(99).flaky(200_000).checksums(true);
        let mut reference: Option<(u64, MachineStats)> = None;
        for engine in [Engine::Naive, Engine::Event, Engine::Parallel(2)] {
            let cfg = MachineConfig::new(8).engine(engine).fault(spec);
            let mut m = JMachine::new(rpc_program(), cfg);
            let cycles = m.run_until_quiescent(100_000).unwrap();
            let out = m.program().segment("out");
            assert_eq!(m.read_word(NodeId(0), out.base).as_i32(), 42);
            let stats = m.stats();
            assert!(
                stats.net.faults.blocked_moves > 0,
                "plan injected nothing on {engine:?}"
            );
            assert_eq!(stats.net.delivered_msgs, 2);
            match &reference {
                None => reference = Some((cycles, stats)),
                Some((c, s)) => {
                    assert_eq!(cycles, *c, "{engine:?} cycle count diverged");
                    assert_eq!(&stats, s, "{engine:?} stats diverged");
                }
            }
        }
    }

    #[test]
    fn vacuous_fault_spec_is_fault_free() {
        let mut clean = JMachine::new(rpc_program(), MachineConfig::new(8));
        let clean_cycles = clean.run_until_quiescent(10_000).unwrap();
        let cfg = MachineConfig::new(8).fault(jm_fault::FaultSpec::none());
        let mut vacuous = JMachine::new(rpc_program(), cfg);
        let vac_cycles = vacuous.run_until_quiescent(10_000).unwrap();
        assert_eq!(clean_cycles, vac_cycles);
        assert_eq!(clean.stats(), vacuous.stats());
        // No plan was materialized, so no checksum trailers either.
        assert!(!vacuous.config().mdp.checksum_msgs);
    }

    #[test]
    fn host_delivery_and_block_read() {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 4);
        b.label("fill");
        b.load_seg(A0, "out");
        b.movi(R0, 0);
        b.label("loop");
        b.mov(MemRef::reg(A0, R0), R0);
        b.addi(R0, R0, 1);
        b.alu(AluOp::Lt, R1, R0, 4);
        b.bt(R1, "loop");
        b.suspend();
        let p = b.assemble().unwrap();
        let mut m = JMachine::new(p, MachineConfig::new(1).start(StartPolicy::None));
        m.deliver_message(NodeId(0), MsgPriority::P0, "fill", &[]);
        m.run_until_quiescent(10_000).unwrap();
        let block = m.read_block(NodeId(0), "out");
        let values: Vec<i32> = block.iter().map(|w| w.as_i32()).collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timeout_reports_busy_state() {
        let mut b = Builder::new();
        b.label("spin");
        b.br("spin");
        b.entry("spin");
        let mut m = JMachine::new(b.assemble().unwrap(), MachineConfig::new(1));
        match m.run_until_quiescent(100) {
            Err(MachineError::Timeout { busy_nodes, .. }) => assert_eq!(busy_nodes, 1),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn node_error_surfaces() {
        let mut b = Builder::new();
        b.label("main");
        b.alu(AluOp::Div, R0, 1, 0); // no vector installed
        b.halt();
        b.entry("main");
        let mut m = JMachine::new(b.assemble().unwrap(), MachineConfig::new(1));
        match m.run_until_quiescent(1000) {
            Err(MachineError::NodeErrors(errors)) => {
                assert_eq!(errors.len(), 1);
                assert!(matches!(errors[0].1, NodeError::UnhandledFault { .. }));
            }
            other => panic!("expected node error, got {other:?}"),
        }
    }

    #[test]
    fn all_nodes_policy_runs_everywhere() {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 1);
        b.label("main");
        b.load_seg(A0, "out");
        b.mov(MemRef::disp(A0, 0), Special::Nid);
        b.halt();
        b.entry("main");
        let p = b.assemble().unwrap();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(8).start(StartPolicy::AllNodes));
        m.run_until_quiescent(10_000).unwrap();
        for id in 0..8 {
            assert_eq!(m.read_word(NodeId(id), out.base).as_i32(), id as i32);
        }
        // Every node spent dispatch-free compute time; idle only at the end.
        let stats = m.stats();
        assert!(stats.class_fraction(StatClass::Compute) > 0.0);
    }

    #[test]
    fn stranded_messages_detected() {
        let mut b = Builder::new();
        b.label("main");
        b.halt();
        b.label("never");
        b.suspend();
        b.entry("main");
        let p = b.assemble().unwrap();
        let mut m = JMachine::new(p, MachineConfig::new(1));
        // Halt the node, then deliver a message nobody will handle.
        m.run_until_quiescent(1000).unwrap();
        m.deliver_message(NodeId(0), MsgPriority::P0, "never", &[]);
        match m.run_until_quiescent(1000) {
            Err(MachineError::StrandedMessages { nodes }) => assert_eq!(nodes, vec![NodeId(0)]),
            other => panic!("expected stranded, got {other:?}"),
        }
    }

    #[test]
    fn traced_parallel_errors_unless_fallback_allowed() {
        use crate::config::{TraceConfig, TraceFallback};
        let cfg = MachineConfig::new(8)
            .engine(Engine::Parallel(2))
            .trace(TraceConfig::on());
        // Default policy: refuse to build — a benchmark that asked for the
        // parallel engine must not silently measure a different one.
        match JMachine::try_new(rpc_program(), cfg) {
            Err(MachineError::TraceUnsupportedUnderParallel) => {}
            other => panic!("expected TraceUnsupportedUnderParallel, got {other:?}"),
        }
        // Opting in falls back to the (bit-identical) event engine and
        // counts the fallback for run metadata.
        let before = parallel_trace_fallbacks();
        let m = JMachine::new(rpc_program(), cfg.trace_fallback(TraceFallback::Allow));
        assert_eq!(m.config().engine, Engine::Event);
        assert_eq!(parallel_trace_fallbacks(), before + 1);
    }

    #[test]
    fn oversubscribed_parallel_run_stays_linear() {
        // Regression test for the spin-barrier collapse: with more worker
        // threads than host cores, busy-wait synchronization burned whole
        // scheduling quanta and parallel-4 ran at 0.27x the event engine
        // on the committed 1-CPU bench. The crew design lets whichever
        // thread the OS runs advance *every* slab while task-starved
        // workers escalate spin -> yield -> sleep, so adding threads past
        // the core count may cost only a modest constant factor -- on any
        // host, including a single-core one.
        let spin = || {
            let mut b = Builder::new();
            b.label("spin");
            b.br("spin");
            b.entry("spin");
            b.assemble().unwrap()
        };
        let wall = |threads: u32| {
            let mut m = JMachine::new(
                spin(),
                MachineConfig::new(16)
                    .start(StartPolicy::AllNodes)
                    .engine(Engine::Parallel(threads)),
            );
            let t0 = std::time::Instant::now();
            m.run(150_000);
            assert_eq!(m.cycle(), 150_000);
            t0.elapsed()
        };
        let p1 = wall(1);
        let p4 = wall(4);
        assert!(
            p4 < p1 * 4 + std::time::Duration::from_millis(250),
            "parallel-4 degraded super-linearly vs parallel-1: {p4:?} vs {p1:?}"
        );
    }
}
