//! The machine: nodes + network under one clock.

use crate::config::{MachineConfig, StartPolicy};
use crate::stats::MachineStats;
use jm_asm::Program;
use jm_isa::consts::FaultKind;
use jm_isa::instr::MsgPriority;
use jm_isa::node::NodeId;
use jm_isa::word::{MsgHeader, Word};
use jm_mdp::{InjectAck, MdpNode, NetPort, NodeError};
use jm_net::{InjectResult, Network};
use std::fmt;
use std::sync::Arc;

/// A machine-level failure.
#[derive(Debug, Clone)]
pub enum MachineError {
    /// One or more nodes stopped with an error.
    NodeErrors(Vec<(NodeId, NodeError)>),
    /// The cycle budget elapsed before quiescence.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Nodes that still had work.
        busy_nodes: u32,
        /// Flits still in the network.
        in_flight: u64,
    },
    /// The machine quiesced but undelivered words remain queued at halted
    /// nodes (a protocol bug in the guest program).
    StrandedMessages {
        /// Nodes with stranded words.
        nodes: Vec<NodeId>,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NodeErrors(errors) => {
                write!(f, "{} node error(s):", errors.len())?;
                for (id, e) in errors.iter().take(4) {
                    write!(f, " [{id}: {e}]")?;
                }
                Ok(())
            }
            MachineError::Timeout {
                cycles,
                busy_nodes,
                in_flight,
            } => write!(
                f,
                "no quiescence after {cycles} cycles ({busy_nodes} busy nodes, {in_flight} flits in flight)"
            ),
            MachineError::StrandedMessages { nodes } => {
                write!(f, "messages stranded at {} halted node(s)", nodes.len())
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Adapter giving one node's `SEND` instructions access to its injection
/// port.
struct Port<'a> {
    net: &'a mut Network,
    node: NodeId,
}

impl NetPort for Port<'_> {
    fn commit(&mut self, priority: MsgPriority, words: &[Word]) -> InjectAck {
        match self.net.commit_msg(self.node, priority, words) {
            InjectResult::Accepted => InjectAck::Accepted,
            InjectResult::Stall => InjectAck::Stall,
            InjectResult::BadRoute => InjectAck::Rejected,
        }
    }
}

/// A simulated J-Machine.
pub struct JMachine {
    program: Arc<Program>,
    config: MachineConfig,
    nodes: Vec<MdpNode>,
    net: Network,
    cycle: u64,
}

impl fmt::Debug for JMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JMachine")
            .field("nodes", &self.nodes.len())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl JMachine {
    /// Boots a machine with `program` loaded on every node.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation (assembled programs are
    /// always valid).
    pub fn new(program: Program, config: MachineConfig) -> JMachine {
        program.validate().expect("invalid program image");
        let program = Arc::new(program);
        let nodes = config
            .dims
            .iter_nodes()
            .map(|id| {
                let start = match config.start {
                    StartPolicy::AllNodes => true,
                    StartPolicy::Node0 => id.0 == 0,
                    StartPolicy::None => false,
                };
                MdpNode::new(id, config.dims, Arc::clone(&program), config.mdp, start)
            })
            .collect();
        JMachine {
            program,
            config,
            nodes,
            net: Network::new(config.net),
            cycle: 0,
        }
    }

    /// The loaded program image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// A node, by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &MdpNode {
        &self.nodes[id.index()]
    }

    /// Mutable node access (host interface).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut MdpNode {
        &mut self.nodes[id.index()]
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Installs a fault vector on every node, resolving `handler` through
    /// the program's symbol table.
    ///
    /// # Panics
    ///
    /// Panics if the label is not a code symbol.
    pub fn install_vector_all(&mut self, kind: FaultKind, handler: &str) {
        let ip = self.program.handler(handler);
        for node in &mut self.nodes {
            node.install_vector(kind, ip);
        }
    }

    /// Host interface: delivers a message directly into a node's queue
    /// (bypassing the network, like the prototype's host port).
    ///
    /// # Panics
    ///
    /// Panics if the handler label is unknown.
    pub fn deliver_message(
        &mut self,
        node: NodeId,
        priority: MsgPriority,
        handler: &str,
        args: &[Word],
    ) {
        let ip = self.program.handler(handler);
        let header = MsgHeader::new(ip, args.len() as u32 + 1).to_word();
        let target = &mut self.nodes[node.index()];
        assert!(target.deliver(priority, header), "host delivery overflow");
        for &w in args {
            assert!(target.deliver(priority, w), "host delivery overflow");
        }
    }

    /// Host interface: reads a word of node memory.
    pub fn read_word(&self, node: NodeId, addr: u32) -> Word {
        self.nodes[node.index()].read_mem(addr)
    }

    /// Host interface: writes a word of node memory.
    pub fn write_word(&mut self, node: NodeId, addr: u32, word: Word) {
        self.nodes[node.index()].write_mem(addr, word);
    }

    /// Host interface: reads a whole named data block from one node.
    ///
    /// # Panics
    ///
    /// Panics if the program has no such block.
    pub fn read_block(&self, node: NodeId, name: &str) -> Vec<Word> {
        let block = self
            .program
            .data
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("no data block `{name}`"));
        self.nodes[node.index()].dump_mem(block.base, block.len)
    }

    /// Advances the machine by one cycle: ejected words are pumped into the
    /// queues, every node ticks, and the network moves flits.
    pub fn step(&mut self) {
        let now = self.cycle;
        // 1. Pump ejection FIFOs into message queues (hardware path,
        //    rate-limited upstream by the 0.5 words/cycle eject channel).
        for node in &mut self.nodes {
            let id = node.id();
            for priority in MsgPriority::ALL {
                while let Some(word) = self.net.delivered_front(id, priority) {
                    if node.deliver(priority, word) {
                        self.net.pop_delivered(id, priority);
                    } else {
                        break; // queue full: backpressure
                    }
                }
            }
        }
        // 2. Execute.
        for node in &mut self.nodes {
            let id = node.id();
            let mut port = Port {
                net: &mut self.net,
                node: id,
            };
            node.tick(now, &mut port);
        }
        // 3. Move the network.
        self.net.step();
        self.cycle += 1;
    }

    /// Runs for a fixed number of cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Whether nothing can happen anymore: every node idle with empty
    /// queues and the network drained.
    pub fn is_quiescent(&self) -> bool {
        self.net.is_idle() && self.nodes.iter().all(|n| !n.has_work())
    }

    /// Nodes that stopped with an error.
    pub fn node_errors(&self) -> Vec<(NodeId, NodeError)> {
        self.nodes
            .iter()
            .filter_map(|n| n.error().map(|e| (n.id(), e.clone())))
            .collect()
    }

    /// Runs until quiescence (checking every few cycles), a node error, or
    /// the cycle budget.
    ///
    /// # Errors
    ///
    /// [`MachineError::NodeErrors`] if any node stopped on a fatal error,
    /// [`MachineError::Timeout`] if the budget elapsed, and
    /// [`MachineError::StrandedMessages`] if the machine quiesced with
    /// words still queued at halted/errored nodes.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> Result<u64, MachineError> {
        const CHECK_EVERY: u64 = 32;
        let start = self.cycle;
        loop {
            for _ in 0..CHECK_EVERY {
                self.step();
            }
            let errors = self.node_errors();
            if !errors.is_empty() {
                return Err(MachineError::NodeErrors(errors));
            }
            if self.is_quiescent() {
                let stranded: Vec<NodeId> = self
                    .nodes
                    .iter()
                    .filter(|n| n.queued_words() > 0)
                    .map(|n| n.id())
                    .collect();
                if !stranded.is_empty() {
                    return Err(MachineError::StrandedMessages { nodes: stranded });
                }
                return Ok(self.cycle - start);
            }
            if self.cycle - start >= max_cycles {
                return Err(MachineError::Timeout {
                    cycles: self.cycle - start,
                    busy_nodes: self.nodes.iter().filter(|n| n.has_work()).count() as u32,
                    in_flight: self.net.in_flight(),
                });
            }
        }
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> MachineStats {
        let mut nodes = jm_mdp::NodeStats::default();
        for node in &self.nodes {
            nodes.merge(node.stats());
        }
        MachineStats {
            cycles: self.cycle,
            nodes,
            net: self.net.stats().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_asm::{hdr, Builder, Region};
    use jm_isa::instr::{AluOp, StatClass};
    use jm_isa::operand::{MemRef, Special};
    use jm_isa::reg::AReg::*;
    use jm_isa::reg::DReg::*;
    use jm_isa::tag::Tag;

    /// Node 0 sends an increment request to node `N-1`; that node replies
    /// with the incremented value; node 0 stores it.
    fn rpc_program() -> Program {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 1);

        b.label("main");
        // Build a route word for the last node. Dims are read from the
        // DIMS special; for the test machine (2x2x2) the last node is
        // (1,1,1) = bits 0b10000100001.
        b.movi(R0, 0x421);
        b.wtag(R0, R0, Tag::Route.bits() as i32);
        b.send(MsgPriority::P0, R0);
        b.send2(MsgPriority::P0, hdr("incr", 3), 41);
        b.sende(MsgPriority::P0, Special::Nnr); // reply route
        b.suspend();

        b.label("incr");
        b.mov(R0, MemRef::disp(A3, 1)); // value
        b.addi(R0, R0, 1);
        b.send(MsgPriority::P0, MemRef::disp(A3, 2)); // reply route word
        b.send2e(MsgPriority::P0, hdr("store", 2), R0);
        b.suspend();

        b.label("store");
        b.mov(R0, MemRef::disp(A3, 1));
        b.load_seg(A0, "out");
        b.mov(MemRef::disp(A0, 0), R0);
        b.suspend();

        b.entry("main");
        b.assemble().unwrap()
    }

    #[test]
    fn end_to_end_rpc() {
        let mut m = JMachine::new(rpc_program(), MachineConfig::new(8));
        let cycles = m.run_until_quiescent(10_000).unwrap();
        let out = m.program().segment("out");
        assert_eq!(m.read_word(NodeId(0), out.base).as_i32(), 42);
        // Whole exchange should take tens of cycles, not thousands.
        assert!(cycles < 200, "RPC took {cycles} cycles");
        let stats = m.stats();
        assert_eq!(stats.nodes.msgs_sent, 2);
        assert_eq!(stats.nodes.msgs_received, 2);
        assert_eq!(stats.net.delivered_msgs, 2);
    }

    #[test]
    fn host_delivery_and_block_read() {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 4);
        b.label("fill");
        b.load_seg(A0, "out");
        b.movi(R0, 0);
        b.label("loop");
        b.mov(MemRef::reg(A0, R0), R0);
        b.addi(R0, R0, 1);
        b.alu(AluOp::Lt, R1, R0, 4);
        b.bt(R1, "loop");
        b.suspend();
        let p = b.assemble().unwrap();
        let mut m = JMachine::new(p, MachineConfig::new(1).start(StartPolicy::None));
        m.deliver_message(NodeId(0), MsgPriority::P0, "fill", &[]);
        m.run_until_quiescent(10_000).unwrap();
        let block = m.read_block(NodeId(0), "out");
        let values: Vec<i32> = block.iter().map(|w| w.as_i32()).collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timeout_reports_busy_state() {
        let mut b = Builder::new();
        b.label("spin");
        b.br("spin");
        b.entry("spin");
        let mut m = JMachine::new(b.assemble().unwrap(), MachineConfig::new(1));
        match m.run_until_quiescent(100) {
            Err(MachineError::Timeout { busy_nodes, .. }) => assert_eq!(busy_nodes, 1),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn node_error_surfaces() {
        let mut b = Builder::new();
        b.label("main");
        b.alu(AluOp::Div, R0, 1, 0); // no vector installed
        b.halt();
        b.entry("main");
        let mut m = JMachine::new(b.assemble().unwrap(), MachineConfig::new(1));
        match m.run_until_quiescent(1000) {
            Err(MachineError::NodeErrors(errors)) => {
                assert_eq!(errors.len(), 1);
                assert!(matches!(errors[0].1, NodeError::UnhandledFault { .. }));
            }
            other => panic!("expected node error, got {other:?}"),
        }
    }

    #[test]
    fn all_nodes_policy_runs_everywhere() {
        let mut b = Builder::new();
        b.reserve("out", Region::Imem, 1);
        b.label("main");
        b.load_seg(A0, "out");
        b.mov(MemRef::disp(A0, 0), Special::Nid);
        b.halt();
        b.entry("main");
        let p = b.assemble().unwrap();
        let out = p.segment("out");
        let mut m = JMachine::new(p, MachineConfig::new(8).start(StartPolicy::AllNodes));
        m.run_until_quiescent(10_000).unwrap();
        for id in 0..8 {
            assert_eq!(m.read_word(NodeId(id), out.base).as_i32(), id as i32);
        }
        // Every node spent dispatch-free compute time; idle only at the end.
        let stats = m.stats();
        assert!(stats.class_fraction(StatClass::Compute) > 0.0);
    }

    #[test]
    fn stranded_messages_detected() {
        let mut b = Builder::new();
        b.label("main");
        b.halt();
        b.label("never");
        b.suspend();
        b.entry("main");
        let p = b.assemble().unwrap();
        let mut m = JMachine::new(p, MachineConfig::new(1));
        // Halt the node, then deliver a message nobody will handle.
        m.run_until_quiescent(1000).unwrap();
        m.deliver_message(NodeId(0), MsgPriority::P0, "never", &[]);
        match m.run_until_quiescent(1000) {
            Err(MachineError::StrandedMessages { nodes }) => assert_eq!(nodes, vec![NodeId(0)]),
            other => panic!("expected stranded, got {other:?}"),
        }
    }
}
