//! Machine-level statistics aggregation.

use jm_isa::instr::StatClass;
use jm_mdp::NodeStats;
use jm_net::NetStats;

/// A machine-wide statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Sum of all node counters.
    pub nodes: NodeStats,
    /// Network counters.
    pub net: NetStats,
}

impl MachineStats {
    /// Fraction of all node cycles spent in `class` (the Figure 6 metric).
    pub fn class_fraction(&self, class: StatClass) -> f64 {
        let total = self.nodes.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.nodes.class_cycles(class) as f64 / total as f64
        }
    }

    /// Wall-clock seconds at the prototype's 12.5 MHz.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / jm_isa::consts::CLOCK_HZ as f64
    }

    /// Milliseconds at the prototype clock (the paper's run-time unit).
    pub fn millis(&self) -> f64 {
        self.seconds() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_time() {
        let mut s = MachineStats {
            cycles: 12_500_000,
            ..MachineStats::default()
        };
        s.nodes.add_cycles(StatClass::Compute, 75);
        s.nodes.add_cycles(StatClass::Idle, 25);
        assert!((s.class_fraction(StatClass::Compute) - 0.75).abs() < 1e-12);
        assert!((s.seconds() - 1.0).abs() < 1e-12);
        assert!((s.millis() - 1000.0).abs() < 1e-9);
        assert_eq!(MachineStats::default().class_fraction(StatClass::Idle), 0.0);
    }
}
