//! Deterministic replay with divergence bisection.
//!
//! The repo's three engines (Naive, Event, Parallel with any thread count
//! and quantum) are held bit-identical by differential test suites — but
//! when a digest diff fails, a bare "digests differ" is undebuggable. This
//! crate turns any run into a **replay artifact**: a compact binary log
//! ([`ReplayLog`]) holding the machine configuration, the program image,
//! every host-boundary input, and per-interval state hashes. A reader
//! re-executes the log under any engine and reports the **first diverging
//! cycle and component** (e.g. `cycle 48211, router (3,1,2) vnet1
//! occupancy`), with an automatic interval-halving bisection ([`bisect`])
//! that narrows a coarse-interval hash mismatch down to a single cycle.
//!
//! The crate sits *below* `jm-machine` in the dependency order: it defines
//! the log format and the engine-agnostic verification/bisection
//! algorithms against the [`Execution`] trait, and `jm-machine` provides
//! the recorder and the concrete executor. This keeps the algorithms
//! testable in isolation and the format free of engine internals.

#![warn(missing_docs)]

mod log;

pub use crate::log::{
    HostOp, LogError, Record, RecordedConfig, ReplayLog, DEFAULT_INTERVAL, MAGIC,
};

use std::fmt;

/// One named component's state hash at some cycle. Labels are stable,
/// human-readable identifiers like `node 17 mem` or
/// `router (3,1,2) vnet1 occupancy`; the combined machine hash is the
/// in-order FNV-1a fold of exactly these component hashes, so a combined
/// mismatch always names at least one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentHash {
    /// Stable component label.
    pub label: String,
    /// FNV-1a fold of the component's architecturally-visible state.
    pub hash: u64,
}

/// A machine being driven through a replay log. Implemented by
/// `jm-machine`'s replayer; the driver below only needs these five
/// operations.
pub trait Execution {
    /// Current machine cycle.
    fn cycle(&self) -> u64;
    /// Advances the machine to exactly `cycle` (no-op if already there).
    /// Implementations must stop at exactly that cycle on every engine —
    /// single-cycle exactness is what makes bisection meaningful.
    fn advance_to(&mut self, cycle: u64);
    /// Applies one host-boundary input at the current cycle.
    fn apply(&mut self, op: &HostOp);
    /// Combined state hash at the current cycle.
    fn state_hash(&mut self) -> u64;
    /// Per-component state hashes at the current cycle, in the fixed
    /// order whose fold equals [`Execution::state_hash`].
    fn component_hashes(&mut self) -> Vec<ComponentHash>;
}

/// Builds fresh executions of a recorded run. Bisection restarts
/// executions from cycle 0 for each probe (machines are not cloneable),
/// so the factory is invoked `O(log interval)` times.
pub trait ExecFactory {
    /// A fresh machine at cycle 0, configured per the log header.
    fn build(&self, log: &ReplayLog) -> Box<dyn Execution>;
}

/// The first checkpoint where a re-execution's hash differed from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryMismatch {
    /// Cycle of the last checkpoint that still matched (0 if none did —
    /// both sides start from the same built machine state).
    pub prev_cycle: u64,
    /// Cycle of the first mismatching checkpoint.
    pub cycle: u64,
    /// Hash the log recorded at that checkpoint.
    pub logged: u64,
    /// Hash the re-execution computed.
    pub got: u64,
}

/// Outcome of a [`verify`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Checkpoints compared (stops at the first mismatch).
    pub checked: u64,
    /// Cycle the pass ended at.
    pub end_cycle: u64,
    /// The first mismatch, or `None` for a clean replay.
    pub mismatch: Option<BoundaryMismatch>,
}

impl VerifyReport {
    /// Whether the re-execution matched the log at every checkpoint.
    pub fn clean(&self) -> bool {
        self.mismatch.is_none()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.mismatch {
            None => write!(
                f,
                "clean replay: {} checkpoints matched through cycle {}",
                self.checked, self.end_cycle
            ),
            Some(m) => write!(
                f,
                "hash mismatch at checkpoint cycle {} (logged {:#018x}, got {:#018x}); \
                 last match at cycle {}",
                m.cycle, m.logged, m.got, m.prev_cycle
            ),
        }
    }
}

/// One component whose hash differed at the first diverging cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDiff {
    /// Component label (e.g. `router (3,1,2) vnet1 occupancy`).
    pub label: String,
    /// The reference execution's hash.
    pub reference: u64,
    /// The target execution's hash.
    pub target: u64,
}

/// What [`bisect`] concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The target replay matched every checkpoint.
    None,
    /// The target mismatched the log, but so did a fresh run under the
    /// *recorded* configuration — the log itself is wrong (corrupted, or
    /// the recording environment was nondeterministic). `cycle` is the
    /// first checkpoint the recorded configuration cannot reproduce.
    LogMismatch {
        /// First irreproducible checkpoint cycle.
        cycle: u64,
        /// Hash the log recorded there.
        logged: u64,
        /// Hash the recorded configuration reproduces.
        recomputed: u64,
    },
    /// Reference and target executions genuinely diverge.
    Diverged {
        /// First cycle at which the combined hashes differ.
        cycle: u64,
        /// The checkpoint interval the mismatch was narrowed from.
        interval: (u64, u64),
        /// Components whose hashes differ at `cycle`.
        components: Vec<ComponentDiff>,
    },
}

/// Outcome of a [`bisect`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectReport {
    /// The conclusion.
    pub divergence: Divergence,
    /// Fresh executions built while narrowing (2 per halving probe).
    pub probes: u32,
}

impl fmt::Display for BisectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.divergence {
            Divergence::None => write!(f, "no divergence"),
            Divergence::LogMismatch {
                cycle,
                logged,
                recomputed,
            } => write!(
                f,
                "log mismatch at cycle {cycle}: the recorded configuration reproduces \
                 {recomputed:#018x} but the log says {logged:#018x} (log corrupt, or the \
                 recording was nondeterministic)"
            ),
            Divergence::Diverged {
                cycle,
                interval,
                components,
            } => {
                write!(
                    f,
                    "first divergence at cycle {cycle} (bisected from checkpoint interval \
                     ({}, {}]):",
                    interval.0, interval.1
                )?;
                for c in components {
                    write!(
                        f,
                        "\n  cycle {cycle}, {} (reference {:#018x}, target {:#018x})",
                        c.label, c.reference, c.target
                    )?;
                }
                Ok(())
            }
        }
    }
}

/// Replays `log` under `factory`'s configuration, comparing the machine's
/// state hash against every recorded checkpoint in order. Stops at the
/// first mismatch.
pub fn verify(log: &ReplayLog, factory: &dyn ExecFactory) -> VerifyReport {
    let mut exec = factory.build(log);
    let mut checked = 0;
    let mut prev_cycle = 0;
    for r in &log.records {
        match r {
            Record::Op { cycle, op } => {
                exec.advance_to(*cycle);
                exec.apply(op);
            }
            Record::Boundary { cycle, hash } | Record::End { cycle, hash } => {
                exec.advance_to(*cycle);
                let got = exec.state_hash();
                checked += 1;
                if got != *hash {
                    return VerifyReport {
                        checked,
                        end_cycle: *cycle,
                        mismatch: Some(BoundaryMismatch {
                            prev_cycle,
                            cycle: *cycle,
                            logged: *hash,
                            got,
                        }),
                    };
                }
                prev_cycle = *cycle;
            }
        }
    }
    VerifyReport {
        checked,
        end_cycle: exec.cycle(),
        mismatch: None,
    }
}

/// Builds a fresh execution and drives it through the log to exactly
/// `cycle`, applying every host op stamped at or before it (in recording
/// order). No checkpoint comparison happens — this is the probe primitive
/// bisection uses to sample machine state mid-interval.
pub fn state_at(log: &ReplayLog, factory: &dyn ExecFactory, cycle: u64) -> Box<dyn Execution> {
    let mut exec = factory.build(log);
    for r in &log.records {
        match r {
            Record::Op { cycle: c, op } => {
                if *c > cycle {
                    break;
                }
                exec.advance_to(*c);
                exec.apply(op);
            }
            Record::Boundary { cycle: c, .. } | Record::End { cycle: c, .. } => {
                if *c >= cycle {
                    break;
                }
            }
        }
    }
    exec.advance_to(cycle);
    exec
}

/// Verifies `target` against the log and, on mismatch, narrows the failure
/// to a single cycle and component set.
///
/// The algorithm: (1) [`verify`] the target; a clean pass is
/// [`Divergence::None`]. (2) Re-verify under `reference` (the *recorded*
/// configuration); if the reference cannot reproduce a checkpoint at or
/// before the target's first mismatch, the log itself is wrong —
/// [`Divergence::LogMismatch`] names that checkpoint's cycle exactly.
/// (3) Otherwise binary-search the mismatching checkpoint interval
/// `(a, b]`: each probe rebuilds both executions from cycle 0 and drives
/// them to the midpoint (every engine can stop on any exact cycle, so the
/// probe is bit-exact), until the first cycle where the combined hashes
/// differ; the per-component hash vectors at that cycle name the diverging
/// components.
pub fn bisect(
    log: &ReplayLog,
    reference: &dyn ExecFactory,
    target: &dyn ExecFactory,
) -> BisectReport {
    let tv = verify(log, target);
    let Some(tm) = tv.mismatch else {
        return BisectReport {
            divergence: Divergence::None,
            probes: 0,
        };
    };
    let rv = verify(log, reference);
    if let Some(rm) = rv.mismatch {
        if rm.cycle <= tm.cycle {
            return BisectReport {
                divergence: Divergence::LogMismatch {
                    cycle: rm.cycle,
                    logged: rm.logged,
                    recomputed: rm.got,
                },
                probes: 0,
            };
        }
    }
    // Hashes agree at tm.prev_cycle (both replays matched the log there)
    // and differ at tm.cycle. Halve until the bounds are adjacent.
    let (mut lo, mut hi) = (tm.prev_cycle, tm.cycle);
    let mut probes = 0;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let r = state_at(log, reference, mid).state_hash();
        let t = state_at(log, target, mid).state_hash();
        probes += 2;
        if r == t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let rc = state_at(log, reference, hi).component_hashes();
    let tc = state_at(log, target, hi).component_hashes();
    probes += 2;
    let components = rc
        .iter()
        .zip(tc.iter())
        .filter(|(r, t)| r.hash != t.hash || r.label != t.label)
        .map(|(r, t)| ComponentDiff {
            label: r.label.clone(),
            reference: r.hash,
            target: t.hash,
        })
        .collect();
    BisectReport {
        divergence: Divergence::Diverged {
            cycle: hi,
            interval: (tm.prev_cycle, tm.cycle),
            components,
        },
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jm_asm::Builder;
    use jm_isa::node::MeshDims;
    use jm_isa::word::Word;
    use jm_mdp::MdpConfig;
    use jm_net::NetConfig;

    fn sample_log() -> ReplayLog {
        let mut b = Builder::new();
        b.reserve("out", jm_asm::Region::Imem, 2);
        b.label("main");
        b.suspend();
        b.label("other");
        b.suspend();
        b.entry("main");
        let program = b.assemble().unwrap();
        let dims = MeshDims::new(2, 2, 2);
        ReplayLog {
            config: RecordedConfig {
                dims,
                start: 1,
                engine: 1,
                threads: 0,
                quantum: 0,
                sched: 0,
                mdp: MdpConfig::default(),
                net: NetConfig::new(dims),
            },
            fault: Some(
                jm_fault::FaultSpec::new(7)
                    .flaky(1000)
                    .checksums(true)
                    .window(jm_fault::FaultWindow::link_down(0, 2, 10, 20)),
            ),
            traffic: Some(
                jm_traffic::TrafficSpec::new(9)
                    .pattern(jm_traffic::TrafficPattern::Hotspot {
                        weight_ppm: 250_000,
                    })
                    .load(120_000)
                    .msg_words(3)
                    .window(5, 500)
                    .handler(17),
            ),
            interval: 16,
            program,
            records: vec![
                Record::Op {
                    cycle: 0,
                    op: HostOp::InstallVectorAll { kind: 0, ip: 1 },
                },
                Record::Op {
                    cycle: 0,
                    op: HostOp::Deliver {
                        node: 3,
                        priority: 0,
                        words: vec![Word::int(42), Word::NIL],
                    },
                },
                Record::Boundary {
                    cycle: 16,
                    hash: 0xdead_beef,
                },
                Record::Op {
                    cycle: 20,
                    op: HostOp::WriteWord {
                        node: 1,
                        addr: 0x100,
                        word: Word::int(-5),
                    },
                },
                Record::Boundary {
                    cycle: 32,
                    hash: 0x1234,
                },
                Record::End {
                    cycle: 40,
                    hash: 0x5678,
                },
            ],
        }
    }

    #[test]
    fn log_round_trips_through_bytes() {
        let log = sample_log();
        let bytes = log.to_bytes();
        let back = ReplayLog::from_bytes(&bytes).unwrap();
        assert_eq!(back.config, log.config);
        assert_eq!(back.fault, log.fault);
        assert_eq!(back.traffic, log.traffic);
        assert_eq!(back.interval, log.interval);
        assert_eq!(back.records, log.records);
        assert_eq!(back.program.code, log.program.code);
        assert_eq!(back.program.entry, log.program.entry);
        assert_eq!(back.program.code_base, log.program.code_base);
        assert_eq!(back.program.data, log.program.data);
        assert_eq!(back.program.symbols.len(), log.program.symbols.len());
        for (name, value) in log.program.symbols.iter() {
            assert_eq!(back.program.symbols.get(name), Some(value), "{name}");
        }
        // Serialization is canonical: a re-serialization is byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncated_and_garbled_logs_error() {
        let bytes = sample_log().to_bytes();
        assert!(ReplayLog::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(ReplayLog::from_bytes(b"not a log").is_err());
    }

    #[test]
    fn interval_digests_compose() {
        let log = sample_log();
        let whole = log.interval_digest(0, 41);
        for split in [0, 16, 17, 32, 40, 41] {
            let left = log.interval_digest(0, split);
            let resumed = log.interval_digest_from(left, split, 41);
            assert_eq!(whole, resumed, "split at {split}");
        }
    }

    #[test]
    fn corrupt_checkpoint_flips_one_hash() {
        let mut log = sample_log();
        assert_eq!(log.corrupt_checkpoint(1), Some(32));
        assert!(matches!(
            log.records[4],
            Record::Boundary {
                cycle: 32,
                hash: 0x1235
            }
        ));
        assert_eq!(log.corrupt_checkpoint(3), None);
    }
}
