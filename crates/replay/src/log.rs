//! The replay log: binary format, encoder, decoder.
//!
//! A log is everything a re-execution cannot derive for itself — the full
//! machine configuration (including the fault and traffic specs: fault and
//! injection decisions are pure functions of `(seed, node, port, cycle)`
//! and `(seed, node, cycle)` respectively, so each spec *is* the outcome),
//! the program image, and every host-boundary input stamped with
//! the cycle it was applied at — plus a trail of per-interval state hashes
//! against which a re-execution is checked. Everything that happens
//! *inside* the machine (sends, routing, fault draws, traffic injection,
//! handler dispatch) is deterministic given those inputs and is
//! deliberately not recorded.
//!
//! The byte format is little-endian throughout, magic `JMRP2\n` (version 2
//! added the traffic-spec section), and has no alignment padding; see
//! `DESIGN.md` §4.11 for the field-by-field layout.

use jm_asm::{DataBlock, Program, SymbolValue};
use jm_fault::{FaultSpec, FaultWindow, FaultWindowKind};
use jm_isa::encode::{decode, encode, Encoded};
use jm_isa::node::MeshDims;
use jm_isa::tag::Tag;
use jm_isa::word::{SegDesc, Word};
use jm_mdp::{MdpConfig, TimingConfig};
use jm_net::{NetConfig, ScanPolicy};
use jm_traffic::{TrafficPattern, TrafficSpec};
use std::fmt;
use std::path::Path;

/// Magic bytes opening every log (`JMRP` + format version 2; version 1
/// predates the traffic-spec section). Logs are ephemeral CI artifacts,
/// so a format bump invalidates nothing durable — an old log fails
/// cleanly at the magic check instead of misparsing.
pub const MAGIC: &[u8; 6] = b"JMRP2\n";

/// Default hash-boundary spacing in cycles. Chosen so that hashing every
/// node's register file, queues, and memory pages plus every router's
/// arena occupancy stays well under 10% of wall time on the load-dominated
/// bench (`exchange64_replay_capture` in BENCH_engine.json guards this),
/// while a post-hoc bisection still only has to halve a few-thousand-cycle
/// window.
pub const DEFAULT_INTERVAL: u64 = 4096;

/// A malformed or truncated log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogError {
    message: String,
}

impl LogError {
    fn new(message: impl Into<String>) -> LogError {
        LogError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replay log error: {}", self.message)
    }
}

impl std::error::Error for LogError {}

/// The machine configuration a log was recorded under, as plain data.
///
/// Engine, thread count, quantum, and scheduler mode are *metadata*: the
/// three engines are bit-identical by construction, so a replay may run
/// under any of them — these fields record what the original run used so a
/// divergence report can name both sides. Everything else (dims, start
/// policy, timing, queue depths, network buffers) shapes simulated
/// behavior and must be reproduced exactly.
///
/// Discriminant fields mirror `jm-machine` enums this crate cannot name
/// (it sits below `jm-machine` in the dependency order): `start` is
/// 0 = Node0 / 1 = AllNodes / 2 = None, `engine` is 0 = Naive / 1 = Event /
/// 2 = Parallel, `sched` is 0 = Auto / 1 = ForcedEvent / 2 = ForcedScan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedConfig {
    /// Mesh dimensions.
    pub dims: MeshDims,
    /// Start-policy discriminant.
    pub start: u8,
    /// Engine discriminant of the recording run.
    pub engine: u8,
    /// Thread count of the recording run (parallel engine only).
    pub threads: u32,
    /// Scheduling quantum of the recording run (0 = auto).
    pub quantum: u32,
    /// Scheduler-mode discriminant.
    pub sched: u8,
    /// Node configuration (timing model, queue depths, checksum mode).
    pub mdp: MdpConfig,
    /// Network configuration (buffer depths, latencies, bulk fast path).
    pub net: NetConfig,
}

/// One host-boundary input. Each op is stored with the cycle it was
/// applied at (see [`Record::Op`]); a replay advances the machine to that
/// cycle, applies the op, and continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostOp {
    /// `install_vector_all`: fault vector `kind` set to handler `ip` on
    /// every node.
    InstallVectorAll {
        /// `FaultKind` discriminant.
        kind: u8,
        /// Resolved handler instruction address.
        ip: u32,
    },
    /// A fault vector installed on a single node.
    InstallVector {
        /// Global node id.
        node: u32,
        /// `FaultKind` discriminant.
        kind: u8,
        /// Resolved handler instruction address.
        ip: u32,
    },
    /// A host message delivered directly into a node's queue. `words` is
    /// the exact on-wire sequence (header, arguments, and the checksum
    /// trailer when the run used checksummed messages).
    Deliver {
        /// Global node id.
        node: u32,
        /// Message priority (0 or 1).
        priority: u8,
        /// The delivered words, verbatim.
        words: Vec<Word>,
    },
    /// A host write of one word of node memory.
    WriteWord {
        /// Global node id.
        node: u32,
        /// Word address.
        addr: u32,
        /// The written word.
        word: Word,
    },
}

/// One record in the log body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A host-boundary input, applied when the machine clock read `cycle`.
    Op {
        /// Machine cycle at which the op was applied.
        cycle: u64,
        /// The input itself.
        op: HostOp,
    },
    /// A state-hash checkpoint: the machine's combined component hash
    /// (see `JMachine::state_hash`) when its clock read `cycle`.
    Boundary {
        /// Machine cycle of the checkpoint.
        cycle: u64,
        /// Combined FNV-1a state hash at that cycle.
        hash: u64,
    },
    /// The final checkpoint of a cleanly-finished recording. Absent when
    /// the recording process died mid-run (the drop handler writes what it
    /// has); verification then checks every boundary it finds.
    End {
        /// Final machine cycle.
        cycle: u64,
        /// Combined state hash at that cycle.
        hash: u64,
    },
}

impl Record {
    /// The record's cycle stamp.
    pub fn cycle(&self) -> u64 {
        match *self {
            Record::Op { cycle, .. }
            | Record::Boundary { cycle, .. }
            | Record::End { cycle, .. } => cycle,
        }
    }
}

/// A complete replay log.
///
/// Equality compares the canonical serialized form, because `Program` does
/// not itself implement `PartialEq` and the byte encoding is canonical
/// (symbols are serialized in sorted order).
#[derive(Debug, Clone)]
pub struct ReplayLog {
    /// Configuration of the recording run.
    pub config: RecordedConfig,
    /// Fault campaign, if the run injected faults. The spec alone
    /// reproduces every fault decision on replay.
    pub fault: Option<FaultSpec>,
    /// Synthetic traffic plan, if the run generated background traffic.
    /// Like the fault spec, injection is a pure function of
    /// `(seed, node, cycle)`, so the spec alone reproduces every
    /// generated message on replay.
    pub traffic: Option<TrafficSpec>,
    /// Hash-boundary spacing in cycles the recorder aimed for.
    pub interval: u64,
    /// The program image loaded on every node.
    pub program: Program,
    /// The body: ops and checkpoints in recording order.
    pub records: Vec<Record>,
}

impl PartialEq for ReplayLog {
    fn eq(&self, other: &ReplayLog) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl ReplayLog {
    /// The log's final cycle: the `End` record's stamp, or the last
    /// record's when the recording was cut short.
    pub fn end_cycle(&self) -> u64 {
        self.records.last().map_or(0, Record::cycle)
    }

    /// Number of hash checkpoints (boundaries plus the end record).
    pub fn checkpoints(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r, Record::Boundary { .. } | Record::End { .. }))
            .count()
    }

    /// Digest of the checkpoint stream in `[from, to)`: every boundary's
    /// `(cycle, hash)` folded through FNV-1a in order, starting from
    /// `seed`. Because FNV-1a composes over concatenation, the digest of
    /// `[a, c)` equals the digest of `[b, c)` seeded with the digest of
    /// `[a, b)` — the interval-composition property the replay test suite
    /// checks on real logs.
    pub fn interval_digest_from(&self, seed: u64, from: u64, to: u64) -> u64 {
        let mut f = jm_trace::Fnv1a::with_seed(seed);
        for r in &self.records {
            if let Record::Boundary { cycle, hash } | Record::End { cycle, hash } = *r {
                if cycle >= from && cycle < to {
                    f.write_u64(cycle);
                    f.write_u64(hash);
                }
            }
        }
        f.finish()
    }

    /// [`Self::interval_digest_from`] seeded with the FNV offset basis.
    pub fn interval_digest(&self, from: u64, to: u64) -> u64 {
        self.interval_digest_from(jm_trace::fnv1a(b""), from, to)
    }

    /// Flips one bit of the hash in the `index`-th checkpoint record
    /// (boundaries and the end record both count), returning the cycle of
    /// the corrupted checkpoint. Used by the CI self-test that proves the
    /// bisector localizes a corrupt log to exactly the right cycle.
    /// Returns `None` when the log has fewer checkpoints.
    pub fn corrupt_checkpoint(&mut self, index: usize) -> Option<u64> {
        let mut seen = 0;
        for r in &mut self.records {
            if let Record::Boundary { cycle, hash } | Record::End { cycle, hash } = r {
                if seen == index {
                    *hash ^= 1;
                    return Some(*cycle);
                }
                seen += 1;
            }
        }
        None
    }

    /// Serializes the log to its byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(MAGIC);
        let c = &self.config;
        w.u8(c.dims.x);
        w.u8(c.dims.y);
        w.u8(c.dims.z);
        w.u8(c.start);
        w.u8(c.engine);
        w.u32(c.threads);
        w.u32(c.quantum);
        w.u8(c.sched);
        w.u64(self.interval);
        let t = &c.mdp.timing;
        for v in [
            t.base,
            t.imem_operand,
            t.emem_operand,
            t.queue_operand,
            t.emem_fetch,
            t.imm_ext,
            t.branch_taken,
            t.jump,
            t.mul,
            t.div,
            t.dispatch,
            t.fault_entry,
            t.xlate_extra,
            t.enter_extra,
            t.resume_extra,
        ] {
            w.u64(v);
        }
        w.u32(c.mdp.queue0_words);
        w.u32(c.mdp.queue1_words);
        w.u64(c.mdp.xlate_entries as u64);
        w.u8(c.mdp.checksum_msgs as u8);
        w.u64(c.net.flit_buffer as u64);
        w.u64(c.net.inject_fifo as u64);
        w.u64(c.net.inject_latency);
        w.u64(c.net.eject_fifo as u64);
        w.u8(c.net.bulk as u8);
        match &self.fault {
            None => w.u8(0),
            Some(spec) => {
                w.u8(1);
                w.u64(spec.seed);
                w.u32(spec.link_flaky_ppm);
                w.u32(spec.corrupt_ppm);
                w.u8(spec.checksums as u8);
                let windows = spec.windows();
                w.u8(windows.len() as u8);
                for win in windows {
                    w.u8(match win.kind {
                        FaultWindowKind::LinkDown => 0,
                        FaultWindowKind::RouterStall => 1,
                        FaultWindowKind::NodeDown => 2,
                    });
                    w.u32(win.node);
                    w.u8(win.port);
                    w.u64(win.from);
                    w.u64(win.until);
                }
            }
        }
        match &self.traffic {
            None => w.u8(0),
            Some(spec) => {
                w.u8(1);
                w.u64(spec.seed);
                match spec.pattern {
                    TrafficPattern::UniformRandom => w.u8(0),
                    TrafficPattern::Transpose => w.u8(1),
                    TrafficPattern::BitReversal => w.u8(2),
                    TrafficPattern::Hotspot { weight_ppm } => {
                        w.u8(3);
                        w.u32(weight_ppm);
                    }
                    TrafficPattern::NearestNeighbor => w.u8(4),
                }
                w.u32(spec.load_ppm);
                w.u32(spec.msg_words);
                w.u64(spec.from);
                w.u64(spec.until);
                w.u32(spec.handler_ip);
            }
        }
        let p = &self.program;
        w.u32(p.code.len() as u32);
        for instr in &p.code {
            let slots = encode(instr).slot_values();
            w.u8(slots.len() as u8);
            for s in slots {
                w.u32(s);
            }
        }
        w.u32(p.code_base);
        w.u32(p.code_words);
        w.u32(p.data.len() as u32);
        for block in &p.data {
            w.name(&block.name);
            w.u32(block.base);
            w.u32(block.len);
            w.u32(block.init.len() as u32);
            for word in &block.init {
                w.word(*word);
            }
        }
        // Symbol tables are hash maps; serialize sorted by name so two
        // recordings of the same run produce byte-identical logs.
        let mut symbols: Vec<(&str, SymbolValue)> = p.symbols.iter().collect();
        symbols.sort_by_key(|&(name, _)| name);
        w.u32(symbols.len() as u32);
        for (name, value) in symbols {
            w.name(name);
            match value {
                SymbolValue::Code(ip) => {
                    w.u8(0);
                    w.u32(ip);
                }
                SymbolValue::Data(seg) => {
                    w.u8(1);
                    w.word(seg.to_word());
                }
                SymbolValue::Const(word) => {
                    w.u8(2);
                    w.word(word);
                }
            }
        }
        match p.entry {
            None => w.u8(0),
            Some(ip) => {
                w.u8(1);
                w.u32(ip);
            }
        }
        for r in &self.records {
            match r {
                Record::Op { cycle, op } => match op {
                    HostOp::InstallVectorAll { kind, ip } => {
                        w.u8(1);
                        w.u64(*cycle);
                        w.u8(*kind);
                        w.u32(*ip);
                    }
                    HostOp::InstallVector { node, kind, ip } => {
                        w.u8(2);
                        w.u64(*cycle);
                        w.u32(*node);
                        w.u8(*kind);
                        w.u32(*ip);
                    }
                    HostOp::Deliver {
                        node,
                        priority,
                        words,
                    } => {
                        w.u8(3);
                        w.u64(*cycle);
                        w.u32(*node);
                        w.u8(*priority);
                        w.u32(words.len() as u32);
                        for word in words {
                            w.word(*word);
                        }
                    }
                    HostOp::WriteWord { node, addr, word } => {
                        w.u8(4);
                        w.u64(*cycle);
                        w.u32(*node);
                        w.u32(*addr);
                        w.word(*word);
                    }
                },
                Record::Boundary { cycle, hash } => {
                    w.u8(5);
                    w.u64(*cycle);
                    w.u64(*hash);
                }
                Record::End { cycle, hash } => {
                    w.u8(6);
                    w.u64(*cycle);
                    w.u64(*hash);
                }
            }
        }
        w.out
    }

    /// Parses a log from its byte format.
    ///
    /// # Errors
    ///
    /// [`LogError`] on bad magic, truncation, or any malformed field
    /// (including instructions that fail to decode).
    pub fn from_bytes(bytes: &[u8]) -> Result<ReplayLog, LogError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(LogError::new("bad magic (not a replay log?)"));
        }
        let dims = MeshDims::new(r.u8()?, r.u8()?, r.u8()?);
        let start = r.u8()?;
        let engine = r.u8()?;
        let threads = r.u32()?;
        let quantum = r.u32()?;
        let sched = r.u8()?;
        let interval = r.u64()?;
        let timing = TimingConfig {
            base: r.u64()?,
            imem_operand: r.u64()?,
            emem_operand: r.u64()?,
            queue_operand: r.u64()?,
            emem_fetch: r.u64()?,
            imm_ext: r.u64()?,
            branch_taken: r.u64()?,
            jump: r.u64()?,
            mul: r.u64()?,
            div: r.u64()?,
            dispatch: r.u64()?,
            fault_entry: r.u64()?,
            xlate_extra: r.u64()?,
            enter_extra: r.u64()?,
            resume_extra: r.u64()?,
        };
        let mdp = MdpConfig {
            timing,
            queue0_words: r.u32()?,
            queue1_words: r.u32()?,
            xlate_entries: r.u64()? as usize,
            checksum_msgs: r.u8()? != 0,
        };
        let net = NetConfig {
            dims,
            flit_buffer: r.u64()? as usize,
            inject_fifo: r.u64()? as usize,
            inject_latency: r.u64()?,
            eject_fifo: r.u64()? as usize,
            scan: ScanPolicy::default(),
            bulk: r.u8()? != 0,
        };
        let fault = if r.u8()? != 0 {
            let mut spec = FaultSpec::new(r.u64()?)
                .flaky(r.u32()?)
                .corrupt(r.u32()?)
                .checksums(r.u8()? != 0);
            let nwin = r.u8()?;
            for _ in 0..nwin {
                let kind = r.u8()?;
                let node = r.u32()?;
                let port = r.u8()?;
                let from = r.u64()?;
                let until = r.u64()?;
                spec = spec.window(match kind {
                    0 => FaultWindow::link_down(node, port, from, until),
                    1 => FaultWindow::router_stall(node, from, until),
                    2 => FaultWindow::node_down(node, from, until),
                    k => return Err(LogError::new(format!("bad fault window kind {k}"))),
                });
            }
            Some(spec)
        } else {
            None
        };
        let traffic = if r.u8()? != 0 {
            let seed = r.u64()?;
            let pattern = match r.u8()? {
                0 => TrafficPattern::UniformRandom,
                1 => TrafficPattern::Transpose,
                2 => TrafficPattern::BitReversal,
                3 => TrafficPattern::Hotspot {
                    weight_ppm: r.u32()?,
                },
                4 => TrafficPattern::NearestNeighbor,
                k => return Err(LogError::new(format!("bad traffic pattern {k}"))),
            };
            let mut spec = TrafficSpec::new(seed).pattern(pattern);
            spec.load_ppm = r.u32()?;
            spec.msg_words = r.u32()?;
            spec.from = r.u64()?;
            spec.until = r.u64()?;
            spec.handler_ip = r.u32()?;
            Some(spec)
        } else {
            None
        };
        let ninstr = r.u32()?;
        let mut code = Vec::with_capacity(ninstr as usize);
        for i in 0..ninstr {
            let nslots = r.u8()?;
            let mut slots = Vec::with_capacity(nslots as usize);
            for _ in 0..nslots {
                slots.push(r.u32()?);
            }
            let instr = decode(&Encoded::from_slots(&slots))
                .map_err(|e| LogError::new(format!("instruction {i}: {e}")))?;
            code.push(instr);
        }
        let code_base = r.u32()?;
        let code_words = r.u32()?;
        let nblocks = r.u32()?;
        let mut data = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            let name = r.name()?;
            let base = r.u32()?;
            let len = r.u32()?;
            let ninit = r.u32()?;
            let mut init = Vec::with_capacity(ninit as usize);
            for _ in 0..ninit {
                init.push(r.word()?);
            }
            data.push(DataBlock {
                name,
                base,
                len,
                init,
            });
        }
        let mut program = Program {
            code,
            code_base,
            code_words,
            data,
            ..Program::default()
        };
        let nsyms = r.u32()?;
        for _ in 0..nsyms {
            let name = r.name()?;
            let value = match r.u8()? {
                0 => SymbolValue::Code(r.u32()?),
                1 => SymbolValue::Data(SegDesc::from_word(r.word()?)),
                2 => SymbolValue::Const(r.word()?),
                k => return Err(LogError::new(format!("bad symbol kind {k}"))),
            };
            program.symbols.insert(name, value);
        }
        program.entry = if r.u8()? != 0 { Some(r.u32()?) } else { None };
        let mut records = Vec::new();
        while !r.at_end() {
            let tag = r.u8()?;
            let cycle = r.u64()?;
            let record = match tag {
                1 => Record::Op {
                    cycle,
                    op: HostOp::InstallVectorAll {
                        kind: r.u8()?,
                        ip: r.u32()?,
                    },
                },
                2 => Record::Op {
                    cycle,
                    op: HostOp::InstallVector {
                        node: r.u32()?,
                        kind: r.u8()?,
                        ip: r.u32()?,
                    },
                },
                3 => {
                    let node = r.u32()?;
                    let priority = r.u8()?;
                    let nwords = r.u32()?;
                    let mut words = Vec::with_capacity(nwords as usize);
                    for _ in 0..nwords {
                        words.push(r.word()?);
                    }
                    Record::Op {
                        cycle,
                        op: HostOp::Deliver {
                            node,
                            priority,
                            words,
                        },
                    }
                }
                4 => Record::Op {
                    cycle,
                    op: HostOp::WriteWord {
                        node: r.u32()?,
                        addr: r.u32()?,
                        word: r.word()?,
                    },
                },
                5 => Record::Boundary {
                    cycle,
                    hash: r.u64()?,
                },
                6 => Record::End {
                    cycle,
                    hash: r.u64()?,
                },
                t => return Err(LogError::new(format!("bad record tag {t}"))),
            };
            records.push(record);
        }
        Ok(ReplayLog {
            config: RecordedConfig {
                dims,
                start,
                engine,
                threads,
                quantum,
                sched,
                mdp,
                net,
            },
            fault,
            traffic,
            interval,
            program,
            records,
        })
    }

    /// Writes the log to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a log from a file.
    ///
    /// # Errors
    ///
    /// [`LogError`] on I/O failure or a malformed log.
    pub fn read_file(path: impl AsRef<Path>) -> Result<ReplayLog, LogError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| LogError::new(format!("{}: {e}", path.as_ref().display())))?;
        ReplayLog::from_bytes(&bytes)
    }
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn word(&mut self, w: Word) {
        self.u8(w.tag().bits());
        self.u32(w.bits());
    }
    fn name(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize, "name too long");
        self.out.extend_from_slice(&(s.len() as u16).to_le_bytes());
        self.out.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], LogError> {
        if self.pos + n > self.bytes.len() {
            return Err(LogError::new(format!(
                "truncated at byte {} (wanted {n} more)",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
    fn u8(&mut self) -> Result<u8, LogError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, LogError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, LogError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn word(&mut self) -> Result<Word, LogError> {
        let tag = self.u8()?;
        let bits = self.u32()?;
        if tag >= 16 {
            return Err(LogError::new(format!("bad tag {tag}")));
        }
        Ok(Word::new(Tag::from_bits(tag), bits))
    }
    fn name(&mut self) -> Result<String, LogError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LogError::new("name not UTF-8"))
    }
}
