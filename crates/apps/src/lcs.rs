//! Longest Common Subsequence (paper §4.3.1).
//!
//! One string is distributed evenly across the nodes; the other is placed
//! on node 0 and streamed through the machine systolically, one 4-word
//! message per character. Each node holds a strip of the DP row and a
//! single message handler dominates execution. The paper's numbers: 232
//! instructions per `NxtChar` thread at 64 nodes, handler entry/exit
//! overhead growing from 9% (64 nodes) to 33% (512), idle time from load
//! imbalance at node 0 plus systolic skew.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{AluOp, MsgPriority::P0, StatClass};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{JMachine, MachineConfig, MachineError, MachineStats, StartPolicy};
use jm_prng::Prng;
use jm_runtime::nnr;

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcsConfig {
    /// Length of the distributed string (must be divisible by the node
    /// count).
    pub a_len: u32,
    /// Length of the streamed string.
    pub b_len: u32,
    /// Seed for string generation.
    pub seed: u64,
    /// Alphabet size (small alphabets give long common subsequences).
    pub alphabet: u8,
}

impl LcsConfig {
    /// The paper's problem: |A| = 1024, |B| = 4096.
    pub fn paper() -> LcsConfig {
        LcsConfig {
            a_len: 1024,
            b_len: 4096,
            seed: 0x1c5,
            alphabet: 4,
        }
    }

    /// A scaled problem that keeps the same structure at simulator speed.
    pub fn scaled() -> LcsConfig {
        LcsConfig {
            a_len: 256,
            b_len: 1024,
            seed: 0x1c5,
            alphabet: 4,
        }
    }

    /// Generates the two strings.
    pub fn strings(&self) -> (Vec<u8>, Vec<u8>) {
        let mut rng = Prng::new(self.seed);
        let a = (0..self.a_len)
            .map(|_| rng.range_u32(0, u32::from(self.alphabet)) as u8)
            .collect();
        let b = (0..self.b_len)
            .map(|_| rng.range_u32(0, u32::from(self.alphabet)) as u8)
            .collect();
        (a, b)
    }
}

/// Host reference: classic O(|A|·|B|) dynamic program.
pub fn reference(a: &[u8], b: &[u8]) -> u32 {
    let mut row = vec![0u32; a.len() + 1];
    for &bc in b {
        let mut diag = 0;
        for (j, &ac) in a.iter().enumerate() {
            let up = row[j + 1];
            row[j + 1] = if ac == bc {
                diag + 1
            } else {
                row[j + 1].max(row[j])
            };
            diag = up;
        }
    }
    row[a.len()]
}

// Parameter block layout: [0] K, [1] next route, [2] is_last, [3] processed,
// [4] |B|, [5] result, [6] diag, [7] tmp.

/// Builds the SPMD program for `nodes` nodes.
///
/// # Panics
///
/// Panics if `a_len` is not divisible by `nodes`.
pub fn program(cfg: &LcsConfig, nodes: u32) -> Program {
    assert_eq!(
        cfg.a_len % nodes,
        0,
        "|A| must divide evenly across the machine"
    );
    let k = cfg.a_len / nodes;
    let mut b = Builder::new();
    b.reserve("lcs_a", Region::Imem, k);
    b.data("lcs_up", Region::Imem, vec![Word::int(0); k as usize]);
    b.reserve("lcs_b", Region::Emem, cfg.b_len);
    b.data("lcs_p", Region::Imem, vec![Word::int(0); 8]);

    // --- background init (+ generator on node 0) ---
    b.label("main");
    b.load_seg(A0, "lcs_p");
    b.mov(MemRef::disp(A0, 0), k as i32);
    b.mov(MemRef::disp(A0, 4), cfg.b_len as i32);
    b.mov(R0, Special::Nid);
    b.mov(R1, Special::NNodes);
    b.subi(R1, R1, 1);
    b.alu(AluOp::Eq, R2, R0, R1);
    b.wtag(R2, R2, 0);
    b.mov(MemRef::disp(A0, 2), R2);
    b.bnz(R2, "skip_route");
    b.addi(R0, R0, 1);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Compute);
    b.load_seg(A0, "lcs_p");
    b.mov(MemRef::disp(A0, 1), R0);
    b.label("skip_route");
    b.mov(R0, Special::Nid);
    b.bnz(R0, "main_done");
    // Node 0 streams |B| characters to itself.
    b.load_seg(A1, "lcs_b");
    b.movi(R1, 0);
    b.label("gen_loop");
    b.mark(StatClass::Comm);
    b.send(P0, Special::Nnr);
    b.send(P0, hdr("lcs_char", 4));
    b.mov(R2, MemRef::reg(A1, R1));
    b.send2(P0, R2, 0);
    b.sende(P0, 0);
    b.addi(R1, R1, 1);
    b.alu(AluOp::Lt, R2, R1, cfg.b_len as i32);
    b.bt(R2, "gen_loop");
    b.label("main_done");
    b.suspend();

    // --- the NxtChar handler: [hdr, char, left, prev_up] ---
    b.label("lcs_char");
    b.load_seg(A0, "lcs_p");
    b.load_seg(A1, "lcs_a");
    b.load_seg(A2, "lcs_up");
    b.mov(R3, MemRef::disp(A3, 1)); // char
    b.mov(R1, MemRef::disp(A3, 2)); // left
    b.mov(R2, MemRef::disp(A3, 3)); // prev_up (initial diagonal)
    b.mov(MemRef::disp(A0, 6), R2);
    b.movi(R0, 0);
    b.label("k_loop");
    b.mov(R2, MemRef::reg(A2, R0)); // up[k]
    b.mov(MemRef::disp(A0, 7), R2); // save as next diagonal
    b.alu(AluOp::Eq, R2, R3, MemRef::reg(A1, R0));
    b.bt(R2, "matched");
    b.mov(R2, MemRef::reg(A2, R0));
    b.alu(AluOp::Max, R1, R1, R2);
    b.br("store");
    b.label("matched");
    b.mov(R1, MemRef::disp(A0, 6));
    b.addi(R1, R1, 1);
    b.label("store");
    b.mov(MemRef::reg(A2, R0), R1);
    b.mov(R2, MemRef::disp(A0, 7));
    b.mov(MemRef::disp(A0, 6), R2);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, MemRef::disp(A0, 0));
    b.bt(R2, "k_loop");
    // Epilogue: forward or record.
    b.mov(R2, MemRef::disp(A0, 2));
    b.bnz(R2, "last_node");
    b.mark(StatClass::Comm);
    b.send(P0, MemRef::disp(A0, 1));
    b.send(P0, hdr("lcs_char", 4));
    b.send2(P0, R3, R1);
    b.sende(P0, MemRef::disp(A0, 6));
    b.suspend();
    b.label("last_node");
    b.mov(R2, MemRef::disp(A0, 3));
    b.addi(R2, R2, 1);
    b.mov(MemRef::disp(A0, 3), R2);
    b.alu(AluOp::Eq, R2, R2, MemRef::disp(A0, 4));
    b.bf(R2, "lc_end");
    b.mov(MemRef::disp(A0, 5), R1);
    b.label("lc_end");
    b.suspend();

    b.entry("main");
    nnr::install(&mut b);
    b.assemble().expect("lcs assembles")
}

/// Writes the input strings into node memories.
pub fn setup(m: &mut JMachine, cfg: &LcsConfig) -> (Vec<u8>, Vec<u8>) {
    let (a, b) = cfg.strings();
    let nodes = m.node_count();
    let k = cfg.a_len / nodes;
    let a_seg = m.program().segment("lcs_a");
    let b_seg = m.program().segment("lcs_b");
    for node in 0..nodes {
        for j in 0..k {
            let ch = a[(node * k + j) as usize];
            m.write_word(NodeId(node), a_seg.base + j, Word::int(i32::from(ch)));
        }
    }
    for (i, &ch) in b.iter().enumerate() {
        m.write_word(NodeId(0), b_seg.base + i as u32, Word::int(i32::from(ch)));
    }
    (a, b)
}

/// Result of a validated run.
#[derive(Debug, Clone)]
pub struct LcsRun {
    /// The LCS length (already checked against the host reference).
    pub length: u32,
    /// Cycles to quiescence.
    pub cycles: u64,
    /// Machine statistics.
    pub stats: MachineStats,
}

/// Builds, loads, runs, and validates LCS on `nodes` nodes.
///
/// # Errors
///
/// Propagates machine failures (timeout, node errors).
///
/// # Panics
///
/// Panics if the machine's answer differs from the host reference.
pub fn run(nodes: u32, cfg: &LcsConfig, max_cycles: u64) -> Result<LcsRun, MachineError> {
    run_on(MachineConfig::new(nodes), cfg, max_cycles)
}

/// [`run`] on an explicit machine configuration (engine, fault plan,
/// mesh shape). The node count comes from `mcfg`; the start policy is
/// forced to [`StartPolicy::AllNodes`], which the app requires.
///
/// # Errors
///
/// Propagates machine failures (timeout, node errors).
///
/// # Panics
///
/// Panics if the machine's answer differs from the host reference.
pub fn run_on(
    mcfg: MachineConfig,
    cfg: &LcsConfig,
    max_cycles: u64,
) -> Result<LcsRun, MachineError> {
    let nodes = mcfg.nodes();
    let p = program(cfg, nodes);
    let param = p.segment("lcs_p");
    let mut m = JMachine::new(p, mcfg.start(StartPolicy::AllNodes));
    let (a, b) = setup(&mut m, cfg);
    let cycles = m.run_until_quiescent(max_cycles)?;
    let last = NodeId(nodes - 1);
    let length = m.read_word(last, param.base + 5).as_i32() as u32;
    let expected = reference(&a, &b);
    assert_eq!(length, expected, "LCS mismatch on {nodes} nodes");
    Ok(LcsRun {
        length,
        cycles,
        stats: m.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_sane() {
        assert_eq!(reference(b"abcde", b"ace"), 3);
        assert_eq!(reference(b"abc", b"xyz"), 0);
        assert_eq!(reference(b"", b"abc"), 0);
        assert_eq!(reference(b"same", b"same"), 4);
    }

    #[test]
    fn machine_matches_reference_small() {
        let cfg = LcsConfig {
            a_len: 32,
            b_len: 64,
            seed: 7,
            alphabet: 3,
        };
        for nodes in [1u32, 2, 8] {
            let run = run(nodes, &cfg, 20_000_000).unwrap();
            assert!(run.length > 0);
        }
    }

    #[test]
    fn speedup_with_more_nodes() {
        let cfg = LcsConfig {
            a_len: 64,
            b_len: 128,
            seed: 9,
            alphabet: 4,
        };
        let t1 = run(1, &cfg, 50_000_000).unwrap().cycles;
        let t8 = run(8, &cfg, 50_000_000).unwrap().cycles;
        assert!(
            t8 * 2 < t1,
            "expected speedup: 1 node {t1} cycles, 8 nodes {t8}"
        );
    }
}
