//! # jm-apps
//!
//! The four macro-benchmark applications of the paper's §4, written in MDP
//! assembly against the `jm-runtime` libraries, plus host-side reference
//! implementations used to validate every run:
//!
//! * [`lcs`] — Longest Common Subsequence, systolic, one message per
//!   character of the second string (assembly in the paper);
//! * [`radix`] — Radix Sort, 4 bits per pass, counts combined with a
//!   hypercube vector scan and values scattered with 3-word remote-write
//!   messages (Tuned J in the paper);
//! * [`nqueens`] — N-Queens with breadth-first task expansion followed by
//!   local depth-first search (Tuned J in the paper);
//! * [`tsp`] — Traveling Salesperson on a COSMOS-lite object runtime:
//!   xlate-mediated object access, bound broadcast, periodic suspension,
//!   and work-requesting (Concurrent Smalltalk in the paper).
//!
//! Every module exposes `program`/`setup`/`run` plus a host `reference`
//! function; `run` validates the machine's answer against the reference
//! before returning statistics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lcs;
pub mod nqueens;
pub mod radix;
pub mod tsp;
