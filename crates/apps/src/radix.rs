//! Radix Sort (paper §4.3.2).
//!
//! Sorts 28-bit integer keys 4 bits at a time (7 passes of a stable
//! counting sort), written in the paper's "fine-grained" style: every key
//! is scattered to its destination with a 3-word message as soon as its
//! slot is known, instead of being blocked up — the one application that
//! stresses the communication mechanisms and the machine's global
//! bandwidth.
//!
//! Per pass, per node:
//!
//! 1. **Count** — histogram the local strip's current digit (16 buckets).
//! 2. **Combine** — a hypercube vector *scan* (`log2 N` waves of 18-word
//!    messages) yields both the global bucket totals and this node's
//!    exclusive prefix; this plays the paper's "binary
//!    combining/distributing tree" role as a butterfly (same message count,
//!    no root bottleneck).
//! 3. **Reorder** — each key's global position is computed and the key is
//!    sent to node `position / K` as `[hdr, idx, key]`; a node knows the
//!    pass is complete when it has received exactly `K` writes.
//!
//! Source/destination arrays alternate by pass parity; write messages carry
//! the destination parity so a fast neighbour's next-pass writes can never
//! corrupt the current pass.

use jm_asm::{hdr, Builder, Program, Region};
use jm_isa::instr::{Alu1Op, AluOp, MsgPriority::P0, StatClass};
use jm_isa::node::NodeId;
use jm_isa::operand::{MemRef, Special};
use jm_isa::reg::{AReg::*, DReg::*};
use jm_isa::word::Word;
use jm_machine::{JMachine, MachineConfig, MachineError, MachineStats, StartPolicy};
use jm_prng::Prng;
use jm_runtime::nnr;

/// Bits per digit.
pub const BITS: u32 = 4;
/// Buckets per pass.
pub const BUCKETS: u32 = 16;
/// Passes (28-bit keys, 4 bits at a time — §4.3.2).
pub const PASSES: u32 = 7;
/// Maximum supported `log2(nodes)`.
const MAX_WAVES: u32 = 10;

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixConfig {
    /// Total number of keys (must divide evenly across nodes; per-node
    /// strip at most 65536).
    pub keys: u32,
    /// Seed for key generation.
    pub seed: u64,
}

impl RadixConfig {
    /// The paper's problem: 65 536 keys of 28 bits.
    pub fn paper() -> RadixConfig {
        RadixConfig {
            keys: 65_536,
            seed: 0xad1,
        }
    }

    /// A scaled problem with identical structure.
    pub fn scaled() -> RadixConfig {
        RadixConfig {
            keys: 4096,
            seed: 0xad1,
        }
    }

    /// Generates the keys (28-bit non-negative integers).
    pub fn generate(&self) -> Vec<u32> {
        let mut rng = Prng::new(self.seed);
        (0..self.keys).map(|_| rng.range_u32(0, 1 << 28)).collect()
    }
}

/// Host reference: a stable sort.
pub fn reference(keys: &[u32]) -> Vec<u32> {
    let mut sorted = keys.to_vec();
    sorted.sort();
    sorted
}

// Parameter block layout:
// [0] pass, [1] K, [2] recv[0], [3] recv[1], [4] log2(N), [5] wave,
// [6] scratch (lower-partner flag / parity'<<16), [7] key scratch,
// [8] saved loop index, [9] saved payload, [10] shift, [11] spare.

/// Builds the SPMD radix-sort program for `nodes` nodes.
///
/// # Panics
///
/// Panics if `keys` does not divide evenly or a strip exceeds 65536 keys.
pub fn program(cfg: &RadixConfig, nodes: u32) -> Program {
    assert_eq!(cfg.keys % nodes, 0, "keys must divide across nodes");
    let k = cfg.keys / nodes;
    assert!((1..=65_536).contains(&k), "strip size out of range: {k}");
    let mut b = Builder::new();
    b.reserve("rs_arr0", Region::Emem, k);
    b.reserve("rs_arr1", Region::Emem, k);
    b.reserve("rs_hist", Region::Imem, BUCKETS);
    b.reserve("rs_scanv", Region::Imem, BUCKETS);
    b.reserve("rs_sumv", Region::Imem, BUCKETS);
    b.reserve("rs_gpos", Region::Imem, BUCKETS);
    b.data(
        "rs_buf",
        Region::Imem,
        vec![Word::int(0); (MAX_WAVES * 2 * (BUCKETS + 1)) as usize],
    );
    b.data("rs_p", Region::Imem, vec![Word::int(0); 12]);

    // ---------------- background main: the "Sort" thread ----------------
    b.label("main");
    b.load_seg(A0, "rs_p");
    b.mov(MemRef::disp(A0, 1), k as i32);
    // log2(N)
    b.mov(R1, Special::NNodes);
    b.movi(R2, 0);
    b.label("rs_log");
    b.alu(AluOp::Ash, R1, R1, -1);
    b.bz(R1, "rs_logdone");
    b.addi(R2, R2, 1);
    b.br("rs_log");
    b.label("rs_logdone");
    b.mov(MemRef::disp(A0, 4), R2);

    b.label("pass_loop");
    // ---- count ----
    b.mark(StatClass::Compute);
    b.load_seg(A1, "rs_hist");
    b.movi(R0, 0);
    b.label("zh");
    b.mov(MemRef::reg(A1, R0), 0);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R1, R0, BUCKETS as i32);
    b.bt(R1, "zh");
    // src = arr[pass & 1]
    b.mov(R1, MemRef::disp(A0, 0));
    b.alu(AluOp::And, R1, R1, 1);
    b.bnz(R1, "csrc1");
    b.load_seg(A2, "rs_arr0");
    b.br("csrc_done");
    b.label("csrc1");
    b.load_seg(A2, "rs_arr1");
    b.label("csrc_done");
    // shift = -(pass * BITS)
    b.mov(R3, MemRef::disp(A0, 0));
    b.alu(AluOp::Mul, R3, R3, BITS as i32);
    b.alu1(Alu1Op::Neg, R3, R3);
    b.mov(MemRef::disp(A0, 10), R3);
    b.movi(R0, 0);
    b.label("count_loop");
    b.mov(R1, MemRef::reg(A2, R0));
    b.alu(AluOp::Lsh, R1, R1, R3);
    b.alu(AluOp::And, R1, R1, (BUCKETS - 1) as i32);
    b.mov(R2, MemRef::reg(A1, R1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::reg(A1, R1), R2);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, MemRef::disp(A0, 1));
    b.bt(R2, "count_loop");

    // ---- combine: hypercube vector scan ----
    b.mark(StatClass::Sync);
    b.load_seg(A1, "rs_scanv");
    b.movi(R0, 0);
    b.label("zs");
    b.mov(MemRef::reg(A1, R0), 0);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R1, R0, BUCKETS as i32);
    b.bt(R1, "zs");
    b.load_seg(A1, "rs_sumv");
    b.load_seg(A2, "rs_hist");
    b.movi(R0, 0);
    b.label("cphist");
    b.mov(R1, MemRef::reg(A2, R0));
    b.mov(MemRef::reg(A1, R0), R1);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, BUCKETS as i32);
    b.bt(R2, "cphist");
    b.mov(MemRef::disp(A0, 5), 0); // wave = 0
    b.label("wave_loop");
    b.mov(R1, MemRef::disp(A0, 5));
    b.alu(AluOp::Eq, R2, R1, MemRef::disp(A0, 4));
    b.bt(R2, "scan_done");
    // partner route
    b.movi(R0, 1);
    b.alu(AluOp::Lsh, R0, R0, R1);
    b.mov(R2, Special::Nid);
    b.alu(AluOp::Xor, R0, R0, R2);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Sync);
    b.send(P0, R0);
    // wavepar = wave | (pass & 1) << 16
    b.mov(R1, MemRef::disp(A0, 0));
    b.alu(AluOp::And, R1, R1, 1);
    b.alu(AluOp::Lsh, R1, R1, 16);
    b.alu(AluOp::Or, R1, R1, MemRef::disp(A0, 5));
    b.send2(P0, hdr("rs_scan", BUCKETS + 2), R1);
    b.load_seg(A1, "rs_sumv");
    for pair in 0..(BUCKETS / 2) {
        b.mov(R1, MemRef::disp(A1, 2 * pair));
        b.mov(R2, MemRef::disp(A1, 2 * pair + 1));
        if pair + 1 == BUCKETS / 2 {
            b.send2e(P0, R1, R2);
        } else {
            b.send2(P0, R1, R2);
        }
    }
    // poll the wave buffer
    b.mov(R1, MemRef::disp(A0, 5));
    b.alu(AluOp::Lsh, R1, R1, 1);
    b.mov(R2, MemRef::disp(A0, 0));
    b.alu(AluOp::And, R2, R2, 1);
    b.alu(AluOp::Add, R1, R1, R2);
    b.alu(AluOp::Mul, R1, R1, (BUCKETS + 1) as i32);
    b.load_seg(A1, "rs_buf");
    b.label("scan_poll");
    b.mov(R2, MemRef::reg(A1, R1));
    b.bz(R2, "scan_poll");
    b.mov(MemRef::reg(A1, R1), 0); // consume flag
                                   // lower partner? bit `wave` of NID set means the partner id is lower.
    b.movi(R2, 1);
    b.alu(AluOp::Lsh, R2, R2, MemRef::disp(A0, 5));
    b.alu(AluOp::And, R2, R2, Special::Nid);
    b.mov(MemRef::disp(A0, 6), R2);
    b.movi(R0, 0);
    b.label("combine");
    b.addi(R1, R1, 1);
    b.mov(R2, MemRef::reg(A1, R1)); // received sum[k]
    b.load_seg(A2, "rs_sumv");
    b.mov(R3, MemRef::reg(A2, R0));
    b.alu(AluOp::Add, R3, R3, R2);
    b.mov(MemRef::reg(A2, R0), R3);
    b.mov(R3, MemRef::disp(A0, 6));
    b.bz(R3, "no_low");
    b.load_seg(A2, "rs_scanv");
    b.mov(R3, MemRef::reg(A2, R0));
    b.alu(AluOp::Add, R3, R3, R2);
    b.mov(MemRef::reg(A2, R0), R3);
    b.label("no_low");
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, BUCKETS as i32);
    b.bt(R2, "combine");
    b.mov(R1, MemRef::disp(A0, 5));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 5), R1);
    b.br("wave_loop");

    b.label("scan_done");
    // ---- positions: gpos[v] = prefix(totals)[v] + scanv[v] ----
    b.mark(StatClass::Compute);
    b.load_seg(A1, "rs_sumv");
    b.load_seg(A2, "rs_gpos");
    b.movi(R0, 0);
    b.movi(R1, 0);
    b.label("gs");
    b.mov(MemRef::reg(A2, R0), R1);
    b.mov(R2, MemRef::reg(A1, R0));
    b.alu(AluOp::Add, R1, R1, R2);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, BUCKETS as i32);
    b.bt(R2, "gs");
    b.load_seg(A1, "rs_scanv");
    b.movi(R0, 0);
    b.label("ps");
    b.mov(R1, MemRef::reg(A1, R0));
    b.mov(R2, MemRef::reg(A2, R0));
    b.alu(AluOp::Add, R1, R1, R2);
    b.mov(MemRef::reg(A2, R0), R1);
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R2, R0, BUCKETS as i32);
    b.bt(R2, "ps");

    // ---- reorder ----
    b.mark(StatClass::Comm);
    // parity' << 16 into [6]
    b.mov(R1, MemRef::disp(A0, 0));
    b.addi(R1, R1, 1);
    b.alu(AluOp::And, R1, R1, 1);
    b.alu(AluOp::Lsh, R1, R1, 16);
    b.mov(MemRef::disp(A0, 6), R1);
    // src desc
    b.mov(R1, MemRef::disp(A0, 0));
    b.alu(AluOp::And, R1, R1, 1);
    b.bnz(R1, "rsrc1");
    b.load_seg(A1, "rs_arr0");
    b.br("rsrc_done");
    b.label("rsrc1");
    b.load_seg(A1, "rs_arr1");
    b.label("rsrc_done");
    b.mov(MemRef::disp(A0, 11), A1); // stash src descriptor for reloads
    b.load_seg(A2, "rs_gpos");
    b.mov(R3, MemRef::disp(A0, 10)); // shift
    b.movi(R0, 0);
    b.label("reorder_loop");
    b.mov(R1, MemRef::reg(A1, R0)); // key
    b.mov(MemRef::disp(A0, 7), R1);
    b.mov(R2, R1);
    b.alu(AluOp::Lsh, R2, R2, R3);
    b.alu(AluOp::And, R2, R2, (BUCKETS - 1) as i32); // digit
    b.mov(R1, MemRef::reg(A2, R2)); // p
    b.addi(R1, R1, 1);
    b.mov(MemRef::reg(A2, R2), R1);
    b.subi(R1, R1, 1);
    b.alu(AluOp::Div, R2, R1, MemRef::disp(A0, 1)); // destination node
    b.alu(AluOp::Rem, R1, R1, MemRef::disp(A0, 1)); // destination index
    b.alu(AluOp::Or, R1, R1, MemRef::disp(A0, 6)); // | parity'<<16
    b.mov(MemRef::disp(A0, 8), R0);
    b.mov(MemRef::disp(A0, 9), R1);
    b.mov(R0, R2);
    b.call(nnr::NID_TO_ROUTE);
    b.mark(StatClass::Comm);
    b.send(P0, R0);
    b.send2(P0, hdr("rs_write", 3), MemRef::disp(A0, 9));
    b.sende(P0, MemRef::disp(A0, 7));
    b.mov(R0, MemRef::disp(A0, 8));
    b.addi(R0, R0, 1);
    b.alu(AluOp::Lt, R1, R0, MemRef::disp(A0, 1));
    b.bf(R1, "reorder_done");
    // The route call clobbers R1/R2/A1: reload the loop's register set.
    b.mov(R3, MemRef::disp(A0, 10));
    b.mov(A1, MemRef::disp(A0, 11));
    b.load_seg(A2, "rs_gpos");
    b.br("reorder_loop");
    b.label("reorder_done");

    // ---- wait for all K incoming writes of parity' ----
    b.mark(StatClass::Idle);
    b.mov(R1, MemRef::disp(A0, 6));
    b.alu(AluOp::Lsh, R1, R1, -16);
    b.addi(R1, R1, 2); // recv counter slot
    b.label("wait_writes");
    b.mov(R2, MemRef::reg(A0, R1));
    b.alu(AluOp::Lt, R2, R2, MemRef::disp(A0, 1));
    b.bt(R2, "wait_writes");
    b.mov(MemRef::reg(A0, R1), 0);
    // next pass
    b.mark(StatClass::Compute);
    b.mov(R1, MemRef::disp(A0, 0));
    b.addi(R1, R1, 1);
    b.mov(MemRef::disp(A0, 0), R1);
    b.alu(AluOp::Lt, R2, R1, PASSES as i32);
    b.bt(R2, "pass_loop");
    b.halt();

    // ---------------- handlers ----------------
    // rs_write: [hdr, idx | parity<<16, key] — the "Write" thread of
    // Table 4.
    b.label("rs_write");
    b.mark(StatClass::Comm);
    b.mov(R0, MemRef::disp(A3, 1));
    b.mov(R1, R0);
    b.alu(AluOp::Lsh, R1, R1, -16);
    b.alu(AluOp::And, R0, R0, 0xffff);
    b.bnz(R1, "w1");
    b.load_seg(A0, "rs_arr0");
    b.br("wst");
    b.label("w1");
    b.load_seg(A0, "rs_arr1");
    b.label("wst");
    b.mov(R2, MemRef::disp(A3, 2));
    b.mov(MemRef::reg(A0, R0), R2);
    b.load_seg(A0, "rs_p");
    b.addi(R1, R1, 2);
    b.mov(R2, MemRef::reg(A0, R1));
    b.addi(R2, R2, 1);
    b.mov(MemRef::reg(A0, R1), R2);
    b.suspend();

    // rs_scan: [hdr, wave | parity<<16, 16 partial sums]
    b.label("rs_scan");
    b.mark(StatClass::Sync);
    b.mov(R0, MemRef::disp(A3, 1));
    b.mov(R1, R0);
    b.alu(AluOp::Lsh, R1, R1, -16);
    b.alu(AluOp::And, R0, R0, 0xffff);
    b.alu(AluOp::Lsh, R0, R0, 1);
    b.alu(AluOp::Add, R0, R0, R1);
    b.alu(AluOp::Mul, R0, R0, (BUCKETS + 1) as i32);
    b.load_seg(A0, "rs_buf");
    for kk in 0..BUCKETS {
        b.addi(R0, R0, 1);
        b.mov(R2, MemRef::disp(A3, 2 + kk));
        b.mov(MemRef::reg(A0, R0), R2);
    }
    b.subi(R0, R0, BUCKETS as i32);
    b.mov(MemRef::reg(A0, R0), 1); // arrival flag, written last
    b.suspend();

    b.entry("main");
    nnr::install(&mut b);
    b.assemble().expect("radix assembles")
}

/// Writes the key strips into node memories; returns the full key vector.
pub fn setup(m: &mut JMachine, cfg: &RadixConfig) -> Vec<u32> {
    let keys = cfg.generate();
    let nodes = m.node_count();
    let k = cfg.keys / nodes;
    let arr0 = m.program().segment("rs_arr0");
    for node in 0..nodes {
        for j in 0..k {
            m.write_word(
                NodeId(node),
                arr0.base + j,
                Word::int(keys[(node * k + j) as usize] as i32),
            );
        }
    }
    keys
}

/// Reads back the sorted array (pass count decides which buffer).
pub fn result(m: &JMachine, cfg: &RadixConfig) -> Vec<u32> {
    let name = if PASSES % 2 == 1 {
        "rs_arr1"
    } else {
        "rs_arr0"
    };
    let nodes = m.node_count();
    let k = cfg.keys / nodes;
    let mut out = Vec::with_capacity(cfg.keys as usize);
    for node in 0..nodes {
        let block = m.read_block(NodeId(node), name);
        out.extend(block[..k as usize].iter().map(|w| w.bits()));
    }
    out
}

/// Result of a validated run.
#[derive(Debug, Clone)]
pub struct RadixRun {
    /// Cycles to quiescence.
    pub cycles: u64,
    /// Machine statistics.
    pub stats: MachineStats,
}

/// Builds, loads, runs, and validates radix sort on `nodes` nodes.
///
/// # Errors
///
/// Propagates machine failures.
///
/// # Panics
///
/// Panics if the sorted output differs from the host reference.
pub fn run(nodes: u32, cfg: &RadixConfig, max_cycles: u64) -> Result<RadixRun, MachineError> {
    run_on(MachineConfig::new(nodes), cfg, max_cycles)
}

/// [`run`] on an explicit machine configuration (engine, fault plan,
/// mesh shape). The node count comes from `mcfg`; the start policy is
/// forced to [`StartPolicy::AllNodes`], which the app requires.
///
/// # Errors
///
/// Propagates machine failures.
///
/// # Panics
///
/// Panics if the sorted output differs from the host reference.
pub fn run_on(
    mcfg: MachineConfig,
    cfg: &RadixConfig,
    max_cycles: u64,
) -> Result<RadixRun, MachineError> {
    let nodes = mcfg.nodes();
    let p = program(cfg, nodes);
    let mut m = JMachine::new(p, mcfg.start(StartPolicy::AllNodes));
    let keys = setup(&mut m, cfg);
    let cycles = m.run_until_quiescent(max_cycles)?;
    let got = result(&m, cfg);
    let expected = reference(&keys);
    assert_eq!(got, expected, "radix sort mismatch on {nodes} nodes");
    Ok(RadixRun {
        cycles,
        stats: m.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_on_one_node() {
        let cfg = RadixConfig { keys: 64, seed: 3 };
        run(1, &cfg, 50_000_000).unwrap();
    }

    #[test]
    fn sorts_across_machine_sizes() {
        let cfg = RadixConfig { keys: 256, seed: 5 };
        for nodes in [2u32, 4, 8, 16] {
            run(nodes, &cfg, 100_000_000).unwrap_or_else(|e| panic!("{nodes} nodes: {e}"));
        }
    }

    #[test]
    fn duplicate_heavy_keys_sort_correctly() {
        let cfg = RadixConfig {
            keys: 128,
            seed: 11,
        };
        let p = program(&cfg, 4);
        let mut m = JMachine::new(p, MachineConfig::new(4).start(StartPolicy::AllNodes));
        let arr0 = m.program().segment("rs_arr0");
        let k = cfg.keys / 4;
        let mut keys = Vec::new();
        for i in 0..cfg.keys {
            let v = (i % 7) * 1000;
            keys.push(v);
            m.write_word(NodeId(i / k), arr0.base + (i % k), Word::int(v as i32));
        }
        m.run_until_quiescent(100_000_000).unwrap();
        let got = result(&m, &cfg);
        assert_eq!(got, reference(&keys));
    }
}
